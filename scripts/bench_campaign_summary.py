#!/usr/bin/env python3
"""Summarize the campaign_scaling bench report as JSON.

Usage: bench_campaign_summary.py BENCH_OUTPUT.txt [SUMMARY.json]

Parses the harness's flat report lines, e.g.

    campaign_scaling/fifteen_blocks_4k/4: 334166299.0 ns/iter  (0.184 Melem/s)
    campaign_scaling/skewed_giant_split/4: 21416299.0 ns/iter  (0.724 Melem/s)
    campaign_dedup/fx_insert/17: 49735880.0 ns/iter  (2.635 Melem/s)

into a machine-readable summary: probes/sec and wall-clock per campaign
worker count (with speedup relative to the 1-worker baseline), the
skewed one-giant-block configs (split on/off wall-clock ratio), the
responder-dedup throughput at each population size, and a "straggler"
section computed from the deterministic virtual-slot schedule model
(a line-for-line port of `xmap_periphery::split::simulate_schedule`) —
idle-slot fraction and p95 block-completion slots for the skewed mix at
4 workers, split on vs off. The model gate (splitting cuts the idle
fraction >=2x) is asserted here, so it holds even on a single-CPU CI
host where wall-clock speedups are meaningless. Writes to SUMMARY.json
(default BENCH_campaign.json next to the input) and echoes the document
to stdout so CI logs carry the numbers. Exits nonzero if no
campaign_scaling lines are found, the 1-worker baseline is missing, or
the straggler-model gate fails. Standard library only.
"""

import json
import os
import re
import sys

SCALING = re.compile(
    r"^campaign_scaling/(?P<bench>[\w-]+)/(?P<workers>\d+):\s+"
    r"(?P<ns>[0-9.]+) ns/iter(?:\s+\((?P<melems>[0-9.]+) Melem/s\))?"
)
DEDUP = re.compile(
    r"^campaign_dedup/(?P<bench>[\w-]+)/(?P<bits>\d+):\s+"
    r"(?P<ns>[0-9.]+) ns/iter(?:\s+\((?P<melems>[0-9.]+) Melem/s\))?"
)

# The skewed straggler mix the virtual-slot model scores: fifteen blocks
# where block 2 carries 16x the weight — the same mix split.rs's
# `splitting_halves_idle_fraction_on_skewed_mix` test pins in Rust.
STRAGGLER_WEIGHTS = [1 << 12] * 15
STRAGGLER_WEIGHTS[2] = 1 << 16
STRAGGLER_WORKERS = 4


def fail(msg):
    print(f"bench_campaign_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def worker_cap(cap, w, n):
    """Port of xmap::worker_cap: positions of shard w among n shards."""
    if cap <= w:
        return 0
    return -((cap - w) // -n)  # ceil-div


def simulate_schedule(weights, workers, split):
    """Port of xmap_periphery::split::simulate_schedule.

    Replays the executor's schedule on a virtual slot clock: blocks are
    seeded round-robin onto worker deques, a worker pops its own front
    then steals from the next victims' backs, one weight-unit completes
    per busy worker per slot, and — with `split` on — workers idle at a
    slot boundary split the largest in-flight remainder `k = idle + 1`
    ways using the nested-shard cap math. Returns
    (makespan, idle_slots, p95_completion), all in virtual slots.
    """
    workers = max(workers, 1)
    deques = [[] for _ in range(workers)]
    for i in range(len(weights)):
        deques[i % workers].append(i)
    running = [None] * workers  # (block, remaining) per busy worker
    open_units = [1 if w > 0 else 0 for w in weights]
    completion = [0] * len(weights)
    idle_slots = 0
    slot = 0

    while True:
        # Acquire: pop own front, then steal from the next victims' backs.
        for w in range(workers):
            if running[w] is not None:
                continue
            nxt = None
            if deques[w]:
                nxt = deques[w].pop(0)
            else:
                for d in range(1, workers):
                    victim = deques[(w + d) % workers]
                    if victim:
                        nxt = victim.pop()
                        break
            if nxt is not None and weights[nxt] > 0:
                running[w] = (nxt, weights[nxt])
        # Split: idle workers fan out the largest in-flight remainder.
        if split:
            while True:
                idle = [w for w in range(workers) if running[w] is None]
                if not idle or any(deques):
                    break
                candidates = [
                    w
                    for w in range(workers)
                    if running[w] is not None and running[w][1] >= 2
                ]
                if not candidates:
                    break
                v = max(candidates, key=lambda w: (running[w][1], -w))
                block, rest = running[v]
                k = len(idle) + 1
                running[v] = (block, worker_cap(rest, 0, k))
                assigned = False
                for i, w in enumerate(idle):
                    cap = worker_cap(rest, i + 1, k)
                    if cap > 0:
                        running[w] = (block, cap)
                        open_units[block] += 1
                        assigned = True
                if not assigned:
                    break
        # Work: one weight-unit per busy worker per slot.
        busy = sum(1 for r in running if r is not None)
        if busy == 0:
            break
        idle_slots += workers - busy
        slot += 1
        for w in range(workers):
            if running[w] is None:
                continue
            block, rest = running[w]
            rest -= 1
            if rest == 0:
                open_units[block] -= 1
                if open_units[block] == 0:
                    completion[block] = slot
                running[w] = None
            else:
                running[w] = (block, rest)

    done = sorted(c for c, w in zip(completion, weights) if w > 0)
    if done:
        idx = min(max((len(done) * 95 + 99) // 100 - 1, 0), len(done) - 1)
        p95 = done[idx]
    else:
        p95 = 0
    return slot, idle_slots, p95


def straggler_row():
    """The straggler-tail row: the skewed mix at 4 workers, split on/off."""
    rows = {}
    for label, split in [("nosplit", False), ("split", True)]:
        makespan, idle, p95 = simulate_schedule(
            STRAGGLER_WEIGHTS, STRAGGLER_WORKERS, split
        )
        total = makespan * STRAGGLER_WORKERS
        rows[label] = {
            "makespan_slots": makespan,
            "idle_slots": idle,
            "idle_fraction": round(idle / total, 6) if total else 0.0,
            "p95_completion_slots": p95,
        }
    before = rows["nosplit"]["idle_fraction"]
    after = rows["split"]["idle_fraction"]
    if after * 2.0 > before:
        fail(
            f"straggler model gate: split idle fraction {after} "
            f"not >=2x below no-split {before}"
        )
    return {
        "model": "virtual-slot schedule (periphery::split::simulate_schedule)",
        "weights": "15 blocks of 2^12 slots, block 2 at 2^16",
        "workers": STRAGGLER_WORKERS,
        "nosplit": rows["nosplit"],
        "split": rows["split"],
        "idle_reduction": round(before / after, 3) if after else None,
    }


def parse(path):
    configs, skewed, dedup = {}, {}, []
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = SCALING.match(line.strip())
            if m:
                bench = m.group("bench")
                workers = int(m.group("workers"))
                ns = float(m.group("ns"))
                row = {
                    "bench": bench,
                    "workers": workers,
                    "ns_per_iter": ns,
                    "wall_clock_secs": round(ns / 1e9, 6),
                    "probes_per_sec": (
                        round(float(m.group("melems")) * 1e6, 1)
                        if m.group("melems")
                        else None
                    ),
                }
                if bench.startswith("skewed_giant"):
                    skewed[bench] = row
                else:
                    configs[workers] = row
                continue
            m = DEDUP.match(line.strip())
            if m:
                dedup.append(
                    {
                        "bench": m.group("bench"),
                        "log2_responders": int(m.group("bits")),
                        "ns_per_iter": float(m.group("ns")),
                        "melems_per_sec": (
                            float(m.group("melems")) if m.group("melems") else None
                        ),
                    }
                )
    return configs, skewed, dedup


def main():
    if len(sys.argv) < 2:
        fail("usage: bench_campaign_summary.py BENCH_OUTPUT.txt [SUMMARY.json]")
    src = sys.argv[1]
    out = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(src) or ".", "BENCH_campaign.json")
    )
    configs, skewed, dedup = parse(src)
    if not configs:
        fail(f"no campaign_scaling result lines in {src}")
    if 1 not in configs:
        fail("1-worker baseline missing; cannot compute speedups")
    base_ns = configs[1]["ns_per_iter"]
    for cfg in configs.values():
        cfg["speedup_vs_1_worker"] = round(base_ns / cfg["ns_per_iter"], 3)
    doc = {
        "schema": "xmap-bench-campaign/v1",
        "cpus": os.cpu_count(),
        "configs": [configs[w] for w in sorted(configs)],
        "dedup": sorted(dedup, key=lambda d: d["log2_responders"]),
        "straggler": straggler_row(),
    }
    if skewed:
        doc["skewed"] = [skewed[k] for k in sorted(skewed)]
        ns_off = skewed.get("skewed_giant_nosplit", {}).get("ns_per_iter")
        ns_on = skewed.get("skewed_giant_split", {}).get("ns_per_iter")
        if ns_off and ns_on:
            # Wall-clock split speedup; only meaningful on a multi-core
            # host — the virtual-slot "straggler" section is the gate.
            doc["skewed_split_speedup"] = round(ns_off / ns_on, 3)
    if doc["cpus"] == 1:
        # Make the hardware caveat impossible to miss, in both the JSON
        # document and the CI log.
        doc["warning"] = (
            "single-CPU host: workers are time-sliced, so speedup_vs_1_worker "
            "and skewed_split_speedup measure scheduling overhead, not "
            "parallelism; the straggler section's virtual-slot model is the "
            "hardware-independent gate"
        )
        print(
            "bench_campaign_summary: WARNING: single-CPU host — "
            "multi-worker speedups are not meaningful",
            file=sys.stderr,
        )
    rendered = json.dumps(doc, indent=2) + "\n"
    with open(out, "w", encoding="utf-8") as f:
        f.write(rendered)
    print(rendered, end="")


if __name__ == "__main__":
    main()
