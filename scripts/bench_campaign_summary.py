#!/usr/bin/env python3
"""Summarize the campaign_scaling bench report as JSON.

Usage: bench_campaign_summary.py BENCH_OUTPUT.txt [SUMMARY.json]

Parses the harness's flat report lines, e.g.

    campaign_scaling/fifteen_blocks_4k/4: 334166299.0 ns/iter  (0.184 Melem/s)
    campaign_dedup/fx_insert/17: 49735880.0 ns/iter  (2.635 Melem/s)

into a machine-readable summary: probes/sec and wall-clock per campaign
worker count (with speedup relative to the 1-worker baseline) plus the
responder-dedup throughput at each population size. Writes to
SUMMARY.json (default BENCH_campaign.json next to the input) and echoes
the document to stdout so CI logs carry the numbers. Exits nonzero if no
campaign_scaling lines are found or the 1-worker baseline is missing.
Standard library only.
"""

import json
import os
import re
import sys

SCALING = re.compile(
    r"^campaign_scaling/(?P<bench>[\w-]+)/(?P<workers>\d+):\s+"
    r"(?P<ns>[0-9.]+) ns/iter(?:\s+\((?P<melems>[0-9.]+) Melem/s\))?"
)
DEDUP = re.compile(
    r"^campaign_dedup/(?P<bench>[\w-]+)/(?P<bits>\d+):\s+"
    r"(?P<ns>[0-9.]+) ns/iter(?:\s+\((?P<melems>[0-9.]+) Melem/s\))?"
)


def fail(msg):
    print(f"bench_campaign_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def parse(path):
    configs, dedup = {}, []
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = SCALING.match(line.strip())
            if m:
                workers = int(m.group("workers"))
                ns = float(m.group("ns"))
                configs[workers] = {
                    "bench": m.group("bench"),
                    "workers": workers,
                    "ns_per_iter": ns,
                    "wall_clock_secs": round(ns / 1e9, 6),
                    "probes_per_sec": (
                        round(float(m.group("melems")) * 1e6, 1)
                        if m.group("melems")
                        else None
                    ),
                }
                continue
            m = DEDUP.match(line.strip())
            if m:
                dedup.append(
                    {
                        "bench": m.group("bench"),
                        "log2_responders": int(m.group("bits")),
                        "ns_per_iter": float(m.group("ns")),
                        "melems_per_sec": (
                            float(m.group("melems")) if m.group("melems") else None
                        ),
                    }
                )
    return configs, dedup


def main():
    if len(sys.argv) < 2:
        fail("usage: bench_campaign_summary.py BENCH_OUTPUT.txt [SUMMARY.json]")
    src = sys.argv[1]
    out = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(src) or ".", "BENCH_campaign.json")
    )
    configs, dedup = parse(src)
    if not configs:
        fail(f"no campaign_scaling result lines in {src}")
    if 1 not in configs:
        fail("1-worker baseline missing; cannot compute speedups")
    base_ns = configs[1]["ns_per_iter"]
    for cfg in configs.values():
        cfg["speedup_vs_1_worker"] = round(base_ns / cfg["ns_per_iter"], 3)
    doc = {
        "schema": "xmap-bench-campaign/v1",
        "cpus": os.cpu_count(),
        "configs": [configs[w] for w in sorted(configs)],
        "dedup": sorted(dedup, key=lambda d: d["log2_responders"]),
    }
    if doc["cpus"] == 1:
        # Make the hardware caveat impossible to miss, in both the JSON
        # document and the CI log.
        doc["warning"] = (
            "single-CPU host: workers are time-sliced, so speedup_vs_1_worker "
            "measures scheduling overhead, not parallelism"
        )
        print(
            "bench_campaign_summary: WARNING: single-CPU host — "
            "multi-worker speedups are not meaningful",
            file=sys.stderr,
        )
    rendered = json.dumps(doc, indent=2) + "\n"
    with open(out, "w", encoding="utf-8") as f:
        f.write(rendered)
    print(rendered, end="")


if __name__ == "__main__":
    main()
