#!/usr/bin/env python3
"""Summarize the adaptive_ablation bench report as JSON.

Usage: bench_adaptive_summary.py BENCH_OUTPUT.txt [SUMMARY.json]

Parses the two deterministic ablation rows the bench prints, e.g.

    ablation-row: {"arm":"exhaustive","probes":983040,"discoveries":870,"recall":1.0000,"probes_per_cpe":1129.93}
    ablation-row: {"arm":"adaptive","probes":134336,"discoveries":851,"recall":0.9782,"probes_per_cpe":157.86}

plus the harness's optional timing lines

    adaptive_ablation/adaptive/16: 365364114.0 ns/iter  (0.368 Melem/s)

into a machine-readable summary: per-arm probes, discoveries, recall and
probes-per-discovered-CPE, with the adaptive arm's probe-reduction factor
over the exhaustive baseline. Re-checks the acceptance bars (>=5x fewer
probes at >=95% recall) and exits nonzero if either fails, so CI catches a
policy regression even if the bench's own assertions were skipped. Writes
to SUMMARY.json (default BENCH_adaptive.json next to the input) and
echoes the document to stdout so CI logs carry the numbers. Standard
library only.
"""

import json
import os
import re
import sys

ROW = re.compile(r"^ablation-row:\s+(?P<json>\{.*\})$")
TIMING = re.compile(
    r"^adaptive_ablation/(?P<arm>[\w-]+)/(?P<bits>\d+):\s+"
    r"(?P<ns>[0-9.]+) ns/iter(?:\s+\((?P<melems>[0-9.]+) Melem/s\))?"
)

MIN_REDUCTION = 5.0
MIN_RECALL = 0.95


def fail(msg):
    print(f"bench_adaptive_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def parse(path):
    arms, timings = {}, {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = ROW.match(line.strip())
            if m:
                row = json.loads(m.group("json"))
                arms[row["arm"]] = row
                continue
            m = TIMING.match(line.strip())
            if m:
                timings[m.group("arm")] = {
                    "root_bits": int(m.group("bits")),
                    "ns_per_iter": float(m.group("ns")),
                    "wall_clock_secs": round(float(m.group("ns")) / 1e9, 6),
                    "probes_per_sec": (
                        round(float(m.group("melems")) * 1e6, 1)
                        if m.group("melems")
                        else None
                    ),
                }
    return arms, timings


def main():
    if len(sys.argv) < 2:
        fail("usage: bench_adaptive_summary.py BENCH_OUTPUT.txt [SUMMARY.json]")
    src = sys.argv[1]
    out = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(src) or ".", "BENCH_adaptive.json")
    )
    arms, timings = parse(src)
    for arm in ("exhaustive", "adaptive"):
        if arm not in arms:
            fail(f"no '{arm}' ablation row in {src}")
        if arm in timings:
            arms[arm]["timing"] = timings[arm]
    exhaustive, adaptive = arms["exhaustive"], arms["adaptive"]
    if adaptive["probes"] <= 0 or exhaustive["probes"] <= 0:
        fail("nonpositive probe count in ablation rows")
    reduction = exhaustive["probes"] / adaptive["probes"]
    doc = {
        "schema": "xmap-bench-adaptive/v1",
        "cpus": os.cpu_count(),
        "arms": [exhaustive, adaptive],
        "probe_reduction_vs_exhaustive": round(reduction, 3),
        "probes_per_cpe_ratio": round(
            exhaustive["probes_per_cpe"] / adaptive["probes_per_cpe"], 3
        ),
        "recall_at_reduction": adaptive["recall"],
    }
    if doc["cpus"] == 1:
        # The ablation rows are seed-deterministic and unaffected, but the
        # wall-clock timings are; make the hardware caveat impossible to
        # miss, in both the JSON document and the CI log.
        doc["warning"] = (
            "single-CPU host: wall-clock timings measure a time-sliced "
            "run; the probe/recall ablation rows are unaffected"
        )
        print(
            "bench_adaptive_summary: WARNING: single-CPU host — "
            "timing rows are not meaningful",
            file=sys.stderr,
        )
    rendered = json.dumps(doc, indent=2) + "\n"
    with open(out, "w", encoding="utf-8") as f:
        f.write(rendered)
    print(rendered, end="")
    if reduction < MIN_REDUCTION:
        fail(
            f"probe reduction {reduction:.2f}x below the {MIN_REDUCTION}x bar"
        )
    if adaptive["recall"] < MIN_RECALL:
        fail(f"adaptive recall {adaptive['recall']} below the {MIN_RECALL} bar")


if __name__ == "__main__":
    main()
