#!/usr/bin/env python3
"""Compare the adaptive CI smoke's two arms and enforce the ablation bars.

Usage: check_adaptive_smoke.py EXH.csv EXH_METRICS.json ADAPT.csv ADAPT_METRICS.json

Both CSVs come from `xmap-campaign --adaptive` runs over the same seeded
clustered world and equal-coverage slice — the exhaustive arm via
`--no-prune` (same engine, adaptation off). The check: the adaptive arm
must recall at least 95% of the exhaustive arm's discovered-responder
set while sending strictly fewer probes (`scan.sent`), i.e. the pruning
policy saved probes without sacrificing discovery. Prints both arms'
numbers and exits nonzero on any violation. Standard library only.
"""

import json
import sys

MIN_RECALL = 0.95


def fail(msg):
    print(f"check_adaptive_smoke: {msg}", file=sys.stderr)
    sys.exit(1)


def responders(path):
    """The set of discovered periphery addresses (CSV column 2)."""
    with open(path, encoding="utf-8") as f:
        header = f.readline()
        if not header.startswith("profile_id,"):
            fail(f"{path}: unexpected CSV header {header!r}")
        return {line.split(",")[1] for line in f if line.strip()}


def probes_sent(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "xmap-telemetry/v1":
        fail(f"{path}: unexpected schema tag {doc.get('schema')!r}")
    sent = doc.get("counters", {}).get("scan.sent")
    if not isinstance(sent, int) or sent <= 0:
        fail(f"{path}: counters['scan.sent'] = {sent!r} must be a positive integer")
    return sent


def main(argv):
    if len(argv) != 5:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    exh_set = responders(argv[1])
    exh_sent = probes_sent(argv[2])
    adapt_set = responders(argv[3])
    adapt_sent = probes_sent(argv[4])
    if not exh_set:
        fail("exhaustive arm discovered nothing — smoke world is misconfigured")
    recall = len(adapt_set & exh_set) / len(exh_set)
    print(
        f"exhaustive: {exh_sent} probes, {len(exh_set)} responders | "
        f"adaptive: {adapt_sent} probes, {len(adapt_set)} responders | "
        f"recall {recall:.4f} | reduction {exh_sent / adapt_sent:.2f}x"
    )
    if adapt_sent >= exh_sent:
        fail(f"adaptive sent {adapt_sent} probes, not fewer than exhaustive {exh_sent}")
    if recall < MIN_RECALL:
        fail(f"recall {recall:.4f} below the {MIN_RECALL} bar")
    novel = adapt_set - exh_set
    if novel:
        # Both arms walk the same equal-coverage slice, so the adaptive
        # arm cannot legitimately discover an address the exhaustive
        # enumeration missed.
        fail(f"adaptive arm found {len(novel)} responders outside the exhaustive set")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
