#!/usr/bin/env python3
"""Compare two telemetry snapshot exports, ignoring executor counters.

Usage: cmp_metrics_no_exec.py BASELINE.json CANDIDATE.json

The campaign determinism contract (DESIGN.md §5j) says a killed,
resumed, split, or re-sharded campaign reproduces the sequential run's
scan-layer metrics exactly; only the `exec.*` counters — worker panics,
requeues, stalls, splits, split shards — are allowed to differ, because
they describe the schedule that happened to run, not the scan. This
script strips every counter whose name starts with `exec.` from both
documents and requires the remainder (counters, gauges, histograms) to
be equal, mirroring the `strip_exec` helper the Rust tests use. Exits
nonzero with a per-key diagnostic on the first difference. Standard
library only.
"""

import json
import sys


def fail(msg):
    print(f"cmp_metrics_no_exec: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{path}: {e}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing '{section}' object")
    doc["counters"] = {
        k: v for k, v in doc["counters"].items() if not k.startswith("exec.")
    }
    return doc


def diff_section(name, a, b):
    for key in sorted(set(a) | set(b)):
        if key not in a:
            fail(f"{name}[{key!r}] only in candidate (= {b[key]!r})")
        if key not in b:
            fail(f"{name}[{key!r}] only in baseline (= {a[key]!r})")
        if a[key] != b[key]:
            fail(f"{name}[{key!r}]: baseline {a[key]!r} != candidate {b[key]!r}")


def main():
    if len(sys.argv) != 3:
        fail("usage: cmp_metrics_no_exec.py BASELINE.json CANDIDATE.json")
    base, cand = load(sys.argv[1]), load(sys.argv[2])
    for section in ("counters", "gauges", "histograms"):
        diff_section(section, base[section], cand[section])
    print(
        "cmp_metrics_no_exec: snapshots identical outside exec.* "
        f"({len(base['counters'])} counters, {len(base['gauges'])} gauges, "
        f"{len(base['histograms'])} histograms)"
    )


if __name__ == "__main__":
    main()
