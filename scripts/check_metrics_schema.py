#!/usr/bin/env python3
"""Validate an xmap-telemetry snapshot export against the v1 schema.

Usage: check_metrics_schema.py SNAPSHOT.json [REQUIRED_COUNTER ...]

Checks the structural contract `Snapshot::to_json` promises (see
DESIGN.md §Telemetry): schema tag, integer-valued counter/gauge maps, and
internally consistent histograms. Any REQUIRED_COUNTER names given after
the path must be present in the counters section. Exits nonzero with a
diagnostic on the first violation. Standard library only.
"""

import json
import sys


def fail(msg):
    print(f"schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def check_scalar_map(doc, section):
    entries = doc.get(section)
    if not isinstance(entries, dict):
        fail(f"'{section}' must be an object")
    for name, value in entries.items():
        if not isinstance(name, str) or not name:
            fail(f"{section} key {name!r} must be a non-empty string")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"{section}[{name!r}] = {value!r} must be a non-negative integer")


def check_histograms(doc):
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail("'histograms' must be an object")
    for name, h in hists.items():
        if not isinstance(h, dict):
            fail(f"histogram {name!r} must be an object")
        for key in ("bounds", "counts", "count", "sum"):
            if key not in h:
                fail(f"histogram {name!r} missing '{key}'")
        bounds, counts = h["bounds"], h["counts"]
        if not isinstance(bounds, list) or not all(
            isinstance(b, int) and not isinstance(b, bool) for b in bounds
        ):
            fail(f"histogram {name!r} bounds must be a list of integers")
        if any(b0 >= b1 for b0, b1 in zip(bounds, bounds[1:])):
            fail(f"histogram {name!r} bounds must be strictly increasing")
        if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
            fail(
                f"histogram {name!r} needs len(bounds)+1 counts "
                f"(got {len(counts)} for {len(bounds)} bounds)"
            )
        if any(not isinstance(c, int) or isinstance(c, bool) or c < 0 for c in counts):
            fail(f"histogram {name!r} counts must be non-negative integers")
        if sum(counts) != h["count"]:
            fail(
                f"histogram {name!r} count {h['count']} != bucket total {sum(counts)}"
            )


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path, required = argv[1], argv[2:]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("schema") != "xmap-telemetry/v1":
        fail(f"unexpected schema tag {doc.get('schema')!r}")
    unknown = set(doc) - {"schema", "counters", "gauges", "histograms"}
    if unknown:
        fail(f"unknown top-level keys {sorted(unknown)}")
    check_scalar_map(doc, "counters")
    check_scalar_map(doc, "gauges")
    check_histograms(doc)
    missing = [name for name in required if name not in doc["counters"]]
    if missing:
        fail(f"required counters missing: {missing}")
    n = (
        len(doc["counters"]),
        len(doc["gauges"]),
        len(doc["histograms"]),
    )
    print(f"{path}: ok ({n[0]} counters, {n[1]} gauges, {n[2]} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
