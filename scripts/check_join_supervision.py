#!/usr/bin/env python3
"""Forbid unsupervised JoinHandle::join in executor production code.

Usage: check_join_supervision.py FILE.rs [FILE.rs ...]

The parallel executors supervise worker threads: a panicking worker is
caught (`catch_unwind` semantics via the Result that `join()` returns),
its shard/block is requeued with a bounded attempt budget, and repeated
failure is reported as Poisoned rather than crashing the coordinator
(DESIGN.md §5f). Writing `.join().expect(...)` or `.join().unwrap()` in
production executor code reintroduces the abort-on-panic behaviour this
hardening removed, so CI rejects it.

Test modules are exempt: everything at or below the first top-level
(column-zero) `#[cfg(test)]` line is skipped, matching the convention
that unit tests live in a trailing `mod tests` block. Exits nonzero
listing every offending line. Standard library only.
"""

import re
import sys

FORBIDDEN = re.compile(r"\.join\(\)\s*\.\s*(expect|unwrap)\s*\(")
TEST_BOUNDARY = re.compile(r"^#\[cfg\(test\)\]")


def offending_lines(path):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    bad = []
    for lineno, line in enumerate(lines, start=1):
        if TEST_BOUNDARY.match(line):
            break  # trailing test module: everything below is exempt
        if FORBIDDEN.search(line):
            bad.append((lineno, line.rstrip()))
    return bad


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        for lineno, line in offending_lines(path):
            failed = True
            print(
                f"{path}:{lineno}: unsupervised join in executor code "
                f"(match on the join() Result and requeue instead): {line.strip()}",
                file=sys.stderr,
            )
    if failed:
        return 1
    print(f"join supervision: ok ({len(argv) - 1} file(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
