#!/usr/bin/env python3
"""Validate an xmap-state session manifest against the v1 schema.

Usage: check_checkpoint_schema.py MANIFEST.json

Checks the structural contract `Manifest::to_json` promises (see
DESIGN.md §5d): schema/kind tags, field types and domains, and — as a
cross-language format check — recomputes the FNV-1a identity fingerprint
from the identity fields and compares it to the stored one. A manifest
whose fingerprint no longer matches its fields was edited after the
session started and must be rejected, exactly as the Rust reader does.
Exits nonzero with a diagnostic on the first violation. Standard library
only.
"""

import json
import sys

SCHEMA = "xmap-checkpoint/v1"
PERMUTATIONS = ("cyclic", "feistel", "sequential")
KNOWN_KEYS = {
    "schema", "kind", "workers", "seed", "world_seed", "shard", "shards",
    "permutation", "module", "max_targets", "rate_pps", "probes_per_target",
    "rto_ticks", "max_retry_backlog", "adaptive", "record_silent", "ranges",
    "blocklist_fp", "every", "fingerprint",
}

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
U64_MASK = (1 << 64) - 1


def fail(msg):
    print(f"schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def req_u64(doc, key):
    v = doc.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or not 0 <= v <= U64_MASK:
        fail(f"'{key}' = {v!r} must be a u64")
    return v


def opt_u64(doc, key):
    if doc.get(key) is None:
        return None
    return req_u64(doc, key)


def req_bool(doc, key):
    v = doc.get(key)
    if not isinstance(v, bool):
        fail(f"'{key}' = {v!r} must be a bool")
    return v


def req_str(doc, key):
    v = doc.get(key)
    if not isinstance(v, str) or not v:
        fail(f"'{key}' = {v!r} must be a non-empty string")
    return v


def req_fp(doc, key):
    """Fingerprints are serialised as `{:#018x}`: 0x + 16 hex digits."""
    v = req_str(doc, key)
    if len(v) != 18 or not v.startswith("0x"):
        fail(f"'{key}' = {v!r} must be 0x followed by 16 hex digits")
    try:
        return int(v, 16)
    except ValueError:
        fail(f"'{key}' = {v!r} is not hexadecimal")


class Fnv:
    """Mirror of xmap_state::codec::Fingerprint (FNV-1a, 64-bit)."""

    def __init__(self):
        self.h = FNV_OFFSET

    def push_bytes(self, data):
        for b in data:
            self.h = ((self.h ^ b) * FNV_PRIME) & U64_MASK
        return self

    def push_u64(self, v):
        return self.push_bytes(v.to_bytes(8, "little"))

    def push_str(self, s):
        raw = s.encode("utf-8")
        return self.push_u64(len(raw)).push_bytes(raw)

    def push_opt_u64(self, v):
        # Manifest::fingerprint encodes Option<u64> as (value-or-MAX, flag).
        self.push_u64(U64_MASK if v is None else v)
        return self.push_u64(0 if v is None else 1)


def recompute_fingerprint(m):
    f = Fnv()
    f.push_str(SCHEMA)
    f.push_u64(m["workers"]).push_u64(m["seed"]).push_u64(m["world_seed"])
    f.push_u64(m["shard"]).push_u64(m["shards"])
    f.push_str(m["permutation"]).push_str(m["module"])
    f.push_opt_u64(m["max_targets"]).push_opt_u64(m["rate_pps"])
    f.push_u64(m["probes_per_target"]).push_u64(m["rto_ticks"])
    f.push_u64(m["max_retry_backlog"])
    f.push_u64(1 if m["adaptive"] else 0)
    f.push_u64(1 if m["record_silent"] else 0)
    f.push_u64(len(m["ranges"]))
    for r in m["ranges"]:
        f.push_str(r)
    f.push_u64(m["blocklist_fp"])
    return f.h


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("schema") != SCHEMA:
        fail(f"unexpected schema tag {doc.get('schema')!r}")
    if doc.get("kind") != "manifest":
        fail(f"unexpected kind {doc.get('kind')!r}")
    unknown = set(doc) - KNOWN_KEYS
    if unknown:
        fail(f"unknown keys {sorted(unknown)}")
    missing = KNOWN_KEYS - set(doc)
    if missing:
        fail(f"missing keys {sorted(missing)}")

    m = {
        "workers": req_u64(doc, "workers"),
        "seed": req_u64(doc, "seed"),
        "world_seed": req_u64(doc, "world_seed"),
        "shard": req_u64(doc, "shard"),
        "shards": req_u64(doc, "shards"),
        "permutation": req_str(doc, "permutation"),
        "module": req_str(doc, "module"),
        "max_targets": opt_u64(doc, "max_targets"),
        "rate_pps": opt_u64(doc, "rate_pps"),
        "probes_per_target": req_u64(doc, "probes_per_target"),
        "rto_ticks": req_u64(doc, "rto_ticks"),
        "max_retry_backlog": req_u64(doc, "max_retry_backlog"),
        "adaptive": req_bool(doc, "adaptive"),
        "record_silent": req_bool(doc, "record_silent"),
        "blocklist_fp": req_fp(doc, "blocklist_fp"),
    }
    req_u64(doc, "every")  # cadence: informational, not identity
    if m["workers"] < 1:
        fail("'workers' must be >= 1")
    if m["shards"] < 1:
        fail("'shards' must be >= 1")
    if m["shard"] >= m["shards"]:
        fail(f"'shard' {m['shard']} must be < 'shards' {m['shards']}")
    if m["permutation"] not in PERMUTATIONS:
        fail(f"'permutation' {m['permutation']!r} not one of {PERMUTATIONS}")
    if m["probes_per_target"] < 1:
        fail("'probes_per_target' must be >= 1")
    ranges = doc.get("ranges")
    if not isinstance(ranges, list) or not ranges:
        fail("'ranges' must be a non-empty array")
    for r in ranges:
        if not isinstance(r, str) or "/" not in r:
            fail(f"range {r!r} must be a 'prefix/len' string")
    m["ranges"] = ranges

    stored = req_fp(doc, "fingerprint")
    computed = recompute_fingerprint(m)
    if stored != computed:
        fail(
            f"stored fingerprint {stored:#018x} != recomputed {computed:#018x} "
            f"(manifest fields were edited after the session started)"
        )
    print(
        f"{path}: ok ({m['workers']} workers, {len(ranges)} ranges, "
        f"fingerprint {stored:#018x})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
