#!/usr/bin/env python3
"""Summarize the parallel_scaling bench report as JSON.

Usage: bench_parallel_summary.py BENCH_OUTPUT.txt [SUMMARY.json]

Parses the harness's flat report lines, e.g.

    parallel_scaling/end_to_end_10k/4: 10703096.8 ns/iter  (0.934 Melem/s)

into a machine-readable summary keyed by worker count, with the speedup
of each config relative to the 1-worker baseline. Writes to SUMMARY.json
(default BENCH_parallel.json next to the input) and echoes the document
to stdout so CI logs carry the numbers. Exits nonzero if no
parallel_scaling lines are found or the 1-worker baseline is missing.
Standard library only.
"""

import json
import os
import re
import sys

LINE = re.compile(
    r"^parallel_scaling/(?P<bench>[\w-]+)/(?P<workers>\d+):\s+"
    r"(?P<ns>[0-9.]+) ns/iter(?:\s+\((?P<melems>[0-9.]+) Melem/s\))?"
)


def fail(msg):
    print(f"bench_parallel_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def parse(path):
    configs = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            workers = int(m.group("workers"))
            configs[workers] = {
                "bench": m.group("bench"),
                "workers": workers,
                "ns_per_iter": float(m.group("ns")),
                "melems_per_sec": float(m.group("melems")) if m.group("melems") else None,
            }
    return configs


def main():
    if len(sys.argv) < 2:
        fail("usage: bench_parallel_summary.py BENCH_OUTPUT.txt [SUMMARY.json]")
    src = sys.argv[1]
    out = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(src) or ".", "BENCH_parallel.json")
    )
    configs = parse(src)
    if not configs:
        fail(f"no parallel_scaling result lines in {src}")
    if 1 not in configs:
        fail("1-worker baseline missing; cannot compute speedups")
    base_ns = configs[1]["ns_per_iter"]
    for cfg in configs.values():
        cfg["speedup_vs_1_worker"] = round(base_ns / cfg["ns_per_iter"], 3)
    doc = {
        "schema": "xmap-bench-parallel/v1",
        "cpus": os.cpu_count(),
        "configs": [configs[w] for w in sorted(configs)],
    }
    if doc["cpus"] == 1:
        # Make the hardware caveat impossible to miss, in both the JSON
        # document and the CI log.
        doc["warning"] = (
            "single-CPU host: workers are time-sliced, so speedup_vs_1_worker "
            "measures scheduling overhead, not parallelism"
        )
        print(
            "bench_parallel_summary: WARNING: single-CPU host — "
            "multi-worker speedups are not meaningful",
            file=sys.stderr,
        )
    rendered = json.dumps(doc, indent=2) + "\n"
    with open(out, "w", encoding="utf-8") as f:
        f.write(rendered)
    print(rendered, end="")


if __name__ == "__main__":
    main()
