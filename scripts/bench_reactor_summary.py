#!/usr/bin/env python3
"""Summarize the reactor_overhead bench report as JSON and enforce the
reactor engine's overhead budget.

Usage: bench_reactor_summary.py BENCH_OUTPUT.txt [SUMMARY.json]

Parses the harness's flat report lines, e.g.

    reactor_overhead/scan_4k/lockstep: 5191259.6 ns/iter  (0.789 Melem/s)
    reactor_overhead/scan_4k/reactor:  5266031.1 ns/iter  (0.778 Melem/s)

pairs each workload's lock-step baseline with its reactor run, computes
the relative overhead, and fails (exit nonzero) if any workload's
reactor overhead exceeds the budget (5%). The input may contain the
concatenated output of several bench invocations; each (workload,
engine) keeps its *minimum* ns/iter across runs — the robust estimator
on a time-sliced host, where the min converges on true cost while the
mean absorbs scheduler noise. Writes the summary to SUMMARY.json
(default BENCH_reactor.json next to the input) and echoes it to stdout
so CI logs carry the numbers. On a single-CPU host the budget still
applies (both engines are single-threaded) but a warning row records
the hardware caveat. Standard library only.
"""

import json
import os
import re
import sys

LINE = re.compile(
    r"^reactor_overhead/(?P<case>[\w-]+)/(?P<engine>lockstep|reactor):\s+"
    r"(?P<ns>[0-9.]+) ns/iter(?:\s+\((?P<melems>[0-9.]+) Melem/s\))?"
)

OVERHEAD_BUDGET_PCT = 5.0


def fail(msg):
    print(f"bench_reactor_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def parse(path):
    cases = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            case = cases.setdefault(m.group("case"), {})
            prev = case.get(m.group("engine"))
            ns = float(m.group("ns"))
            runs = (prev["runs"] + 1) if prev else 1
            if prev and prev["ns_per_iter"] <= ns:
                prev["runs"] = runs
                continue
            case[m.group("engine")] = {
                "ns_per_iter": ns,
                "melems_per_sec": float(m.group("melems")) if m.group("melems") else None,
                "runs": runs,
            }
    return cases


def main():
    if len(sys.argv) < 2:
        fail("usage: bench_reactor_summary.py BENCH_OUTPUT.txt [SUMMARY.json]")
    src = sys.argv[1]
    out = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(src) or ".", "BENCH_reactor.json")
    )
    cases = parse(src)
    if not cases:
        fail(f"no reactor_overhead result lines in {src}")

    rows = []
    over_budget = []
    for name in sorted(cases):
        pair = cases[name]
        if "lockstep" not in pair or "reactor" not in pair:
            fail(f"workload {name}: need both lockstep and reactor runs")
        base = pair["lockstep"]["ns_per_iter"]
        reactor = pair["reactor"]["ns_per_iter"]
        overhead_pct = round((reactor - base) / base * 100.0, 2)
        rows.append(
            {
                "workload": name,
                "lockstep_ns_per_iter": base,
                "reactor_ns_per_iter": reactor,
                "overhead_pct": overhead_pct,
                "runs": max(pair["lockstep"]["runs"], pair["reactor"]["runs"]),
            }
        )
        if overhead_pct > OVERHEAD_BUDGET_PCT:
            over_budget.append((name, overhead_pct))

    doc = {
        "schema": "xmap-bench-reactor/v1",
        "cpus": os.cpu_count(),
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "workloads": rows,
    }
    if doc["cpus"] == 1:
        doc["warning"] = (
            "single-CPU host: both engines are single-threaded so the "
            "comparison is still valid, but absolute ns/iter reflects a "
            "time-sliced machine"
        )
        print(f"bench_reactor_summary: WARNING: {doc['warning']}", file=sys.stderr)

    with open(out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(json.dumps(doc, indent=2))

    if over_budget:
        detail = ", ".join(f"{n}: {p}%" for n, p in over_budget)
        fail(
            f"reactor overhead budget ({OVERHEAD_BUDGET_PCT}%) exceeded: {detail}"
        )


if __name__ == "__main__":
    main()
