//! Property test: checkpoint save → load is identity for arbitrary
//! scanner states (satellite requirement).
//!
//! States are built from a seeded splitmix generator driven by proptest
//! seeds, which covers the full structural space (every cursor variant,
//! empty/non-empty collections, extreme integers) while keeping the
//! generator shim-compatible.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use xmap_addr::{Prefix, PrefixTree};
use xmap_state::checkpoint::{
    decode_run_state, decode_snapshot, decode_sub_shards, decode_tree, encode_run_state,
    encode_snapshot, encode_sub_shards, encode_tree, SubShardEntry,
};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{
    AdaptiveState, CursorState, OutstandingEntry, RetryEntryState, RunState, WorkerCheckpoint,
};
use xmap_telemetry::{HistogramSnapshot, Snapshot};

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // splitmix64: full-period, seed-friendly.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn extreme_u64(&mut self) -> u64 {
        // Bias toward boundary values where encoding bugs live.
        match self.below(4) {
            0 => 0,
            1 => u64::MAX,
            2 => self.below(256),
            _ => self.next(),
        }
    }

    fn u128(&mut self) -> u128 {
        ((self.next() as u128) << 64) | self.next() as u128
    }

    fn prefix(&mut self) -> Prefix {
        let len = self.below(129) as u8;
        Prefix::new(self.u128().into(), len)
    }

    fn prefixes(&mut self, max: u64) -> Vec<Prefix> {
        (0..self.below(max)).map(|_| self.prefix()).collect()
    }
}

fn arbitrary_run_state(g: &mut Gen) -> RunState {
    let cursor = match g.below(3) {
        0 => CursorState::Cyclic {
            current: g.u128(),
            remaining_walk: g.u128(),
        },
        1 => CursorState::Feistel {
            next_pos: g.extreme_u64(),
        },
        _ => CursorState::Sequential {
            next_pos: g.extreme_u64(),
        },
    };
    let adaptive = if g.below(2) == 0 {
        None
    } else {
        Some(AdaptiveState {
            current_pps: g.extreme_u64(),
            sent: g.extreme_u64(),
            valid: g.extreme_u64(),
            baseline_bits: if g.below(2) == 0 {
                None
            } else {
                Some(g.next())
            },
        })
    };
    RunState {
        now: g.extreme_u64(),
        run_start_tick: g.extreme_u64(),
        run_wal_start: g.extreme_u64(),
        cursor,
        remaining: g.extreme_u64(),
        pending_indices: (0..g.below(10)).map(|_| g.extreme_u64()).collect(),
        outstanding: (0..g.below(8))
            .map(|_| OutstandingEntry {
                dst: g.u128(),
                target: g.prefix(),
                attempt: g.below(8) as u32,
                answered: g.below(2) == 1,
                sent_tick: g.extreme_u64(),
            })
            .collect(),
        retries: (0..g.below(8))
            .map(|_| RetryEntryState {
                due_tick: g.extreme_u64(),
                seq: g.extreme_u64(),
                target: g.prefix(),
                attempt: g.below(8) as u32,
                prev_dst: g.u128(),
            })
            .collect(),
        retry_seq: g.extreme_u64(),
        answered: g.prefixes(8),
        probed: g.prefixes(16),
        adaptive,
        baseline: std::array::from_fn(|_| g.extreme_u64()),
    }
}

fn arbitrary_snapshot(g: &mut Gen) -> Snapshot {
    let mut snap = Snapshot::default();
    for i in 0..g.below(6) {
        snap.counters
            .insert(format!("scan.c{i}.\"x\"\n"), g.extreme_u64());
    }
    for i in 0..g.below(4) {
        snap.gauges.insert(format!("g{i}"), g.extreme_u64());
    }
    for i in 0..g.below(3) {
        let bounds: Vec<u64> = (0..g.below(6)).map(|b| b * 7).collect();
        let counts: Vec<u64> = (0..bounds.len() as u64 + 1)
            .map(|_| g.extreme_u64())
            .collect();
        snap.histograms.insert(
            format!("h{i}"),
            HistogramSnapshot {
                bounds,
                counts,
                count: g.extreme_u64(),
                sum: g.extreme_u64(),
            },
        );
    }
    snap
}

fn temp_ckpt() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xmap-ckpt-prop-{}-{n}.ckpt", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Section-level round trip: encode → decode is identity.
    #[test]
    fn run_state_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let run = arbitrary_run_state(&mut g);
        let decoded = decode_run_state(&encode_run_state(&run)).unwrap();
        prop_assert_eq!(decoded, run);
    }

    #[test]
    fn snapshot_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let snap = arbitrary_snapshot(&mut g);
        let decoded = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    /// Full-file round trip: save → load through the on-disk format is
    /// identity, including the run-absent (range-complete) shape.
    #[test]
    fn worker_checkpoint_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let ckpt = WorkerCheckpoint {
            worker: g.below(64) as u32,
            range_index: g.below(1024) as u32,
            tick: g.extreme_u64(),
            wal_seq: g.extreme_u64(),
            config_fp: g.next(),
            metrics: arbitrary_snapshot(&mut g),
            run: if g.below(4) == 0 { None } else { Some(arbitrary_run_state(&mut g)) },
        };
        let path = temp_ckpt();
        ckpt.write_to(&path).unwrap();
        let loaded = WorkerCheckpoint::read_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded, ckpt);
    }

    /// Prefix-tree snapshot round trip: an arbitrary split/prune/record
    /// history encodes and decodes to the identical tree (the adaptive
    /// engine's mid-round resume depends on this being exact, statistics
    /// and cursors included).
    #[test]
    fn prefix_tree_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let root = Prefix::new((0x2405_0200u128 << 96).into(), 48);
        let leaf_len = 48 + 4 + g.below(13) as u8; // 52..=64
        let branch = 1 + g.below(8) as u8;
        let mut tree = PrefixTree::new(root, leaf_len, branch);
        for _ in 0..g.below(48) {
            let frontier = tree.frontier();
            if frontier.is_empty() {
                break;
            }
            let idx = frontier[g.below(frontier.len() as u64) as usize];
            match g.below(4) {
                0 => {
                    let probes = g.below(1 << 20);
                    tree.record(idx, probes, g.below(probes + 1));
                }
                1 => {
                    let _ = tree.prune(idx);
                }
                2 => {
                    let _ = tree.split(idx);
                }
                _ => tree.exhaust(idx),
            }
        }
        let mut e = Encoder::new();
        encode_tree(&mut e, &tree);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes, "tree property");
        let decoded = decode_tree(&mut d).unwrap();
        prop_assert_eq!(decoded, tree);
    }

    /// Sub-shard manifest round trip: arbitrary unit layouts (extreme
    /// offsets/strides/caps, started flags) encode and decode exactly —
    /// the split-block resume plan depends on this.
    #[test]
    fn sub_shard_manifest_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let entries: Vec<SubShardEntry> = (0..g.below(24))
            .map(|_| SubShardEntry {
                offset: g.extreme_u64(),
                stride: g.extreme_u64(),
                cap: g.extreme_u64(),
                started: g.below(2) == 1,
            })
            .collect();
        let bytes = encode_sub_shards(&entries);
        prop_assert_eq!(decode_sub_shards(&bytes).unwrap(), entries);
    }
}

/// A truncated or trailing-garbage manifest must surface as a decode
/// error, never as a silently shortened plan.
#[test]
fn sub_shard_manifest_rejects_torn_bytes() {
    let entries = vec![
        SubShardEntry {
            offset: 3,
            stride: 2,
            cap: 1 << 20,
            started: true,
        },
        SubShardEntry {
            offset: 5,
            stride: 4,
            cap: 7,
            started: false,
        },
    ];
    let bytes = encode_sub_shards(&entries);
    assert!(decode_sub_shards(&bytes[..bytes.len() - 1]).is_err());
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_sub_shards(&padded).is_err());
}
