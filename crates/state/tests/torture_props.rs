//! Failpoint-driven property tests for the storage layer.
//!
//! Three invariants, each swept over proptest-seeded inputs:
//!
//! 1. A journal torn by an injected process death at an arbitrary frame
//!    write (with an arbitrary number of surviving bytes) recovers
//!    exactly the intact prefix, and deterministic re-emission of the
//!    lost records reproduces the fault-free journal byte for byte.
//! 2. Checkpoint publication is atomic under injected faults: a kill
//!    during the temp-file write leaves the previously published
//!    checkpoint readable and bit-exact.
//! 3. The manifest mismatch path: any identity-field mutation changes
//!    the fingerprint and produces a non-empty field diff (a resume
//!    refusal); mutating the non-identity cadence field does neither.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use xmap_failpoint::{FailPlan, FsAction, FsOp, FsRule};
use xmap_state::{Manifest, StateError, Wal, WorkerCheckpoint};
use xmap_telemetry::Snapshot;

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("xmap-tprop-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A frame-write kill plan: dies on the `nth` journal write, persisting
/// `keep` bytes of it, and fails everything after (including the
/// `BufWriter` drop-flush retry, which would otherwise "heal" the tear).
fn kill_write_plan(prefix: PathBuf, nth: u64, keep: u64) -> FailPlan {
    FailPlan {
        prefix,
        rules: vec![FsRule {
            op: FsOp::Write,
            suffix: None,
            nth,
            action: FsAction::Kill { keep },
        }],
        schedules: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WAL torn-tail recovery under injected partial writes.
    #[test]
    fn wal_recovers_intact_prefix_after_injected_kill(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let n = 2 + g.below(14);
        let payloads: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let len = 1 + g.below(40) as usize;
                (0..len).map(|j| (g.next() as u8) ^ (i as u8) ^ (j as u8)).collect()
            })
            .collect();

        // Fault-free reference journal (also gives the frame sizes).
        let dir = temp_dir("wal");
        let ref_path = dir.join("reference.wal");
        let mut wal = Wal::create(&ref_path).unwrap();
        for p in &payloads {
            wal.append(p).unwrap();
            // Flush per record so each frame is one write op — the kill
            // point below then addresses "die during frame k".
            wal.flush().unwrap();
        }
        drop(wal);
        let reference = std::fs::read(&ref_path).unwrap();

        // Die during frame `k`, keeping 0..frame_len bytes of it.
        let k = g.below(n);
        let frame_len = 8 + 4 + payloads[k as usize].len() as u64 + 4;
        let keep = g.below(frame_len);
        let torn_path = dir.join("torn.wal");
        let scope = kill_write_plan(dir.clone(), k, keep).arm();
        let mut wal = Wal::create(&torn_path).unwrap();
        let mut died = false;
        for p in &payloads {
            if wal.append(p).and_then(|_| wal.flush()).is_err() {
                died = true;
                break;
            }
        }
        prop_assert!(died, "the kill rule must fire");
        drop(wal); // drop-flush retry fails too: the scope is latched
        drop(scope);

        // Recovery keeps exactly the frames that were fully written.
        let rec = Wal::recover(&torn_path).unwrap();
        prop_assert_eq!(rec.entries.len() as u64, k, "kill at frame {} keep {}", k, keep);
        for (i, e) in rec.entries.iter().enumerate() {
            prop_assert_eq!(e, &payloads[i]);
        }

        // Truncate to the intact prefix and deterministically re-emit
        // the lost records: the journal must equal the reference.
        let (mut resumed, kept) = Wal::open_truncated(&torn_path, k).unwrap();
        prop_assert_eq!(kept.len() as u64, k);
        for p in &payloads[k as usize..] {
            resumed.append(p).unwrap();
        }
        resumed.flush().unwrap();
        drop(resumed);
        prop_assert_eq!(std::fs::read(&torn_path).unwrap(), reference);

        // Demanding more intact records than survived is a clean,
        // typed refusal — never a silent partial resume.
        let err = Wal::open_truncated(&torn_path, n + 1).unwrap_err();
        prop_assert!(matches!(err, StateError::Corrupt(_)), "{}", err);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Checkpoint publication stays atomic under an injected kill: the
    /// previously published file is untouched, bit for bit.
    #[test]
    fn checkpoint_publish_is_atomic_under_kill(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let ckpt = |worker: u32, tick: u64| WorkerCheckpoint {
            worker,
            range_index: 0,
            tick,
            wal_seq: 0,
            config_fp: 0xC0FF_EE00,
            metrics: Snapshot::default(),
            run: None,
        };
        let dir = temp_dir("atomic");
        let path = dir.join("worker-0.ckpt");
        ckpt(0, 1).write_to(&path).unwrap();
        let published = std::fs::read(&path).unwrap();

        // Kill on any op of the second publish (tmp create, tmp write,
        // tmp sync, or the rename), keeping an arbitrary prefix.
        let nth = g.below(4);
        let keep = g.below(64);
        let scope = FailPlan {
            prefix: dir.clone(),
            rules: vec![FsRule {
                op: FsOp::Any,
                suffix: None,
                nth,
                action: FsAction::Kill { keep },
            }],
            schedules: Vec::new(),
        }
        .arm();
        let result = ckpt(0, 2).write_to(&path);
        let fired = scope.killed();
        drop(scope);
        prop_assert!(fired, "kill at op {} never fired", nth);
        prop_assert!(result.is_err(), "a dead disk cannot publish");

        // The published checkpoint is exactly what it was before.
        prop_assert_eq!(std::fs::read(&path).unwrap(), published);
        let loaded = WorkerCheckpoint::read_from(&path).unwrap();
        prop_assert_eq!(loaded.tick, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Manifest fingerprint/diff mismatch path: every identity mutation
    /// is refused with a named field; the cadence field is exempt.
    #[test]
    fn manifest_identity_mutations_are_refused(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let manifest = Manifest {
            workers: 1 + g.below(8),
            seed: g.next(),
            world_seed: g.next(),
            shard: g.below(4),
            shards: 4,
            permutation: "cyclic".to_owned(),
            module: "icmp6_echo".to_owned(),
            max_targets: if g.below(2) == 0 { None } else { Some(g.below(1 << 20)) },
            rate_pps: None,
            probes_per_target: 1 + g.below(3),
            rto_ticks: 1 + g.below(64),
            max_retry_backlog: 1 + g.below(1024),
            adaptive: g.below(2) == 1,
            record_silent: g.below(2) == 1,
            ranges: vec!["2405:200::/32-64".to_owned()],
            blocklist_fp: g.next(),
            every: 1 + g.below(256),
        };

        // Round trip through the on-disk JSON is identity.
        let stored = Manifest::from_json(&manifest.to_json()).unwrap();
        prop_assert_eq!(&stored, &manifest);
        prop_assert!(manifest.diff(&stored).is_empty());
        prop_assert_eq!(stored.fingerprint(), manifest.fingerprint());

        // Mutate one identity field; the diff must name it and the
        // fingerprint must move.
        let mut mutated = manifest.clone();
        let field = match g.below(8) {
            0 => { mutated.workers += 1; "workers" }
            1 => { mutated.seed ^= 1; "seed" }
            2 => { mutated.world_seed ^= 1; "world_seed" }
            3 => { mutated.module = "udp/443".to_owned(); "module" }
            4 => { mutated.probes_per_target += 1; "probes_per_target" }
            5 => { mutated.blocklist_fp ^= 0xFF; "blocklist" }
            6 => { mutated.ranges.push("2601::/24-56".to_owned()); "ranges" }
            _ => { mutated.record_silent = !mutated.record_silent; "record_silent" }
        };
        let diffs = mutated.diff(&manifest);
        prop_assert!(!diffs.is_empty(), "mutating {} must be refused", field);
        prop_assert!(
            diffs.iter().any(|d| d.contains(field)),
            "diff must name `{}`: {:?}",
            field,
            diffs
        );
        prop_assert_ne!(mutated.fingerprint(), manifest.fingerprint());

        // The checkpoint cadence is explicitly not identity: changing
        // it on resume is allowed and fingerprint-invariant.
        let mut recadenced = manifest.clone();
        recadenced.every += 1;
        prop_assert!(recadenced.diff(&manifest).is_empty());
        prop_assert_eq!(recadenced.fingerprint(), manifest.fingerprint());
    }
}
