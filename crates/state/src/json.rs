//! A deliberately tiny JSON reader for `xmap-checkpoint/v1` headers and
//! manifests.
//!
//! The workspace has no serde (the build environment is offline), and the
//! only JSON this crate must *read* is JSON it wrote itself: ordered
//! objects, ASCII keys, integers, and plain strings. The parser still
//! accepts arbitrary well-formed JSON so hand-edited manifests fail with
//! a clear `Corrupt` error rather than a panic.

use crate::error::StateError;

/// A parsed JSON value. Integers that fit a `u64` are kept exact (seeds
/// and tick counters exceed 2^53, so `f64` storage would corrupt them).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits in a `u64`, kept exact.
    U64(u64),
    /// Any other number (negative, fractional, or exponent form).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required `u64` field of an object, with a descriptive error.
    pub fn req_u64(&self, key: &str, what: &str) -> Result<u64, StateError> {
        self.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| StateError::Corrupt(format!("{what}: missing integer field `{key}`")))
    }

    /// Required string field of an object, with a descriptive error.
    pub fn req_str(&self, key: &str, what: &str) -> Result<String, StateError> {
        self.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| StateError::Corrupt(format!("{what}: missing string field `{key}`")))
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str, what: &str) -> Result<Value, StateError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        what,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> StateError {
        StateError::Corrupt(format!("{}: {} at byte {}", self.what, msg, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), StateError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, StateError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, StateError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, StateError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, StateError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, StateError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.bytes.len() - self.pos < 4 {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our own output;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, StateError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends a JSON string literal (mirrors the telemetry crate's escaping
/// rules so headers written here and snapshots written there agree).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ordered_object_with_big_ints() {
        let v = parse(
            r#"{"schema":"xmap-checkpoint/v1","seed":18446744073709551615,"ranges":["a","b"],"ok":true,"f":1.5}"#,
            "test",
        )
        .unwrap();
        assert_eq!(v.req_str("schema", "test").unwrap(), "xmap-checkpoint/v1");
        assert_eq!(v.req_u64("seed", "test").unwrap(), u64::MAX);
        assert_eq!(v.get("ranges").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("f"), Some(&Value::F64(1.5)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{", "t").is_err());
        assert!(parse("{}extra", "t").is_err());
        assert!(parse(r#"{"a""#, "t").is_err());
        assert!(parse("[1,]", "t").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        let v = parse(&out, "t").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }
}
