//! # xmap-state
//!
//! Durable checkpoint/resume state for interruptible scan campaigns.
//!
//! Whole-address-space campaigns — the ICMPv6 periphery sweeps and
//! routing-loop surveys the paper runs over BGP-announced space — are
//! multi-day jobs that die mid-run: operator aborts, rate-limit pauses,
//! machine failures. ZMap-lineage scanners only offer coarse sharding;
//! a killed shard restarts from scratch. This crate provides the missing
//! layer: a versioned checkpoint format (`xmap-checkpoint/v1`) plus a
//! write-ahead record journal such that a scan killed at probe *k* and
//! resumed finishes with output byte-identical to an uninterrupted run.
//!
//! The crate is deliberately domain-light — it knows about prefixes,
//! telemetry snapshots, bytes, and files, but not about scanners. The
//! `xmap` core crate layers its capture/restore logic on top, and the
//! netsim crate consumes [`AbortSignal`] for deterministic kill-points.
//!
//! ## Pieces
//!
//! - [`checkpoint`]: the sectioned file format (ordered JSON header +
//!   CRC-protected binary sections) and the mid-range scanner state it
//!   carries ([`RunState`], [`WorkerCheckpoint`]).
//! - [`wal`]: the append-only record journal with torn-tail recovery.
//! - [`manifest`]: the per-session configuration manifest whose
//!   fingerprint binds checkpoints to the exact scan they belong to.
//! - [`codec`]: the little-endian codec, CRC-32, and FNV-1a fingerprints.
//! - [`json`]: a tiny JSON reader for headers and manifests (the build
//!   environment has no serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod json;
pub mod manifest;
pub mod wal;

pub use checkpoint::{
    AdaptiveState, CursorState, OutstandingEntry, RetryEntryState, RunState, SubShardEntry,
    WorkerCheckpoint, CHECKPOINT_SCHEMA,
};
pub use codec::Fingerprint;
pub use error::StateError;
pub use manifest::Manifest;
pub use wal::Wal;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cheaply clonable abort flag shared between a scan driver, its
/// workers, and (in tests) the simulated network's kill-points.
///
/// Setting it requests a cooperative stop: scanners finish the current
/// slot, leave the last durable checkpoint in place, and return with
/// their results marked interrupted. It is intentionally one-way — there
/// is no reset — so a signal observed anywhere means the whole session
/// is winding down.
#[derive(Debug, Clone, Default)]
pub struct AbortSignal(Arc<AtomicBool>);

impl AbortSignal {
    /// Creates a new, unset signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the stop. Idempotent.
    pub fn set(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether a stop has been requested.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_signal_is_shared() {
        let a = AbortSignal::new();
        let b = a.clone();
        assert!(!b.is_set());
        a.set();
        assert!(b.is_set());
        a.set();
        assert!(a.is_set());
    }
}
