//! Write-ahead record journal.
//!
//! Every result record a scanner emits is appended here *before* the next
//! checkpoint is taken, so a resumed run can (a) replay records from
//! ranges that already completed without re-scanning them and (b) discard
//! a torn tail — the partial entry a kill left behind mid-write — and
//! deterministically re-emit it by re-executing from the checkpoint.
//!
//! On-disk entry layout (all little-endian):
//!
//! ```text
//! [seq: u64][len: u32][payload: len bytes][crc32: u32]
//! ```
//!
//! `seq` is the zero-based entry index and must be contiguous; `crc32`
//! covers the seq, len, and payload bytes. Recovery scans forward and
//! stops at the first entry that is truncated, CRC-corrupt, or breaks the
//! sequence — everything before it is intact, everything after is the
//! torn tail.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use xmap_failpoint::fs::FpFile;

use crate::codec::crc32;
use crate::error::StateError;

const HEADER_LEN: usize = 8 + 4;
const TRAILER_LEN: usize = 4;

/// An open journal positioned for appending. All writes route through
/// the failpoint filesystem wrapper, so tests can inject `EIO`/`ENOSPC`,
/// short writes, and kill-points at any journal operation.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<FpFile>,
    path: PathBuf,
    next_seq: u64,
}

/// The result of scanning a journal file: the intact entries and the byte
/// length of the intact prefix (everything past it is a torn tail).
#[derive(Debug)]
pub struct Recovered {
    /// Payloads of intact entries, in sequence order (entry `i` has seq `i`).
    pub entries: Vec<Vec<u8>>,
    /// Byte offset one past the last intact entry.
    pub valid_len: u64,
}

impl Wal {
    /// Creates (or truncates) a journal at `path`.
    pub fn create(path: &Path) -> Result<Wal, StateError> {
        let file = FpFile::create(path)
            .map_err(|e| StateError::io(format!("create journal {}", path.display()), e))?;
        Ok(Wal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            next_seq: 0,
        })
    }

    /// Scans the journal at `path`, returning every intact entry. A
    /// missing file recovers as empty. Torn or corrupt tails are reported
    /// in `valid_len` but do not error — that is the normal state after a
    /// kill.
    pub fn recover(path: &Path) -> Result<Recovered, StateError> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)
                    .map_err(|e| StateError::io(format!("read journal {}", path.display()), e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(StateError::io(
                    format!("open journal {}", path.display()),
                    e,
                ))
            }
        }
        let mut entries = Vec::new();
        let mut pos = 0usize;
        loop {
            let remaining = raw.len() - pos;
            if remaining < HEADER_LEN {
                break;
            }
            let seq = u64::from_le_bytes(raw[pos..pos + 8].try_into().unwrap());
            let len = u32::from_le_bytes(raw[pos + 8..pos + 12].try_into().unwrap()) as usize;
            if seq != entries.len() as u64 {
                break;
            }
            let total = HEADER_LEN + len + TRAILER_LEN;
            if remaining < total {
                break;
            }
            let body_end = pos + HEADER_LEN + len;
            let stored = u32::from_le_bytes(raw[body_end..body_end + 4].try_into().unwrap());
            if crc32(&raw[pos..body_end]) != stored {
                break;
            }
            entries.push(raw[pos + HEADER_LEN..body_end].to_vec());
            pos += total;
        }
        Ok(Recovered {
            entries,
            valid_len: pos as u64,
        })
    }

    /// Recovers the journal, verifies it holds at least `keep` intact
    /// entries, truncates it to exactly `keep` entries (dropping both the
    /// torn tail and any entries a checkpoint never covered), and returns
    /// the journal positioned to append entry `keep` plus the kept
    /// payloads.
    ///
    /// `keep` is the `wal_seq` recorded in the checkpoint being resumed:
    /// entries past it were emitted after the checkpoint and will be
    /// re-emitted identically by deterministic re-execution.
    pub fn open_truncated(path: &Path, keep: u64) -> Result<(Wal, Vec<Vec<u8>>), StateError> {
        let mut rec = Self::recover(path)?;
        if (rec.entries.len() as u64) < keep {
            return Err(StateError::Corrupt(format!(
                "journal {} holds {} intact records but the checkpoint requires {keep}; \
                 the journal was damaged beyond its torn tail",
                path.display(),
                rec.entries.len()
            )));
        }
        let keep_bytes: u64 = rec
            .entries
            .iter()
            .take(keep as usize)
            .map(|p| (HEADER_LEN + p.len() + TRAILER_LEN) as u64)
            .sum();
        rec.entries.truncate(keep as usize);
        let mut file = FpFile::open_rw(path)
            .map_err(|e| StateError::io(format!("open journal {}", path.display()), e))?;
        file.set_len(keep_bytes)
            .map_err(|e| StateError::io(format!("truncate journal {}", path.display()), e))?;
        file.seek_end()
            .map_err(|e| StateError::io(format!("seek journal {}", path.display()), e))?;
        let writer = BufWriter::new(file);
        Ok((
            Wal {
                writer,
                path: path.to_path_buf(),
                next_seq: keep,
            },
            rec.entries,
        ))
    }

    /// Appends one record, returning its sequence number. Buffered; call
    /// [`Wal::flush`] before taking a checkpoint that references the seq.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StateError> {
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        self.writer
            .write_all(&frame)
            .map_err(|e| StateError::io(format!("append journal {}", self.path.display()), e))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Flushes buffered entries to the operating system.
    pub fn flush(&mut self) -> Result<(), StateError> {
        self.writer
            .flush()
            .map_err(|e| StateError::io(format!("flush journal {}", self.path.display()), e))
    }

    /// The sequence number the next [`Wal::append`] will use — i.e. the
    /// count of records journalled so far.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The journal's path (used by degraded-mode sinks that drop the
    /// writer after an I/O failure and reopen it on retry).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xmap-wal-{}-{tag}-{n}.wal", std::process::id()))
    }

    fn payload(i: u64) -> Vec<u8> {
        // Variable-length payloads exercise offset arithmetic.
        let mut p = vec![0u8; 5 + (i as usize % 7)];
        p[0] = i as u8;
        for (j, b) in p.iter_mut().enumerate().skip(1) {
            *b = (i as usize * 31 + j) as u8;
        }
        p
    }

    #[test]
    fn roundtrip_and_recover() {
        let path = temp_path("rt");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..10 {
            assert_eq!(wal.append(&payload(i)).unwrap(), i);
        }
        wal.flush().unwrap();
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.entries.len(), 10);
        for (i, e) in rec.entries.iter().enumerate() {
            assert_eq!(e, &payload(i as u64));
        }
        assert_eq!(rec.valid_len, fs::metadata(&path).unwrap().len());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_recovers_empty() {
        let rec = Wal::recover(&temp_path("missing")).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(rec.valid_len, 0);
    }

    /// The satellite requirement: truncate the journal at *every* byte
    /// offset of the last record. Recovery must keep exactly the intact
    /// prefix, and re-appending the lost record must reproduce the
    /// original file byte for byte.
    #[test]
    fn torn_tail_at_every_byte_offset() {
        let path = temp_path("torn");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..4 {
            wal.append(&payload(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();
        let last = payload(3);
        let last_frame = HEADER_LEN + last.len() + TRAILER_LEN;
        let intact_len = full.len() - last_frame;

        for cut in intact_len..full.len() {
            let torn = temp_path("torn-cut");
            fs::write(&torn, &full[..cut]).unwrap();

            let rec = Wal::recover(&torn).unwrap();
            assert_eq!(rec.entries.len(), 3, "cut at byte {cut}");
            assert_eq!(rec.valid_len, intact_len as u64, "cut at byte {cut}");

            // Resume path: truncate to the checkpointed count, re-emit.
            let (mut resumed, kept) = Wal::open_truncated(&torn, 3).unwrap();
            assert_eq!(kept.len(), 3);
            assert_eq!(resumed.next_seq(), 3);
            resumed.append(&last).unwrap();
            resumed.flush().unwrap();
            drop(resumed);
            assert_eq!(fs::read(&torn).unwrap(), full, "cut at byte {cut}");
            fs::remove_file(&torn).unwrap();
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_recovery() {
        let path = temp_path("crc");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..3 {
            wal.append(&payload(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of entry 1.
        let entry0 = HEADER_LEN + payload(0).len() + TRAILER_LEN;
        bytes[entry0 + HEADER_LEN] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.entries.len(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_truncated_rejects_short_journal() {
        let path = temp_path("short");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&payload(0)).unwrap();
        wal.flush().unwrap();
        drop(wal);
        let err = Wal::open_truncated(&path, 5).unwrap_err();
        assert!(matches!(err, StateError::Corrupt(_)));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_truncated_drops_entries_past_checkpoint() {
        let path = temp_path("past");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..6 {
            wal.append(&payload(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let (wal2, kept) = Wal::open_truncated(&path, 2).unwrap();
        assert_eq!(kept.len(), 2);
        assert_eq!(wal2.next_seq(), 2);
        drop(wal2);
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.entries.len(), 2);
        fs::remove_file(&path).unwrap();
    }
}
