//! Minimal little-endian binary codec plus the two hashes the subsystem
//! needs: CRC-32 (IEEE) for on-disk integrity and FNV-1a 64 for
//! configuration fingerprints.
//!
//! Checkpoint sections and WAL payloads are small and written rarely, so
//! the codec favours obviousness over speed: every value is encoded
//! little-endian at a byte granularity with explicit length prefixes.

use crate::error::StateError;

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends an `Option` as a presence tag followed by the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a sequence length (`u32`); the caller then encodes each item.
    pub fn seq(&mut self, len: usize) {
        self.u32(len as u32);
    }
}

/// Sequential decoder over a byte slice. All reads are bounds-checked and
/// return [`StateError::Corrupt`] on underflow.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder; `what` names the artifact for error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        if self.buf.len() - self.pos < n {
            return Err(StateError::Corrupt(format!(
                "{}: truncated at byte {} (wanted {n} more)",
                self.what, self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the input was fully consumed (guards against garbage
    /// trailing a well-formed prefix).
    pub fn expect_end(&self) -> Result<(), StateError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(StateError::Corrupt(format!(
                "{}: {} trailing bytes after decoded value",
                self.what,
                self.buf.len() - self.pos
            )))
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, StateError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, StateError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, StateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StateError::Corrupt(format!(
                "{}: invalid bool byte {b:#x}",
                self.what
            ))),
        }
    }

    /// Reads an `Option<u64>` written by [`Encoder::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, StateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            b => Err(StateError::Corrupt(format!(
                "{}: invalid option tag {b:#x}",
                self.what
            ))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StateError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StateError::Corrupt(format!("{}: invalid UTF-8 string", self.what)))
    }

    /// Reads raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self) -> Result<Vec<u8>, StateError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a sequence length written by [`Encoder::seq`], rejecting
    /// lengths that could not possibly fit in the remaining input (each
    /// item occupies at least one byte).
    pub fn seq(&mut self) -> Result<usize, StateError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(StateError::Corrupt(format!(
                "{}: sequence length {n} exceeds remaining {} bytes",
                self.what,
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Table-free bitwise implementation: integrity checks run on kilobyte
/// sections at checkpoint cadence, never on the probe hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher used for configuration fingerprints.
///
/// Fingerprints only need to be stable across runs of the same build and
/// sensitive to any field change; FNV-1a is tiny and dependency-free.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprint(FNV_OFFSET)
    }

    /// Folds raw bytes into the fingerprint.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a string (length-delimited so `ab`+`c` != `a`+`bc`).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    /// Folds a `u64`.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// Folds a `u128`.
    pub fn push_u128(&mut self, v: u128) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fingerprint_is_length_delimited() {
        let mut a = Fingerprint::new();
        a.push_str("ab").push_str("c");
        let mut b = Fingerprint::new();
        b.push_str("a").push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn roundtrip_primitives() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.u128(u128::MAX / 3);
        e.f64_bits(-0.125);
        e.bool(true);
        e.opt_u64(None);
        e.opt_u64(Some(42));
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf, "test");
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.u128().unwrap(), u128::MAX / 3);
        assert_eq!(d.f64_bits().unwrap(), -0.125);
        assert!(d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.opt_u64().unwrap(), Some(42));
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        d.expect_end().unwrap();
    }

    #[test]
    fn decoder_rejects_truncation_and_trailing() {
        let mut e = Encoder::new();
        e.u64(1);
        let buf = e.finish();
        let mut d = Decoder::new(&buf[..7], "test");
        assert!(d.u64().is_err());
        let mut d = Decoder::new(&buf, "test");
        d.u32().unwrap();
        assert!(d.expect_end().is_err());
    }
}
