//! The session manifest: one ordered-JSON file per checkpoint directory
//! describing the configuration the session was started under.
//!
//! On `--resume`, the live configuration is rebuilt into a manifest and
//! diffed field-by-field against the stored one; any mismatch is a hard
//! [`StateError::Mismatch`] naming the offending fields, never a silent
//! continuation against the wrong targets (satellite bugfix). The
//! manifest fingerprint is also embedded in every worker checkpoint
//! header, binding checkpoints to their session.

use crate::codec::Fingerprint;
use crate::error::StateError;
use crate::json::{self, Value};

/// Manifest schema identifier.
pub const MANIFEST_SCHEMA: &str = "xmap-checkpoint/v1";

/// Scan-session identity: every knob that changes which probes a scan
/// sends or how results are interpreted. `every` (checkpoint cadence) is
/// deliberately *not* identity — resuming with a different cadence is
/// safe and allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Parallel worker count (changes shard interleaving).
    pub workers: u64,
    /// Scan seed (permutation + host-bit derivation).
    pub seed: u64,
    /// Simulated-world seed (netsim runs only; 0 for live scans).
    pub world_seed: u64,
    /// Outer shard index.
    pub shard: u64,
    /// Outer shard count.
    pub shards: u64,
    /// Permutation backend name (`cyclic` / `feistel` / `sequential`).
    pub permutation: String,
    /// Probe module name, including the port for transport modules
    /// (e.g. `icmp6_echo`, `udp/443`).
    pub module: String,
    /// Per-shard target cap, if any.
    pub max_targets: Option<u64>,
    /// Rate limit in probes/sec, if any.
    pub rate_pps: Option<u64>,
    /// Transmission attempts per target.
    pub probes_per_target: u64,
    /// Retransmission timeout in ticks.
    pub rto_ticks: u64,
    /// Retry-queue bound.
    pub max_retry_backlog: u64,
    /// Whether the AIMD rate controller is active.
    pub adaptive: bool,
    /// Whether silent targets are recorded.
    pub record_silent: bool,
    /// Target ranges, in scan order, as `prefix/len` strings.
    pub ranges: Vec<String>,
    /// Fingerprint of the blocklist trie.
    pub blocklist_fp: u64,
    /// Checkpoint cadence in slots (informational, not identity).
    pub every: u64,
}

impl Manifest {
    /// FNV-1a fingerprint over every identity field (not `every`).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.push_str(MANIFEST_SCHEMA)
            .push_u64(self.workers)
            .push_u64(self.seed)
            .push_u64(self.world_seed)
            .push_u64(self.shard)
            .push_u64(self.shards)
            .push_str(&self.permutation)
            .push_str(&self.module)
            .push_u64(self.max_targets.map_or(u64::MAX, |v| v))
            .push_u64(self.max_targets.is_some() as u64)
            .push_u64(self.rate_pps.map_or(u64::MAX, |v| v))
            .push_u64(self.rate_pps.is_some() as u64)
            .push_u64(self.probes_per_target)
            .push_u64(self.rto_ticks)
            .push_u64(self.max_retry_backlog)
            .push_u64(self.adaptive as u64)
            .push_u64(self.record_silent as u64)
            .push_u64(self.ranges.len() as u64);
        for r in &self.ranges {
            fp.push_str(r);
        }
        fp.push_u64(self.blocklist_fp);
        fp.finish()
    }

    /// Field-by-field comparison; returns one human-readable line per
    /// mismatched identity field (empty when resumable).
    pub fn diff(&self, stored: &Manifest) -> Vec<String> {
        fn fmt_opt(v: Option<u64>) -> String {
            v.map_or_else(|| "none".into(), |x| x.to_string())
        }
        let mut out = Vec::new();
        let mut field = |name: &str, live: String, old: String| {
            if live != old {
                out.push(format!(
                    "{name}: checkpoint has {old}, current run has {live}"
                ));
            }
        };
        field(
            "workers",
            self.workers.to_string(),
            stored.workers.to_string(),
        );
        field("seed", self.seed.to_string(), stored.seed.to_string());
        field(
            "world_seed",
            self.world_seed.to_string(),
            stored.world_seed.to_string(),
        );
        field("shard", self.shard.to_string(), stored.shard.to_string());
        field("shards", self.shards.to_string(), stored.shards.to_string());
        field(
            "permutation",
            self.permutation.clone(),
            stored.permutation.clone(),
        );
        field("module", self.module.clone(), stored.module.clone());
        field(
            "max_targets",
            fmt_opt(self.max_targets),
            fmt_opt(stored.max_targets),
        );
        field("rate_pps", fmt_opt(self.rate_pps), fmt_opt(stored.rate_pps));
        field(
            "probes_per_target",
            self.probes_per_target.to_string(),
            stored.probes_per_target.to_string(),
        );
        field(
            "rto_ticks",
            self.rto_ticks.to_string(),
            stored.rto_ticks.to_string(),
        );
        field(
            "max_retry_backlog",
            self.max_retry_backlog.to_string(),
            stored.max_retry_backlog.to_string(),
        );
        field(
            "adaptive",
            self.adaptive.to_string(),
            stored.adaptive.to_string(),
        );
        field(
            "record_silent",
            self.record_silent.to_string(),
            stored.record_silent.to_string(),
        );
        field(
            "ranges",
            format!("[{}]", self.ranges.join(", ")),
            format!("[{}]", stored.ranges.join(", ")),
        );
        field(
            "blocklist",
            format!("{:#018x}", self.blocklist_fp),
            format!("{:#018x}", stored.blocklist_fp),
        );
        out
    }

    /// Serialises the manifest as ordered JSON (one field per line, so
    /// diffs and `scripts/check_checkpoint_schema.py` stay readable).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": ");
        json::push_json_string(&mut out, MANIFEST_SCHEMA);
        out.push_str(",\n  \"kind\": \"manifest\"");
        out.push_str(&format!(",\n  \"workers\": {}", self.workers));
        out.push_str(&format!(",\n  \"seed\": {}", self.seed));
        out.push_str(&format!(",\n  \"world_seed\": {}", self.world_seed));
        out.push_str(&format!(",\n  \"shard\": {}", self.shard));
        out.push_str(&format!(",\n  \"shards\": {}", self.shards));
        out.push_str(",\n  \"permutation\": ");
        json::push_json_string(&mut out, &self.permutation);
        out.push_str(",\n  \"module\": ");
        json::push_json_string(&mut out, &self.module);
        match self.max_targets {
            Some(v) => out.push_str(&format!(",\n  \"max_targets\": {v}")),
            None => out.push_str(",\n  \"max_targets\": null"),
        }
        match self.rate_pps {
            Some(v) => out.push_str(&format!(",\n  \"rate_pps\": {v}")),
            None => out.push_str(",\n  \"rate_pps\": null"),
        }
        out.push_str(&format!(
            ",\n  \"probes_per_target\": {}",
            self.probes_per_target
        ));
        out.push_str(&format!(",\n  \"rto_ticks\": {}", self.rto_ticks));
        out.push_str(&format!(
            ",\n  \"max_retry_backlog\": {}",
            self.max_retry_backlog
        ));
        out.push_str(&format!(",\n  \"adaptive\": {}", self.adaptive));
        out.push_str(&format!(",\n  \"record_silent\": {}", self.record_silent));
        out.push_str(",\n  \"ranges\": [");
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_json_string(&mut out, r);
        }
        out.push(']');
        out.push_str(&format!(
            ",\n  \"blocklist_fp\": \"{:#018x}\"",
            self.blocklist_fp
        ));
        out.push_str(&format!(",\n  \"every\": {}", self.every));
        out.push_str(&format!(
            ",\n  \"fingerprint\": \"{:#018x}\"",
            self.fingerprint()
        ));
        out.push_str("\n}\n");
        out
    }

    /// Parses a manifest previously written by [`Manifest::to_json`],
    /// verifying the schema and the self-fingerprint (a hand-edited
    /// manifest that no longer matches its fingerprint is rejected).
    pub fn from_json(text: &str) -> Result<Manifest, StateError> {
        let what = "session manifest";
        let v = json::parse(text, what)?;
        let schema = v.req_str("schema", what)?;
        if schema != MANIFEST_SCHEMA {
            return Err(StateError::Version(format!(
                "{what}: found `{schema}`, this build supports `{MANIFEST_SCHEMA}`"
            )));
        }
        let opt_u64 = |key: &str| -> Result<Option<u64>, StateError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::U64(x)) => Ok(Some(*x)),
                Some(_) => Err(StateError::Corrupt(format!(
                    "{what}: field `{key}` must be an integer or null"
                ))),
            }
        };
        let req_bool = |key: &str| -> Result<bool, StateError> {
            v.get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| StateError::Corrupt(format!("{what}: missing bool field `{key}`")))
        };
        let ranges = v
            .get("ranges")
            .and_then(Value::as_arr)
            .ok_or_else(|| StateError::Corrupt(format!("{what}: missing `ranges` array")))?
            .iter()
            .map(|r| {
                r.as_str().map(str::to_owned).ok_or_else(|| {
                    StateError::Corrupt(format!("{what}: `ranges` must hold strings"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let m = Manifest {
            workers: v.req_u64("workers", what)?,
            seed: v.req_u64("seed", what)?,
            world_seed: v.req_u64("world_seed", what)?,
            shard: v.req_u64("shard", what)?,
            shards: v.req_u64("shards", what)?,
            permutation: v.req_str("permutation", what)?,
            module: v.req_str("module", what)?,
            max_targets: opt_u64("max_targets")?,
            rate_pps: opt_u64("rate_pps")?,
            probes_per_target: v.req_u64("probes_per_target", what)?,
            rto_ticks: v.req_u64("rto_ticks", what)?,
            max_retry_backlog: v.req_u64("max_retry_backlog", what)?,
            adaptive: req_bool("adaptive")?,
            record_silent: req_bool("record_silent")?,
            ranges,
            blocklist_fp: crate::checkpoint::parse_fp(&v.req_str("blocklist_fp", what)?, what)?,
            every: v.req_u64("every", what)?,
        };
        let stored_fp = crate::checkpoint::parse_fp(&v.req_str("fingerprint", what)?, what)?;
        if stored_fp != m.fingerprint() {
            return Err(StateError::Corrupt(format!(
                "{what}: stored fingerprint {stored_fp:#018x} does not match recomputed \
                 {:#018x} (manifest was edited after the session started)",
                m.fingerprint()
            )));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            workers: 4,
            seed: u64::MAX - 1,
            world_seed: 0xDA7A_5EED,
            shard: 0,
            shards: 1,
            permutation: "cyclic".into(),
            module: "icmp6_echo".into(),
            max_targets: Some(4096),
            rate_pps: None,
            probes_per_target: 3,
            rto_ticks: 8,
            max_retry_backlog: 4096,
            adaptive: false,
            record_silent: true,
            ranges: vec!["2001:db8::/32".into(), "2620:fe::/48".into()],
            blocklist_fp: 0x1234_5678_9abc_def0,
            every: 1024,
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let m = sample();
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.fingerprint(), m.fingerprint());
    }

    #[test]
    fn diff_reports_each_field() {
        let a = sample();
        let mut b = sample();
        b.seed = 7;
        b.module = "udp/443".into();
        b.ranges.pop();
        let d = a.diff(&b);
        assert_eq!(d.len(), 3);
        assert!(d.iter().any(|l| l.starts_with("seed:")));
        assert!(d.iter().any(|l| l.starts_with("module:")));
        assert!(d.iter().any(|l| l.starts_with("ranges:")));
        assert!(a.diff(&sample()).is_empty());
    }

    #[test]
    fn cadence_is_not_identity() {
        let a = sample();
        let mut b = sample();
        b.every = 64;
        assert!(a.diff(&b).is_empty());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn edited_manifest_is_rejected() {
        let m = sample();
        let tampered = m
            .to_json()
            .replace("\"seed\": 18446744073709551614", "\"seed\": 9");
        let err = Manifest::from_json(&tampered).unwrap_err();
        assert!(matches!(err, StateError::Corrupt(_)));
    }
}
