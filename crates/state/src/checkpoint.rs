//! The `xmap-checkpoint/v1` worker checkpoint format.
//!
//! A checkpoint file is self-describing: a magic string, an ordered JSON
//! header (human-inspectable with `head -2`), then CRC-protected binary
//! sections. Layout:
//!
//! ```text
//! b"XMCKPT1\n"
//! [header_len: u32][header: ordered JSON, `header_len` bytes]\n
//! per section: [name_len: u8][name][len: u64][payload][crc32: u32]
//! ```
//!
//! The header carries identity and placement (`schema`, `kind`, `worker`,
//! `range_index`, `tick`, `wal_seq`, `config_fp`) plus the section list;
//! the sections carry bulk state (`metrics` — a full telemetry registry
//! snapshot — and optionally `run`, the mid-range scanner state).
//! Everything needed to *refuse* a wrong resume lives in the header, so
//! mismatches are detected before any bulk decoding happens.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::Path;

use xmap_addr::{NodeState, Prefix, PrefixTree, TreeNode};
use xmap_failpoint::fs as fp;
use xmap_telemetry::{HistogramSnapshot, Snapshot};

use crate::codec::{crc32, Decoder, Encoder};
use crate::error::StateError;
use crate::json::{self, Value};

/// Schema identifier written into every header.
pub const CHECKPOINT_SCHEMA: &str = "xmap-checkpoint/v1";

const MAGIC: &[u8] = b"XMCKPT1\n";

/// Target-stream cursor, one variant per permutation backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CursorState {
    /// Multiplicative-group walk: the current group element and how many
    /// walk positions remain (both mod a prime that can exceed `u64`).
    Cyclic {
        /// Current element of the multiplicative group.
        current: u128,
        /// Walk positions left to visit, including skipped out-of-range ones.
        remaining_walk: u128,
    },
    /// Feistel permutation: the permutation is stateless, only the next
    /// domain position matters.
    Feistel {
        /// Next position in the permuted domain.
        next_pos: u64,
    },
    /// Sequential (identity) order.
    Sequential {
        /// Next position in the domain.
        next_pos: u64,
    },
}

/// One in-flight probe awaiting a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutstandingEntry {
    /// Destination address the probe was sent to.
    pub dst: u128,
    /// The /64 target prefix being probed.
    pub target: Prefix,
    /// Zero-based transmission attempt.
    pub attempt: u32,
    /// Whether a response was already recorded for this probe.
    pub answered: bool,
    /// Virtual tick the probe was sent at.
    pub sent_tick: u64,
}

/// One scheduled retransmission with its backoff deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryEntryState {
    /// Run-local tick the retry becomes due.
    pub due_tick: u64,
    /// Tie-break sequence number (FIFO among same-tick retries).
    pub seq: u64,
    /// The /64 target prefix to re-probe.
    pub target: Prefix,
    /// Transmission attempt this retry will be.
    pub attempt: u32,
    /// Destination of the previous attempt (retired on retransmit).
    pub prev_dst: u128,
}

/// AIMD rate-controller state.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveState {
    /// Current probes-per-second setpoint.
    pub current_pps: u64,
    /// Probes sent in the open measurement window.
    pub sent: u64,
    /// Valid responses in the open measurement window.
    pub valid: u64,
    /// Baseline hit rate (bit pattern preserved exactly), if established.
    pub baseline_bits: Option<u64>,
}

/// Complete mid-range scanner state: everything `Scanner::run` holds in
/// locals, captured at a slot boundary with nothing in flight downstream.
#[derive(Debug, Clone, PartialEq)]
pub struct RunState {
    /// Run-local tick (slots completed since the range started).
    pub now: u64,
    /// Scanner lifetime tick at which this range started.
    pub run_start_tick: u64,
    /// WAL sequence number at which this range's records start.
    pub run_wal_start: u64,
    /// Target-stream cursor.
    pub cursor: CursorState,
    /// Fresh targets still to be drawn from the stream.
    pub remaining: u64,
    /// Permutation indices already drawn into the generator's chunk
    /// buffer but not yet consumed (the buffer runs ahead of the scan).
    pub pending_indices: Vec<u64>,
    /// In-flight probes, sorted by destination for determinism.
    pub outstanding: Vec<OutstandingEntry>,
    /// Scheduled retries, sorted by (due_tick, seq).
    pub retries: Vec<RetryEntryState>,
    /// Next retry tie-break sequence number.
    pub retry_seq: u64,
    /// Targets that have produced a valid response, sorted.
    pub answered: Vec<Prefix>,
    /// Every target probed this range, in probe order.
    pub probed: Vec<Prefix>,
    /// AIMD controller state, if adaptive rating is enabled.
    pub adaptive: Option<AdaptiveState>,
    /// Metrics baseline captured when the range started (raw counters).
    pub baseline: [u64; 9],
}

/// A worker's durable checkpoint: placement header plus bulk state.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerCheckpoint {
    /// Worker index within the parallel executor.
    pub worker: u32,
    /// Range index this checkpoint refers to. With `run: Some(..)` the
    /// range is in progress; with `run: None` it has completed and the
    /// next range (if any) starts fresh.
    pub range_index: u32,
    /// Scanner lifetime tick (drives virtual-clock restoration).
    pub tick: u64,
    /// Number of WAL records durable at checkpoint time; resume truncates
    /// the journal to exactly this count.
    pub wal_seq: u64,
    /// Fingerprint of the session manifest this checkpoint belongs to.
    pub config_fp: u64,
    /// Full telemetry registry snapshot for this worker.
    pub metrics: Snapshot,
    /// Mid-range state, absent when the range completed.
    pub run: Option<RunState>,
}

impl WorkerCheckpoint {
    /// Serialises and atomically writes the checkpoint to `path`
    /// (tmp-file + rename, so a kill mid-write leaves the old file).
    pub fn write_to(&self, path: &Path) -> Result<(), StateError> {
        let mut header = String::new();
        header.push('{');
        header.push_str("\"schema\":");
        json::push_json_string(&mut header, CHECKPOINT_SCHEMA);
        header.push_str(",\"kind\":\"worker\"");
        header.push_str(&format!(",\"worker\":{}", self.worker));
        header.push_str(&format!(",\"range_index\":{}", self.range_index));
        header.push_str(&format!(",\"tick\":{}", self.tick));
        header.push_str(&format!(",\"wal_seq\":{}", self.wal_seq));
        header.push_str(&format!(",\"config_fp\":\"{:#018x}\"", self.config_fp));
        header.push_str(",\"sections\":[\"metrics\"");
        if self.run.is_some() {
            header.push_str(",\"run\"");
        }
        header.push_str("]}");

        let mut sections: Vec<(&str, Vec<u8>)> = vec![("metrics", encode_snapshot(&self.metrics))];
        if let Some(run) = &self.run {
            sections.push(("run", encode_run_state(run)));
        }
        write_sectioned(path, &header, &sections)
    }

    /// Reads and fully validates a checkpoint from `path`.
    pub fn read_from(path: &Path) -> Result<WorkerCheckpoint, StateError> {
        let what = "worker checkpoint";
        let (header, mut sections) = read_sectioned(path, what)?;
        let kind = header.req_str("kind", what)?;
        if kind != "worker" {
            return Err(StateError::Corrupt(format!(
                "{what}: expected kind `worker`, found `{kind}`"
            )));
        }
        let config_fp = parse_fp(&header.req_str("config_fp", what)?, what)?;
        let metrics_raw = sections
            .remove("metrics")
            .ok_or_else(|| StateError::Corrupt(format!("{what}: missing `metrics` section")))?;
        let run = match sections.remove("run") {
            Some(raw) => Some(decode_run_state(&raw)?),
            None => None,
        };
        Ok(WorkerCheckpoint {
            worker: header.req_u64("worker", what)? as u32,
            range_index: header.req_u64("range_index", what)? as u32,
            tick: header.req_u64("tick", what)?,
            wal_seq: header.req_u64("wal_seq", what)?,
            config_fp,
            metrics: decode_snapshot(&metrics_raw)?,
            run,
        })
    }
}

/// Parses a `0x`-prefixed 64-bit fingerprint written by the header writers.
pub fn parse_fp(s: &str, what: &str) -> Result<u64, StateError> {
    s.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| StateError::Corrupt(format!("{what}: invalid fingerprint `{s}`")))
}

/// One sub-shard range of a split scan block, as persisted in a
/// `units` checkpoint section.
///
/// The triple `(offset, stride, cap)` names the sub-progression of the
/// block's permutation walk the unit owns (base positions `offset +
/// j·stride` for `j < cap`); `started` records whether any worker ever
/// claimed the unit, so a resume planner can report Resume (partial
/// work discarded, unit re-runs) versus Fresh. A manifest of entries is
/// only valid as a *complete partition* of its block's walk — writers
/// must replace a split unit by its settled prefix plus tail parts in
/// the same atomic rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubShardEntry {
    /// First base walk position of the unit.
    pub offset: u64,
    /// Distance between consecutive base positions.
    pub stride: u64,
    /// Number of walk positions in the unit.
    pub cap: u64,
    /// Whether a worker ever claimed the unit.
    pub started: bool,
}

/// Binary-encodes a sub-shard manifest (the `units` section of a
/// campaign split-block checkpoint).
pub fn encode_sub_shards(entries: &[SubShardEntry]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.seq(entries.len());
    for u in entries {
        e.u64(u.offset);
        e.u64(u.stride);
        e.u64(u.cap);
        e.bool(u.started);
    }
    e.finish()
}

/// Decodes a manifest written by [`encode_sub_shards`].
pub fn decode_sub_shards(raw: &[u8]) -> Result<Vec<SubShardEntry>, StateError> {
    let mut d = Decoder::new(raw, "units section");
    let n = d.seq()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(SubShardEntry {
            offset: d.u64()?,
            stride: d.u64()?,
            cap: d.u64()?,
            started: d.bool()?,
        });
    }
    d.expect_end()?;
    Ok(entries)
}

/// Writes a sectioned `xmap-checkpoint/v1` file atomically. Shared by
/// worker and campaign checkpoints; `header` must be a complete JSON
/// object including `schema` and `sections`.
pub fn write_sectioned(
    path: &Path,
    header: &str,
    sections: &[(&str, Vec<u8>)],
) -> Result<(), StateError> {
    write_sectioned_opts(path, header, sections, true)
}

/// [`write_sectioned`] with an explicit durability choice. With `sync:
/// false` the temp file is *not* fsynced before the rename — the caller
/// owns durability and must [`fp::sync_file`] the published path (and
/// its directory) later, the group-commit pattern the campaign executor
/// uses to batch fsyncs across blocks. A crash inside the unsynced
/// window can leave the published file torn, which readers must treat
/// as "block never completed" rather than a fatal error.
pub fn write_sectioned_opts(
    path: &Path,
    header: &str,
    sections: &[(&str, Vec<u8>)],
    sync: bool,
) -> Result<(), StateError> {
    let mut out = Vec::with_capacity(
        MAGIC.len() + header.len() + 16 + sections.iter().map(|(_, s)| s.len() + 32).sum::<usize>(),
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(header.len() as u32).to_le_bytes());
    out.extend_from_slice(header.as_bytes());
    out.push(b'\n');
    for (name, payload) in sections {
        out.push(name.len() as u8);
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fp::FpFile::create(&tmp)
            .map_err(|e| StateError::io(format!("create checkpoint {}", tmp.display()), e))?;
        f.write_all(&out)
            .map_err(|e| StateError::io(format!("write checkpoint {}", tmp.display()), e))?;
        if sync {
            f.sync_all()
                .map_err(|e| StateError::io(format!("sync checkpoint {}", tmp.display()), e))?;
        }
    }
    fp::rename(&tmp, path)
        .map_err(|e| StateError::io(format!("publish checkpoint {}", path.display()), e))
}

/// Reads a sectioned file, validating magic, schema, and per-section CRCs.
pub fn read_sectioned(
    path: &Path,
    what: &str,
) -> Result<(Value, BTreeMap<String, Vec<u8>>), StateError> {
    let raw = fs::read(path)
        .map_err(|e| StateError::io(format!("read checkpoint {}", path.display()), e))?;
    if !raw.starts_with(MAGIC) {
        return Err(StateError::Corrupt(format!(
            "{what} {}: bad magic (not an xmap checkpoint)",
            path.display()
        )));
    }
    let mut pos = MAGIC.len();
    if raw.len() < pos + 4 {
        return Err(StateError::Corrupt(format!(
            "{what}: truncated header length"
        )));
    }
    let hlen = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4;
    if raw.len() < pos + hlen + 1 {
        return Err(StateError::Corrupt(format!("{what}: truncated header")));
    }
    let header_text = std::str::from_utf8(&raw[pos..pos + hlen])
        .map_err(|_| StateError::Corrupt(format!("{what}: header is not UTF-8")))?;
    pos += hlen + 1; // skip trailing newline
    let header = json::parse(header_text, what)?;
    let schema = header.req_str("schema", what)?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(StateError::Version(format!(
            "{what}: found `{schema}`, this build supports `{CHECKPOINT_SCHEMA}`"
        )));
    }
    let mut sections = BTreeMap::new();
    while pos < raw.len() {
        let nlen = raw[pos] as usize;
        pos += 1;
        if raw.len() < pos + nlen + 8 {
            return Err(StateError::Corrupt(format!(
                "{what}: truncated section name"
            )));
        }
        let name = std::str::from_utf8(&raw[pos..pos + nlen])
            .map_err(|_| StateError::Corrupt(format!("{what}: section name not UTF-8")))?
            .to_owned();
        pos += nlen;
        let plen = u64::from_le_bytes(raw[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        if raw.len() < pos + plen + 4 {
            return Err(StateError::Corrupt(format!(
                "{what}: truncated section `{name}`"
            )));
        }
        let payload = &raw[pos..pos + plen];
        pos += plen;
        let stored = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap());
        pos += 4;
        if crc32(payload) != stored {
            return Err(StateError::Corrupt(format!(
                "{what}: CRC mismatch in section `{name}`"
            )));
        }
        sections.insert(name, payload.to_vec());
    }
    Ok((header, sections))
}

fn encode_prefix(e: &mut Encoder, p: &Prefix) {
    e.u128(p.addr().bits());
    e.u8(p.len());
}

fn decode_prefix(d: &mut Decoder) -> Result<Prefix, StateError> {
    let addr = d.u128()?;
    let len = d.u8()?;
    if len > 128 {
        return Err(StateError::Corrupt(format!("invalid prefix length {len}")));
    }
    Ok(Prefix::new(addr.into(), len))
}

/// Binary-encodes a telemetry snapshot (exact, unlike the JSON export
/// which is for human/CI consumption).
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut e = Encoder::new();
    e.seq(snap.counters.len());
    for (name, v) in &snap.counters {
        e.str(name);
        e.u64(*v);
    }
    e.seq(snap.gauges.len());
    for (name, v) in &snap.gauges {
        e.str(name);
        e.u64(*v);
    }
    e.seq(snap.histograms.len());
    for (name, h) in &snap.histograms {
        e.str(name);
        e.seq(h.bounds.len());
        for b in &h.bounds {
            e.u64(*b);
        }
        e.seq(h.counts.len());
        for c in &h.counts {
            e.u64(*c);
        }
        e.u64(h.count);
        e.u64(h.sum);
    }
    e.finish()
}

/// Decodes a snapshot written by [`encode_snapshot`].
pub fn decode_snapshot(raw: &[u8]) -> Result<Snapshot, StateError> {
    let mut d = Decoder::new(raw, "metrics section");
    let mut snap = Snapshot::default();
    for _ in 0..d.seq()? {
        let name = d.str()?;
        snap.counters.insert(name, d.u64()?);
    }
    for _ in 0..d.seq()? {
        let name = d.str()?;
        snap.gauges.insert(name, d.u64()?);
    }
    for _ in 0..d.seq()? {
        let name = d.str()?;
        let mut bounds = Vec::new();
        for _ in 0..d.seq()? {
            bounds.push(d.u64()?);
        }
        let mut counts = Vec::new();
        for _ in 0..d.seq()? {
            counts.push(d.u64()?);
        }
        let h = HistogramSnapshot {
            bounds,
            counts,
            count: d.u64()?,
            sum: d.u64()?,
        };
        snap.histograms.insert(name, h);
    }
    d.expect_end()?;
    Ok(snap)
}

/// Binary-encodes mid-range scanner state.
pub fn encode_run_state(run: &RunState) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(run.now);
    e.u64(run.run_start_tick);
    e.u64(run.run_wal_start);
    match &run.cursor {
        CursorState::Cyclic {
            current,
            remaining_walk,
        } => {
            e.u8(0);
            e.u128(*current);
            e.u128(*remaining_walk);
        }
        CursorState::Feistel { next_pos } => {
            e.u8(1);
            e.u64(*next_pos);
        }
        CursorState::Sequential { next_pos } => {
            e.u8(2);
            e.u64(*next_pos);
        }
    }
    e.u64(run.remaining);
    e.seq(run.pending_indices.len());
    for i in &run.pending_indices {
        e.u64(*i);
    }
    e.seq(run.outstanding.len());
    for o in &run.outstanding {
        e.u128(o.dst);
        encode_prefix(&mut e, &o.target);
        e.u32(o.attempt);
        e.bool(o.answered);
        e.u64(o.sent_tick);
    }
    e.seq(run.retries.len());
    for r in &run.retries {
        e.u64(r.due_tick);
        e.u64(r.seq);
        encode_prefix(&mut e, &r.target);
        e.u32(r.attempt);
        e.u128(r.prev_dst);
    }
    e.u64(run.retry_seq);
    e.seq(run.answered.len());
    for p in &run.answered {
        encode_prefix(&mut e, p);
    }
    e.seq(run.probed.len());
    for p in &run.probed {
        encode_prefix(&mut e, p);
    }
    match &run.adaptive {
        None => e.u8(0),
        Some(a) => {
            e.u8(1);
            e.u64(a.current_pps);
            e.u64(a.sent);
            e.u64(a.valid);
            e.opt_u64(a.baseline_bits);
        }
    }
    for v in run.baseline {
        e.u64(v);
    }
    e.finish()
}

/// Decodes mid-range scanner state written by [`encode_run_state`].
pub fn decode_run_state(raw: &[u8]) -> Result<RunState, StateError> {
    let mut d = Decoder::new(raw, "run section");
    let now = d.u64()?;
    let run_start_tick = d.u64()?;
    let run_wal_start = d.u64()?;
    let cursor = match d.u8()? {
        0 => CursorState::Cyclic {
            current: d.u128()?,
            remaining_walk: d.u128()?,
        },
        1 => CursorState::Feistel { next_pos: d.u64()? },
        2 => CursorState::Sequential { next_pos: d.u64()? },
        t => {
            return Err(StateError::Corrupt(format!(
                "run section: unknown cursor tag {t}"
            )))
        }
    };
    let remaining = d.u64()?;
    let mut pending_indices = Vec::new();
    for _ in 0..d.seq()? {
        pending_indices.push(d.u64()?);
    }
    let mut outstanding = Vec::new();
    for _ in 0..d.seq()? {
        outstanding.push(OutstandingEntry {
            dst: d.u128()?,
            target: decode_prefix(&mut d)?,
            attempt: d.u32()?,
            answered: d.bool()?,
            sent_tick: d.u64()?,
        });
    }
    let mut retries = Vec::new();
    for _ in 0..d.seq()? {
        retries.push(RetryEntryState {
            due_tick: d.u64()?,
            seq: d.u64()?,
            target: decode_prefix(&mut d)?,
            attempt: d.u32()?,
            prev_dst: d.u128()?,
        });
    }
    let retry_seq = d.u64()?;
    let mut answered = Vec::new();
    for _ in 0..d.seq()? {
        answered.push(decode_prefix(&mut d)?);
    }
    let mut probed = Vec::new();
    for _ in 0..d.seq()? {
        probed.push(decode_prefix(&mut d)?);
    }
    let adaptive = match d.u8()? {
        0 => None,
        1 => Some(AdaptiveState {
            current_pps: d.u64()?,
            sent: d.u64()?,
            valid: d.u64()?,
            baseline_bits: d.opt_u64()?,
        }),
        t => {
            return Err(StateError::Corrupt(format!(
                "run section: unknown adaptive tag {t}"
            )))
        }
    };
    let mut baseline = [0u64; 9];
    for b in &mut baseline {
        *b = d.u64()?;
    }
    d.expect_end()?;
    Ok(RunState {
        now,
        run_start_tick,
        run_wal_start,
        cursor,
        remaining,
        pending_indices,
        outstanding,
        retries,
        retry_seq,
        answered,
        probed,
        adaptive,
        baseline,
    })
}

/// Serialises a [`PrefixTree`] into the `xmap-checkpoint/v1`
/// tree-snapshot wire form: header fields, then every node in creation
/// order (prefix, state tag, probes, hits, cursor, children range).
/// Creation order is load-bearing — node indices are the tree's
/// identity, so a decoded tree resumes with byte-identical frontier
/// iteration.
pub fn encode_tree(e: &mut Encoder, tree: &PrefixTree) {
    encode_prefix(e, &tree.root());
    e.u8(tree.leaf_len());
    e.u8(tree.branch_bits());
    e.seq(tree.len());
    for node in tree.nodes() {
        encode_prefix(e, &node.prefix);
        e.u8(NodeState::ALL
            .iter()
            .position(|s| *s == node.state)
            .expect("every state is in ALL") as u8);
        e.u64(node.probes);
        e.u64(node.hits);
        e.u64(node.cursor);
        match node.children {
            Some((start, count)) => {
                e.bool(true);
                e.u32(start);
                e.u32(count);
            }
            None => e.bool(false),
        }
    }
}

/// Inverse of [`encode_tree`]; every structural invariant (child
/// placement, pruned-but-responsive nodes, coverage partition) is
/// re-validated, so a corrupted snapshot fails loudly instead of
/// resuming a malformed campaign.
pub fn decode_tree(d: &mut Decoder) -> Result<PrefixTree, StateError> {
    let what = "tree snapshot";
    let root = decode_prefix(d)?;
    let leaf_len = d.u8()?;
    let branch_bits = d.u8()?;
    let n = d.seq()?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let prefix = decode_prefix(d)?;
        let tag = d.u8()? as usize;
        let state = *NodeState::ALL
            .get(tag)
            .ok_or_else(|| StateError::Corrupt(format!("{what}: unknown node state {tag}")))?;
        let probes = d.u64()?;
        let hits = d.u64()?;
        let cursor = d.u64()?;
        let children = if d.bool()? {
            Some((d.u32()?, d.u32()?))
        } else {
            None
        };
        nodes.push(TreeNode {
            prefix,
            state,
            probes,
            hits,
            cursor,
            children,
        });
    }
    PrefixTree::from_parts(root, leaf_len, branch_bits, nodes)
        .map_err(|e| StateError::Corrupt(format!("{what}: {e}")))
}
