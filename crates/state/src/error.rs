//! Error type shared by the checkpoint/resume subsystem.

use std::fmt;
use std::io;

/// Everything that can go wrong while saving or restoring scan state.
#[derive(Debug)]
pub enum StateError {
    /// An underlying filesystem operation failed. The string names the
    /// path (or operation) so CLI users see actionable messages.
    Io(String, io::Error),
    /// A checkpoint or journal file exists but its contents are not a
    /// valid `xmap-checkpoint/v1` artifact.
    Corrupt(String),
    /// The checkpoint was produced under a different configuration (or
    /// blocklist) than the resuming process; continuing would silently
    /// scan the wrong targets. The string lists the mismatched fields.
    Mismatch(String),
    /// The file declares a schema version this build does not understand.
    Version(String),
}

impl StateError {
    /// Convenience constructor tagging an [`io::Error`] with a path.
    pub fn io(context: impl Into<String>, err: io::Error) -> Self {
        StateError::Io(context.into(), err)
    }
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io(ctx, e) => write!(f, "{ctx}: {e}"),
            StateError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            StateError::Mismatch(what) => write!(
                f,
                "checkpoint was taken under a different configuration; refusing to \
                 resume ({what})"
            ),
            StateError::Version(what) => write!(f, "unsupported checkpoint version: {what}"),
        }
    }
}

impl std::error::Error for StateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StateError::Io(_, e) => Some(e),
            _ => None,
        }
    }
}
