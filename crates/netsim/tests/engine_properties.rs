//! Property-based tests for the explicit engine: randomly wired topologies
//! must never hang, never emit errors about errors, and always respect
//! hop-limit arithmetic.

use proptest::prelude::*;
use xmap_addr::{Ip6, Prefix};
use xmap_netsim::engine::{Engine, RouteAction};
use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Network, Payload};

/// Builds a random chain/loop topology: vantage → r0 → r1 → … with each
/// router's default route going forward or (to create loops) backward.
fn random_topology(
    n_routers: usize,
    back_edges: &[bool],
) -> (Engine, Vec<xmap_netsim::engine::NodeId>) {
    let mut e = Engine::new();
    let vantage = e.add_node("vantage", vec!["fd00::1".parse().unwrap()]);
    e.set_vantage(vantage);
    let mut routers = vec![vantage];
    for i in 0..n_routers {
        let addr = Ip6::new((0x2001_0db8u128 << 96) | (i as u128 + 1));
        routers.push(e.add_node(&format!("r{i}"), vec![addr]));
    }
    // Forward chain.
    for w in 0..routers.len() - 1 {
        e.add_route(
            routers[w],
            "::/0".parse().unwrap(),
            RouteAction::Forward(routers[w + 1]),
        );
    }
    // Return routes toward the vantage.
    for w in (1..routers.len()).rev() {
        e.add_route(
            routers[w],
            "fd00::/16".parse().unwrap(),
            RouteAction::Forward(routers[w - 1]),
        );
    }
    // Back edges: some routers send a sub-prefix backwards, creating loops.
    for (i, back) in back_edges.iter().enumerate() {
        if *back && i + 1 < routers.len() && i > 0 {
            let p: Prefix = format!("3fff:{}::/32", i).parse().unwrap();
            e.add_route(routers[i + 1], p, RouteAction::Forward(routers[i]));
            e.add_route(routers[i], p, RouteAction::Forward(routers[i + 1]));
        }
    }
    // The last router rejects everything unrouted.
    let last = *routers.last().unwrap();
    e.add_route(last, "::/0".parse().unwrap(), RouteAction::Reject);
    (e, routers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No topology — including ones full of loops — can make the engine
    /// hang or emit more than a bounded number of responses.
    #[test]
    fn engine_always_terminates(
        n in 2usize..8,
        backs in prop::collection::vec(any::<bool>(), 8),
        dst_seed in any::<u64>(),
        hl in 1u8..=255,
    ) {
        let (mut e, _) = random_topology(n, &backs);
        let dst = if dst_seed.is_multiple_of(2) {
            Ip6::new((0x3fff_0001u128) << 96 | dst_seed as u128)
        } else {
            Ip6::new((0x2001_0db8u128) << 96 | (dst_seed % 16) as u128)
        };
        let responses = e.handle(Ipv6Packet::echo_request("fd00::1".parse().unwrap(), dst, hl, 0, 0));
        prop_assert!(responses.len() <= 2, "{} responses", responses.len());
        // Total traffic is bounded by the hop-limit budget of the probe
        // plus one error packet's budget.
        prop_assert!(e.total_forwards() <= 2 * 255 + 2, "{} forwards", e.total_forwards());
    }

    /// Every response is addressed back to the prober and is never an
    /// error about an error.
    #[test]
    fn responses_are_well_formed(
        n in 2usize..6,
        backs in prop::collection::vec(any::<bool>(), 6),
        tail in any::<u32>(),
        hl in 1u8..=255,
    ) {
        let (mut e, _) = random_topology(n, &backs);
        let dst = Ip6::new((0x3fff_0002u128) << 96 | tail as u128);
        let src: Ip6 = "fd00::1".parse().unwrap();
        for resp in e.handle(Ipv6Packet::echo_request(src, dst, hl, 7, 9)) {
            prop_assert_eq!(resp.dst, src);
            match resp.payload {
                Payload::Icmp(Icmpv6::DestUnreachable { invoking, .. })
                | Payload::Icmp(Icmpv6::TimeExceeded { invoking }) => {
                    prop_assert_eq!(invoking.dst, dst);
                    prop_assert_eq!(invoking.src, src);
                }
                Payload::Icmp(Icmpv6::EchoReply { ident, seq }) => {
                    prop_assert_eq!((ident, seq), (7, 9));
                }
                ref other => prop_assert!(false, "unexpected payload {:?}", other),
            }
        }
    }

    /// Hop-limit monotonicity: if a probe reaches its destination at hop
    /// limit h, it also does at every h' > h (in loop-free topologies).
    #[test]
    fn delivery_is_monotone_in_hop_limit(n in 2usize..8, h in 2u8..40) {
        let backs = vec![false; 8];
        let (mut e, routers) = random_topology(n, &backs);
        // Ping the last router's own address.
        let dst = Ip6::new((0x2001_0db8u128 << 96) | n as u128);
        let _ = routers;
        let at_h = e.handle(Ipv6Packet::echo_request("fd00::1".parse().unwrap(), dst, h, 0, 0));
        let reached_h = at_h.iter().any(|r| matches!(r.payload, Payload::Icmp(Icmpv6::EchoReply { .. })));
        let at_more = e.handle(Ipv6Packet::echo_request("fd00::1".parse().unwrap(), dst, h.saturating_add(10).max(h), 0, 0));
        let reached_more = at_more.iter().any(|r| matches!(r.payload, Payload::Icmp(Icmpv6::EchoReply { .. })));
        if reached_h {
            prop_assert!(reached_more, "reachable at {h} but not at more");
        }
    }
}
