//! The packet model and the network abstraction.
//!
//! Only the fields the measurement methodology observes are modelled: IPv6
//! source/destination and hop limit, ICMPv6 message types from RFC 4443
//! (echo, destination unreachable, time exceeded) including the *invoking
//! packet quote* that real ICMPv6 errors carry (and which stateless scanners
//! use to validate responses), and UDP/TCP carrying application-layer
//! requests and responses for the service scans.

use xmap_addr::Ip6;

use crate::services::{AppRequest, AppResponse};

/// Default hop limit used by originating hosts (typical OS default).
pub const DEFAULT_HOP_LIMIT: u8 = 64;

/// Maximum hop limit value (used by the routing-loop attack packets).
pub const MAX_HOP_LIMIT: u8 = 255;

/// A simulated IPv6 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Packet {
    /// Source address.
    pub src: Ip6,
    /// Destination address.
    pub dst: Ip6,
    /// Remaining hop limit.
    pub hop_limit: u8,
    /// Transport payload.
    pub payload: Payload,
}

impl Ipv6Packet {
    /// Builds an ICMPv6 echo request — the periphery-discovery probe.
    pub fn echo_request(src: Ip6, dst: Ip6, hop_limit: u8, ident: u16, seq: u16) -> Self {
        Ipv6Packet {
            src,
            dst,
            hop_limit,
            payload: Payload::Icmp(Icmpv6::EchoRequest { ident, seq }),
        }
    }

    /// Builds a UDP packet carrying an application request.
    pub fn udp_request(src: Ip6, dst: Ip6, src_port: u16, dst_port: u16, req: AppRequest) -> Self {
        Ipv6Packet {
            src,
            dst,
            hop_limit: DEFAULT_HOP_LIMIT,
            payload: Payload::Udp {
                src_port,
                dst_port,
                data: AppData::Request(req),
            },
        }
    }

    /// Builds a TCP SYN to test port openness.
    pub fn tcp_syn(src: Ip6, dst: Ip6, src_port: u16, dst_port: u16) -> Self {
        Ipv6Packet {
            src,
            dst,
            hop_limit: DEFAULT_HOP_LIMIT,
            payload: Payload::Tcp {
                src_port,
                dst_port,
                flags: TcpFlags::Syn,
                data: AppData::None,
            },
        }
    }

    /// Builds a TCP data segment carrying an application request (assumes the
    /// handshake already succeeded).
    pub fn tcp_request(src: Ip6, dst: Ip6, src_port: u16, dst_port: u16, req: AppRequest) -> Self {
        Ipv6Packet {
            src,
            dst,
            hop_limit: DEFAULT_HOP_LIMIT,
            payload: Payload::Tcp {
                src_port,
                dst_port,
                flags: TcpFlags::Ack,
                data: AppData::Request(req),
            },
        }
    }

    /// The quote an ICMPv6 error about this packet would carry.
    pub fn quote(&self) -> Invoking {
        let proto = match &self.payload {
            Payload::Icmp(Icmpv6::EchoRequest { ident, seq })
            | Payload::Icmp(Icmpv6::EchoReply { ident, seq }) => QuotedProto::Icmp {
                ident: *ident,
                seq: *seq,
            },
            Payload::Icmp(_) => QuotedProto::OtherIcmp,
            Payload::Udp {
                src_port, dst_port, ..
            } => QuotedProto::Udp {
                src_port: *src_port,
                dst_port: *dst_port,
            },
            Payload::Tcp {
                src_port, dst_port, ..
            } => QuotedProto::Tcp {
                src_port: *src_port,
                dst_port: *dst_port,
            },
        };
        Invoking {
            src: self.src,
            dst: self.dst,
            proto,
        }
    }
}

/// Transport-layer payload of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// ICMPv6 message.
    Icmp(Icmpv6),
    /// UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Application payload.
        data: AppData,
    },
    /// (Abstracted) TCP segment: flags plus optional application payload.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Segment flags.
        flags: TcpFlags,
        /// Application payload.
        data: AppData,
    },
}

/// Abstracted TCP segment kinds (sequence numbers are not modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpFlags {
    /// Connection request.
    Syn,
    /// Connection accept.
    SynAck,
    /// Connection refused.
    Rst,
    /// Established-connection data segment.
    Ack,
    /// Connection teardown.
    Fin,
}

/// Application data carried by UDP/TCP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppData {
    /// No payload (bare SYN/RST...).
    None,
    /// A client request.
    Request(AppRequest),
    /// A server response.
    Response(AppResponse),
}

/// ICMPv6 messages (RFC 4443 subset used by the methodology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Icmpv6 {
    /// Type 128.
    EchoRequest {
        /// Echo identifier (scanner validation cookie, high half).
        ident: u16,
        /// Echo sequence (scanner validation cookie, low half).
        seq: u16,
    },
    /// Type 129.
    EchoReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence copied from the request.
        seq: u16,
    },
    /// Type 1 — the message the periphery-discovery technique relies on.
    DestUnreachable {
        /// Unreachable code.
        code: UnreachCode,
        /// Quote of the invoking packet.
        invoking: Invoking,
    },
    /// Type 3 code 0 (hop limit exceeded in transit) — the message the
    /// routing-loop measurement relies on.
    TimeExceeded {
        /// Quote of the invoking packet.
        invoking: Invoking,
    },
}

/// ICMPv6 destination-unreachable codes (RFC 4443 §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnreachCode {
    /// Code 0: no route to destination.
    NoRoute,
    /// Code 1: communication administratively prohibited (filtering).
    AdminProhibited,
    /// Code 3: address unreachable — what a last-hop router answers for a
    /// nonexistent IID inside an on-link /64.
    AddressUnreachable,
    /// Code 4: port unreachable.
    PortUnreachable,
    /// Code 5: source address failed ingress/egress policy.
    SourcePolicy,
    /// Code 6: reject route to destination — what a *patched* CE router
    /// answers for the unused part of its delegated prefix (RFC 7084 L-14).
    RejectRoute,
}

/// The portion of the invoking packet quoted inside an ICMPv6 error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invoking {
    /// Original source (the scanner's address).
    pub src: Ip6,
    /// Original destination (the probed address).
    pub dst: Ip6,
    /// Original transport header fields.
    pub proto: QuotedProto,
}

/// Transport header fields quoted in an ICMPv6 error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotedProto {
    /// Invoking packet was an ICMPv6 echo.
    Icmp {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence.
        seq: u16,
    },
    /// Invoking packet was UDP.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// Invoking packet was TCP.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// Some other ICMPv6 message.
    OtherIcmp,
}

/// A network the scanner can inject packets into.
///
/// `handle` delivers one packet and returns every packet that comes back to
/// the sender (possibly none: filtered, lost, or genuinely unanswered).
/// Implementations must be deterministic for reproducible experiments.
///
/// Implemented by [`crate::World`] (procedural Internet) and
/// [`crate::Engine`] (explicit topology).
pub trait Network {
    /// Injects `packet` and returns the response packets observed by the
    /// sender, in arrival order.
    fn handle(&mut self, packet: Ipv6Packet) -> Vec<Ipv6Packet>;

    /// Like [`handle`](Network::handle), but appends the responses to
    /// `out` instead of returning a fresh `Vec` — the zero-allocation
    /// entry point for hot loops that reuse one receive buffer across
    /// millions of probes. Must observe the same packets in the same
    /// order as `handle`. The default bridges through `handle`;
    /// implementations with a real per-probe cost override it natively.
    fn handle_into(&mut self, packet: Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        out.extend(self.handle(packet));
    }

    /// Advances the network's virtual clock by `ticks` and returns any
    /// responses that were in flight (delayed by jitter) and are now due,
    /// in delivery order.
    ///
    /// The scanner advances the clock one tick per probe sent, making a
    /// tick the simulator's send-slot time unit: ICMPv6 token buckets
    /// refill, flaky devices reboot, and jittered responses surface on
    /// this clock. Networks without time-dependent behaviour keep the
    /// default no-op.
    fn tick(&mut self, ticks: u64) -> Vec<Ipv6Packet> {
        let _ = ticks;
        Vec::new()
    }

    /// Buffer-reusing variant of [`tick`](Network::tick): appends the due
    /// responses to `out`. Same contract as
    /// [`handle_into`](Network::handle_into).
    fn tick_into(&mut self, ticks: u64, out: &mut Vec<Ipv6Packet>) {
        out.extend(self.tick(ticks));
    }

    /// Publishes any internally batched telemetry into the attached
    /// registry. Networks that mirror their statistics into a telemetry
    /// bundle may coalesce updates on the per-packet path; the scanner
    /// calls this at observation boundaries (end of a run, targeted
    /// probes) so exported snapshots are exact. No-op by default.
    fn flush_telemetry(&mut self) {}

    /// Number of responses currently held in flight (delayed by jitter
    /// and not yet due). The scanner drains the network by ticking until
    /// this reaches zero.
    fn in_flight(&self) -> usize {
        0
    }

    /// Sets the network's virtual clock to an absolute `tick` without
    /// surfacing any in-flight responses or publishing tick telemetry.
    ///
    /// This is the checkpoint-resume path: time-keyed behaviour (loss
    /// draws, token-bucket refills, flaky-device outages) must see the
    /// same clock values a continued run would have seen, so a resumed
    /// scanner realigns the network before replaying. Checkpoints are
    /// only taken with nothing in flight, so there is never delayed state
    /// to reconstruct. Clock-free networks keep the default no-op.
    fn restore_clock(&mut self, tick: u64) {
        let _ = tick;
    }
}

impl<N: Network + ?Sized> Network for &mut N {
    fn handle(&mut self, packet: Ipv6Packet) -> Vec<Ipv6Packet> {
        (**self).handle(packet)
    }

    fn handle_into(&mut self, packet: Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        (**self).handle_into(packet, out)
    }

    fn tick(&mut self, ticks: u64) -> Vec<Ipv6Packet> {
        (**self).tick(ticks)
    }

    fn tick_into(&mut self, ticks: u64, out: &mut Vec<Ipv6Packet>) {
        (**self).tick_into(ticks, out)
    }

    fn flush_telemetry(&mut self) {
        (**self).flush_telemetry()
    }

    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }

    fn restore_clock(&mut self, tick: u64) {
        (**self).restore_clock(tick)
    }
}

/// A freelist of [`Ipv6Packet`] buffers.
///
/// Response assembly needs a staging `Vec` per exchange (responses are
/// drawn, fault-filtered, then delivered); allocating one per probe
/// dominated the scan hot path. An arena parks cleared buffers — capacity
/// intact — between exchanges, so steady-state probing performs no heap
/// allocation at all: [`get`](PacketArena::get) pops a parked buffer and
/// [`put`](PacketArena::put) returns it.
#[derive(Debug, Default)]
pub struct PacketArena {
    free: Vec<Vec<Ipv6Packet>>,
}

impl PacketArena {
    /// An empty arena (the first `get` allocates, later ones recycle).
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Pops a cleared buffer off the freelist, allocating only when the
    /// freelist is empty.
    pub fn get(&mut self) -> Vec<Ipv6Packet> {
        self.free.pop().unwrap_or_default()
    }

    /// Parks `buf` for reuse: cleared, capacity retained.
    pub fn put(&mut self, mut buf: Vec<Ipv6Packet>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently parked.
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ip6 {
        s.parse().unwrap()
    }

    #[test]
    fn arena_recycles_capacity() {
        let mut arena = PacketArena::new();
        let mut buf = arena.get();
        for _ in 0..32 {
            buf.push(Ipv6Packet::echo_request(
                Ip6::UNSPECIFIED,
                Ip6::UNSPECIFIED,
                64,
                0,
                0,
            ));
        }
        let cap = buf.capacity();
        arena.put(buf);
        assert_eq!(arena.parked(), 1);
        let reused = arena.get();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), cap, "capacity survives the freelist");
        assert_eq!(arena.parked(), 0);
    }

    #[test]
    fn handle_into_default_matches_handle() {
        struct Echoer;
        impl Network for Echoer {
            fn handle(&mut self, p: Ipv6Packet) -> Vec<Ipv6Packet> {
                vec![p]
            }
        }
        let probe = Ipv6Packet::echo_request(addr("fd::1"), addr("2001:db8::1"), 64, 7, 9);
        let direct = Echoer.handle(probe.clone());
        let mut buffered = Vec::new();
        Echoer.handle_into(probe, &mut buffered);
        Echoer.tick_into(3, &mut buffered);
        assert_eq!(direct, buffered);
    }

    #[test]
    fn echo_request_builder() {
        let p = Ipv6Packet::echo_request(addr("fd::1"), addr("2001:db8::1"), 64, 7, 9);
        assert_eq!(p.hop_limit, 64);
        match p.payload {
            Payload::Icmp(Icmpv6::EchoRequest { ident: 7, seq: 9 }) => {}
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn quote_captures_transport_fields() {
        let p = Ipv6Packet::echo_request(addr("fd::1"), addr("2001:db8::1"), 64, 7, 9);
        let q = p.quote();
        assert_eq!(q.src, addr("fd::1"));
        assert_eq!(q.dst, addr("2001:db8::1"));
        assert_eq!(q.proto, QuotedProto::Icmp { ident: 7, seq: 9 });

        let u = Ipv6Packet::udp_request(
            addr("fd::1"),
            addr("2001:db8::1"),
            4321,
            53,
            AppRequest::DnsQuery,
        );
        assert_eq!(
            u.quote().proto,
            QuotedProto::Udp {
                src_port: 4321,
                dst_port: 53
            }
        );

        let t = Ipv6Packet::tcp_syn(addr("fd::1"), addr("2001:db8::1"), 4321, 80);
        assert_eq!(
            t.quote().proto,
            QuotedProto::Tcp {
                src_port: 4321,
                dst_port: 80
            }
        );
    }

    #[test]
    fn network_impl_for_mut_ref() {
        struct Echoer;
        impl Network for Echoer {
            fn handle(&mut self, p: Ipv6Packet) -> Vec<Ipv6Packet> {
                vec![p]
            }
        }
        fn run(mut n: impl Network) -> usize {
            n.handle(Ipv6Packet::echo_request(
                Ip6::UNSPECIFIED,
                Ip6::UNSPECIFIED,
                1,
                0,
                0,
            ))
            .len()
        }
        let mut e = Echoer;
        assert_eq!(run(&mut e), 1);
        assert_eq!(run(e), 1);
    }
}
