//! Deterministic hashing utilities for procedural generation.
//!
//! The world model derives every device property (existence, vendor, IID,
//! services, vulnerability) by hashing `(seed, namespace, index…)` tuples.
//! All derivations funnel through [`DetHash`], a SplitMix64-based stream
//! hasher: cheap, full-avalanche, stable across platforms and runs.

/// A deterministic 64-bit stream hasher.
///
/// # Examples
///
/// ```
/// use xmap_netsim::rng::DetHash;
///
/// let a = DetHash::new(42).mix(b"device").mix_u64(7).finish();
/// let b = DetHash::new(42).mix(b"device").mix_u64(7).finish();
/// assert_eq!(a, b);
/// let c = DetHash::new(42).mix(b"device").mix_u64(8).finish();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DetHash {
    state: u64,
}

impl DetHash {
    /// Starts a hash stream from a seed.
    pub const fn new(seed: u64) -> Self {
        DetHash {
            state: seed ^ 0x6a09_e667_f3bc_c909,
        }
    }

    /// Mixes a byte-string label into the stream (used as a namespace).
    #[must_use]
    pub fn mix(mut self, label: &[u8]) -> Self {
        for chunk in label.chunks(8) {
            let mut v = [0u8; 8];
            v[..chunk.len()].copy_from_slice(chunk);
            self.state = splitmix(self.state ^ u64::from_le_bytes(v));
        }
        self.state = splitmix(self.state ^ label.len() as u64);
        self
    }

    /// Mixes a 64-bit value into the stream.
    #[must_use]
    pub fn mix_u64(mut self, v: u64) -> Self {
        self.state = splitmix(self.state ^ v);
        self
    }

    /// Mixes a 128-bit value into the stream.
    #[must_use]
    pub fn mix_u128(self, v: u128) -> Self {
        self.mix_u64(v as u64).mix_u64((v >> 64) as u64)
    }

    /// Finishes the stream, producing a full-avalanche 64-bit digest.
    pub fn finish(self) -> u64 {
        splitmix(self.state)
    }

    /// Finishes and maps the digest to a uniform float in `[0, 1)`.
    pub fn unit(self) -> f64 {
        // 53 high bits -> exactly representable dyadic rational in [0,1).
        (self.finish() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Finishes and maps the digest uniformly onto `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn bounded(self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // 128-bit multiply-shift: unbiased enough for simulation purposes
        // (bias < 2^-64 per draw).
        ((self.finish() as u128 * bound as u128) >> 64) as u64
    }

    /// Finishes and returns `true` with probability `p`.
    pub fn chance(self, p: f64) -> bool {
        self.unit() < p
    }
}

/// SplitMix64 step.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws an index from a weighted table: returns `i` with probability
/// `weights[i] / sum(weights)`.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_pick(h: DetHash, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|w| *w as u64).sum();
    assert!(total > 0, "weights must not all be zero");
    let mut draw = h.bounded(total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w as u64 {
            return i;
        }
        draw -= *w as u64;
    }
    unreachable!("draw below total guarantees a pick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = DetHash::new(1).mix(b"x").mix_u64(2).finish();
        let b = DetHash::new(1).mix(b"x").mix_u64(2).finish();
        assert_eq!(a, b);
    }

    #[test]
    fn namespace_separation() {
        let a = DetHash::new(1).mix(b"alpha").finish();
        let b = DetHash::new(1).mix(b"beta").finish();
        assert_ne!(a, b);
        // Length is mixed, so a prefix label differs from its extension.
        let c = DetHash::new(1).mix(b"alph").finish();
        assert_ne!(a, c);
    }

    #[test]
    fn unit_in_range_and_spread() {
        let mut below_half = 0;
        for i in 0..1000u64 {
            let u = DetHash::new(9).mix_u64(i).unit();
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        // Roughly uniform: 500 ± 70.
        assert!((430..570).contains(&below_half), "{below_half}");
    }

    #[test]
    fn bounded_covers_small_range() {
        let mut seen = [false; 7];
        for i in 0..500u64 {
            seen[DetHash::new(3).mix_u64(i).bounded(7) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn bounded_zero_panics() {
        DetHash::new(0).bounded(0);
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let weights = [0, 10, 0, 30];
        let mut counts = [0u32; 4];
        for i in 0..4000u64 {
            counts[weighted_pick(DetHash::new(5).mix_u64(i), &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        // 1:3 ratio, tolerant bounds.
        assert!(counts[1] > 700 && counts[1] < 1300, "{counts:?}");
        assert!(counts[3] > 2700 && counts[3] < 3300, "{counts:?}");
    }

    #[test]
    fn chance_extremes() {
        assert!(!DetHash::new(1).mix_u64(1).chance(0.0));
        assert!(DetHash::new(1).mix_u64(1).chance(1.0));
    }
}
