//! Packet-trace wrapper — tcpdump for the simulated Internet.
//!
//! [`TracingNetwork`] wraps any [`Network`] and records every injected
//! packet together with its responses in a bounded ring buffer, so tests,
//! examples and debugging sessions can inspect exactly what went over the
//! (virtual) wire without changing the code under test.

use std::collections::VecDeque;

use crate::packet::{Icmpv6, Ipv6Packet, Network, Payload};

/// One recorded exchange: a probe and everything it drew back.
#[derive(Debug, Clone, PartialEq)]
pub struct Exchange {
    /// Sequence number (monotonic per wrapper).
    pub seq: u64,
    /// The injected packet.
    pub probe: Ipv6Packet,
    /// The responses, in arrival order.
    pub responses: Vec<Ipv6Packet>,
}

impl Exchange {
    /// Whether any response is an ICMPv6 error.
    pub fn drew_error(&self) -> bool {
        self.responses.iter().any(|r| {
            matches!(
                r.payload,
                Payload::Icmp(Icmpv6::DestUnreachable { .. })
                    | Payload::Icmp(Icmpv6::TimeExceeded { .. })
            )
        })
    }

    /// Whether the exchange went unanswered.
    pub fn silent(&self) -> bool {
        self.responses.is_empty()
    }
}

/// A [`Network`] wrapper that records the last `capacity` exchanges.
///
/// # Examples
///
/// ```
/// use xmap_netsim::trace::TracingNetwork;
/// use xmap_netsim::{Ipv6Packet, Network, World};
///
/// let mut net = TracingNetwork::new(World::new(7), 128);
/// net.handle(Ipv6Packet::echo_request(
///     "fd00::1".parse()?, "2405:200::1".parse()?, 64, 0, 0));
/// assert_eq!(net.exchanges().count(), 1);
/// # Ok::<(), xmap_addr::ParseAddrError>(())
/// ```
#[derive(Debug)]
pub struct TracingNetwork<N> {
    inner: N,
    buffer: VecDeque<Exchange>,
    capacity: usize,
    next_seq: u64,
}

impl<N: Network> TracingNetwork<N> {
    /// Wraps `inner`, keeping at most `capacity` exchanges.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: N, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be nonzero");
        TracingNetwork {
            inner,
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
        }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Mutable access to the wrapped network.
    pub fn inner_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// Unwraps, discarding the trace.
    pub fn into_inner(self) -> N {
        self.inner
    }

    /// Recorded exchanges, oldest first.
    pub fn exchanges(&self) -> impl Iterator<Item = &Exchange> {
        self.buffer.iter()
    }

    /// Total packets injected since construction (not bounded by capacity).
    pub fn injected(&self) -> u64 {
        self.next_seq
    }

    /// Clears the ring buffer (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.buffer.clear();
    }

    /// Renders the trace in a compact, tcpdump-like text form.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ex in &self.buffer {
            let _ = writeln!(
                out,
                "#{} {} > {} hl={} {}",
                ex.seq,
                ex.probe.src,
                ex.probe.dst,
                ex.probe.hop_limit,
                payload_tag(&ex.probe.payload)
            );
            for r in &ex.responses {
                let _ = writeln!(out, "    < {} {}", r.src, payload_tag(&r.payload));
            }
            if ex.responses.is_empty() {
                let _ = writeln!(out, "    < (silence)");
            }
        }
        out
    }
}

fn payload_tag(p: &Payload) -> &'static str {
    match p {
        Payload::Icmp(Icmpv6::EchoRequest { .. }) => "icmp6 echo request",
        Payload::Icmp(Icmpv6::EchoReply { .. }) => "icmp6 echo reply",
        Payload::Icmp(Icmpv6::DestUnreachable { .. }) => "icmp6 unreachable",
        Payload::Icmp(Icmpv6::TimeExceeded { .. }) => "icmp6 time exceeded",
        Payload::Udp { .. } => "udp",
        Payload::Tcp { .. } => "tcp",
    }
}

impl<N: Network> Network for TracingNetwork<N> {
    fn handle(&mut self, packet: Ipv6Packet) -> Vec<Ipv6Packet> {
        let responses = self.inner.handle(packet.clone());
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(Exchange {
            seq: self.next_seq,
            probe: packet,
            responses: responses.clone(),
        });
        self.next_seq += 1;
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};
    use xmap_addr::Ip6;

    fn probe(dst: &str, hl: u8) -> Ipv6Packet {
        Ipv6Packet::echo_request("fd00::1".parse().unwrap(), dst.parse().unwrap(), hl, 0, 0)
    }

    fn traced() -> TracingNetwork<World> {
        let world = World::with_config(WorldConfig::lossless(5, 5));
        TracingNetwork::new(world, 4)
    }

    #[test]
    fn records_probes_and_responses() {
        let mut net = traced();
        net.handle(probe("2405:200::1", 64));
        assert_eq!(net.exchanges().count(), 1);
        assert_eq!(net.injected(), 1);
        let ex = net.exchanges().next().unwrap();
        assert_eq!(ex.seq, 0);
        assert_eq!(ex.probe.dst, "2405:200::1".parse::<Ip6>().unwrap());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut net = traced();
        for i in 0..10u64 {
            net.handle(probe(&format!("2405:200::{}", i + 1), 64));
        }
        assert_eq!(net.exchanges().count(), 4);
        assert_eq!(net.injected(), 10);
        let seqs: Vec<u64> = net.exchanges().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_is_readable() {
        let mut net = traced();
        net.handle(probe("2405:200:0:1::1", 64));
        let dump = net.dump();
        assert!(dump.contains("icmp6 echo request"), "{dump}");
        assert!(dump.contains('<'), "{dump}");
    }

    #[test]
    fn exchange_classifiers() {
        let mut net = traced();
        // Unallocated space: silence.
        net.handle(probe("2405:201:ffff::1", 64));
        let ex = net.exchanges().last().unwrap();
        assert!(ex.silent());
        assert!(!ex.drew_error());
        net.clear();
        assert_eq!(net.exchanges().count(), 0);
        assert!(net.injected() > 0);
    }

    #[test]
    fn transparent_to_the_scanner() {
        // The wrapper must not change scan results.
        let mk = || World::with_config(WorldConfig::lossless(5, 5));
        let range: xmap_addr::ScanRange = "2409:8000::/28-60".parse().unwrap();
        let mut direct = mk();
        let mut wrapped = TracingNetwork::new(mk(), 16);
        for i in 0..2000u64 {
            let dst = range.nth(i).unwrap().addr().with_iid(7);
            let a = direct.handle(probe(&dst.to_string(), 64));
            let b = wrapped.handle(probe(&dst.to_string(), 64));
            assert_eq!(a, b, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        TracingNetwork::new(World::new(1), 0);
    }
}
