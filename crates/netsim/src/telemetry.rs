//! Simulator-side telemetry: `netsim.*` counters and trace events.
//!
//! [`NetsimTelemetry`] mirrors [`WorldStats`](crate::world::WorldStats)
//! into a shared [`Registry`] and emits fault-injection / engine-tick
//! trace events. The world keeps its own plain-integer stats as before
//! (they stay the cheap, always-on accounting); when a telemetry bundle
//! is attached the deltas are published into the registry at the end of
//! every [`Network::handle`](crate::Network::handle) /
//! [`Network::tick`](crate::Network::tick) call, so one publish site
//! covers every scattered `stats.* += 1` without touching the hot
//! per-packet logic.

use std::sync::Arc;

use xmap_telemetry::{Counter, Telemetry, Tracer};

use crate::world::WorldStats;

/// Well-known `netsim.*` metric names (kept in sync with DESIGN.md
/// §"Telemetry").
pub mod names {
    /// Virtual-clock ticks advanced (counter).
    pub const TICKS: &str = "netsim.ticks";
    /// Probe packets injected into the world (counter).
    pub const PROBES: &str = "netsim.probes";
    /// Response packets delivered back to the vantage (counter).
    pub const RESPONSES: &str = "netsim.responses";
    /// Probes that entered a routing loop (counter).
    pub const LOOP_EVENTS: &str = "netsim.loop_events";
    /// Link traversals consumed by routing loops (counter).
    pub const LOOP_FORWARDS: &str = "netsim.loop_forwards";
    /// ICMPv6 errors suppressed by RFC 4443 rate limiting (counter).
    pub const RATE_LIMITED: &str = "netsim.rate_limited";
    /// Probes dropped forward by the fault plan (counter).
    pub const FWD_LOST: &str = "netsim.fwd_lost";
    /// Responses dropped on the return path by the fault plan (counter).
    pub const REV_LOST: &str = "netsim.rev_lost";
    /// Extra response copies produced by fault-plan duplication (counter).
    pub const DUP_RESPONSES: &str = "netsim.dup_responses";
    /// Responses delayed by fault-plan jitter (counter).
    pub const JITTERED: &str = "netsim.jittered";
    /// Probes swallowed by mid-reboot devices (counter).
    pub const FLAKY_DROPPED: &str = "netsim.flaky_dropped";
    /// Packets injected at the engine vantage (counter).
    pub const ENGINE_INJECTED: &str = "netsim.engine.injected";
    /// Packets the engine delivered back to the vantage (counter).
    pub const ENGINE_DELIVERED: &str = "netsim.engine.delivered";
    /// Directed-link traversals inside the engine topology (counter).
    pub const ENGINE_FORWARDS: &str = "netsim.engine.forwards";
    /// Packets dropped on engine links by the fault plan (counter).
    pub const ENGINE_LINK_DROPS: &str = "netsim.engine.link_drops";
}

/// Pre-bound handles for the simulator's metric surface, plus the tracer
/// used for `netsim.tick` and `netsim.fault` events.
#[derive(Debug, Clone)]
pub struct NetsimTelemetry {
    enabled: bool,
    /// Virtual ticks advanced.
    pub ticks: Counter,
    /// Probes injected.
    pub probes: Counter,
    /// Responses delivered.
    pub responses: Counter,
    /// Routing-loop events.
    pub loop_events: Counter,
    /// Looped link traversals.
    pub loop_forwards: Counter,
    /// Rate-limited ICMPv6 errors.
    pub rate_limited: Counter,
    /// Forward fault-plan drops.
    pub fwd_lost: Counter,
    /// Reverse fault-plan drops.
    pub rev_lost: Counter,
    /// Duplicated responses.
    pub dup_responses: Counter,
    /// Jitter-delayed responses.
    pub jittered: Counter,
    /// Flaky-device drops.
    pub flaky_dropped: Counter,
    /// Engine vantage injections.
    pub engine_injected: Counter,
    /// Engine vantage deliveries.
    pub engine_delivered: Counter,
    /// Engine link traversals.
    pub engine_forwards: Counter,
    /// Engine fault-plan link drops.
    pub engine_link_drops: Counter,
    tracer: Arc<Tracer>,
}

impl NetsimTelemetry {
    /// Binds every `netsim.*` metric in `telemetry`'s registry.
    pub fn bind(telemetry: &Telemetry) -> Self {
        let r = &telemetry.registry;
        NetsimTelemetry {
            enabled: r.is_enabled(),
            ticks: r.counter(names::TICKS),
            probes: r.counter(names::PROBES),
            responses: r.counter(names::RESPONSES),
            loop_events: r.counter(names::LOOP_EVENTS),
            loop_forwards: r.counter(names::LOOP_FORWARDS),
            rate_limited: r.counter(names::RATE_LIMITED),
            fwd_lost: r.counter(names::FWD_LOST),
            rev_lost: r.counter(names::REV_LOST),
            dup_responses: r.counter(names::DUP_RESPONSES),
            jittered: r.counter(names::JITTERED),
            flaky_dropped: r.counter(names::FLAKY_DROPPED),
            engine_injected: r.counter(names::ENGINE_INJECTED),
            engine_delivered: r.counter(names::ENGINE_DELIVERED),
            engine_forwards: r.counter(names::ENGINE_FORWARDS),
            engine_link_drops: r.counter(names::ENGINE_LINK_DROPS),
            tracer: Arc::clone(&telemetry.tracer),
        }
    }

    /// A no-op bundle: every counter add and event is inert.
    pub fn disabled() -> Self {
        NetsimTelemetry::bind(&Telemetry::disabled())
    }

    /// Whether publishing does anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The tracer events are recorded into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Publishes the difference `now - prev` into the registry and emits a
    /// `netsim.fault` trace event if any fault-injection machinery fired
    /// in the interval. Call with the stats as of the last publish.
    ///
    /// Zero deltas skip the atomic add entirely — this runs once per
    /// handled packet, and in a fault-free world only one or two fields
    /// move, so the skip keeps the per-packet cost to a couple of relaxed
    /// adds instead of ten.
    pub fn publish_delta(&self, prev: &WorldStats, now: &WorldStats, clock: u64) {
        fn bump(counter: &Counter, delta: u64) {
            if delta > 0 {
                counter.add(delta);
            }
        }
        bump(&self.probes, now.probes - prev.probes);
        bump(&self.responses, now.responses - prev.responses);
        bump(&self.loop_events, now.loop_events - prev.loop_events);
        bump(&self.loop_forwards, now.loop_forwards - prev.loop_forwards);
        bump(&self.rate_limited, now.rate_limited - prev.rate_limited);
        bump(&self.fwd_lost, now.fwd_lost - prev.fwd_lost);
        bump(&self.rev_lost, now.rev_lost - prev.rev_lost);
        bump(&self.dup_responses, now.dup_responses - prev.dup_responses);
        bump(&self.jittered, now.jittered - prev.jittered);
        bump(&self.flaky_dropped, now.flaky_dropped - prev.flaky_dropped);
        if self.tracer.is_enabled() {
            let faults = (now.fwd_lost - prev.fwd_lost)
                + (now.rev_lost - prev.rev_lost)
                + (now.dup_responses - prev.dup_responses)
                + (now.jittered - prev.jittered)
                + (now.flaky_dropped - prev.flaky_dropped)
                + (now.rate_limited - prev.rate_limited);
            if faults > 0 {
                self.tracer.event(
                    clock,
                    "netsim.fault",
                    vec![
                        ("fwd_lost", (now.fwd_lost - prev.fwd_lost).into()),
                        ("rev_lost", (now.rev_lost - prev.rev_lost).into()),
                        ("dup", (now.dup_responses - prev.dup_responses).into()),
                        ("jittered", (now.jittered - prev.jittered).into()),
                        ("flaky", (now.flaky_dropped - prev.flaky_dropped).into()),
                        (
                            "rate_limited",
                            (now.rate_limited - prev.rate_limited).into(),
                        ),
                    ],
                );
            }
        }
    }

    /// Records a tick advance and, when anything was delivered from the
    /// delay queue, a `netsim.tick` trace event.
    pub fn record_tick(&self, clock: u64, ticks: u64, delivered: u64) {
        self.ticks.add(ticks);
        self.tick_event(clock, ticks, delivered);
    }

    /// Emits the `netsim.tick` trace event without touching the ticks
    /// counter — for networks that batch the counter through
    /// [`publish_delta`](Self::publish_delta)-style publishing.
    pub fn tick_event(&self, clock: u64, ticks: u64, delivered: u64) {
        if delivered > 0 && self.tracer.is_enabled() {
            self.tracer.event(
                clock,
                "netsim.tick",
                vec![("ticks", ticks.into()), ("delivered", delivered.into())],
            );
        }
    }
}

impl Default for NetsimTelemetry {
    fn default() -> Self {
        NetsimTelemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_delta_mirrors_stats() {
        let telemetry = Telemetry::with_tracing();
        let nt = NetsimTelemetry::bind(&telemetry);
        let prev = WorldStats::default();
        let now = WorldStats {
            probes: 10,
            responses: 7,
            fwd_lost: 2,
            jittered: 1,
            ..WorldStats::default()
        };
        nt.publish_delta(&prev, &now, 42);
        let snap = telemetry.registry.snapshot();
        assert_eq!(snap.counter(names::PROBES), 10);
        assert_eq!(snap.counter(names::RESPONSES), 7);
        assert_eq!(snap.counter(names::FWD_LOST), 2);
        assert_eq!(snap.counter(names::JITTERED), 1);
        // Faults fired, so exactly one netsim.fault event was recorded.
        let events = telemetry.tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, "netsim.fault");
        assert_eq!(events[0].tick, 42);
    }

    #[test]
    fn disabled_bundle_is_inert() {
        let nt = NetsimTelemetry::disabled();
        assert!(!nt.is_enabled());
        let now = WorldStats {
            probes: 5,
            ..WorldStats::default()
        };
        nt.publish_delta(&WorldStats::default(), &now, 0);
        nt.record_tick(0, 3, 2);
        assert_eq!(nt.probes.get(), 0);
        assert_eq!(nt.ticks.get(), 0);
        assert_eq!(nt.tracer().len(), 0);
    }
}
