//! Application-layer services running on peripheries.
//!
//! Section V of the paper probes seven security-relevant services on every
//! discovered periphery (Table VI lists the request / valid-response pairs;
//! port 80 and 8080 are both HTTP, hence eight probe targets). This module
//! models the *server side*: which service kinds exist, what requests and
//! responses look like, the software catalog with versions and release years
//! (Table VIII), and per-vendor service profiles that drive which device
//! exposes what (Figures 2 and 3).

/// Transport protocol of a service probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportProto {
    /// UDP datagram service.
    Udp,
    /// TCP connection-oriented service.
    Tcp,
}

/// The eight probed services (Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// DNS resolution (UDP/53) — home routers acting as DNS forwarders.
    Dns,
    /// NTP time service (UDP/123).
    Ntp,
    /// FTP file access (TCP/21).
    Ftp,
    /// SSH remote login (TCP/22).
    Ssh,
    /// TELNET remote login (TCP/23).
    Telnet,
    /// Web management pages (TCP/80).
    Http,
    /// TLS/HTTPS management (TCP/443).
    Tls,
    /// Alternate web service (TCP/8080).
    HttpAlt,
}

impl ServiceKind {
    /// All services in Table VI / Table VII column order.
    pub const ALL: [ServiceKind; 8] = [
        ServiceKind::Dns,
        ServiceKind::Ntp,
        ServiceKind::Ftp,
        ServiceKind::Ssh,
        ServiceKind::Telnet,
        ServiceKind::Http,
        ServiceKind::Tls,
        ServiceKind::HttpAlt,
    ];

    /// The well-known port probed.
    pub const fn port(self) -> u16 {
        match self {
            ServiceKind::Dns => 53,
            ServiceKind::Ntp => 123,
            ServiceKind::Ftp => 21,
            ServiceKind::Ssh => 22,
            ServiceKind::Telnet => 23,
            ServiceKind::Http => 80,
            ServiceKind::Tls => 443,
            ServiceKind::HttpAlt => 8080,
        }
    }

    /// The transport the service runs over.
    pub const fn transport(self) -> TransportProto {
        match self {
            ServiceKind::Dns | ServiceKind::Ntp => TransportProto::Udp,
            _ => TransportProto::Tcp,
        }
    }

    /// The service probed on `port`, if any.
    pub fn from_port(port: u16) -> Option<ServiceKind> {
        ServiceKind::ALL.iter().copied().find(|s| s.port() == port)
    }

    /// Label used in the paper's tables, e.g. `DNS (UDP/53)`.
    pub fn label(self) -> String {
        let proto = match self.transport() {
            TransportProto::Udp => "UDP",
            TransportProto::Tcp => "TCP",
        };
        format!("{} ({}/{})", self.short_name(), proto, self.port())
    }

    /// Short name, e.g. `DNS`.
    pub const fn short_name(self) -> &'static str {
        match self {
            ServiceKind::Dns => "DNS",
            ServiceKind::Ntp => "NTP",
            ServiceKind::Ftp => "FTP",
            ServiceKind::Ssh => "SSH",
            ServiceKind::Telnet => "TELNET",
            ServiceKind::Http => "HTTP",
            ServiceKind::Tls => "TLS",
            ServiceKind::HttpAlt => "HTTP-8080",
        }
    }

    /// The application-specific request of Table VI.
    pub const fn request(self) -> AppRequest {
        match self {
            ServiceKind::Dns => AppRequest::DnsQuery,
            ServiceKind::Ntp => AppRequest::NtpVersionQuery,
            ServiceKind::Ftp => AppRequest::FtpConnect,
            ServiceKind::Ssh => AppRequest::SshVersionRequest,
            ServiceKind::Telnet => AppRequest::TelnetLogin,
            ServiceKind::Http => AppRequest::HttpGet,
            ServiceKind::Tls => AppRequest::TlsCertificateRequest,
            ServiceKind::HttpAlt => AppRequest::HttpGet,
        }
    }
}

impl std::fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Application-specific probe requests (Table VI, "Request" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppRequest {
    /// `A` / version query.
    DnsQuery,
    /// NTP version query.
    NtpVersionQuery,
    /// Request for connecting.
    FtpConnect,
    /// Version + key request.
    SshVersionRequest,
    /// Request for login.
    TelnetLogin,
    /// HTTP GET request.
    HttpGet,
    /// Certificate request (abstracted ClientHello).
    TlsCertificateRequest,
}

/// Application responses (Table VI, "Valid Response" column). Each response
/// carries the index of the serving [`Software`] in [`SOFTWARE_CATALOG`] so
/// banner analysis works exactly like parsing a real banner, plus an optional
/// vendor string when the device discloses it at the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppResponse {
    /// DNS answer from a forwarder.
    DnsAnswer {
        /// Serving software (e.g. a dnsmasq version).
        software: SoftwareId,
    },
    /// NTP version reply.
    NtpVersionReply {
        /// NTP protocol version (the paper observes version 4 everywhere).
        version: u8,
    },
    /// FTP banner / successful response.
    FtpBanner {
        /// Serving software.
        software: SoftwareId,
    },
    /// SSH version + host key.
    SshBanner {
        /// Serving software.
        software: SoftwareId,
    },
    /// TELNET login prompt.
    TelnetPrompt {
        /// Vendor banner, when the device prints one (37k devices do).
        vendor_banner: Option<&'static str>,
    },
    /// HTTP header + body.
    HttpPage {
        /// `Server:` header software.
        software: SoftwareId,
        /// Whether the body is a router login/management page.
        login_page: bool,
        /// Vendor disclosed in the page (title, copyright...).
        vendor: Option<&'static str>,
    },
    /// TLS certificate + cipher suite.
    TlsCertificate {
        /// Vendor in the certificate subject, when disclosed.
        vendor: Option<&'static str>,
    },
}

impl AppResponse {
    /// Whether this is a *valid* response for `kind` per Table VI.
    pub fn is_valid_for(&self, kind: ServiceKind) -> bool {
        matches!(
            (kind, self),
            (ServiceKind::Dns, AppResponse::DnsAnswer { .. })
                | (ServiceKind::Ntp, AppResponse::NtpVersionReply { .. })
                | (ServiceKind::Ftp, AppResponse::FtpBanner { .. })
                | (ServiceKind::Ssh, AppResponse::SshBanner { .. })
                | (ServiceKind::Telnet, AppResponse::TelnetPrompt { .. })
                | (ServiceKind::Http, AppResponse::HttpPage { .. })
                | (ServiceKind::Tls, AppResponse::TlsCertificate { .. })
                | (ServiceKind::HttpAlt, AppResponse::HttpPage { .. })
        )
    }

    /// The serving software, when the response discloses one.
    pub fn software(&self) -> Option<SoftwareId> {
        match self {
            AppResponse::DnsAnswer { software }
            | AppResponse::FtpBanner { software }
            | AppResponse::SshBanner { software }
            | AppResponse::HttpPage { software, .. } => Some(*software),
            _ => None,
        }
    }

    /// The vendor disclosed at the application layer, if any.
    pub fn vendor(&self) -> Option<&'static str> {
        match self {
            AppResponse::TelnetPrompt { vendor_banner } => *vendor_banner,
            AppResponse::HttpPage { vendor, .. } => *vendor,
            AppResponse::TlsCertificate { vendor } => *vendor,
            _ => None,
        }
    }
}

/// Index into [`SOFTWARE_CATALOG`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SoftwareId(pub u16);

impl SoftwareId {
    /// Resolves the catalog entry.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids are only minted from the
    /// catalog, so this indicates a corrupted record).
    pub fn get(self) -> &'static Software {
        &SOFTWARE_CATALOG[self.0 as usize]
    }
}

/// A software product + version as extracted from banners (Table VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Software {
    /// Which service this software serves.
    pub service: ServiceKind,
    /// Product name, e.g. `dnsmasq`.
    pub name: &'static str,
    /// Version label as the paper reports it, e.g. `2.4x`.
    pub version: &'static str,
    /// Year the version was released (drives the "released 8-10 years ago"
    /// staleness analysis; the paper's probing date is Nov 2020).
    pub released: u16,
}

impl Software {
    /// Full banner string, e.g. `dnsmasq-2.4x`.
    pub fn banner(&self) -> String {
        format!("{}-{}", self.name, self.version)
    }

    /// Age in years at the paper's probing date (Nov 2020).
    pub fn age_at_probe(&self) -> u16 {
        2020u16.saturating_sub(self.released)
    }
}

/// Software catalog covering every product/version in Table VIII.
pub const SOFTWARE_CATALOG: &[Software] = &[
    // -- DNS (dnsmasq families; 2.4x released ~8 years before Nov 2020) --
    Software {
        service: ServiceKind::Dns,
        name: "dnsmasq",
        version: "2.4x",
        released: 2012,
    },
    Software {
        service: ServiceKind::Dns,
        name: "dnsmasq",
        version: "2.5x",
        released: 2013,
    },
    Software {
        service: ServiceKind::Dns,
        name: "dnsmasq",
        version: "2.6x",
        released: 2014,
    },
    Software {
        service: ServiceKind::Dns,
        name: "dnsmasq",
        version: "2.7x",
        released: 2018,
    },
    // -- HTTP --
    Software {
        service: ServiceKind::HttpAlt,
        name: "Jetty",
        version: "9.x",
        released: 2016,
    },
    Software {
        service: ServiceKind::Http,
        name: "MiniWeb HTTP Server",
        version: "0.8",
        released: 2013,
    },
    Software {
        service: ServiceKind::Http,
        name: "micro_httpd",
        version: "14aug2014",
        released: 2014,
    },
    Software {
        service: ServiceKind::Http,
        name: "GoAhead Embedded",
        version: "2.5",
        released: 2012,
    },
    // -- SSH: dropbear --
    Software {
        service: ServiceKind::Ssh,
        name: "dropbear",
        version: "0.46",
        released: 2005,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "dropbear",
        version: "0.48",
        released: 2006,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "dropbear",
        version: "0.5x",
        released: 2008,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "dropbear",
        version: "2012.55",
        released: 2012,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "dropbear",
        version: "2017.75",
        released: 2017,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "dropbear",
        version: "2011-2019.x",
        released: 2015,
    },
    // -- SSH: openssh --
    Software {
        service: ServiceKind::Ssh,
        name: "openssh",
        version: "3.5",
        released: 2002,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "openssh",
        version: "5.x",
        released: 2010,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "openssh",
        version: "6.x",
        released: 2013,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "openssh",
        version: "7.x",
        released: 2016,
    },
    Software {
        service: ServiceKind::Ssh,
        name: "openssh",
        version: "8.x",
        released: 2019,
    },
    // -- FTP --
    Software {
        service: ServiceKind::Ftp,
        name: "GNU Inetutils",
        version: "1.4.1",
        released: 2002,
    },
    Software {
        service: ServiceKind::Ftp,
        name: "Fritz!Box",
        version: "ftpd",
        released: 2015,
    },
    Software {
        service: ServiceKind::Ftp,
        name: "FreeBSD",
        version: "6.00ls",
        released: 2006,
    },
    Software {
        service: ServiceKind::Ftp,
        name: "vsftpd",
        version: "2.2.2",
        released: 2009,
    },
    Software {
        service: ServiceKind::Ftp,
        name: "vsftpd",
        version: "2.3.4",
        released: 2011,
    },
    Software {
        service: ServiceKind::Ftp,
        name: "vsftpd",
        version: "3.0.3",
        released: 2015,
    },
];

/// Looks up catalog ids for a product name (all versions).
pub fn software_ids_by_name(name: &str) -> Vec<SoftwareId> {
    SOFTWARE_CATALOG
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == name)
        .map(|(i, _)| SoftwareId(i as u16))
        .collect()
}

/// Looks up one catalog id by product name and version.
pub fn software_id(name: &str, version: &str) -> Option<SoftwareId> {
    SOFTWARE_CATALOG
        .iter()
        .position(|s| s.name == name && s.version == version)
        .map(|i| SoftwareId(i as u16))
}

/// Per-vendor service behaviour: how much more (or less) likely than the
/// ISP baseline this vendor is to expose each service, which software it
/// runs, and whether it discloses its name at the application layer.
///
/// Multipliers are per-mille relative to the ISP's per-service baseline
/// rate: 1000 = exactly the baseline, 0 = never opens it. They encode the
/// per-vendor service discrepancy of Figures 2 and 3 (e.g. StarNet devices
/// only expose HTTP/8080; Youhua Tech devices open everything but NTP).
#[derive(Debug, Clone, Copy)]
pub struct VendorProfile {
    /// Vendor name (matches `xmap_addr::oui` names).
    pub vendor: &'static str,
    /// Per-service multipliers, indexed like [`ServiceKind::ALL`], per-mille.
    pub multipliers: [u16; 8],
    /// Weighted software choices `(software name, version, weight)` —
    /// resolved against [`SOFTWARE_CATALOG`] per service at generation time.
    pub software: &'static [(&'static str, &'static str, u32)],
    /// Probability (per-mille) that HTTP/TLS/TELNET responses disclose the
    /// vendor, enabling application-level vendor identification.
    pub discloses_vendor: u16,
}

/// Default profile for vendors without a bespoke entry.
pub const DEFAULT_PROFILE: VendorProfile = VendorProfile {
    vendor: "(default)",
    multipliers: [1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000],
    software: &[
        ("dnsmasq", "2.7x", 4),
        ("dnsmasq", "2.6x", 1),
        ("micro_httpd", "14aug2014", 3),
        ("GoAhead Embedded", "2.5", 1),
        ("dropbear", "2017.75", 2),
        ("dropbear", "2012.55", 1),
        ("vsftpd", "3.0.3", 1),
        ("Jetty", "9.x", 1),
    ],
    discloses_vendor: 250,
};

/// Bespoke per-vendor profiles (order: Dns, Ntp, Ftp, Ssh, Telnet, Http, Tls, HttpAlt).
pub const VENDOR_PROFILES: &[VendorProfile] = &[
    VendorProfile {
        // Jetty on 8080 dominates (3.5M devices); DNS + HTTP/80 heavy.
        vendor: "China Mobile",
        multipliers: [1100, 100, 900, 800, 900, 1500, 300, 1800],
        software: &[
            ("dnsmasq", "2.7x", 2),
            ("dnsmasq", "2.4x", 1),
            ("Jetty", "9.x", 10),
            ("MiniWeb HTTP Server", "0.8", 4),
            ("micro_httpd", "14aug2014", 2),
            ("dropbear", "0.48", 3),
            ("GNU Inetutils", "1.4.1", 3),
        ],
        discloses_vendor: 700,
    },
    VendorProfile {
        // DNS (198k), SSH, FTP, TELNET strong.
        vendor: "Fiberhome",
        multipliers: [2500, 50, 2400, 2600, 2400, 700, 400, 300],
        software: &[
            ("dnsmasq", "2.7x", 3),
            ("dnsmasq", "2.5x", 1),
            ("dropbear", "0.48", 5),
            ("dropbear", "0.46", 1),
            ("GNU Inetutils", "1.4.1", 4),
            ("micro_httpd", "14aug2014", 2),
        ],
        discloses_vendor: 600,
    },
    VendorProfile {
        // Everything except NTP; dnsmasq 2.4x (~8 years old) on 141k devices.
        vendor: "Youhua Tech",
        multipliers: [2400, 0, 2300, 2500, 2600, 1200, 900, 400],
        software: &[
            ("dnsmasq", "2.4x", 9),
            ("dnsmasq", "2.5x", 1),
            ("dropbear", "0.48", 4),
            ("GNU Inetutils", "1.4.1", 3),
            ("MiniWeb HTTP Server", "0.8", 2),
        ],
        discloses_vendor: 650,
    },
    VendorProfile {
        vendor: "China Unicom",
        multipliers: [1600, 100, 500, 500, 2200, 900, 200, 300],
        software: &[
            ("dnsmasq", "2.6x", 2),
            ("dnsmasq", "2.7x", 1),
            ("micro_httpd", "14aug2014", 2),
            ("dropbear", "2012.55", 1),
        ],
        discloses_vendor: 700,
    },
    VendorProfile {
        vendor: "ZTE",
        multipliers: [1500, 100, 700, 600, 1900, 1300, 400, 500],
        software: &[
            ("dnsmasq", "2.5x", 2),
            ("dnsmasq", "2.7x", 2),
            ("GoAhead Embedded", "2.5", 3),
            ("micro_httpd", "14aug2014", 1),
            ("dropbear", "0.5x", 2),
        ],
        discloses_vendor: 550,
    },
    VendorProfile {
        // Only HTTP/8080 per Figure 2.
        vendor: "StarNet",
        multipliers: [0, 0, 0, 0, 0, 0, 0, 2600],
        software: &[("Jetty", "9.x", 1)],
        discloses_vendor: 500,
    },
    VendorProfile {
        vendor: "Skyworth",
        multipliers: [300, 50, 200, 300, 300, 1900, 300, 700],
        software: &[
            ("MiniWeb HTTP Server", "0.8", 3),
            ("micro_httpd", "14aug2014", 2),
            ("dnsmasq", "2.7x", 1),
        ],
        discloses_vendor: 600,
    },
    VendorProfile {
        // Fritz!Box: FTP + TLS + NTP visible.
        vendor: "AVM GmbH",
        multipliers: [200, 1800, 2200, 300, 100, 800, 2400, 200],
        software: &[("Fritz!Box", "ftpd", 5), ("GoAhead Embedded", "2.5", 1)],
        discloses_vendor: 900,
    },
    VendorProfile {
        vendor: "TP-Link",
        multipliers: [500, 100, 300, 300, 400, 2100, 700, 300],
        software: &[
            ("micro_httpd", "14aug2014", 4),
            ("GoAhead Embedded", "2.5", 2),
            ("dnsmasq", "2.7x", 2),
            ("dropbear", "2017.75", 1),
        ],
        discloses_vendor: 800,
    },
    VendorProfile {
        vendor: "Hitron Tech",
        multipliers: [200, 100, 100, 200, 100, 700, 2500, 400],
        software: &[
            ("MiniWeb HTTP Server", "0.8", 1),
            ("GoAhead Embedded", "2.5", 1),
        ],
        discloses_vendor: 700,
    },
    VendorProfile {
        vendor: "OpenWrt",
        multipliers: [900, 200, 300, 1500, 1300, 1100, 600, 200],
        software: &[
            ("dnsmasq", "2.7x", 6),
            ("dropbear", "2017.75", 4),
            ("dropbear", "2011-2019.x", 1),
        ],
        discloses_vendor: 850,
    },
    VendorProfile {
        // CenturyLink-heavy NTP exposure shows through this CPE vendor.
        vendor: "Technicolor",
        multipliers: [400, 2600, 300, 400, 300, 900, 800, 200],
        software: &[
            ("GoAhead Embedded", "2.5", 2),
            ("dnsmasq", "2.6x", 1),
            ("openssh", "6.x", 1),
        ],
        discloses_vendor: 700,
    },
    VendorProfile {
        vendor: "Huawei",
        multipliers: [700, 150, 400, 500, 700, 1300, 800, 300],
        software: &[
            ("dnsmasq", "2.6x", 2),
            ("GoAhead Embedded", "2.5", 2),
            ("dropbear", "0.5x", 1),
            ("openssh", "5.x", 1),
        ],
        discloses_vendor: 750,
    },
    VendorProfile {
        vendor: "Mercury",
        multipliers: [600, 0, 200, 200, 500, 1700, 300, 300],
        software: &[("micro_httpd", "14aug2014", 2), ("dnsmasq", "2.7x", 1)],
        discloses_vendor: 650,
    },
    VendorProfile {
        vendor: "D-Link",
        multipliers: [500, 100, 400, 300, 500, 1600, 600, 300],
        software: &[
            ("GoAhead Embedded", "2.5", 2),
            ("micro_httpd", "14aug2014", 1),
            ("dnsmasq", "2.6x", 1),
        ],
        discloses_vendor: 800,
    },
    VendorProfile {
        vendor: "MikroTik",
        multipliers: [800, 600, 700, 1600, 900, 1200, 700, 200],
        software: &[
            ("openssh", "7.x", 2),
            ("dnsmasq", "2.7x", 1),
            ("vsftpd", "3.0.3", 1),
        ],
        discloses_vendor: 850,
    },
    VendorProfile {
        vendor: "Netgear",
        multipliers: [400, 150, 300, 300, 200, 1500, 900, 200],
        software: &[
            ("GoAhead Embedded", "2.5", 1),
            ("dnsmasq", "2.7x", 1),
            ("openssh", "6.x", 1),
        ],
        discloses_vendor: 800,
    },
    VendorProfile {
        vendor: "Xfinity",
        multipliers: [100, 300, 100, 200, 100, 800, 1800, 300],
        software: &[("MiniWeb HTTP Server", "0.8", 1)],
        discloses_vendor: 700,
    },
    VendorProfile {
        vendor: "Shenzhen",
        multipliers: [900, 100, 600, 700, 900, 1100, 300, 400],
        software: &[
            ("dnsmasq", "2.5x", 1),
            ("micro_httpd", "14aug2014", 1),
            ("dropbear", "0.5x", 1),
        ],
        discloses_vendor: 500,
    },
    VendorProfile {
        vendor: "China Telecom",
        multipliers: [1200, 100, 600, 500, 1100, 1000, 300, 600],
        software: &[
            ("dnsmasq", "2.6x", 2),
            ("micro_httpd", "14aug2014", 1),
            ("dropbear", "2012.55", 1),
        ],
        discloses_vendor: 650,
    },
    VendorProfile {
        vendor: "Asus",
        multipliers: [600, 200, 500, 900, 300, 1400, 800, 200],
        software: &[
            ("dnsmasq", "2.7x", 2),
            ("dropbear", "2017.75", 1),
            ("vsftpd", "3.0.3", 1),
        ],
        discloses_vendor: 850,
    },
    VendorProfile {
        vendor: "Nokia",
        multipliers: [300, 150, 200, 300, 300, 1100, 900, 200],
        software: &[("GoAhead Embedded", "2.5", 1), ("openssh", "7.x", 1)],
        discloses_vendor: 750,
    },
];

/// Resolves the profile for `vendor`, falling back to [`DEFAULT_PROFILE`].
pub fn vendor_profile(vendor: &str) -> &'static VendorProfile {
    VENDOR_PROFILES
        .iter()
        .find(|p| p.vendor == vendor)
        .unwrap_or(&DEFAULT_PROFILE)
}

/// TELNET banners observed in the wild (Section V-B: 37k devices print
/// forthright vendor banners).
pub const TELNET_BANNER_VENDORS: &[&str] = &["China Unicom", "Yocto", "OpenWrt"];

/// Re-interns a vendor string against the simulation's static
/// vocabulary (profile vendors and TELNET banners). Wire-trace replay
/// decodes recorded vendor strings back into the `&'static str` fields
/// [`AppResponse`] carries; `None` means the string is not part of this
/// build's vocabulary.
pub fn intern_vendor(name: &str) -> Option<&'static str> {
    VENDOR_PROFILES
        .iter()
        .map(|p| p.vendor)
        .chain(std::iter::once(DEFAULT_PROFILE.vendor))
        .chain(TELNET_BANNER_VENDORS.iter().copied())
        .find(|v| *v == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_match_table_vi() {
        assert_eq!(ServiceKind::Dns.port(), 53);
        assert_eq!(ServiceKind::Ntp.port(), 123);
        assert_eq!(ServiceKind::Ftp.port(), 21);
        assert_eq!(ServiceKind::Ssh.port(), 22);
        assert_eq!(ServiceKind::Telnet.port(), 23);
        assert_eq!(ServiceKind::Http.port(), 80);
        assert_eq!(ServiceKind::Tls.port(), 443);
        assert_eq!(ServiceKind::HttpAlt.port(), 8080);
    }

    #[test]
    fn transports_match_table_vi() {
        assert_eq!(ServiceKind::Dns.transport(), TransportProto::Udp);
        assert_eq!(ServiceKind::Ntp.transport(), TransportProto::Udp);
        for s in [
            ServiceKind::Ftp,
            ServiceKind::Ssh,
            ServiceKind::Telnet,
            ServiceKind::Http,
            ServiceKind::Tls,
            ServiceKind::HttpAlt,
        ] {
            assert_eq!(s.transport(), TransportProto::Tcp);
        }
    }

    #[test]
    fn from_port_roundtrip() {
        for s in ServiceKind::ALL {
            assert_eq!(ServiceKind::from_port(s.port()), Some(s));
        }
        assert_eq!(ServiceKind::from_port(9999), None);
    }

    #[test]
    fn label_format() {
        assert_eq!(ServiceKind::Dns.label(), "DNS (UDP/53)");
        assert_eq!(ServiceKind::Http.label(), "HTTP (TCP/80)");
    }

    #[test]
    fn response_validity_matrix() {
        let dns = AppResponse::DnsAnswer {
            software: software_id("dnsmasq", "2.4x").unwrap(),
        };
        assert!(dns.is_valid_for(ServiceKind::Dns));
        assert!(!dns.is_valid_for(ServiceKind::Http));
        let page = AppResponse::HttpPage {
            software: software_id("Jetty", "9.x").unwrap(),
            login_page: true,
            vendor: None,
        };
        assert!(page.is_valid_for(ServiceKind::Http));
        assert!(page.is_valid_for(ServiceKind::HttpAlt));
        assert!(!page.is_valid_for(ServiceKind::Tls));
    }

    #[test]
    fn catalog_covers_table_viii() {
        for (name, version) in [
            ("dnsmasq", "2.4x"),
            ("dnsmasq", "2.7x"),
            ("Jetty", "9.x"),
            ("MiniWeb HTTP Server", "0.8"),
            ("micro_httpd", "14aug2014"),
            ("GoAhead Embedded", "2.5"),
            ("dropbear", "0.46"),
            ("dropbear", "0.48"),
            ("openssh", "3.5"),
            ("GNU Inetutils", "1.4.1"),
            ("FreeBSD", "6.00ls"),
            ("vsftpd", "2.3.4"),
        ] {
            assert!(
                software_id(name, version).is_some(),
                "{name}-{version} missing"
            );
        }
    }

    #[test]
    fn dnsmasq_24x_is_about_8_years_old() {
        let sw = software_id("dnsmasq", "2.4x").unwrap().get();
        assert_eq!(sw.age_at_probe(), 8);
        assert_eq!(sw.banner(), "dnsmasq-2.4x");
    }

    #[test]
    fn openssh_35_released_2002() {
        assert_eq!(software_id("openssh", "3.5").unwrap().get().released, 2002);
    }

    #[test]
    fn vendor_profiles_resolve_software() {
        // Every (name, version) in every profile must exist in the catalog.
        for p in VENDOR_PROFILES
            .iter()
            .chain(std::iter::once(&DEFAULT_PROFILE))
        {
            for (name, version, weight) in p.software {
                assert!(*weight > 0, "{}: zero weight entry", p.vendor);
                assert!(
                    software_id(name, version).is_some(),
                    "{}: unknown software {name}-{version}",
                    p.vendor
                );
            }
        }
    }

    #[test]
    fn starnet_only_opens_8080() {
        let p = vendor_profile("StarNet");
        for (i, s) in ServiceKind::ALL.iter().enumerate() {
            if *s == ServiceKind::HttpAlt {
                assert!(p.multipliers[i] > 0);
            } else {
                assert_eq!(p.multipliers[i], 0, "{s} should be closed on StarNet");
            }
        }
    }

    #[test]
    fn unknown_vendor_gets_default_profile() {
        assert_eq!(vendor_profile("No Such Vendor").vendor, "(default)");
    }

    #[test]
    fn software_ids_by_name_finds_all_versions() {
        assert_eq!(software_ids_by_name("dnsmasq").len(), 4);
        assert_eq!(software_ids_by_name("dropbear").len(), 6);
        assert_eq!(software_ids_by_name("openssh").len(), 5);
        assert_eq!(software_ids_by_name("vsftpd").len(), 3);
    }
}
