//! Router-model catalog and topology builders for the case studies.
//!
//! Section VI-D tests 95 sample home routers from 20 vendors plus 4
//! open-source router OSes (all updated to their latest firmware as of
//! Dec 1st 2020) in a controlled broadband home network: WAN assigned a
//! /64, LAN delegated a /60. Table XII reports per-model vulnerability of
//! the WAN and LAN prefixes; all 99 are vulnerable to the loop on at least
//! one prefix, and four (Xiaomi, Gargoyle, librecmc, OpenWrt) forward loop
//! packets only a bounded number of times.
//!
//! [`RouterModel`] encodes those behaviours; [`build_home_network`] turns a
//! model into an explicit [`Engine`] topology reproducing Figure 4.

use xmap_addr::{Ip6, Prefix};

use crate::engine::{Engine, NodeId, RouteAction};

/// How a router handles loop packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopBehavior {
    /// Standards-compliant forwarding: the packet loops (255−n)/2 times
    /// through the router.
    FullLoop,
    /// The firmware clamps forwarded hop limits, so a loop packet is
    /// forwarded only a bounded number of times (>10 in the paper's tests).
    Limited {
        /// Hop-limit value the router clamps to when forwarding.
        clamp: u8,
    },
}

/// One tested router (a Table XII row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterModel {
    /// Vendor brand.
    pub brand: &'static str,
    /// Model name (or OS version for router OSes).
    pub model: &'static str,
    /// Firmware version tested.
    pub firmware: &'static str,
    /// Loop-vulnerable for not-used addresses within the WAN /64.
    pub wan_vulnerable: bool,
    /// Loop-vulnerable for not-used prefixes within the delegated LAN /60.
    pub lan_vulnerable: bool,
    /// Loop forwarding behaviour.
    pub behavior: LoopBehavior,
    /// Whether this entry is an open-source router OS rather than hardware.
    pub is_os: bool,
}

impl RouterModel {
    /// Whether the model is vulnerable on at least one prefix (the paper
    /// finds this true for all 99 entries).
    pub const fn is_vulnerable(&self) -> bool {
        self.wan_vulnerable || self.lan_vulnerable
    }
}

/// The individually named rows of Table XII.
pub const NAMED_MODELS: &[RouterModel] = &[
    RouterModel {
        brand: "ASUS",
        model: "GT-AC5300",
        firmware: "3.0.0.4.384_82037",
        wan_vulnerable: true,
        lan_vulnerable: false,
        behavior: LoopBehavior::FullLoop,
        is_os: false,
    },
    RouterModel {
        brand: "D-Link",
        model: "COVR-3902",
        firmware: "1.01",
        wan_vulnerable: true,
        lan_vulnerable: false,
        behavior: LoopBehavior::FullLoop,
        is_os: false,
    },
    RouterModel {
        brand: "Huawei",
        model: "WS5100",
        firmware: "10.0.2.8",
        wan_vulnerable: true,
        lan_vulnerable: true,
        behavior: LoopBehavior::FullLoop,
        is_os: false,
    },
    RouterModel {
        brand: "Linksys",
        model: "EA8100",
        firmware: "2.0.1.200539",
        wan_vulnerable: true,
        lan_vulnerable: true,
        behavior: LoopBehavior::FullLoop,
        is_os: false,
    },
    RouterModel {
        brand: "Netgear",
        model: "R6400v2",
        firmware: "1.0.4.102_10.0.75",
        wan_vulnerable: true,
        lan_vulnerable: true,
        behavior: LoopBehavior::FullLoop,
        is_os: false,
    },
    RouterModel {
        brand: "Tenda",
        model: "AC23",
        firmware: "16.03.07.35",
        wan_vulnerable: true,
        lan_vulnerable: false,
        behavior: LoopBehavior::FullLoop,
        is_os: false,
    },
    RouterModel {
        brand: "TP-Link",
        model: "TL-XDR3230",
        firmware: "1.0.8",
        wan_vulnerable: true,
        lan_vulnerable: true,
        behavior: LoopBehavior::FullLoop,
        is_os: false,
    },
    RouterModel {
        brand: "Xiaomi",
        model: "AX5",
        firmware: "1.0.33",
        wan_vulnerable: true,
        lan_vulnerable: false,
        behavior: LoopBehavior::Limited { clamp: 24 },
        is_os: false,
    },
    RouterModel {
        brand: "OpenWrt",
        model: "19.07.4",
        firmware: "r11208-ce6496d796",
        wan_vulnerable: true,
        lan_vulnerable: false,
        behavior: LoopBehavior::Limited { clamp: 24 },
        is_os: true,
    },
];

/// Brand → number of tested units (Table XII footer; 95 routers total) and
/// per-brand defaults for the unnamed units.
const BRAND_COUNTS: &[(&str, u8, bool, bool)] = &[
    // (brand, tested units, default wan_vulnerable, default lan_vulnerable)
    ("ASUS", 1, true, false),
    ("China Mobile", 4, true, true),
    ("D-Link", 2, true, false),
    ("FAST", 1, true, false),
    ("Fiberhome", 2, true, true),
    ("H3C", 1, true, false),
    ("Hisense", 1, true, false),
    ("Huawei", 4, true, true),
    ("iKuai", 3, true, false),
    ("Linksys", 1, true, true),
    ("Mercury", 8, true, false),
    ("MikroTik", 1, true, false),
    ("Netgear", 2, true, true),
    ("Skyworth", 9, true, true),
    ("Tenda", 1, true, false),
    ("Totolink", 1, true, false),
    ("TP-Link", 42, true, true),
    ("Xiaomi", 1, true, false),
    ("Youhua Tech", 1, true, true),
    ("ZTE", 9, true, true),
];

/// The four tested open-source router OSes.
const OS_MODELS: &[(&str, &str, LoopBehavior)] = &[
    ("DD-Wrt", "r44715", LoopBehavior::FullLoop),
    ("Gargoyle", "1.12.0", LoopBehavior::Limited { clamp: 24 }),
    ("librecmc", "1.5.7", LoopBehavior::Limited { clamp: 24 }),
    ("OpenWrt", "19.07.4", LoopBehavior::Limited { clamp: 24 }),
];

/// Builds the full 99-entry catalog: 95 hardware routers (per the brand
/// counts of Table XII's footer, with the individually named rows taking
/// their published behaviour) plus the 4 router OSes.
pub fn full_catalog() -> Vec<RouterModel> {
    let mut out = Vec::with_capacity(99);
    for (brand, count, wan, lan) in BRAND_COUNTS {
        for unit in 0..*count {
            // The first unit of a brand with a named row uses the named data.
            let named = (unit == 0)
                .then(|| NAMED_MODELS.iter().find(|m| m.brand == *brand && !m.is_os))
                .flatten();
            match named {
                Some(m) => out.push(*m),
                None => out.push(RouterModel {
                    brand,
                    model: "unit",
                    firmware: "latest (Dec 2020)",
                    wan_vulnerable: *wan,
                    lan_vulnerable: *lan,
                    behavior: if *brand == "Xiaomi" {
                        LoopBehavior::Limited { clamp: 24 }
                    } else {
                        LoopBehavior::FullLoop
                    },
                    is_os: false,
                }),
            }
        }
    }
    for (brand, fw, behavior) in OS_MODELS {
        out.push(RouterModel {
            brand,
            model: "router OS",
            firmware: fw,
            wan_vulnerable: true,
            lan_vulnerable: *brand == "DD-Wrt",
            behavior: *behavior,
            is_os: true,
        });
    }
    out
}

/// The addressing plan of the controlled home network (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeNetworkPlan {
    /// Scanner address.
    pub vantage_addr: Ip6,
    /// ISP router address.
    pub isp_addr: Ip6,
    /// WAN /64 assigned to the CPE.
    pub wan_prefix: Prefix,
    /// CPE WAN interface address.
    pub cpe_wan_addr: Ip6,
    /// /60 delegated to the CPE.
    pub lan_prefix: Prefix,
    /// The one /64 the CPE actually uses on its LAN.
    pub subnet_prefix: Prefix,
    /// A host inside the used subnet.
    pub lan_host: Ip6,
    /// Number of transit hops between the vantage and the ISP router.
    pub transit_hops: u8,
}

impl Default for HomeNetworkPlan {
    fn default() -> Self {
        HomeNetworkPlan {
            vantage_addr: "fd00::1".parse().expect("static"),
            isp_addr: "2001:db8::1".parse().expect("static"),
            wan_prefix: "2001:db8:1234:5678::/64".parse().expect("static"),
            cpe_wan_addr: "2001:db8:1234:5678::aa".parse().expect("static"),
            lan_prefix: "2001:db8:4321:8760::/60".parse().expect("static"),
            subnet_prefix: "2001:db8:4321:8765::/64".parse().expect("static"),
            lan_host: "2001:db8:4321:8765::100".parse().expect("static"),
            transit_hops: 0,
        }
    }
}

impl HomeNetworkPlan {
    /// A not-used /64 inside the delegated LAN prefix (Figure 4's
    /// `2001:db8:4321:8769::/64`).
    pub fn not_used_lan_prefix(&self) -> Prefix {
        self.lan_prefix.subprefix(64, 9)
    }

    /// A nonexistent address within the WAN /64 (Figure 4's "NX Address").
    pub fn nx_wan_address(&self) -> Ip6 {
        self.wan_prefix.addr().with_iid(0xdead_beef_0000_0001)
    }
}

/// Handles to the nodes of a built home network.
#[derive(Debug, Clone, Copy)]
pub struct HomeNetwork {
    /// The scanner's node.
    pub vantage: NodeId,
    /// The provider router P of Figure 4.
    pub isp: NodeId,
    /// The CPE router R of Figure 4.
    pub cpe: NodeId,
}

/// Builds the Figure 4 topology for one router model: vantage → (transit
/// hops) → ISP router P → CPE router R with the plan's prefixes, wiring the
/// CPE's routing table per the model's vulnerability flags:
///
/// * `wan_vulnerable` — the CPE has a host route for its own WAN address
///   only, so other WAN-/64 addresses fall through to the default route,
/// * `lan_vulnerable` — the CPE lacks the RFC 7084 unreachable route for
///   the unused part of the delegated prefix,
/// * a patched prefix gets an explicit [`RouteAction::Reject`].
pub fn build_home_network(model: &RouterModel, plan: &HomeNetworkPlan) -> (Engine, HomeNetwork) {
    let mut e = Engine::new();
    let vantage = e.add_node("vantage", vec![plan.vantage_addr]);
    e.set_vantage(vantage);

    // Optional transit chain between vantage and ISP router.
    let mut prev = vantage;
    for i in 0..plan.transit_hops {
        let addr = Ip6::new(plan.vantage_addr.bits() | (0x1_0000 + i as u128));
        let hop = e.add_node(&format!("transit{i}"), vec![addr]);
        e.add_route(
            prev,
            "::/0".parse().expect("static"),
            RouteAction::Forward(hop),
        );
        // Return path toward the vantage.
        e.add_route(
            hop,
            "fd00::/16".parse().expect("static"),
            RouteAction::Forward(prev),
        );
        prev = hop;
    }

    let isp = e.add_node("isp-router", vec![plan.isp_addr]);
    e.add_route(
        prev,
        "::/0".parse().expect("static"),
        RouteAction::Forward(isp),
    );

    let cpe = e.add_node(
        &format!("{} {}", model.brand, model.model),
        vec![plan.cpe_wan_addr],
    );
    if let LoopBehavior::Limited { clamp } = model.behavior {
        e.set_hop_limit_clamp(cpe, clamp);
    }

    // ISP router P routes both the WAN /64 and the delegated /60 to R.
    e.add_route(isp, plan.wan_prefix, RouteAction::Forward(cpe));
    e.add_route(isp, plan.lan_prefix, RouteAction::Forward(cpe));
    e.add_route(
        isp,
        "fd00::/16".parse().expect("static"),
        RouteAction::Forward(prev),
    );
    e.add_route(isp, "::/0".parse().expect("static"), RouteAction::Blackhole);

    // CPE router R: the used subnet is on-link; everything else defaults
    // upstream. Patched prefixes get explicit unreachable routes.
    e.add_route(cpe, plan.subnet_prefix, RouteAction::OnLink);
    e.add_host(cpe, plan.lan_host);
    if !model.lan_vulnerable {
        e.add_route(cpe, plan.lan_prefix, RouteAction::Reject);
    }
    if !model.wan_vulnerable {
        e.add_route(cpe, plan.wan_prefix, RouteAction::Reject);
    }
    e.add_route(
        cpe,
        "::/0".parse().expect("static"),
        RouteAction::Forward(isp),
    );

    (e, HomeNetwork { vantage, isp, cpe })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Icmpv6, Ipv6Packet, Network, Payload, UnreachCode, MAX_HOP_LIMIT};

    #[test]
    fn catalog_has_99_entries_all_vulnerable() {
        let catalog = full_catalog();
        assert_eq!(catalog.len(), 99);
        assert!(
            catalog.iter().all(|m| m.is_vulnerable()),
            "every entry is vulnerable"
        );
        let hardware = catalog.iter().filter(|m| !m.is_os).count();
        assert_eq!(hardware, 95);
        // 20 hardware brands.
        let mut brands: Vec<&str> = catalog
            .iter()
            .filter(|m| !m.is_os)
            .map(|m| m.brand)
            .collect();
        brands.sort_unstable();
        brands.dedup();
        assert_eq!(brands.len(), 20);
    }

    #[test]
    fn tplink_dominates_test_pool() {
        let catalog = full_catalog();
        let tplink = catalog.iter().filter(|m| m.brand == "TP-Link").count();
        assert_eq!(tplink, 42);
    }

    #[test]
    fn named_models_match_table_xii() {
        let huawei = NAMED_MODELS.iter().find(|m| m.brand == "Huawei").unwrap();
        assert!(huawei.wan_vulnerable && huawei.lan_vulnerable);
        let asus = NAMED_MODELS.iter().find(|m| m.brand == "ASUS").unwrap();
        assert!(asus.wan_vulnerable && !asus.lan_vulnerable);
        let xiaomi = NAMED_MODELS.iter().find(|m| m.brand == "Xiaomi").unwrap();
        assert!(matches!(xiaomi.behavior, LoopBehavior::Limited { .. }));
    }

    #[test]
    fn vulnerable_lan_prefix_loops() {
        let model = NAMED_MODELS.iter().find(|m| m.brand == "Huawei").unwrap();
        let plan = HomeNetworkPlan::default();
        let (mut e, net) = build_home_network(model, &plan);
        let target = plan.not_used_lan_prefix().addr().with_iid(1);
        e.reset_counters();
        let replies = e.handle(Ipv6Packet::echo_request(
            plan.vantage_addr,
            target,
            MAX_HOP_LIMIT,
            0,
            0,
        ));
        let loop_fwd = e.link_forwards(net.isp, net.cpe) + e.link_forwards(net.cpe, net.isp);
        assert!(loop_fwd > 200, "{loop_fwd}");
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::TimeExceeded { .. })
        ));
    }

    #[test]
    fn immune_lan_prefix_answers_unreachable() {
        // ASUS GT-AC5300: LAN not vulnerable → reject route → unreachable.
        let model = NAMED_MODELS.iter().find(|m| m.brand == "ASUS").unwrap();
        let plan = HomeNetworkPlan::default();
        let (mut e, _) = build_home_network(model, &plan);
        let target = plan.not_used_lan_prefix().addr().with_iid(1);
        let replies = e.handle(Ipv6Packet::echo_request(
            plan.vantage_addr,
            target,
            MAX_HOP_LIMIT,
            0,
            0,
        ));
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::RejectRoute,
                ..
            })
        ));
    }

    #[test]
    fn wan_nx_address_loops_when_vulnerable() {
        let model = NAMED_MODELS.iter().find(|m| m.brand == "ASUS").unwrap();
        let plan = HomeNetworkPlan::default();
        let (mut e, net) = build_home_network(model, &plan);
        e.reset_counters();
        e.handle(Ipv6Packet::echo_request(
            plan.vantage_addr,
            plan.nx_wan_address(),
            MAX_HOP_LIMIT,
            0,
            0,
        ));
        let loop_fwd = e.link_forwards(net.isp, net.cpe) + e.link_forwards(net.cpe, net.isp);
        assert!(loop_fwd > 200, "{loop_fwd}");
    }

    #[test]
    fn limited_loop_models_forward_bounded_times() {
        let model = NAMED_MODELS.iter().find(|m| m.brand == "Xiaomi").unwrap();
        let plan = HomeNetworkPlan::default();
        let (mut e, net) = build_home_network(model, &plan);
        e.reset_counters();
        e.handle(Ipv6Packet::echo_request(
            plan.vantage_addr,
            plan.nx_wan_address(),
            MAX_HOP_LIMIT,
            0,
            0,
        ));
        let loop_fwd = e.link_forwards(net.isp, net.cpe) + e.link_forwards(net.cpe, net.isp);
        // ">10 times" but far below the full 253.
        assert!(loop_fwd > 10, "{loop_fwd}");
        assert!(loop_fwd < 40, "{loop_fwd}");
    }

    #[test]
    fn transit_hops_shorten_loops() {
        let model = NAMED_MODELS.iter().find(|m| m.brand == "Huawei").unwrap();
        let plan = HomeNetworkPlan {
            transit_hops: 10,
            ..Default::default()
        };
        let (mut e, net) = build_home_network(model, &plan);
        e.reset_counters();
        e.handle(Ipv6Packet::echo_request(
            plan.vantage_addr,
            plan.not_used_lan_prefix().addr().with_iid(1),
            MAX_HOP_LIMIT,
            0,
            0,
        ));
        let loop_fwd = e.link_forwards(net.isp, net.cpe) + e.link_forwards(net.cpe, net.isp);
        // Amplification 255 - n: ten extra hops remove ten loop traversals.
        assert_eq!(loop_fwd, 253 - 10);
    }

    #[test]
    fn lan_host_reachable_through_cpe() {
        let model = NAMED_MODELS.iter().find(|m| m.brand == "Huawei").unwrap();
        let plan = HomeNetworkPlan::default();
        let (mut e, _) = build_home_network(model, &plan);
        let replies = e.handle(Ipv6Packet::echo_request(
            plan.vantage_addr,
            plan.lan_host,
            64,
            3,
            4,
        ));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::EchoReply { ident: 3, seq: 4 })
        ));
    }
}
