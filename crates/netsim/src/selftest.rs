//! Calibration self-test: does the procedural population match its spec?
//!
//! The world's device populations are *derived* from the [`crate::isp`]
//! profiles; every reproduction claim rests on the derivation actually
//! honouring the calibration numbers. [`validate_profile`] samples a
//! block's ground truth through the oracle and compares the empirical
//! occupancy, reply-mode split, EUI-64 share and loop rate against the
//! profile, reporting relative deviations. Tests pin the deviations;
//! researchers editing profiles can run it to re-verify.

use crate::device::ReplyMode;
use crate::isp::IspProfile;
use crate::world::World;
use xmap_addr::IidClass;

/// Empirical-vs-target deviations for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileValidation {
    /// Devices found in the sample.
    pub sampled_devices: usize,
    /// Empirical occupancy / profile occupancy − 1.
    pub occupancy_err: f64,
    /// Empirical same-mode share − profile share (absolute).
    pub same_err: f64,
    /// Empirical EUI-64 share − profile share (absolute).
    pub eui64_err: f64,
    /// Empirical loop rate − profile rate (absolute).
    pub loop_err: f64,
}

impl ProfileValidation {
    /// Whether every deviation is inside the tolerance for the sample size
    /// (≈4σ binomial bounds plus a floor for tiny samples).
    pub fn within_tolerance(&self) -> bool {
        let n = self.sampled_devices.max(1) as f64;
        let bound = 4.0 / n.sqrt() + 0.01;
        self.occupancy_err.abs() < 0.25 + 40.0 / n
            && self.same_err.abs() < bound
            && self.eui64_err.abs() < bound
            && self.loop_err.abs() < bound
    }
}

/// Samples `sample` sub-prefixes of block `profile_idx` through the oracle
/// and compares against the profile's calibration targets.
pub fn validate_profile(
    world: &World,
    profile_idx: usize,
    profile: &IspProfile,
    sample: u64,
) -> ProfileValidation {
    let mut devices = 0usize;
    let mut same = 0usize;
    let mut eui = 0usize;
    let mut loops = 0usize;
    for i in 0..sample {
        let Some(d) = world.device_at(profile_idx, i) else {
            continue;
        };
        devices += 1;
        if d.reply_mode == ReplyMode::SamePrefix {
            same += 1;
        }
        if d.iid_class == IidClass::Eui64 {
            eui += 1;
        }
        if d.loop_vuln_lan || d.loop_vuln_wan {
            loops += 1;
        }
    }
    let n = devices.max(1) as f64;
    let empirical_occ = devices as f64 / sample.max(1) as f64;
    // The profile's same_frac applies to non-loop devices and
    // loop_same_frac to loop devices; the blended expectation:
    let expected_same =
        profile.loop_rate * profile.loop_same_frac + (1.0 - profile.loop_rate) * profile.same_frac;
    ProfileValidation {
        sampled_devices: devices,
        occupancy_err: empirical_occ / profile.occupancy - 1.0,
        same_err: same as f64 / n - expected_same,
        eui64_err: eui as f64 / n - profile.eui64_frac,
        loop_err: loops as f64 / n - profile.loop_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isp::SAMPLE_BLOCKS;
    use crate::world::WorldConfig;

    #[test]
    fn dense_blocks_validate_at_modest_samples() {
        let world = World::with_config(WorldConfig::lossless(404, 5));
        // The five densest blocks: Airtel, AT&T-M, CN Mobile bb, Unicom-M,
        // CN Mobile cellular.
        for idx in [2usize, 8, 12, 13, 14] {
            let p = &SAMPLE_BLOCKS[idx];
            let v = validate_profile(&world, idx, p, 1 << 19);
            assert!(
                v.within_tolerance(),
                "{}: {v:?} (occupancy target {})",
                p.name,
                p.occupancy
            );
            assert!(v.sampled_devices > 50, "{}: {}", p.name, v.sampled_devices);
        }
    }

    #[test]
    fn loop_heavy_block_hits_its_rate() {
        let world = World::with_config(WorldConfig::lossless(404, 5));
        let p = &SAMPLE_BLOCKS[11]; // Unicom broadband, 78.8% loops
        let v = validate_profile(&world, 11, p, 1 << 21);
        assert!(v.sampled_devices > 300, "{}", v.sampled_devices);
        assert!(v.loop_err.abs() < 0.08, "{v:?}");
    }

    #[test]
    fn different_seeds_validate_too() {
        for seed in [1u64, 999, 123456789] {
            let world = World::with_config(WorldConfig::lossless(seed, 5));
            let v = validate_profile(&world, 12, &SAMPLE_BLOCKS[12], 1 << 18);
            assert!(v.within_tolerance(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn tolerance_logic() {
        let good = ProfileValidation {
            sampled_devices: 10_000,
            occupancy_err: 0.01,
            same_err: 0.005,
            eui64_err: -0.01,
            loop_err: 0.02,
        };
        assert!(good.within_tolerance());
        let bad = ProfileValidation {
            same_err: 0.5,
            ..good
        };
        assert!(!bad.within_tolerance());
    }
}
