//! Composable, deterministic fault injection for the simulated Internet.
//!
//! The live IPv6 Internet the paper scanned is a hostile channel: probes
//! and responses are lost, CPEs rate-limit ICMPv6 error generation with
//! token buckets (RFC 4443 §2.4), home routers reboot, and responses
//! arrive duplicated, late, and out of order. A [`FaultPlan`] describes
//! all of those behaviours as a pure function of `(plan seed, packet,
//! virtual time)`, so any experiment under faults replays byte-for-byte:
//! two worlds built from the same `WorldConfig` (including its plan) and
//! probed with the same packet sequence produce identical responses,
//! identical statistics, and identical retransmission behaviour in the
//! scanner above.
//!
//! Virtual time is counted in *ticks*. The scanner advances the network
//! one tick per probe it sends ([`crate::packet::Network::tick`]), so a
//! tick is "one send slot" — the natural unit for token-bucket refill
//! intervals, reboot windows, and response jitter.

#![deny(missing_docs)]

use xmap_addr::Ip6;

use crate::rng::DetHash;

/// How a device's ICMPv6 error generation is rate-limited (RFC 4443 §2.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IcmpRateLimit {
    /// The historical model of this simulator: each device answers its
    /// first 64 errors at full rate, then one in ten. Time-independent,
    /// so a device that has been hammered never recovers.
    Legacy,
    /// A real token bucket refilled by virtual time: the bucket holds at
    /// most `capacity` tokens and gains one every `refill_interval` ticks.
    /// An error is sent only when a token is available. Devices chosen by
    /// `start_depleted_frac` begin with an empty bucket — these are the
    /// peripheries that appear *silent* to a single-probe scan but answer
    /// a retry after the bucket refills.
    TokenBucket {
        /// Maximum burst of errors (tokens) a device can emit.
        capacity: u32,
        /// Ticks per regained token.
        refill_interval: u64,
        /// Fraction of devices whose bucket starts empty (recently
        /// exhausted by background traffic).
        start_depleted_frac: f64,
    },
    /// No limiting: every error the model produces is sent.
    Unlimited,
}

/// A seeded, deterministic fault schedule for a simulated network.
///
/// All probabilities are per-event Bernoulli draws keyed on the plan seed,
/// the packet addresses, and the current tick, so the same plan applied to
/// the same traffic always faults the same packets.
///
/// # Examples
///
/// ```
/// use xmap_netsim::fault::{FaultPlan, IcmpRateLimit};
///
/// let plan = FaultPlan::none()
///     .with_forward_loss(0.05)
///     .with_jitter(8)
///     .with_icmp_limit(IcmpRateLimit::TokenBucket {
///         capacity: 16,
///         refill_interval: 32,
///         start_depleted_frac: 0.3,
///     });
/// assert!(plan.any_faults());
/// assert!(!FaultPlan::none().any_faults());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision (independent of the world seed so the
    /// same topology can be replayed under different fault draws).
    pub seed: u64,
    /// Probability a probe is dropped on its way *to* the destination.
    /// Redrawn per tick, so a retransmission of the same destination can
    /// succeed where the original was lost.
    pub forward_loss: f64,
    /// Probability a response is dropped on its way *back*.
    pub reverse_loss: f64,
    /// Probability a response is duplicated in flight (the duplicate
    /// arrives immediately after the original).
    pub duplicate_frac: f64,
    /// Maximum response delay in ticks. When nonzero, each response is
    /// held for `0..=max_jitter_ticks` ticks and delivered by a later
    /// [`crate::packet::Network::tick`], which also reorders responses.
    pub max_jitter_ticks: u64,
    /// Fraction of devices that are *flaky*: they reboot on a cycle and
    /// drop all traffic while down.
    pub flaky_frac: f64,
    /// Reboot cycle length in ticks for flaky devices.
    pub flaky_period: u64,
    /// Ticks per cycle a flaky device spends down (dropping everything).
    pub flaky_outage: u64,
    /// ICMPv6 error rate-limiting model applied to periphery devices.
    pub icmp_limit: IcmpRateLimit,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The identity plan: no loss, no duplication, no jitter, no flaky
    /// devices, and the simulator's legacy burst-then-1-in-10 error
    /// limiter. Installing this plan leaves network behaviour exactly as
    /// it was before the fault layer existed (and costs ~nothing: every
    /// check short-circuits on a zero probability).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0xFA_17,
            forward_loss: 0.0,
            reverse_loss: 0.0,
            duplicate_frac: 0.0,
            max_jitter_ticks: 0,
            flaky_frac: 0.0,
            flaky_period: 1024,
            flaky_outage: 128,
            icmp_limit: IcmpRateLimit::Legacy,
        }
    }

    /// Replaces the fault seed.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the forward (probe-direction) loss probability.
    #[must_use]
    pub fn with_forward_loss(mut self, p: f64) -> Self {
        self.forward_loss = p;
        self
    }

    /// Sets the reverse (response-direction) loss probability.
    #[must_use]
    pub fn with_reverse_loss(mut self, p: f64) -> Self {
        self.reverse_loss = p;
        self
    }

    /// Sets the response duplication probability.
    #[must_use]
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplicate_frac = p;
        self
    }

    /// Sets the maximum response delay (enables reordering when > 0).
    #[must_use]
    pub fn with_jitter(mut self, max_ticks: u64) -> Self {
        self.max_jitter_ticks = max_ticks;
        self
    }

    /// Makes a fraction of devices reboot cyclically: down for `outage`
    /// ticks out of every `period`.
    #[must_use]
    pub fn with_flaky(mut self, frac: f64, period: u64, outage: u64) -> Self {
        assert!(period > 0, "flaky period must be nonzero");
        assert!(outage <= period, "outage cannot exceed the period");
        self.flaky_frac = frac;
        self.flaky_period = period;
        self.flaky_outage = outage;
        self
    }

    /// Sets the ICMPv6 error rate-limiting model.
    #[must_use]
    pub fn with_icmp_limit(mut self, limit: IcmpRateLimit) -> Self {
        self.icmp_limit = limit;
        self
    }

    /// Whether this plan injects any fault beyond the legacy baseline.
    pub fn any_faults(&self) -> bool {
        self.forward_loss > 0.0
            || self.reverse_loss > 0.0
            || self.duplicate_frac > 0.0
            || self.max_jitter_ticks > 0
            || self.flaky_frac > 0.0
            || !matches!(self.icmp_limit, IcmpRateLimit::Legacy)
    }

    fn h(&self, label: &[u8]) -> DetHash {
        DetHash::new(self.seed).mix(label)
    }

    /// Whether a probe to `dst` sent at `tick` is dropped en route.
    /// Mixing the tick means a retry of the same destination redraws.
    pub fn drop_forward(&self, dst: Ip6, tick: u64) -> bool {
        self.forward_loss > 0.0
            && self
                .h(b"fwd")
                .mix_u128(dst.bits())
                .mix_u64(tick)
                .chance(self.forward_loss)
    }

    /// Whether a packet to `dst` crossing the directed link `from → to`
    /// at `tick` is dropped on that link (the [`crate::Engine`] applies
    /// this per traversal; the procedural [`crate::World`] has no explicit
    /// links and uses [`FaultPlan::drop_forward`] end to end instead).
    pub fn drop_link(&self, from: u64, to: u64, dst: Ip6, tick: u64) -> bool {
        self.forward_loss > 0.0
            && self
                .h(b"link")
                .mix_u64(from)
                .mix_u64(to)
                .mix_u128(dst.bits())
                .mix_u64(tick)
                .chance(self.forward_loss)
    }

    /// Whether the `k`-th response from `src` at `tick` is dropped on the
    /// return path.
    pub fn drop_reverse(&self, src: Ip6, tick: u64, k: u64) -> bool {
        self.reverse_loss > 0.0
            && self
                .h(b"rev")
                .mix_u128(src.bits())
                .mix_u64(tick)
                .mix_u64(k)
                .chance(self.reverse_loss)
    }

    /// Whether the `k`-th response from `src` at `tick` is duplicated.
    pub fn duplicate(&self, src: Ip6, tick: u64, k: u64) -> bool {
        self.duplicate_frac > 0.0
            && self
                .h(b"dup")
                .mix_u128(src.bits())
                .mix_u64(tick)
                .mix_u64(k)
                .chance(self.duplicate_frac)
    }

    /// Delay in ticks applied to the `k`-th response from `src` at `tick`
    /// (0 = delivered immediately).
    pub fn jitter_ticks(&self, src: Ip6, tick: u64, k: u64) -> u64 {
        if self.max_jitter_ticks == 0 {
            return 0;
        }
        self.h(b"jit")
            .mix_u128(src.bits())
            .mix_u64(tick)
            .mix_u64(k)
            .bounded(self.max_jitter_ticks + 1)
    }

    /// Whether the device identified by `(zone, index)` is flaky under
    /// this plan.
    pub fn device_flaky(&self, zone: u64, index: u64) -> bool {
        self.flaky_frac > 0.0
            && self
                .h(b"flaky")
                .mix_u64(zone)
                .mix_u64(index)
                .chance(self.flaky_frac)
    }

    /// Whether the device identified by `(zone, index)` is down (mid
    /// reboot) at `tick`. Each flaky device gets its own phase so outages
    /// are spread over the cycle.
    pub fn device_down(&self, zone: u64, index: u64, tick: u64) -> bool {
        if !self.device_flaky(zone, index) {
            return false;
        }
        let phase = self
            .h(b"phase")
            .mix_u64(zone)
            .mix_u64(index)
            .bounded(self.flaky_period);
        (tick + phase) % self.flaky_period < self.flaky_outage
    }

    /// Decides whether the device `(zone, index)` may emit one more ICMPv6
    /// error at `tick`, updating its limiter `state`. `burst_scale` scales
    /// the token-bucket capacity for the device class (routers afford a
    /// larger burst than battery-powered UEs; see
    /// [`crate::device::Device::icmp_burst_scale`]).
    pub fn admit_error(
        &self,
        zone: u64,
        index: u64,
        state: &mut ErrorLimiterState,
        tick: u64,
        burst_scale: u32,
    ) -> bool {
        match self.icmp_limit {
            IcmpRateLimit::Unlimited => true,
            IcmpRateLimit::Legacy => {
                state.emitted += 1;
                state.emitted <= 64 || state.emitted.is_multiple_of(10)
            }
            IcmpRateLimit::TokenBucket {
                capacity,
                refill_interval,
                start_depleted_frac,
            } => {
                let capacity = (capacity * burst_scale.max(1)).max(1);
                if !state.initialized {
                    state.initialized = true;
                    state.last_refill_tick = tick;
                    state.tokens = if self
                        .h(b"depleted")
                        .mix_u64(zone)
                        .mix_u64(index)
                        .chance(start_depleted_frac)
                    {
                        0
                    } else {
                        capacity
                    };
                }
                let gained = (tick - state.last_refill_tick)
                    .checked_div(refill_interval)
                    .unwrap_or(0);
                if gained > 0 {
                    state.tokens = state
                        .tokens
                        .saturating_add(gained.min(u64::from(capacity)) as u32)
                        .min(capacity);
                    state.last_refill_tick += gained * refill_interval;
                }
                if state.tokens > 0 {
                    state.tokens -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Per-device ICMPv6 error limiter state, owned by the network and updated
/// through [`FaultPlan::admit_error`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorLimiterState {
    /// Total errors the device has attempted to emit (legacy model).
    pub emitted: u64,
    /// Tokens currently in the bucket (token-bucket model).
    pub tokens: u32,
    /// Tick of the last bucket refill.
    pub last_refill_tick: u64,
    /// Whether the bucket has been seeded with its initial fill.
    pub initialized: bool,
}

/// A response held back by jitter, ordered by delivery time.
///
/// The ordering key is `(due_tick, seq)` where `seq` is the insertion
/// sequence number — ties break by arrival order, which keeps the delay
/// queue fully deterministic.
#[derive(Debug, Clone)]
pub struct DelayedResponse {
    /// Tick at which the response becomes deliverable.
    pub due_tick: u64,
    /// Insertion sequence number (tie-breaker).
    pub seq: u64,
    /// The response packet itself.
    pub packet: crate::packet::Ipv6Packet,
}

impl PartialEq for DelayedResponse {
    fn eq(&self, other: &Self) -> bool {
        self.due_tick == other.due_tick && self.seq == other.seq
    }
}

impl Eq for DelayedResponse {}

impl PartialOrd for DelayedResponse {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DelayedResponse {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
        (other.due_tick, other.seq).cmp(&(self.due_tick, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_injects_nothing() {
        let plan = FaultPlan::none();
        let dst: Ip6 = "2001:db8::1".parse().unwrap();
        for t in 0..1000 {
            assert!(!plan.drop_forward(dst, t));
            assert!(!plan.drop_reverse(dst, t, 0));
            assert!(!plan.duplicate(dst, t, 0));
            assert_eq!(plan.jitter_ticks(dst, t, 0), 0);
            assert!(!plan.device_down(3, t, t));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::none().seeded(1).with_forward_loss(0.5);
        let b = FaultPlan::none().seeded(1).with_forward_loss(0.5);
        let c = FaultPlan::none().seeded(2).with_forward_loss(0.5);
        let dst: Ip6 = "2001:db8::42".parse().unwrap();
        let seq_a: Vec<bool> = (0..256).map(|t| a.drop_forward(dst, t)).collect();
        let seq_b: Vec<bool> = (0..256).map(|t| b.drop_forward(dst, t)).collect();
        let seq_c: Vec<bool> = (0..256).map(|t| c.drop_forward(dst, t)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
        // Loss rate is roughly the configured probability.
        let hits = seq_a.iter().filter(|d| **d).count();
        assert!((90..170).contains(&hits), "{hits}");
    }

    #[test]
    fn forward_loss_redraws_per_tick() {
        // The same destination lost at one tick gets through at another —
        // the property retransmission relies on.
        let plan = FaultPlan::none().with_forward_loss(0.5);
        let dst: Ip6 = "2001:db8::7".parse().unwrap();
        let outcomes: std::collections::HashSet<bool> =
            (0..64).map(|t| plan.drop_forward(dst, t)).collect();
        assert_eq!(outcomes.len(), 2, "loss must vary with time");
    }

    #[test]
    fn flaky_devices_cycle() {
        let plan = FaultPlan::none().with_flaky(1.0, 100, 25);
        assert!(plan.device_flaky(0, 1));
        let down: Vec<bool> = (0..200).map(|t| plan.device_down(0, 1, t)).collect();
        let down_count = down.iter().filter(|d| **d).count();
        // Two cycles, a quarter down each.
        assert_eq!(down_count, 50);
        // And the outage is contiguous within a cycle (one flip per edge).
        let flips = down.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips <= 5, "{flips}");
    }

    #[test]
    fn token_bucket_depletes_and_refills() {
        let plan = FaultPlan::none().with_icmp_limit(IcmpRateLimit::TokenBucket {
            capacity: 4,
            refill_interval: 10,
            start_depleted_frac: 0.0,
        });
        let mut st = ErrorLimiterState::default();
        // Burst of 4 admitted, fifth denied.
        for _ in 0..4 {
            assert!(plan.admit_error(0, 0, &mut st, 0, 1));
        }
        assert!(!plan.admit_error(0, 0, &mut st, 0, 1));
        // After one refill interval, exactly one more token.
        assert!(plan.admit_error(0, 0, &mut st, 10, 1));
        assert!(!plan.admit_error(0, 0, &mut st, 10, 1));
        // A long quiet period refills to capacity, not beyond.
        for _ in 0..4 {
            assert!(plan.admit_error(0, 0, &mut st, 1000, 1));
        }
        assert!(!plan.admit_error(0, 0, &mut st, 1000, 1));
    }

    #[test]
    fn depleted_start_makes_device_silent_then_recovering() {
        let plan = FaultPlan::none().with_icmp_limit(IcmpRateLimit::TokenBucket {
            capacity: 8,
            refill_interval: 16,
            start_depleted_frac: 1.0,
        });
        let mut st = ErrorLimiterState::default();
        // Silent at tick 0 (bucket empty) …
        assert!(!plan.admit_error(7, 7, &mut st, 0, 1));
        // … but the retry after a refill interval is admitted.
        assert!(plan.admit_error(7, 7, &mut st, 16, 1));
    }

    #[test]
    fn legacy_matches_historical_behaviour() {
        let plan = FaultPlan::none();
        let mut st = ErrorLimiterState::default();
        let admitted = (0..200)
            .filter(|_| plan.admit_error(0, 0, &mut st, 0, 1))
            .count();
        // 64 burst + every tenth of the remaining 136.
        assert_eq!(admitted, 64 + (65..=200).filter(|n| n % 10 == 0).count());
    }

    #[test]
    fn delayed_response_orders_by_due_then_seq() {
        use crate::packet::Ipv6Packet;
        let mk = |due, seq| DelayedResponse {
            due_tick: due,
            seq,
            packet: Ipv6Packet::echo_request(
                "fd00::1".parse().unwrap(),
                "fd00::2".parse().unwrap(),
                64,
                0,
                0,
            ),
        };
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(mk(5, 0));
        heap.push(mk(3, 2));
        heap.push(mk(3, 1));
        heap.push(mk(9, 3));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|d| (d.due_tick, d.seq))
            .collect();
        assert_eq!(order, vec![(3, 1), (3, 2), (5, 0), (9, 3)]);
    }
}
