//! ASN and country metadata — the offline stand-in for MaxMind GeoIP and
//! Routeviews AS names.
//!
//! The paper geolocates loop-vulnerable last hops to 3,877 ASes in 132
//! countries (of 6,911 ASes / 170 countries observed overall) and reports
//! the top loop ASNs and countries in Figure 5. This module carries:
//!
//! * a catalog of *named* ASes, including the measurement ISPs of Table I
//!   and the loop hotspots of Figure 5,
//! * a 170-entry country universe with weights so procedurally generated
//!   ASes land in countries with a realistic skew.

use crate::rng::{weighted_pick, DetHash};

/// A named autonomous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsInfo {
    /// AS number.
    pub asn: u32,
    /// Operator name.
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
}

/// Named ASes: the twelve measurement ISPs (Table I) plus the routing-loop
/// hotspot ASes that dominate Figure 5.
pub const KNOWN_ASES: &[AsInfo] = &[
    AsInfo {
        asn: 209,
        name: "CenturyLink",
        country: "US",
    },
    AsInfo {
        asn: 3320,
        name: "Deutsche Telekom",
        country: "DE",
    },
    AsInfo {
        asn: 4134,
        name: "China Telecom",
        country: "CN",
    },
    AsInfo {
        asn: 4812,
        name: "China Telecom Shanghai",
        country: "CN",
    },
    AsInfo {
        asn: 4837,
        name: "China Unicom",
        country: "CN",
    },
    AsInfo {
        asn: 5089,
        name: "Virgin Media",
        country: "GB",
    },
    AsInfo {
        asn: 5610,
        name: "O2 Czech Republic",
        country: "CZ",
    },
    AsInfo {
        asn: 6730,
        name: "Sunrise",
        country: "CH",
    },
    AsInfo {
        asn: 7018,
        name: "AT&T",
        country: "US",
    },
    AsInfo {
        asn: 7922,
        name: "Comcast",
        country: "US",
    },
    AsInfo {
        asn: 9808,
        name: "China Mobile",
        country: "CN",
    },
    AsInfo {
        asn: 9829,
        name: "BSNL",
        country: "IN",
    },
    AsInfo {
        asn: 20057,
        name: "AT&T Mobility",
        country: "US",
    },
    AsInfo {
        asn: 20115,
        name: "Charter",
        country: "US",
    },
    AsInfo {
        asn: 24445,
        name: "Henan Mobile",
        country: "CN",
    },
    AsInfo {
        asn: 27947,
        name: "Telconet",
        country: "EC",
    },
    AsInfo {
        asn: 28573,
        name: "Claro Brasil",
        country: "BR",
    },
    AsInfo {
        asn: 30036,
        name: "Mediacom",
        country: "US",
    },
    AsInfo {
        asn: 38266,
        name: "Vodafone India",
        country: "IN",
    },
    AsInfo {
        asn: 45609,
        name: "Bharti Airtel",
        country: "IN",
    },
    AsInfo {
        asn: 45899,
        name: "VNPT",
        country: "VN",
    },
    AsInfo {
        asn: 55836,
        name: "Reliance Jio",
        country: "IN",
    },
    AsInfo {
        asn: 58952,
        name: "Frontiir",
        country: "MM",
    },
];

/// The ten routing-loop hotspot ASNs of Figure 5, largest first.
pub const TOP_LOOP_ASNS: [u32; 10] = [
    28573, 4134, 27947, 45899, 7922, 58952, 55836, 5089, 3320, 6730,
];

/// The routing-loop top countries of Figure 5, largest first.
pub const TOP_LOOP_COUNTRIES: [&str; 11] = [
    "BR", "CN", "EC", "VN", "US", "MM", "IN", "GB", "DE", "CH", "CZ",
];

/// 170 ISO country codes — the country universe of Table IX.
pub const COUNTRIES: &[&str] = &[
    "AD", "AE", "AF", "AG", "AL", "AM", "AO", "AR", "AT", "AU", "AZ", "BA", "BB", "BD", "BE", "BF",
    "BG", "BH", "BI", "BJ", "BN", "BO", "BR", "BS", "BT", "BW", "BY", "BZ", "CA", "CD", "CF", "CG",
    "CH", "CI", "CL", "CM", "CN", "CO", "CR", "CU", "CV", "CY", "CZ", "DE", "DJ", "DK", "DM", "DO",
    "DZ", "EC", "EE", "EG", "ER", "ES", "ET", "FI", "FJ", "FM", "FR", "GA", "GB", "GD", "GE", "GH",
    "GM", "GN", "GQ", "GR", "GT", "GW", "GY", "HN", "HR", "HT", "HU", "ID", "IE", "IL", "IN", "IQ",
    "IR", "IS", "IT", "JM", "JO", "JP", "KE", "KG", "KH", "KI", "KM", "KN", "KR", "KW", "KZ", "LA",
    "LB", "LC", "LI", "LK", "LR", "LS", "LT", "LU", "LV", "LY", "MA", "MC", "MD", "ME", "MG", "MK",
    "ML", "MM", "MN", "MR", "MT", "MU", "MV", "MW", "MX", "MY", "MZ", "NA", "NE", "NG", "NI", "NL",
    "NO", "NP", "NZ", "OM", "PA", "PE", "PG", "PH", "PK", "PL", "PT", "PY", "QA", "RO", "RS", "RU",
    "RW", "SA", "SB", "SC", "SD", "SE", "SG", "SI", "SK", "SL", "SN", "SO", "SR", "SV", "SY", "SZ",
    "TD", "TG", "TH", "TJ", "TL", "TM", "TN", "TR", "US", "VN",
];

/// Looks up a named AS.
pub fn known_as(asn: u32) -> Option<&'static AsInfo> {
    KNOWN_ASES.iter().find(|a| a.asn == asn)
}

/// The country of an AS: named ASes resolve from [`KNOWN_ASES`]; synthetic
/// ASes are assigned deterministically with a skew toward the Figure 5
/// countries so that the loop-hotspot geography reproduces.
pub fn country_of(asn: u32, seed: u64) -> &'static str {
    if let Some(info) = known_as(asn) {
        return info.country;
    }
    let h = DetHash::new(seed).mix(b"country").mix_u64(asn as u64);
    // 45% of synthetic ASes land in the eleven hotspot countries, the rest
    // uniformly across the universe.
    if h.mix(b"hot").chance(0.45) {
        // Weighted toward the front of the hotspot list.
        let weights: [u32; 11] = [30, 24, 14, 12, 10, 8, 7, 5, 4, 3, 2];
        TOP_LOOP_COUNTRIES[weighted_pick(h.mix(b"which"), &weights)]
    } else {
        COUNTRIES[h.mix(b"any").bounded(COUNTRIES.len() as u64) as usize]
    }
}

/// A display name for an AS (synthetic ASes get a generated name).
pub fn name_of(asn: u32) -> String {
    match known_as(asn) {
        Some(info) => info.name.to_owned(),
        None => format!("AS{asn}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_universe_size_and_uniqueness() {
        assert_eq!(COUNTRIES.len(), 170);
        let mut sorted = COUNTRIES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 170, "duplicate country codes");
    }

    #[test]
    fn known_ases_resolve() {
        assert_eq!(known_as(4134).unwrap().name, "China Telecom");
        assert_eq!(known_as(4134).unwrap().country, "CN");
        assert!(known_as(1).is_none());
    }

    #[test]
    fn top_loop_asns_are_known() {
        for asn in TOP_LOOP_ASNS {
            assert!(known_as(asn).is_some(), "AS{asn} must be in KNOWN_ASES");
        }
    }

    #[test]
    fn hotspot_countries_in_universe() {
        for c in TOP_LOOP_COUNTRIES {
            assert!(COUNTRIES.contains(&c), "{c}");
        }
    }

    #[test]
    fn country_of_is_deterministic_and_skewed() {
        assert_eq!(country_of(99999, 7), country_of(99999, 7));
        assert_eq!(country_of(4134, 7), "CN");
        // The hotspot skew: BR should be the most common synthetic country.
        let mut br = 0;
        let mut total_hot = 0;
        for asn in 100_000..104_000u32 {
            let c = country_of(asn, 7);
            if c == "BR" {
                br += 1;
            }
            if TOP_LOOP_COUNTRIES.contains(&c) {
                total_hot += 1;
            }
        }
        assert!(br > 300, "BR count {br}");
        assert!(total_hot > 1500, "hotspot count {total_hot}");
    }

    #[test]
    fn name_of_falls_back() {
        assert_eq!(name_of(9808), "China Mobile");
        assert_eq!(name_of(123456), "AS123456");
    }
}
