//! Deterministic packet-level IPv6 Internet model.
//!
//! This crate is the measurement substrate for the XMap reproduction: it
//! plays the role of the live IPv6 Internet in the paper. It has three
//! layers, all driven by the same behavioural rules:
//!
//! 1. **Packet model & transport** ([`packet`], [`Network`]) — IPv6 headers
//!    with hop limits, ICMPv6 (echo, destination-unreachable, time-exceeded
//!    per RFC 4443), UDP/TCP application exchanges. The scanner crate talks
//!    to any [`Network`] implementation; in the paper that was a raw socket,
//!    here it is a simulator.
//! 2. **Engine** ([`engine`], [`topology`]) — an explicit router-level
//!    simulator: nodes with longest-prefix-match routing tables, links with
//!    traversal counters, hop-limit decrement and ICMPv6 error generation.
//!    Used for the RFC 7084 CE-router case studies (Table XII) and for
//!    measuring routing-loop amplification packet by packet.
//! 3. **World** ([`world`], [`isp`], [`bgp`]) — a procedural, seeded model of
//!    the global IPv6 Internet: twelve ISPs' sample blocks with per-block
//!    allocation policy (Table I), device populations with vendor/IID/service
//!    mixes, and a BGP table spanning thousands of ASes. Device existence and
//!    properties are *derived deterministically by hashing*, so a block with
//!    2³² sub-prefixes costs no memory and any scaled slice of it is
//!    self-consistent across scans.
//!
//! The engine and the world implement the same rules; integration tests
//! cross-validate them (see `tests/` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod device;
pub mod engine;
pub mod fault;
pub mod geo;
pub mod isp;
pub mod packet;
pub mod rng;
pub mod selftest;
pub mod services;
pub mod telemetry;
pub mod topology;
pub mod trace;
pub mod world;

pub use device::{Device, DeviceKind};
pub use engine::{Engine, NodeId};
pub use fault::{FaultPlan, IcmpRateLimit};
pub use packet::{Icmpv6, Ipv6Packet, Network, Payload};
pub use telemetry::NetsimTelemetry;
pub use world::{Allocation, KillPoint, World};
