//! The twelve ISPs / fifteen sample IPv6 blocks of Tables I and II.
//!
//! Each [`IspProfile`] bundles the paper's published per-block facts:
//! the WHOIS block and inferred sub-prefix length (Table I), the scan range
//! and discovery statistics (Table II), the per-service exposure rates
//! (Table VII), the routing-loop prevalence and its same/diff split
//! (Table XI), and a vendor mix consistent with Table IV and Figures 2/3/6.
//!
//! The procedural world ([`crate::world`]) draws device populations from
//! these parameters, so re-running the paper's scans over the simulated
//! Internet reproduces the tables' *shape* (and, after scale correction,
//! their magnitudes). Block prefixes are synthetic stand-ins documented in
//! DESIGN.md — WHOIS data is not available offline.

use xmap_addr::{Prefix, ScanRange};

/// Network type of a block (Table I "Network" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Fixed-line broadband.
    Broadband,
    /// Cellular/mobile.
    Mobile,
    /// Enterprise access.
    Enterprise,
}

impl std::fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetworkKind::Broadband => "Broadband",
            NetworkKind::Mobile => "Mobile",
            NetworkKind::Enterprise => "Enterprise",
        };
        f.write_str(s)
    }
}

/// Static description of one sample IPv6 block within an ISP.
#[derive(Debug, Clone)]
pub struct IspProfile {
    /// Row id P1..=P15 as used in Table VII.
    pub id: u8,
    /// ISO country code (`IN`, `US`, `CN`).
    pub country: &'static str,
    /// Network type.
    pub network: NetworkKind,
    /// ISP display name.
    pub name: &'static str,
    /// Autonomous system number (Table I).
    pub asn: u32,
    /// Length of the ISP's WHOIS block (Table I "Block").
    pub block_len: u8,
    /// The sample prefix actually scanned (base of the scan range).
    pub scan_base: &'static str,
    /// Inferred sub-prefix length assigned to end users (Table I "Length").
    pub assigned_len: u8,
    /// Fraction of sub-prefixes with an active periphery
    /// (Table II "# uniq" / scan-space size).
    pub occupancy: f64,
    /// Fraction of last hops replying from the probed /64 (Table II "same").
    pub same_frac: f64,
    /// Fraction of last hops with EUI-64 IIDs (Table II "EUI-64 addr %").
    pub eui64_frac: f64,
    /// Target fraction of distinct WAN /64s among diff-mode last hops
    /// (Table II "/64 prefix %": low for ISPs that aggregate many CPE WAN
    /// addresses into shared /64s, e.g. Comcast 6.5%).
    pub wan_unique64_frac: f64,
    /// Fraction of EUI-64 devices drawing their MAC from a small shared pool
    /// (1 − Table II "MAC addr %"): counterfeit/cloned MACs.
    pub mac_dup_frac: f64,
    /// Per-service exposure rates among discovered peripheries, indexed like
    /// `ServiceKind::ALL` (Table VII percentages as fractions).
    pub service_rates: [f64; 8],
    /// Fraction of peripheries vulnerable to the routing loop (Table XI
    /// "# uniq" / Table II "# uniq").
    pub loop_rate: f64,
    /// Among loop-vulnerable devices, fraction replying from the probed /64
    /// (Table XI "same").
    pub loop_same_frac: f64,
    /// Vendor mix `(vendor, weight)`; names resolve in `xmap_addr::oui`.
    pub vendors: &'static [(&'static str, u32)],
    /// Typical hop count from the measurement vantage to the ISP router.
    pub hops_base: u8,
    /// Fraction of probes silently filtered by upstream policy.
    pub filter_frac: f64,
    /// Fraction of sub-prefixes that are *aliased*: a middlebox answers
    /// echo for every address under them (the false-positive hazard that
    /// IPv6 hitlist studies de-alias away; the campaign must detect and
    /// exclude these).
    pub aliased_frac: f64,
}

impl IspProfile {
    /// The scan range of Table II (scan base → assigned length).
    ///
    /// # Panics
    ///
    /// Panics if the static profile data is malformed (covered by tests).
    pub fn scan_range(&self) -> ScanRange {
        let base: Prefix = self.scan_base.parse().expect("static scan base parses");
        ScanRange::new(base, self.assigned_len).expect("static scan range is valid")
    }

    /// The scanned sample prefix.
    pub fn scan_prefix(&self) -> Prefix {
        self.scan_base.parse().expect("static scan base parses")
    }

    /// The sibling prefix this profile's CPE WAN addresses are aggregated
    /// under (the "WAN zone"): same length as the scan base, last prefix bit
    /// flipped. Synthetic stand-in for the ISP's WAN aggregation block.
    pub fn wan_zone(&self) -> Prefix {
        let p = self.scan_prefix();
        let flipped = p.addr().bits() ^ (1u128 << (128 - p.len() as u32));
        Prefix::new(xmap_addr::Ip6::new(flipped), p.len())
    }

    /// Number of scannable sub-prefixes in the sample block.
    pub fn space_size(&self) -> u128 {
        self.scan_range().space_size()
    }

    /// Expected periphery population of the full sample block.
    pub fn expected_devices(&self) -> f64 {
        self.space_size() as f64 * self.occupancy
    }

    /// Display label, e.g. `Reliance Jio (IN, Broadband)`.
    pub fn label(&self) -> String {
        format!("{} ({}, {})", self.name, self.country, self.network)
    }
}

/// Mobile-network UE vendor mix shared by the cellular blocks.
const UE_VENDORS: &[(&str, u32)] = &[
    ("NTMore", 220),
    ("HMD Global", 100),
    ("Vivo", 70),
    ("Oppo", 60),
    ("Apple", 60),
    ("Samsung", 45),
    ("Nokia", 38),
    ("LG", 18),
    ("Motorola", 11),
    ("Lenovo", 9),
    ("Nubia", 8),
    ("OnePlus", 2),
];

/// The fifteen sample blocks of Table I / Table II, with calibration data
/// transcribed from Tables II, VII and XI.
///
/// Order matches the `P` column of Table VII (1-based ids).
pub const SAMPLE_BLOCKS: &[IspProfile] = &[
    IspProfile {
        id: 1,
        country: "IN",
        network: NetworkKind::Broadband,
        name: "Reliance Jio",
        asn: 55836,
        block_len: 32,
        scan_base: "2405:200::/32",
        assigned_len: 64,
        occupancy: 3_365_175.0 / 4_294_967_296.0,
        same_frac: 0.998,
        eui64_frac: 0.014,
        wan_unique64_frac: 1.0,
        mac_dup_frac: 0.001,
        // Table VII row 1: DNS 30.3k, NTP 6, FTP 1, SSH 9, TELNET 1,
        // HTTP 102, TLS 0, 8080 1.4k of 3.365M.
        service_rates: [0.009, 2e-6, 3e-7, 2.7e-6, 3e-7, 3e-5, 0.0, 4.2e-4],
        loop_rate: 8_606.0 / 3_365_175.0,
        loop_same_frac: 0.979,
        vendors: &[
            ("Shenzhen", 30),
            ("ZTE", 20),
            ("Huawei", 18),
            ("TP-Link", 14),
            ("D-Link", 10),
            ("Tenda", 5),
            ("Optilink", 3),
        ],
        hops_base: 14,
        filter_frac: 0.01,
        aliased_frac: 2e-6,
    },
    IspProfile {
        id: 2,
        country: "IN",
        network: NetworkKind::Broadband,
        name: "BSNL",
        asn: 9829,
        block_len: 32,
        scan_base: "2401:4900::/32",
        assigned_len: 64,
        occupancy: 2_404.0 / 4_294_967_296.0,
        same_frac: 0.344,
        eui64_frac: 0.767,
        wan_unique64_frac: 0.947,
        mac_dup_frac: 0.040,
        // Table VII row 2 of 2,404 devices.
        service_rates: [0.002, 0.037, 0.009, 0.037, 0.023, 0.010, 0.008, 0.002],
        loop_rate: 324.0 / 2_404.0,
        loop_same_frac: 0.543,
        vendors: &[
            ("D-Link", 20),
            ("TP-Link", 20),
            ("Optilink", 18),
            ("MikroTik", 12),
            ("Tenda", 10),
            ("Huawei", 10),
            ("Netgear", 10),
        ],
        hops_base: 17,
        filter_frac: 0.15,
        aliased_frac: 1e-5,
    },
    IspProfile {
        id: 3,
        country: "IN",
        network: NetworkKind::Mobile,
        name: "Bharti Airtel",
        asn: 45609,
        block_len: 32,
        scan_base: "2402:3a80::/32",
        assigned_len: 64,
        occupancy: 22_542_690.0 / 4_294_967_296.0,
        same_frac: 0.989,
        eui64_frac: 0.014,
        wan_unique64_frac: 0.991,
        mac_dup_frac: 0.024,
        // Row 3: DNS 36.6k, NTP 131, FTP 27, SSH 50, TELNET 19, HTTP 1.0k,
        // 8080 6.7k of 22.5M.
        service_rates: [0.0016, 6e-6, 1.2e-6, 2.2e-6, 8e-7, 4.4e-5, 0.0, 3.0e-4],
        loop_rate: 29_135.0 / 22_542_690.0,
        loop_same_frac: 0.992,
        vendors: UE_VENDORS,
        hops_base: 15,
        filter_frac: 0.01,
        aliased_frac: 2e-6,
    },
    IspProfile {
        id: 4,
        country: "IN",
        network: NetworkKind::Mobile,
        name: "Vodafone",
        asn: 38266,
        block_len: 32,
        scan_base: "2402:8100::/32",
        assigned_len: 64,
        occupancy: 2_307_784.0 / 4_294_967_296.0,
        same_frac: 0.998,
        eui64_frac: 0.013,
        wan_unique64_frac: 1.0,
        mac_dup_frac: 0.031,
        // Row 4: DNS 201, NTP 39, SSH 13, TELNET 2, HTTP 141, 8080 623.
        service_rates: [8.7e-5, 1.7e-5, 0.0, 5.6e-6, 8.7e-7, 6.1e-5, 0.0, 2.7e-4],
        loop_rate: 207.0 / 2_307_784.0,
        loop_same_frac: 0.372,
        vendors: UE_VENDORS,
        hops_base: 16,
        filter_frac: 0.02,
        aliased_frac: 2e-6,
    },
    IspProfile {
        id: 5,
        country: "US",
        network: NetworkKind::Broadband,
        name: "Comcast",
        asn: 7922,
        block_len: 24,
        scan_base: "2601::/24",
        assigned_len: 56,
        occupancy: 87_308.0 / 4_294_967_296.0,
        same_frac: 0.0,
        eui64_frac: 0.950,
        wan_unique64_frac: 0.065,
        mac_dup_frac: 0.0,
        // Row 5: DNS 9, NTP 290, FTP 5, SSH 13, TELNET 50, HTTP 54, TLS 64,
        // 8080 319 of 87k.
        service_rates: [
            1.0e-4, 0.0033, 5.7e-5, 1.5e-4, 5.7e-4, 6.2e-4, 7.3e-4, 0.0037,
        ],
        loop_rate: 31.0 / 87_308.0,
        loop_same_frac: 0.0,
        vendors: &[
            ("Technicolor", 35),
            ("ARRIS", 25),
            ("Xfinity", 20),
            ("Netgear", 12),
            ("Linksys", 8),
        ],
        hops_base: 11,
        filter_frac: 0.02,
        aliased_frac: 4e-6,
    },
    IspProfile {
        id: 6,
        country: "US",
        network: NetworkKind::Broadband,
        name: "AT&T",
        asn: 7018,
        block_len: 24,
        scan_base: "2600:1700::/28",
        assigned_len: 60,
        occupancy: 740_141.0 / 4_294_967_296.0,
        same_frac: 0.0,
        eui64_frac: 0.128,
        wan_unique64_frac: 0.994,
        mac_dup_frac: 0.001,
        // Row 6: DNS 3.6k, NTP 320, FTP 880, SSH 223, TELNET 13, HTTP 340,
        // TLS 3.4k of 740k.
        service_rates: [0.0049, 4.3e-4, 0.0012, 3.0e-4, 1.8e-5, 4.6e-4, 0.0046, 0.0],
        loop_rate: 1_598.0 / 740_141.0,
        loop_same_frac: 0.0,
        vendors: &[
            ("ARRIS", 40),
            ("Technicolor", 30),
            ("Netgear", 12),
            ("Linksys", 8),
            ("Asus", 10),
        ],
        hops_base: 12,
        filter_frac: 0.02,
        aliased_frac: 3e-6,
    },
    IspProfile {
        id: 7,
        country: "US",
        network: NetworkKind::Broadband,
        name: "Charter",
        asn: 20115,
        block_len: 24,
        scan_base: "2602::/24",
        assigned_len: 56,
        occupancy: 13_027.0 / 4_294_967_296.0,
        same_frac: 0.016,
        eui64_frac: 0.006,
        wan_unique64_frac: 0.121,
        mac_dup_frac: 0.0,
        // Row 7: DNS 437 (3.4%), NTP 58, FTP 1, SSH 46, TELNET 3, HTTP 31,
        // TLS 372 (2.9%), 8080 357 (2.7%).
        service_rates: [0.034, 0.004, 7.7e-5, 0.004, 2.3e-4, 0.002, 0.029, 0.027],
        loop_rate: 373.0 / 13_027.0,
        loop_same_frac: 0.0,
        vendors: &[
            ("Hitron Tech", 35),
            ("Technicolor", 20),
            ("ARRIS", 20),
            ("Netgear", 12),
            ("Asus", 7),
            ("Linksys", 6),
        ],
        hops_base: 13,
        filter_frac: 0.05,
        aliased_frac: 4e-6,
    },
    IspProfile {
        id: 8,
        country: "US",
        network: NetworkKind::Broadband,
        name: "CenturyLink",
        asn: 209,
        block_len: 24,
        scan_base: "2605::/24",
        assigned_len: 56,
        occupancy: 249_835.0 / 4_294_967_296.0,
        same_frac: 0.0,
        eui64_frac: 0.370,
        wan_unique64_frac: 0.934,
        mac_dup_frac: 0.013,
        // Row 8: DNS 3.6k (1.4%), NTP 14.9k (6.0%), FTP 1.0k, SSH 1.9k,
        // TELNET 1.5k, HTTP 38, TLS 3.0k (1.2%), 8080 2.
        service_rates: [0.014, 0.060, 0.004, 0.008, 0.006, 1.5e-4, 0.012, 8e-6],
        loop_rate: 20_055.0 / 249_835.0,
        loop_same_frac: 0.0,
        vendors: &[
            ("Technicolor", 40),
            ("ARRIS", 18),
            ("D-Link", 12),
            ("Netgear", 12),
            ("Hitron Tech", 10),
            ("Asus", 8),
        ],
        hops_base: 12,
        filter_frac: 0.02,
        aliased_frac: 3e-6,
    },
    IspProfile {
        id: 9,
        country: "US",
        network: NetworkKind::Mobile,
        name: "AT&T Mobility",
        asn: 20057,
        block_len: 24,
        scan_base: "2600:380::/32",
        assigned_len: 64,
        occupancy: 1_734_506.0 / 4_294_967_296.0,
        same_frac: 0.945,
        eui64_frac: 0.0003,
        wan_unique64_frac: 0.997,
        mac_dup_frac: 0.006,
        // Row 9: SSH 3, TELNET 2, HTTP 625, TLS 625, 8080 489 of 1.73M.
        service_rates: [0.0, 0.0, 0.0, 1.7e-6, 1.2e-6, 3.6e-4, 3.6e-4, 2.8e-4],
        loop_rate: 2.0 / 1_734_506.0,
        loop_same_frac: 0.0,
        vendors: UE_VENDORS,
        hops_base: 10,
        filter_frac: 0.01,
        aliased_frac: 1e-6,
    },
    IspProfile {
        id: 10,
        country: "US",
        network: NetworkKind::Enterprise,
        name: "Mediacom",
        asn: 30036,
        block_len: 28,
        scan_base: "2604:2d80::/28",
        assigned_len: 56,
        occupancy: 38_399.0 / 268_435_456.0,
        same_frac: 0.0,
        eui64_frac: 0.004,
        wan_unique64_frac: 0.013,
        mac_dup_frac: 0.072,
        // Row 10: DNS 93, NTP 129, FTP 14, SSH 1.2k (3.0%), TELNET 1.1k
        // (2.7%), HTTP 2.6k (6.8%), TLS 1.3k (3.4%), 8080 55.
        service_rates: [0.002, 0.003, 3.6e-4, 0.030, 0.027, 0.068, 0.034, 0.001],
        loop_rate: 7_161.0 / 38_399.0,
        loop_same_frac: 0.0,
        vendors: &[
            ("MikroTik", 25),
            ("OpenWrt", 20),
            ("Hitron Tech", 18),
            ("Netgear", 15),
            ("D-Link", 12),
            ("Asus", 10),
        ],
        hops_base: 13,
        filter_frac: 0.03,
        aliased_frac: 6e-6,
    },
    IspProfile {
        id: 11,
        country: "CN",
        network: NetworkKind::Broadband,
        name: "China Telecom",
        asn: 4134,
        block_len: 24,
        scan_base: "240e:300::/28",
        assigned_len: 60,
        occupancy: 2_122_292.0 / 4_294_967_296.0,
        same_frac: 0.002,
        eui64_frac: 0.122,
        wan_unique64_frac: 0.990,
        mac_dup_frac: 0.026,
        // Row 11: DNS 63.6k (3.0%), NTP 146, FTP 211, SSH 335, TELNET 240,
        // HTTP 791, TLS 51, 8080 7.
        service_rates: [
            0.030, 6.9e-5, 9.9e-5, 1.6e-4, 1.1e-4, 3.7e-4, 2.4e-5, 3.3e-6,
        ],
        loop_rate: 843_375.0 / 2_122_292.0,
        loop_same_frac: 0.041,
        vendors: &[
            ("Fiberhome", 24),
            ("Huawei", 20),
            ("China Telecom", 20),
            ("TP-Link", 14),
            ("Skyworth", 10),
            ("D-Link", 6),
            ("Tenda", 6),
        ],
        hops_base: 18,
        filter_frac: 0.01,
        aliased_frac: 4e-6,
    },
    IspProfile {
        id: 12,
        country: "CN",
        network: NetworkKind::Broadband,
        name: "China Unicom",
        asn: 4837,
        block_len: 24,
        scan_base: "2408:8200::/28",
        assigned_len: 60,
        occupancy: 1_273_075.0 / 4_294_967_296.0,
        same_frac: 0.030,
        eui64_frac: 0.533,
        wan_unique64_frac: 1.0,
        mac_dup_frac: 0.046,
        // Row 12: DNS 202.3k (15.9%), NTP 76, FTP 35.8k (2.8%), SSH 20.5k
        // (1.6%), TELNET 36.5k (2.9%), HTTP 211.0k (16.6%), TLS 169,
        // 8080 229.5k (18.0%).
        service_rates: [0.159, 6e-5, 0.028, 0.016, 0.029, 0.166, 1.3e-4, 0.180],
        loop_rate: 1_003_635.0 / 1_273_075.0,
        loop_same_frac: 0.039,
        vendors: &[
            ("ZTE", 48),
            ("China Unicom", 16),
            ("Youhua Tech", 10),
            ("Huawei", 9),
            ("TP-Link", 8),
            ("D-Link", 4),
            ("Xiaomi", 3),
            ("Tenda", 2),
        ],
        hops_base: 17,
        filter_frac: 0.01,
        aliased_frac: 5e-6,
    },
    IspProfile {
        id: 13,
        country: "CN",
        network: NetworkKind::Broadband,
        name: "China Mobile",
        asn: 9808,
        block_len: 24,
        scan_base: "2409:8000::/28",
        assigned_len: 60,
        occupancy: 7_316_861.0 / 4_294_967_296.0,
        same_frac: 0.024,
        eui64_frac: 0.331,
        wan_unique64_frac: 1.0,
        mac_dup_frac: 0.037,
        // Row 13: DNS 403.0k (5.5%), NTP 19, FTP 139.4k (1.9%), SSH 114.2k
        // (1.6%), TELNET 140.2k (1.9%), HTTP 1.0M (14.3%), TLS 138.2k
        // (1.9%), 8080 3.3M (44.8%).
        service_rates: [0.055, 2.6e-6, 0.019, 0.016, 0.019, 0.143, 0.019, 0.448],
        loop_rate: 3_877_512.0 / 7_316_861.0,
        loop_same_frac: 0.045,
        vendors: &[
            ("China Mobile", 50),
            ("Skyworth", 13),
            ("Fiberhome", 8),
            ("ZTE", 8),
            ("Youhua Tech", 5),
            ("StarNet", 4),
            ("AVM GmbH", 3),
            ("Huawei", 2),
            ("Mercury", 2),
            ("TP-Link", 1),
        ],
        hops_base: 19,
        filter_frac: 0.01,
        aliased_frac: 4e-6,
    },
    IspProfile {
        id: 14,
        country: "CN",
        network: NetworkKind::Mobile,
        name: "China Unicom Mobile",
        asn: 4837,
        block_len: 24,
        scan_base: "2408:8400::/32",
        assigned_len: 64,
        occupancy: 3_696_275.0 / 4_294_967_296.0,
        same_frac: 0.979,
        eui64_frac: 0.004,
        wan_unique64_frac: 0.999,
        mac_dup_frac: 0.012,
        // Row 14: DNS 468, NTP 21, SSH 8, TELNET 5, HTTP 147, TLS 4, 8080 176.
        service_rates: [1.3e-4, 5.7e-6, 0.0, 2.2e-6, 1.4e-6, 4.0e-5, 1.1e-6, 4.8e-5],
        loop_rate: 190.0 / 3_696_275.0,
        loop_same_frac: 0.0,
        vendors: UE_VENDORS,
        hops_base: 18,
        filter_frac: 0.01,
        aliased_frac: 1e-6,
    },
    IspProfile {
        id: 15,
        country: "CN",
        network: NetworkKind::Mobile,
        name: "China Mobile Cellular",
        asn: 9808,
        block_len: 24,
        scan_base: "2409:8900::/32",
        assigned_len: 64,
        occupancy: 7_193_972.0 / 4_294_967_296.0,
        same_frac: 0.984,
        eui64_frac: 0.003,
        wan_unique64_frac: 0.999,
        mac_dup_frac: 0.014,
        // Row 15: DNS 296, NTP 122, SSH 133, TELNET 130, HTTP 96, TLS 1, 8080 236.
        service_rates: [4.1e-5, 1.7e-5, 0.0, 1.8e-5, 1.8e-5, 1.3e-5, 1.4e-7, 3.3e-5],
        loop_rate: 353.0 / 7_193_972.0,
        loop_same_frac: 0.0,
        vendors: UE_VENDORS,
        hops_base: 19,
        filter_frac: 0.01,
        aliased_frac: 1e-6,
    },
];

/// Looks up a profile by Table VII row id (1..=15).
pub fn profile_by_id(id: u8) -> Option<&'static IspProfile> {
    SAMPLE_BLOCKS.iter().find(|p| p.id == id)
}

/// The non-EUI-64 IID class split used across blocks, chosen so the pooled
/// mix reproduces Table III (75.5% randomized, 10.4% byte-pattern,
/// 5.5% embed-IPv4, 1.0% low-byte of the overall population).
/// Order: randomized, byte-pattern, embed-IPv4, low-byte (per-mille of the
/// non-EUI-64 remainder).
pub const NON_EUI_IID_SPLIT: [u32; 4] = [817, 113, 59, 11];

const _: () = {
    // The split must be a per-mille distribution.
    assert!(
        NON_EUI_IID_SPLIT[0] + NON_EUI_IID_SPLIT[1] + NON_EUI_IID_SPLIT[2] + NON_EUI_IID_SPLIT[3]
            == 1000
    );
};

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_addr::oui;

    #[test]
    fn fifteen_blocks_with_unique_ids() {
        assert_eq!(SAMPLE_BLOCKS.len(), 15);
        for (i, p) in SAMPLE_BLOCKS.iter().enumerate() {
            assert_eq!(p.id as usize, i + 1, "ids must be 1..=15 in order");
        }
    }

    #[test]
    fn scan_ranges_parse_and_are_32bit_or_less() {
        for p in SAMPLE_BLOCKS {
            let r = p.scan_range();
            assert!(r.space_bits() <= 32, "{}: {} bits", p.name, r.space_bits());
            assert_eq!(r.end_bit(), p.assigned_len);
        }
    }

    #[test]
    fn table_i_lengths() {
        // Every ISP assigns prefixes of length at most 64 (Section IV-A).
        for p in SAMPLE_BLOCKS {
            assert!(p.assigned_len <= 64, "{}", p.name);
            assert!(p.assigned_len >= 56, "{}", p.name);
        }
        // India and mobile blocks assign /64.
        for id in [1u8, 2, 3, 4, 9, 14, 15] {
            assert_eq!(profile_by_id(id).unwrap().assigned_len, 64);
        }
        // AT&T broadband and the Chinese broadband carriers assign /60.
        for id in [6u8, 11, 12, 13] {
            assert_eq!(profile_by_id(id).unwrap().assigned_len, 60);
        }
        // Comcast, Charter, CenturyLink, Mediacom assign /56.
        for id in [5u8, 7, 8, 10] {
            assert_eq!(profile_by_id(id).unwrap().assigned_len, 56);
        }
    }

    #[test]
    fn zones_are_pairwise_disjoint() {
        let mut zones = Vec::new();
        for p in SAMPLE_BLOCKS {
            zones.push((p.name, "scan", p.scan_prefix()));
            zones.push((p.name, "wan", p.wan_zone()));
        }
        for (i, a) in zones.iter().enumerate() {
            for b in zones.iter().skip(i + 1) {
                assert!(
                    !a.2.covers(b.2) && !b.2.covers(a.2),
                    "{} {} overlaps {} {}",
                    a.0,
                    a.1,
                    b.0,
                    b.1
                );
            }
        }
    }

    #[test]
    fn wan_zone_is_sibling() {
        let p = profile_by_id(1).unwrap();
        assert_eq!(p.wan_zone().len(), p.scan_prefix().len());
        assert_ne!(p.wan_zone(), p.scan_prefix());
        assert_eq!(p.wan_zone().to_string(), "2405:201::/32");
    }

    #[test]
    fn vendors_resolve_in_oui_registry() {
        for p in SAMPLE_BLOCKS {
            for (v, w) in p.vendors {
                assert!(*w > 0, "{}: zero weight for {v}", p.name);
                assert!(
                    oui::ouis_of(v).next().is_some(),
                    "{}: unknown vendor {v}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn mobile_blocks_use_ue_vendors() {
        for id in [3u8, 4, 9, 14, 15] {
            let p = profile_by_id(id).unwrap();
            assert_eq!(p.network, NetworkKind::Mobile);
            for (v, _) in p.vendors {
                assert_eq!(
                    oui::class_of(v),
                    Some(oui::DeviceClass::Ue),
                    "{}: {v} is not a UE vendor",
                    p.name
                );
            }
        }
    }

    #[test]
    fn occupancies_match_table_ii_totals() {
        // Sum of expected devices across blocks ~= 52.5M (Table II total).
        let total: f64 = SAMPLE_BLOCKS.iter().map(|p| p.expected_devices()).sum();
        assert!((5.1e7..5.4e7).contains(&total), "total {total}");
        // Airtel is the best-performing block, BSNL the worst.
        let airtel = profile_by_id(3).unwrap().expected_devices();
        let bsnl = profile_by_id(2).unwrap().expected_devices();
        for p in SAMPLE_BLOCKS {
            assert!(p.expected_devices() <= airtel + 1.0, "{}", p.name);
            assert!(p.expected_devices() >= bsnl - 1.0, "{}", p.name);
        }
    }

    #[test]
    fn loop_rates_match_table_xi() {
        // 5.79M loop-vulnerable of 52.5M total => ~11%.
        let loop_total: f64 = SAMPLE_BLOCKS
            .iter()
            .map(|p| p.expected_devices() * p.loop_rate)
            .sum();
        assert!(
            (5.6e6..6.0e6).contains(&loop_total),
            "loop total {loop_total}"
        );
        // China Unicom broadband is the loopiest (78.8%).
        assert!(profile_by_id(12).unwrap().loop_rate > 0.75);
        assert!(profile_by_id(9).unwrap().loop_rate < 1e-5);
    }

    #[test]
    fn probabilities_in_range() {
        for p in SAMPLE_BLOCKS {
            for (label, v) in [
                ("occupancy", p.occupancy),
                ("same", p.same_frac),
                ("eui64", p.eui64_frac),
                ("uniq64", p.wan_unique64_frac),
                ("macdup", p.mac_dup_frac),
                ("loop", p.loop_rate),
                ("loopsame", p.loop_same_frac),
                ("filter", p.filter_frac),
            ] {
                assert!((0.0..=1.0).contains(&v), "{} {label} = {v}", p.name);
            }
            for r in p.service_rates {
                assert!((0.0..=1.0).contains(&r), "{} service rate {r}", p.name);
            }
        }
    }
}
