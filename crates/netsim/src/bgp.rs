//! The global BGP table — substrate for the Internet-wide loop survey.
//!
//! Section VI-B scans the 16-bit sub-prefix space of every globally
//! advertised IPv6 BGP prefix (gathered from Routeviews) and finds ~4.0M
//! last hops across 6,911 ASes and 170 countries, of which ~128k across
//! 3,877 ASes and 132 countries are loop-vulnerable (Table IX, Figure 5).
//!
//! Routeviews data is not available offline, so [`BgpTable::generate`]
//! synthesizes a table with the same macro-structure: thousands of ASes
//! with a heavy-tailed prefix-count distribution, country skew matching
//! Figure 5, per-AS activity and loop-propensity factors, and hotspot ASes
//! that dominate the loop population.

use xmap_addr::{Ip6, Prefix};

use crate::geo::{self, TOP_LOOP_ASNS};
use crate::rng::DetHash;

/// One advertised BGP prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgpEntry {
    /// The advertised prefix (always a /32 in the synthetic table).
    pub prefix: Prefix,
    /// Origin AS.
    pub asn: u32,
}

/// Per-AS behavioural parameters derived at generation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsParams {
    /// AS number.
    pub asn: u32,
    /// Relative density of responding last hops in this AS's prefixes.
    pub activity: f64,
    /// Multiplier on the per-IID-class loop probability (0 = AS fully
    /// deploys correct routes; 56% of ASes have a nonzero multiplier,
    /// matching 3,877 of 6,911 in Table IX).
    pub loop_multiplier: f64,
}

/// Baseline last-hop density per advertised prefix's 16-bit sub-space:
/// ~4.0M last hops / (~101k prefixes × 2¹⁶ probes).
pub const BASE_DENSITY: f64 = 6.1e-4;

/// IID-class mix of BGP-zone last hops, per-mille, in [`xmap_addr::IidClass::ALL`]
/// order (EUI-64, Embed-IPv4, Low-byte, Byte-pattern, Randomized). BGP-visible
/// infrastructure routers are often manually numbered, hence the large
/// low-byte share relative to the periphery scans.
pub const BGP_IID_MIX: [u32; 5] = [100, 100, 50, 50, 700];

/// Per-IID-class loop probability (same order), calibrated so the pooled
/// loop rate is ~3.2% of last hops and the *loop* population's IID mix
/// reproduces Table X (18.0% EUI-64, 2.4% embed-IPv4, 31.7% low-byte,
/// 0.7% byte-pattern, 46.7% randomized): manually numbered routers carry
/// most of the misconfigured routes.
pub const LOOP_RATE_BY_CLASS: [f64; 5] = [0.0576, 0.0077, 0.203, 0.0045, 0.0214];

/// A synthetic global BGP table.
#[derive(Debug, Clone)]
pub struct BgpTable {
    seed: u64,
    entries: Vec<BgpEntry>,
    ases: Vec<AsParams>,
}

impl BgpTable {
    /// Generates a table with `n_ases` autonomous systems under the seed.
    ///
    /// The paper's table has 6,911 responding ASes; pass smaller values for
    /// cheap tests. Prefixes are allocated under `2a00::/12`, disjoint from
    /// the fifteen sample ISP blocks.
    pub fn generate(seed: u64, n_ases: usize) -> Self {
        let mut entries = Vec::new();
        let mut ases = Vec::with_capacity(n_ases);
        let mut next_index: u128 = 0;

        for i in 0..n_ases {
            // The first ASes are the known catalog; the rest are synthetic.
            let asn = if i < geo::KNOWN_ASES.len() {
                geo::KNOWN_ASES[i].asn
            } else {
                100_000 + i as u32
            };
            let h = DetHash::new(seed).mix(b"as").mix_u64(asn as u64);
            let is_hotspot = TOP_LOOP_ASNS.contains(&asn);

            // Heavy-tailed prefix count: most ASes advertise 1-3 prefixes,
            // hotspots tens (so their loop populations dominate Figure 5).
            let n_prefixes = if is_hotspot {
                24 + h.mix(b"np").bounded(24) as usize
            } else {
                let u = h.mix(b"np").unit();
                // ~Pareto: 60% one prefix, tail up to 12.
                (1.0 / (1.0 - 0.92 * u)).min(12.0) as usize
            };

            let activity = if is_hotspot {
                2.0 + h.mix(b"act").unit() * 3.0
            } else {
                0.2 + h.mix(b"act").unit() * 2.2
            };

            // 44% of non-hotspot ASes deploy correct routes everywhere.
            let loop_multiplier = if is_hotspot {
                4.0 + h.mix(b"loop").unit() * 4.0
            } else if h.mix(b"clean").chance(0.44) {
                0.0
            } else {
                0.3 + h.mix(b"loop").unit() * 2.7
            };

            ases.push(AsParams {
                asn,
                activity,
                loop_multiplier,
            });

            for _ in 0..n_prefixes {
                let base: Prefix = "2a00::/12".parse().expect("static prefix");
                // Spread allocations across the /12 deterministically.
                let prefix = base.subprefix(32, next_index);
                next_index += 1;
                entries.push(BgpEntry { prefix, asn });
            }
        }
        entries.sort_by_key(|e| e.prefix.addr());
        BgpTable {
            seed,
            entries,
            ases,
        }
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All advertised prefixes, sorted by address.
    pub fn entries(&self) -> &[BgpEntry] {
        &self.entries
    }

    /// Per-AS parameters.
    pub fn ases(&self) -> &[AsParams] {
        &self.ases
    }

    /// Parameters for one AS.
    pub fn as_params(&self, asn: u32) -> Option<&AsParams> {
        self.ases.iter().find(|a| a.asn == asn)
    }

    /// Finds the advertised prefix containing `addr`, if any.
    pub fn locate(&self, addr: Ip6) -> Option<&BgpEntry> {
        let idx = self.entries.partition_point(|e| e.prefix.addr() <= addr);
        if idx == 0 {
            return None;
        }
        let entry = &self.entries[idx - 1];
        entry.prefix.contains(addr).then_some(entry)
    }

    /// The country of an entry's origin AS.
    pub fn country_of(&self, asn: u32) -> &'static str {
        geo::country_of(asn, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_addr::IidClass;

    #[test]
    fn generation_is_deterministic() {
        let a = BgpTable::generate(11, 100);
        let b = BgpTable::generate(11, 100);
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn entry_counts_scale_with_ases() {
        let t = BgpTable::generate(1, 500);
        assert_eq!(t.ases().len(), 500);
        // Heavy tail: more prefixes than ASes, but far fewer than 12x.
        assert!(t.entries().len() > 500, "{}", t.entries().len());
        assert!(t.entries().len() < 4000, "{}", t.entries().len());
    }

    #[test]
    fn locate_finds_containing_prefix() {
        let t = BgpTable::generate(3, 200);
        for e in t.entries().iter().step_by(17) {
            let inside = e.prefix.addr().with_iid(0x1234);
            let found = t.locate(inside).expect("inside an advertised prefix");
            assert_eq!(found.prefix, e.prefix);
            assert_eq!(found.asn, e.asn);
        }
        assert!(t.locate("2001:db8::1".parse().unwrap()).is_none());
        assert!(t.locate("2405:200::1".parse().unwrap()).is_none());
    }

    #[test]
    fn prefixes_are_disjoint() {
        let t = BgpTable::generate(5, 300);
        for w in t.entries().windows(2) {
            assert!(!w[0].prefix.covers(w[1].prefix));
            assert!(!w[1].prefix.covers(w[0].prefix));
        }
    }

    #[test]
    fn hotspot_ases_advertise_more_and_loop_more() {
        let t = BgpTable::generate(7, 2000);
        let hotspot = t.as_params(28573).expect("Claro present");
        assert!(hotspot.loop_multiplier >= 4.0);
        let hotspot_prefixes = t.entries().iter().filter(|e| e.asn == 28573).count();
        assert!(hotspot_prefixes >= 24, "{hotspot_prefixes}");
        // A majority of non-hotspot ASes still have loops (3877/6911 ≈ 56%).
        let loopy = t.ases().iter().filter(|a| a.loop_multiplier > 0.0).count();
        let frac = loopy as f64 / t.ases().len() as f64;
        assert!((0.45..0.75).contains(&frac), "loopy fraction {frac}");
    }

    #[test]
    fn class_constants_consistent() {
        assert_eq!(BGP_IID_MIX.len(), IidClass::ALL.len());
        assert_eq!(BGP_IID_MIX.iter().sum::<u32>(), 1000);
        // Pooled loop rate ~3.2%.
        let pooled: f64 = BGP_IID_MIX
            .iter()
            .zip(LOOP_RATE_BY_CLASS)
            .map(|(m, r)| *m as f64 / 1000.0 * r)
            .sum();
        assert!((0.025..0.04).contains(&pooled), "pooled {pooled}");
        // Loop-population mix must reproduce Table X's low-byte dominance.
        let low_share = (BGP_IID_MIX[2] as f64 / 1000.0 * LOOP_RATE_BY_CLASS[2]) / pooled;
        assert!(
            (0.28..0.36).contains(&low_share),
            "low-byte share {low_share}"
        );
    }
}
