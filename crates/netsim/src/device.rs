//! Periphery device model.
//!
//! A [`Device`] is one IPv6 network periphery — a CPE home router or a UE
//! smartphone — with everything needed to answer probes: its addressing
//! (WAN/LAN prefixes, IID), its exposed application services, and its
//! routing-correctness flags for the loop vulnerability. Devices are
//! *derived*, not stored: the world model materializes one on demand from a
//! deterministic hash (see [`crate::world`]).

use xmap_addr::oui::DeviceClass;
use xmap_addr::{IidClass, Ip6, Mac, Prefix};

use crate::services::{ServiceKind, SoftwareId};

/// Kind of periphery device. Alias of the OUI registry's device class.
pub type DeviceKind = DeviceClass;

/// One exposed service instance on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceInstance {
    /// The serving software, when the service has a banner.
    pub software: Option<SoftwareId>,
    /// Whether the response discloses the vendor at the application layer.
    pub discloses_vendor: bool,
    /// For HTTP: whether the page is a router login/management page.
    pub login_page: bool,
}

/// The set of services a device exposes, indexed by [`ServiceKind::ALL`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceSet {
    slots: [Option<ServiceInstance>; 8],
}

impl ServiceSet {
    /// An empty set (nothing exposed).
    pub const fn empty() -> Self {
        ServiceSet { slots: [None; 8] }
    }

    /// Installs `instance` for `kind`.
    pub fn set(&mut self, kind: ServiceKind, instance: ServiceInstance) {
        self.slots[Self::slot(kind)] = Some(instance);
    }

    /// The instance serving `kind`, if exposed.
    pub fn get(&self, kind: ServiceKind) -> Option<&ServiceInstance> {
        self.slots[Self::slot(kind)].as_ref()
    }

    /// Whether `kind` is exposed.
    pub fn has(&self, kind: ServiceKind) -> bool {
        self.get(kind).is_some()
    }

    /// Whether any service is exposed.
    pub fn any(&self) -> bool {
        self.slots.iter().any(Option::is_some)
    }

    /// Number of exposed services.
    pub fn count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over `(kind, instance)` pairs of exposed services.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceKind, &ServiceInstance)> {
        ServiceKind::ALL
            .iter()
            .zip(self.slots.iter())
            .filter_map(|(k, s)| s.as_ref().map(|i| (*k, i)))
    }

    fn slot(kind: ServiceKind) -> usize {
        ServiceKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL")
    }
}

/// How the periphery sources its unreachable replies relative to the probed
/// prefix — the "same" / "diff" split of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyMode {
    /// Reply source shares the probed /64 (UE model, or a CPE whose WAN
    /// prefix equals the probed prefix).
    SamePrefix,
    /// Reply source is the CPE's WAN address in a different /64 (a probe
    /// into the delegated LAN prefix).
    DiffPrefix,
}

/// One periphery device with its addressing, behaviour and services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// CPE or UE.
    pub kind: DeviceKind,
    /// Hardware vendor (from the OUI registry's vendor set).
    pub vendor: &'static str,
    /// Structure class of the device's interface identifier.
    pub iid_class: IidClass,
    /// The 64-bit interface identifier of the WAN interface.
    pub iid: u64,
    /// MAC address — present exactly when `iid_class` is EUI-64.
    pub mac: Option<Mac>,
    /// The delegated prefix the scan probes into (LAN prefix for CPEs in
    /// `DiffPrefix` mode; WAN/UE prefix otherwise).
    pub delegated_prefix: Prefix,
    /// The /64 the WAN interface lives in when `reply_mode` is `DiffPrefix`.
    pub wan_prefix64: Prefix,
    /// The one /64 of the delegated prefix actually used on the LAN (equal
    /// to the delegated /64 for single-subnet devices). Destinations here
    /// are genuinely routed and never loop.
    pub used_subnet64: Prefix,
    /// Reply-source behaviour (Table II "same"/"diff").
    pub reply_mode: ReplyMode,
    /// Exposed application services.
    pub services: ServiceSet,
    /// Routing-loop vulnerable for not-used addresses inside the *WAN* /64
    /// (the "NX Address" case of Figure 4).
    pub loop_vuln_wan: bool,
    /// Routing-loop vulnerable for not-used prefixes inside the delegated
    /// *LAN* prefix (the "Not-used Prefix" case of Figure 4).
    pub loop_vuln_lan: bool,
    /// Hop count from the scan vantage point to the upstream ISP router.
    pub hops_to_isp: u8,
}

impl Device {
    /// The WAN address the device sources ICMPv6 errors from, given the
    /// probed destination (needed because `SamePrefix` devices answer from
    /// the probed /64).
    pub fn reply_source(&self, probed_dst: Ip6) -> Ip6 {
        match self.reply_mode {
            ReplyMode::SamePrefix => probed_dst.network(64).with_iid(self.iid),
            ReplyMode::DiffPrefix => self.wan_prefix64.addr().with_iid(self.iid),
        }
    }

    /// The device's own WAN interface address (where its services listen).
    pub fn wan_address(&self) -> Ip6 {
        match self.reply_mode {
            ReplyMode::SamePrefix => self.delegated_prefix.addr().network(64).with_iid(self.iid),
            ReplyMode::DiffPrefix => self.wan_prefix64.addr().with_iid(self.iid),
        }
    }

    /// Whether `addr` is one of the device's own interface addresses.
    pub fn owns_address(&self, addr: Ip6) -> bool {
        addr == self.wan_address()
    }

    /// Multiplier applied to the base ICMPv6 token-bucket capacity under
    /// [`crate::fault::IcmpRateLimit::TokenBucket`]: line-powered CPEs
    /// afford a larger error burst than battery-powered UEs.
    pub fn icmp_burst_scale(&self) -> u32 {
        match self.kind {
            DeviceClass::Cpe => 2,
            _ => 1,
        }
    }

    /// Whether a packet to `addr` with remaining `hop_limit` (measured at
    /// the ISP router) would loop between the ISP and this device:
    /// the address must fall in a vulnerable, unused region.
    pub fn loops_for(&self, addr: Ip6) -> bool {
        if self.owns_address(addr) {
            return false;
        }
        match self.reply_mode {
            ReplyMode::DiffPrefix => {
                if self.used_subnet64.contains(addr) {
                    // The in-use subnet has a real route toward the LAN.
                    false
                } else if self.delegated_prefix.contains(addr) {
                    // Unused LAN destinations: vulnerable unless the CE
                    // router installed an unreachable route (RFC 7084).
                    self.loop_vuln_lan
                } else if self.wan_prefix64.contains(addr) {
                    self.loop_vuln_wan
                } else {
                    false
                }
            }
            ReplyMode::SamePrefix => self.delegated_prefix.contains(addr) && self.loop_vuln_wan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::{software_id, ServiceKind};

    fn sample_device(reply_mode: ReplyMode) -> Device {
        Device {
            kind: DeviceKind::Cpe,
            vendor: "ZTE",
            iid_class: IidClass::Randomized,
            iid: 0x9c3a_71e2_b048_5d16,
            mac: None,
            delegated_prefix: "2001:db8:4321:8760::/60".parse().unwrap(),
            wan_prefix64: "2001:db8:1234:5678::/64".parse().unwrap(),
            used_subnet64: "2001:db8:4321:8765::/64".parse().unwrap(),
            reply_mode,
            services: ServiceSet::empty(),
            loop_vuln_wan: true,
            loop_vuln_lan: true,
            hops_to_isp: 12,
        }
    }

    #[test]
    fn service_set_basics() {
        let mut s = ServiceSet::empty();
        assert!(!s.any());
        assert_eq!(s.count(), 0);
        s.set(
            ServiceKind::Dns,
            ServiceInstance {
                software: software_id("dnsmasq", "2.4x"),
                discloses_vendor: false,
                login_page: false,
            },
        );
        assert!(s.has(ServiceKind::Dns));
        assert!(!s.has(ServiceKind::Http));
        assert_eq!(s.count(), 1);
        assert_eq!(s.iter().count(), 1);
        let (k, inst) = s.iter().next().unwrap();
        assert_eq!(k, ServiceKind::Dns);
        assert_eq!(inst.software.unwrap().get().name, "dnsmasq");
    }

    #[test]
    fn diff_mode_replies_from_wan_prefix() {
        let d = sample_device(ReplyMode::DiffPrefix);
        let probe: Ip6 = "2001:db8:4321:8765:aaaa::1".parse().unwrap();
        let src = d.reply_source(probe);
        assert_eq!(
            src.network(64),
            "2001:db8:1234:5678::".parse::<Ip6>().unwrap().network(64)
        );
        assert_ne!(src.network(64), probe.network(64));
        assert_eq!(src, d.wan_address());
    }

    #[test]
    fn same_mode_replies_from_probed_prefix() {
        let mut d = sample_device(ReplyMode::SamePrefix);
        d.delegated_prefix = "2001:db8:abcd:ef12::/64".parse().unwrap();
        let probe: Ip6 = "2001:db8:abcd:ef12:dead::1".parse().unwrap();
        let src = d.reply_source(probe);
        assert_eq!(src.network(64), probe.network(64));
        assert_eq!(src.iid(), d.iid);
    }

    #[test]
    fn loop_regions() {
        let d = sample_device(ReplyMode::DiffPrefix);
        // Unused LAN destination loops.
        assert!(d.loops_for("2001:db8:4321:8769::1".parse().unwrap()));
        // Unused WAN-prefix destination loops (NX Address case).
        assert!(d.loops_for("2001:db8:1234:5678:ffff::1".parse().unwrap()));
        // The device's own WAN address never loops.
        assert!(!d.loops_for(d.wan_address()));
        // Unrelated destinations never loop.
        assert!(!d.loops_for("2001:db9::1".parse().unwrap()));
        // The in-use subnet is properly routed and never loops.
        assert!(!d.loops_for("2001:db8:4321:8765::1".parse().unwrap()));
    }

    #[test]
    fn patched_device_does_not_loop() {
        let mut d = sample_device(ReplyMode::DiffPrefix);
        d.loop_vuln_lan = false;
        d.loop_vuln_wan = false;
        assert!(!d.loops_for("2001:db8:4321:8769::1".parse().unwrap()));
        assert!(!d.loops_for("2001:db8:1234:5678:ffff::1".parse().unwrap()));
    }
}
