//! The procedural Internet: a scalable, deterministic [`Network`].
//!
//! The world answers probes the way the live IPv6 Internet answered the
//! paper's scans, without materializing 52 million devices. Device existence
//! and every device property are *derived* by hashing `(seed, block,
//! sub-prefix index)`, so:
//!
//! * the same address always behaves the same way across probes and scans,
//! * a 2³²-sub-prefix block costs no memory,
//! * any contiguous slice of a block is a statistically faithful sample,
//!   which is what makes the scaled experiments (DESIGN.md §1) valid.
//!
//! Behavioural rules match the explicit [`crate::Engine`]:
//!
//! * a probe to a nonexistent address inside an allocated prefix draws an
//!   ICMPv6 address-unreachable from the periphery's WAN address (RFC 4443),
//! * hop limits that expire before the ISP router draw Time Exceeded from a
//!   transit router,
//! * probes into the unused region of a loop-vulnerable CPE's prefixes draw
//!   Time Exceeded after ping-ponging on the ISP↔CPE link (the traversals
//!   are counted for amplification statistics),
//! * application probes are answered only for addresses that have already
//!   revealed themselves in this world — exactly the pipeline the paper
//!   runs (discover first, then ZGrab the discovered set).

use std::collections::{BinaryHeap, HashMap};

use xmap_addr::oui::{self, DeviceClass};
use xmap_addr::{IidClass, Ip6, Mac, Prefix};
use xmap_state::AbortSignal;

use crate::bgp::{BgpTable, BASE_DENSITY, BGP_IID_MIX, LOOP_RATE_BY_CLASS};
use crate::device::{Device, ReplyMode, ServiceInstance, ServiceSet};
use crate::fault::{DelayedResponse, ErrorLimiterState, FaultPlan};
use crate::isp::{IspProfile, NON_EUI_IID_SPLIT, SAMPLE_BLOCKS};
use crate::packet::{
    AppData, Icmpv6, Ipv6Packet, Network, PacketArena, Payload, TcpFlags, UnreachCode,
};
use crate::rng::{weighted_pick, DetHash};
use crate::services::{
    software_id, AppRequest, AppResponse, ServiceKind, SoftwareId, TransportProto, SOFTWARE_CATALOG,
};
use crate::telemetry::NetsimTelemetry;

/// How devices are laid out across a block's sub-prefix index space.
///
/// Real access networks are not uniform: ISPs light up contiguous
/// allocation pools ("pods") while the rest of the block stays dark.
/// [`Allocation::Clustered`] models that structure, which is what makes
/// density-guided adaptive scanning meaningfully better than uniform
/// sampling. The default stays [`Allocation::Uniform`] so every
/// historically seeded world is byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Allocation {
    /// Every sub-prefix index is allocated independently at the profile's
    /// occupancy (the historical behaviour).
    Uniform,
    /// Indices cluster into pods of `1 << pod_bits` consecutive indices.
    /// Each pod is active with probability `active_frac`; inactive pods
    /// are strictly empty, and active pods concentrate the block's
    /// occupancy (`occupancy / active_frac`, capped at 1), so the
    /// expected device population matches the uniform layout.
    Clustered {
        /// log2 of the pod size in sub-prefix indices.
        pod_bits: u8,
        /// Fraction of pods that are active.
        active_frac: f64,
    },
}

/// Configuration of a [`World`].
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Master seed; all behaviour derives from it.
    pub seed: u64,
    /// Number of autonomous systems in the synthetic BGP table.
    pub bgp_ases: usize,
    /// Fraction of probe/response exchanges lost end to end.
    pub loss_frac: f64,
    /// Injected faults beyond baseline behaviour (loss, token-bucket ICMP
    /// limiting, jitter, flaky devices). [`FaultPlan::none`] by default.
    pub fault: FaultPlan,
    /// Device layout across each block's index space.
    pub allocation: Allocation,
}

impl Default for WorldConfig {
    fn default() -> Self {
        // 6,911 ASes — the responding-AS universe of Table IX.
        WorldConfig {
            seed: 0xDA7A_5EED,
            bgp_ases: 6911,
            loss_frac: 0.004,
            fault: FaultPlan::none(),
            allocation: Allocation::Uniform,
        }
    }
}

impl WorldConfig {
    /// A fault-free configuration: zero loss and no injected faults.
    /// The constructor every controlled experiment and test should use
    /// unless it is explicitly studying faults.
    pub fn lossless(seed: u64, bgp_ases: usize) -> Self {
        WorldConfig {
            seed,
            bgp_ases,
            loss_frac: 0.0,
            fault: FaultPlan::none(),
            allocation: Allocation::Uniform,
        }
    }

    /// Replaces the fault plan.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Replaces the device allocation layout.
    #[must_use]
    pub fn with_allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }
}

/// Traffic statistics accumulated by a world.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Packets injected.
    pub probes: u64,
    /// Response packets produced.
    pub responses: u64,
    /// Probes that triggered a routing loop.
    pub loop_events: u64,
    /// Link traversals consumed by routing loops (amplified traffic).
    pub loop_forwards: u64,
    /// ICMPv6 errors suppressed by per-device rate limiting (RFC 4443
    /// §2.4(f)).
    pub rate_limited: u64,
    /// Probes dropped in the forward direction by the fault plan.
    pub fwd_lost: u64,
    /// Responses dropped on the return path by the fault plan.
    pub rev_lost: u64,
    /// Extra response copies produced by fault-plan duplication.
    pub dup_responses: u64,
    /// Responses held back by jitter (delivered by a later tick).
    pub jittered: u64,
    /// Probes swallowed because the target device was mid-reboot.
    pub flaky_dropped: u64,
}

impl WorldStats {
    /// Mean loop amplification factor (looped traversals per looping probe).
    pub fn amplification(&self) -> f64 {
        if self.loop_events == 0 {
            0.0
        } else {
            self.loop_forwards as f64 / self.loop_events as f64
        }
    }
}

/// Locator of a responding device, kept in the discovery registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceRef {
    /// Device `index` within sample block `profile` (index into SAMPLE_BLOCKS).
    Isp { profile: usize, index: u64 },
}

/// A last-hop host in the BGP survey zone (no services, no vendor — the
/// survey only measures reachability, IID structure and loop behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgpHost {
    /// Origin AS of the covering prefix.
    pub asn: u32,
    /// IID class of the responding address.
    pub iid_class: IidClass,
    /// Interface identifier.
    pub iid: u64,
    /// Whether the host's routes loop for unused destinations.
    pub loops: bool,
    /// Hop count from the vantage to the host's upstream router.
    pub hops: u8,
}

/// The procedural Internet.
///
/// # Examples
///
/// ```
/// use xmap_netsim::{World, Network, Ipv6Packet};
///
/// let mut world = World::new(42);
/// // Probe a nonexistent address in Reliance Jio's sample block; if the
/// // sub-prefix is allocated, the periphery answers with an unreachable.
/// let probe = Ipv6Packet::echo_request(
///     "fd00::1".parse()?, "2405:200:0:1::1234".parse()?, 64, 7, 7);
/// let _responses = world.handle(probe);
/// # Ok::<(), xmap_addr::ParseAddrError>(())
/// ```
#[derive(Debug)]
pub struct World {
    cfg: WorldConfig,
    profiles: &'static [IspProfile],
    bgp: BgpTable,
    /// Discovered WAN address → device locator (fed by discovery responses,
    /// consumed by application-layer probes).
    registry: HashMap<Ip6, DeviceRef>,
    /// Per-device ICMPv6 error limiter state (RFC 4443 rate limiting).
    error_limiters: HashMap<(usize, u64), ErrorLimiterState>,
    /// Virtual clock in ticks; advanced by [`Network::tick`].
    clock: u64,
    /// Responses delayed by fault-plan jitter, ordered by due tick.
    delayed: BinaryHeap<DelayedResponse>,
    /// Monotone insertion counter for deterministic delay-queue ordering.
    delay_seq: u64,
    stats: WorldStats,
    /// Registry handles for the `netsim.*` metric surface (inert unless
    /// [`World::set_telemetry`] attached a live bundle).
    telemetry: NetsimTelemetry,
    /// Stats as of the last registry publish (publishing is delta-based).
    published: WorldStats,
    /// Clock as of the last registry publish.
    published_clock: u64,
    /// Freelist for per-exchange response staging buffers, so steady-state
    /// probing allocates nothing.
    arena: PacketArena,
    /// Armed kill-point for checkpoint/resume testing, if any.
    kill: Option<ArmedKill>,
}

/// A deterministic abort trigger: fires an [`AbortSignal`] when the world
/// reaches an exact probe count and/or clock tick.
///
/// Kill-points are the test harness for the checkpoint subsystem: under a
/// fixed seed, "kill at probe *k*" reproduces the same interruption on
/// every run, which lets integration tests prove that an interrupted and
/// resumed scan is byte-identical to an uninterrupted one.
#[derive(Debug, Clone, Copy, Default)]
pub struct KillPoint {
    /// Fire once the world has handled this many probes.
    pub after_probes: Option<u64>,
    /// Fire once the virtual clock reaches this tick.
    pub at_tick: Option<u64>,
}

#[derive(Debug, Clone)]
struct ArmedKill {
    point: KillPoint,
    signal: AbortSignal,
}

/// Packets (or ticks) between registry publishes when event tracing is
/// off. Metrics-only telemetry coalesces at this granularity on the
/// per-packet path; [`Network::flush_telemetry`] makes boundaries exact.
const TELEMETRY_BATCH: u64 = 64;

impl World {
    /// Creates a world over the fifteen sample blocks and a full-size BGP
    /// table, from a seed.
    pub fn new(seed: u64) -> Self {
        World::with_config(WorldConfig {
            seed,
            ..WorldConfig::default()
        })
    }

    /// Creates a world with explicit configuration.
    pub fn with_config(cfg: WorldConfig) -> Self {
        World {
            cfg,
            profiles: SAMPLE_BLOCKS,
            bgp: BgpTable::generate(cfg.seed, cfg.bgp_ases),
            registry: HashMap::new(),
            error_limiters: HashMap::new(),
            clock: 0,
            delayed: BinaryHeap::new(),
            delay_seq: 0,
            stats: WorldStats::default(),
            telemetry: NetsimTelemetry::disabled(),
            published: WorldStats::default(),
            published_clock: 0,
            arena: PacketArena::new(),
            kill: None,
        }
    }

    /// Arms a [`KillPoint`]: `signal` is set the moment the world crosses
    /// any of the point's thresholds. The scanner polls the same signal
    /// and stops cooperatively at the next slot boundary.
    pub fn arm_kill(&mut self, point: KillPoint, signal: AbortSignal) {
        self.kill = Some(ArmedKill { point, signal });
    }

    fn check_kill(&self) {
        if let Some(armed) = &self.kill {
            let probes_hit = armed
                .point
                .after_probes
                .is_some_and(|n| self.stats.probes >= n);
            let tick_hit = armed.point.at_tick.is_some_and(|t| self.clock >= t);
            if probes_hit || tick_hit {
                armed.signal.set();
            }
        }
    }

    /// Attaches a telemetry bundle: from now on every [`Network::handle`] /
    /// [`Network::tick`] publishes its [`WorldStats`] delta into the
    /// bundle's registry as `netsim.*` counters and emits fault/tick trace
    /// events into its tracer.
    pub fn set_telemetry(&mut self, telemetry: &xmap_telemetry::Telemetry) {
        self.telemetry = NetsimTelemetry::bind(telemetry);
        self.published = self.stats;
        self.published_clock = self.clock;
    }

    /// Publishes any stats movement since the last publish.
    fn publish_telemetry(&mut self) {
        if self.telemetry.is_enabled() {
            let tick_delta = self.clock - self.published_clock;
            if tick_delta > 0 {
                self.telemetry.ticks.add(tick_delta);
            }
            self.telemetry
                .publish_delta(&self.published, &self.stats, self.clock);
            self.published = self.stats;
            self.published_clock = self.clock;
        }
    }

    /// Whether the per-packet path should publish now. With tracing on,
    /// every call publishes (fault events stay per-exchange); metrics-only
    /// bundles coalesce [`TELEMETRY_BATCH`] packets per publish.
    fn telemetry_due(&self) -> bool {
        self.telemetry.is_enabled()
            && (self.telemetry.tracer().is_enabled()
                || self.stats.probes - self.published.probes >= TELEMETRY_BATCH
                || self.clock - self.published_clock >= TELEMETRY_BATCH)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// The ISP profiles backing the sample blocks.
    pub fn profiles(&self) -> &'static [IspProfile] {
        self.profiles
    }

    /// The synthetic BGP table.
    pub fn bgp(&self) -> &BgpTable {
        &self.bgp
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// The current virtual time in ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of addresses in the discovery registry.
    pub fn discovered_count(&self) -> usize {
        self.registry.len()
    }

    /// Whether sub-prefix `index` of block `profile_idx` is *aliased*: a
    /// middlebox answers echo for every address beneath it. Aliased
    /// prefixes are disjoint from allocated periphery prefixes.
    pub fn is_aliased(&self, profile_idx: usize, index: u64) -> bool {
        let p = &self.profiles[profile_idx];
        DetHash::new(self.cfg.seed)
            .mix(b"alias")
            .mix_u64(p.id as u64)
            .mix_u64(index)
            .chance(p.aliased_frac)
    }

    /// The LAN hosts attached to a device's in-use subnet (1..=3 stable
    /// addresses). These answer echo when probed exactly — the population
    /// hitlist/TGA baselines hunt for.
    pub fn hosts_of(&self, profile_idx: usize, index: u64) -> Vec<Ip6> {
        let Some(device) = self.device_at(profile_idx, index) else {
            return Vec::new();
        };
        let p = &self.profiles[profile_idx];
        let h = DetHash::new(self.cfg.seed)
            .mix(b"hosts")
            .mix_u64(p.id as u64)
            .mix_u64(index);
        let n = 1 + h.mix(b"n").bounded(3);
        (0..n)
            .map(|k| {
                let hk = h.mix(b"host").mix_u64(k);
                let iid = match hk.mix(b"cls").bounded(4) {
                    // LAN hosts skew low-byte/EUI-64 more than CPE WANs.
                    0 => 1 + hk.mix(b"low").bounded(0xff),
                    1 => {
                        let mac = Mac::from_oui_nic(
                            oui::OUI_TABLE
                                [hk.mix(b"oui").bounded(oui::OUI_TABLE.len() as u64) as usize]
                                .oui,
                            hk.mix(b"nic").bounded(1 << 24) as u32,
                        );
                        mac.to_eui64()
                    }
                    _ => {
                        let mut v = hk.mix(b"rand").finish();
                        if (v >> 24) & 0xffff == 0xfffe {
                            v ^= 1 << 24;
                        }
                        v.max(0x10000)
                    }
                };
                device.used_subnet64.addr().with_iid(iid)
            })
            .collect()
    }

    /// RFC 4443 §2.4(f): decides whether the device may emit one more
    /// ICMPv6 error, under the fault plan's limiter model (legacy
    /// burst-then-1-in-10 by default, a virtual-time token bucket when
    /// configured). Returns whether this error may be sent.
    fn error_budget_ok(&mut self, profile_idx: usize, index: u64, device: &Device) -> bool {
        let plan = self.cfg.fault;
        let tick = self.clock;
        let state = self.error_limiters.entry((profile_idx, index)).or_default();
        let allowed = plan.admit_error(
            profile_idx as u64,
            index,
            state,
            tick,
            device.icmp_burst_scale(),
        );
        if !allowed {
            self.stats.rate_limited += 1;
        }
        allowed
    }

    /// Derives the device of sub-prefix `index` in sample block `profile_idx`
    /// (an index into [`SAMPLE_BLOCKS`]), or `None` when unallocated.
    ///
    /// Public so that tests and ground-truth evaluations can compare scanner
    /// findings against the true population.
    pub fn device_at(&self, profile_idx: usize, index: u64) -> Option<Device> {
        let p = &self.profiles[profile_idx];
        let h = DetHash::new(self.cfg.seed)
            .mix(b"isp-dev")
            .mix_u64(p.id as u64)
            .mix_u64(index);
        let occupancy = match self.cfg.allocation {
            Allocation::Uniform => p.occupancy,
            Allocation::Clustered {
                pod_bits,
                active_frac,
            } => {
                let pod = index >> pod_bits.min(63);
                let active = DetHash::new(self.cfg.seed)
                    .mix(b"pod")
                    .mix_u64(p.id as u64)
                    .mix_u64(pod)
                    .chance(active_frac);
                if !active {
                    return None;
                }
                // Active pods absorb the whole block population, so the
                // expected device count matches the uniform layout.
                (p.occupancy / active_frac).min(1.0)
            }
        };
        if !h.mix(b"exists").chance(occupancy) {
            return None;
        }

        // Loop vulnerability first: Table XI shows reply mode correlates
        // with it (loop devices skew toward "same" in some blocks).
        let loop_vuln = h.mix(b"loop").chance(p.loop_rate);
        let same = if loop_vuln {
            h.mix(b"lsame").chance(p.loop_same_frac)
        } else {
            h.mix(b"same").chance(p.same_frac)
        };
        let reply_mode = if same {
            ReplyMode::SamePrefix
        } else {
            ReplyMode::DiffPrefix
        };

        let weights: Vec<u32> = p.vendors.iter().map(|(_, w)| *w).collect();
        let vendor = p.vendors[weighted_pick(h.mix(b"vendor"), &weights)].0;
        let kind = oui::class_of(vendor).unwrap_or(DeviceClass::Cpe);

        let iid_class = if h.mix(b"eui").chance(p.eui64_frac) {
            IidClass::Eui64
        } else {
            const REST: [IidClass; 4] = [
                IidClass::Randomized,
                IidClass::BytePattern,
                IidClass::EmbedIpv4,
                IidClass::LowByte,
            ];
            REST[weighted_pick(h.mix(b"cls"), &NON_EUI_IID_SPLIT)]
        };
        let (iid, mac) = self.derive_iid(h, iid_class, Some((vendor, p.mac_dup_frac)));

        let delegated_prefix = p.scan_prefix().subprefix(p.assigned_len, index as u128);
        let wan_prefix64 = p
            .wan_zone()
            .subprefix(64, (index >> wan_share_shift(p)) as u128);
        let used_subnet64 = if p.assigned_len < 64 {
            let subnets = 1u64 << (64 - p.assigned_len);
            delegated_prefix.subprefix(64, h.mix(b"subnet").bounded(subnets) as u128)
        } else {
            delegated_prefix
        };

        let services = self.derive_services(h, p, vendor);

        // Loop region: "same"-replying loop devices mis-route their WAN/UE
        // prefix; "diff" ones mis-route the delegated LAN prefix (95.1% of
        // Table XI), a few both.
        let loop_vuln_wan = loop_vuln && (same || h.mix(b"lwan").chance(0.1));
        let loop_vuln_lan = loop_vuln && !same;

        Some(Device {
            kind,
            vendor,
            iid_class,
            iid,
            mac,
            delegated_prefix,
            wan_prefix64,
            used_subnet64,
            reply_mode,
            services,
            loop_vuln_wan,
            loop_vuln_lan,
            hops_to_isp: p.hops_base + h.mix(b"hops").bounded(8) as u8,
        })
    }

    /// Derives the BGP-zone last hop covering 16-bit sub-prefix `index` of an
    /// advertised prefix, or `None` when no host answers there.
    pub fn bgp_host_at(&self, prefix: Prefix, asn: u32, index: u64) -> Option<BgpHost> {
        let params = self.bgp.as_params(asn)?;
        let h = DetHash::new(self.cfg.seed)
            .mix(b"bgp-dev")
            .mix_u128(prefix.addr().bits())
            .mix_u64(index);
        let density = (BASE_DENSITY * params.activity).min(0.9);
        if !h.mix(b"exists").chance(density) {
            return None;
        }
        let class_idx = weighted_pick(h.mix(b"cls"), &BGP_IID_MIX);
        let iid_class = IidClass::ALL[class_idx];
        let loop_p = (LOOP_RATE_BY_CLASS[class_idx] * params.loop_multiplier).min(0.95);
        let loops = h.mix(b"loop").chance(loop_p);
        let (iid, _) = self.derive_iid(h, iid_class, None);
        Some(BgpHost {
            asn,
            iid_class,
            iid,
            loops,
            hops: 6 + h.mix(b"hops").bounded(14) as u8,
        })
    }

    /// Derives an IID value of the requested class. For EUI-64, the MAC's
    /// OUI comes from the vendor's registered OUIs (or anywhere in the
    /// registry when no vendor is given); `dup_frac` devices draw their NIC
    /// bits from a tiny shared pool, modelling cloned MACs.
    fn derive_iid(
        &self,
        h: DetHash,
        class: IidClass,
        vendor: Option<(&str, f64)>,
    ) -> (u64, Option<Mac>) {
        let hi = h.mix(b"iid");
        match class {
            IidClass::Eui64 => {
                let ouis: Vec<u32> = match vendor {
                    Some((v, _)) => oui::ouis_of(v).collect(),
                    None => Vec::new(),
                };
                let oui_val = if ouis.is_empty() {
                    let i = hi.mix(b"anyoui").bounded(oui::OUI_TABLE.len() as u64) as usize;
                    oui::OUI_TABLE[i].oui
                } else {
                    ouis[hi.mix(b"oui").bounded(ouis.len() as u64) as usize]
                };
                let dup_frac = vendor.map_or(0.0, |(_, d)| d);
                let nic = if hi.mix(b"dup").chance(dup_frac) {
                    // Cloned MAC: NIC bits from a pool of 64 values.
                    0x10_0000 + hi.mix(b"pool").bounded(64) as u32
                } else {
                    hi.mix(b"nic").bounded(1 << 24) as u32
                };
                let mac = Mac::from_oui_nic(oui_val, nic);
                (mac.to_eui64(), Some(mac))
            }
            IidClass::Randomized => {
                let mut v = hi.mix(b"rand").finish();
                // Never collide with the EUI-64 marker or tiny values.
                if (v >> 24) & 0xffff == 0xfffe {
                    v ^= 1 << 24;
                }
                if v <= 0xffff {
                    v |= 0x1u64 << 63;
                }
                (v, None)
            }
            IidClass::LowByte => (1 + hi.mix(b"low").bounded(0xff), None),
            IidClass::BytePattern => {
                let g = 0x1111u64 * (1 + hi.mix(b"pat").bounded(0xe));
                (
                    (((g * 0x0001_0001_0001_0001) >> 48) << 48)
                        | ((g * 0x0001_0001) & 0xffff_ffff)
                        | (g << 32),
                    None,
                )
            }
            IidClass::EmbedIpv4 => {
                // Hex-coded private-style IPv4 in the low 32 bits.
                let a = [10u64, 100, 172, 192][hi.mix(b"a").bounded(4) as usize];
                let rest = hi.mix(b"bcd").bounded(1 << 24);
                ((a << 24) | rest, None)
            }
        }
    }

    /// Derives the exposed-service set for a device.
    fn derive_services(&self, h: DetHash, p: &IspProfile, vendor: &str) -> ServiceSet {
        let profile = crate::services::vendor_profile(vendor);
        let mut set = ServiceSet::empty();
        for (i, kind) in ServiceKind::ALL.into_iter().enumerate() {
            let p_eff = (p.service_rates[i] * profile.multipliers[i] as f64 / 1000.0).min(0.97);
            if p_eff <= 0.0 {
                continue;
            }
            let hk = h.mix(b"svc").mix_u64(i as u64);
            if !hk.chance(p_eff) {
                continue;
            }
            let software = pick_software(hk, kind, profile.software);
            set.set(
                kind,
                ServiceInstance {
                    software,
                    discloses_vendor: hk
                        .mix(b"disc")
                        .chance(profile.discloses_vendor as f64 / 1000.0),
                    login_page: kind == ServiceKind::Http && hk.mix(b"login").chance(0.85),
                },
            );
        }
        set
    }

    /// End-to-end loss decision for one exchange, deterministic per packet.
    fn lost(&self, packet: &Ipv6Packet) -> bool {
        DetHash::new(self.cfg.seed)
            .mix(b"loss")
            .mix_u128(packet.dst.bits())
            .mix_u64(packet.hop_limit as u64)
            .chance(self.cfg.loss_frac)
    }

    /// Per-device silent-filtering decision (upstream ICMPv6 policy).
    fn filtered(&self, p: &IspProfile, index: u64) -> bool {
        DetHash::new(self.cfg.seed)
            .mix(b"filter")
            .mix_u64(p.id as u64)
            .mix_u64(index)
            .chance(p.filter_frac)
    }

    /// Answers an echo probe destined into a sample block's scan space,
    /// appending the responses (if any) to `out`.
    fn handle_isp_echo(
        &mut self,
        profile_idx: usize,
        packet: &Ipv6Packet,
        out: &mut Vec<Ipv6Packet>,
    ) {
        let p = &self.profiles[profile_idx];
        let Some(index) = p.scan_prefix().subprefix_index(p.assigned_len, packet.dst) else {
            return;
        };
        let index = index as u64;
        if self.is_aliased(profile_idx, index) {
            // Aliased region: a middlebox answers echo for everything.
            out.push(echo_reply(packet));
            return;
        }
        let Some(device) = self.device_at(profile_idx, index) else {
            // Unallocated sub-prefix: aggregated/blackholed upstream.
            return;
        };
        if self.filtered(p, index) {
            return;
        }
        if self
            .cfg
            .fault
            .device_down(profile_idx as u64, index, self.clock)
        {
            // Mid-reboot: the device drops everything addressed through it.
            self.stats.flaky_dropped += 1;
            return;
        }
        let n = device.hops_to_isp;
        if packet.hop_limit <= n {
            // Expired in transit: Time Exceeded from a transit router.
            let transit = transit_router_addr(p, packet.hop_limit);
            out.push(icmp(
                transit,
                packet,
                Icmpv6::TimeExceeded {
                    invoking: packet.quote(),
                },
            ));
            return;
        }
        if packet.dst == device.wan_address() || packet.dst == device.reply_source(packet.dst) {
            out.push(echo_reply(packet));
            self.register(packet.dst, profile_idx, index);
            return;
        }
        if device.used_subnet64.contains(packet.dst)
            && self.hosts_of(profile_idx, index).contains(&packet.dst)
        {
            // A real LAN host: forwarded by the CPE and answered end to end.
            out.push(echo_reply(packet));
            return;
        }
        if device.loops_for(packet.dst) {
            // The packet ping-pongs between ISP router and CPE until its
            // hop limit dies; the CPE's WAN address answers Time Exceeded.
            self.stats.loop_events += 1;
            self.stats.loop_forwards += (packet.hop_limit - n) as u64;
            if !self.error_budget_ok(profile_idx, index, &device) {
                return;
            }
            let src = device.reply_source(packet.dst);
            self.register(src, profile_idx, index);
            out.push(icmp(
                src,
                packet,
                Icmpv6::TimeExceeded {
                    invoking: packet.quote(),
                },
            ));
            return;
        }
        // RFC 4443: address unreachable from the last-hop periphery. If the
        // device patched the unused region with a reject route, the code
        // differs but the discovery signal is the same.
        let code = if device.delegated_prefix.contains(packet.dst)
            && !device.used_subnet64.contains(packet.dst)
            && device.reply_mode == ReplyMode::DiffPrefix
        {
            UnreachCode::RejectRoute
        } else {
            UnreachCode::AddressUnreachable
        };
        if !self.error_budget_ok(profile_idx, index, &device) {
            return;
        }
        let src = device.reply_source(packet.dst);
        self.register(src, profile_idx, index);
        out.push(icmp(
            src,
            packet,
            Icmpv6::DestUnreachable {
                code,
                invoking: packet.quote(),
            },
        ));
    }

    /// Answers an echo probe destined into the BGP survey zone, appending
    /// the responses (if any) to `out`.
    fn handle_bgp_echo(&mut self, packet: &Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        let Some(entry) = self.bgp.locate(packet.dst).copied() else {
            return;
        };
        // The survey probes /48 sub-prefixes of /32 advertisements.
        let Some(index) = entry.prefix.subprefix_index(48, packet.dst) else {
            return;
        };
        let Some(host) = self.bgp_host_at(entry.prefix, entry.asn, index as u64) else {
            return;
        };
        if packet.hop_limit <= host.hops {
            let transit = packet
                .dst
                .network(32)
                .with_iid(0xffff_0000_0000_0000 | packet.hop_limit as u64);
            out.push(icmp(
                transit,
                packet,
                Icmpv6::TimeExceeded {
                    invoking: packet.quote(),
                },
            ));
            return;
        }
        // Reply source: the last hop lives in some /64 of the probed /48.
        let h = DetHash::new(self.cfg.seed)
            .mix(b"bgp-sub")
            .mix_u128(packet.dst.network(48).bits());
        let src = packet
            .dst
            .network(48)
            .with_bit_slice(48, 64, h.bounded(1 << 16))
            .with_iid(host.iid);
        if host.loops && packet.dst != src {
            self.stats.loop_events += 1;
            self.stats.loop_forwards += packet.hop_limit.saturating_sub(host.hops) as u64;
            out.push(icmp(
                src,
                packet,
                Icmpv6::TimeExceeded {
                    invoking: packet.quote(),
                },
            ));
            return;
        }
        out.push(icmp(
            src,
            packet,
            Icmpv6::DestUnreachable {
                code: UnreachCode::AddressUnreachable,
                invoking: packet.quote(),
            },
        ));
    }

    /// Answers an application-layer probe (UDP/TCP) for a discovered
    /// device, appending the responses (if any) to `out`.
    fn handle_app(&mut self, packet: &Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        let Some(&DeviceRef::Isp { profile, index }) = self.registry.get(&packet.dst) else {
            return;
        };
        let Some(device) = self.device_at(profile, index) else {
            return;
        };
        if self
            .cfg
            .fault
            .device_down(profile as u64, index, self.clock)
        {
            self.stats.flaky_dropped += 1;
            return;
        }
        match &packet.payload {
            Payload::Udp {
                src_port,
                dst_port,
                data,
            } => {
                let Some(kind) = ServiceKind::from_port(*dst_port) else {
                    out.push(port_unreachable(packet));
                    return;
                };
                if kind.transport() != TransportProto::Udp {
                    out.push(port_unreachable(packet));
                    return;
                }
                match (device.services.get(kind), data) {
                    (Some(inst), AppData::Request(req)) => {
                        let resp = service_response(&device, kind, inst, *req);
                        out.push(Ipv6Packet {
                            src: packet.dst,
                            dst: packet.src,
                            hop_limit: crate::packet::DEFAULT_HOP_LIMIT,
                            payload: Payload::Udp {
                                src_port: *dst_port,
                                dst_port: *src_port,
                                data: AppData::Response(resp),
                            },
                        });
                    }
                    _ => out.push(port_unreachable(packet)),
                }
            }
            Payload::Tcp {
                src_port,
                dst_port,
                flags,
                data,
            } => {
                let open = ServiceKind::from_port(*dst_port).is_some_and(|k| {
                    k.transport() == TransportProto::Tcp && device.services.has(k)
                });
                match flags {
                    TcpFlags::Syn => {
                        let reply_flags = if open {
                            TcpFlags::SynAck
                        } else {
                            TcpFlags::Rst
                        };
                        out.push(tcp_reply(
                            packet,
                            *src_port,
                            *dst_port,
                            reply_flags,
                            AppData::None,
                        ));
                    }
                    TcpFlags::Ack => {
                        if !open {
                            out.push(tcp_reply(
                                packet,
                                *src_port,
                                *dst_port,
                                TcpFlags::Rst,
                                AppData::None,
                            ));
                            return;
                        }
                        let kind = ServiceKind::from_port(*dst_port).expect("open implies known");
                        let inst = *device.services.get(kind).expect("open implies instance");
                        if let AppData::Request(req) = data {
                            let resp = service_response(&device, kind, &inst, *req);
                            out.push(tcp_reply(
                                packet,
                                *src_port,
                                *dst_port,
                                TcpFlags::Ack,
                                AppData::Response(resp),
                            ));
                        }
                    }
                    _ => {}
                }
            }
            Payload::Icmp(_) => {}
        }
    }

    fn register(&mut self, addr: Ip6, profile: usize, index: u64) {
        self.registry
            .insert(addr, DeviceRef::Isp { profile, index });
    }

    /// Finds the sample block whose scan space contains `addr`.
    fn scan_zone_of(&self, addr: Ip6) -> Option<usize> {
        self.profiles
            .iter()
            .position(|p| p.scan_prefix().contains(addr))
    }
}

/// Computes the subscriber-window shift that yields the profile's target
/// WAN-/64 sharing (see `IspProfile::wan_unique64_frac`): CPEs within one
/// window of `2^shift` consecutive sub-prefixes share a WAN /64.
fn wan_share_shift(p: &IspProfile) -> u32 {
    if p.wan_unique64_frac >= 0.9 {
        return 0;
    }
    let k = 1.0 / p.wan_unique64_frac.max(1e-3); // devices per shared /64
    let window = k / p.occupancy.max(1e-12);
    (window.log2().ceil() as u32).min(31)
}

/// A synthetic transit-router address for in-path Time Exceeded messages.
fn transit_router_addr(p: &IspProfile, at_hop: u8) -> Ip6 {
    p.wan_zone()
        .addr()
        .with_iid(0xffff_0000_0000_0000 | at_hop as u64)
}

fn icmp(src: Ip6, about: &Ipv6Packet, msg: Icmpv6) -> Ipv6Packet {
    Ipv6Packet {
        src,
        dst: about.src,
        hop_limit: crate::packet::DEFAULT_HOP_LIMIT,
        payload: Payload::Icmp(msg),
    }
}

fn echo_reply(packet: &Ipv6Packet) -> Ipv6Packet {
    let Payload::Icmp(Icmpv6::EchoRequest { ident, seq }) = packet.payload else {
        unreachable!("echo_reply called for non-echo packet");
    };
    Ipv6Packet {
        src: packet.dst,
        dst: packet.src,
        hop_limit: crate::packet::DEFAULT_HOP_LIMIT,
        payload: Payload::Icmp(Icmpv6::EchoReply { ident, seq }),
    }
}

fn port_unreachable(packet: &Ipv6Packet) -> Ipv6Packet {
    icmp(
        packet.dst,
        packet,
        Icmpv6::DestUnreachable {
            code: UnreachCode::PortUnreachable,
            invoking: packet.quote(),
        },
    )
}

fn tcp_reply(
    packet: &Ipv6Packet,
    src_port: u16,
    dst_port: u16,
    flags: TcpFlags,
    data: AppData,
) -> Ipv6Packet {
    Ipv6Packet {
        src: packet.dst,
        dst: packet.src,
        hop_limit: crate::packet::DEFAULT_HOP_LIMIT,
        payload: Payload::Tcp {
            src_port: dst_port,
            dst_port: src_port,
            flags,
            data,
        },
    }
}

/// Chooses the serving software for `kind` from a vendor's weighted list,
/// falling back to a per-service default.
fn pick_software(
    h: DetHash,
    kind: ServiceKind,
    options: &[(&'static str, &'static str, u32)],
) -> Option<SoftwareId> {
    let compatible = |sk: ServiceKind| {
        sk == kind
            || (matches!(sk, ServiceKind::Http | ServiceKind::HttpAlt)
                && matches!(kind, ServiceKind::Http | ServiceKind::HttpAlt))
    };
    let candidates: Vec<(SoftwareId, u32)> = options
        .iter()
        .filter_map(|(name, version, w)| {
            let id = software_id(name, version)?;
            compatible(id.get().service).then_some((id, *w))
        })
        .collect();
    if candidates.is_empty() {
        return default_software(kind);
    }
    let weights: Vec<u32> = candidates.iter().map(|(_, w)| *w).collect();
    Some(candidates[weighted_pick(h.mix(b"sw"), &weights)].0)
}

/// Fallback software per service kind.
fn default_software(kind: ServiceKind) -> Option<SoftwareId> {
    let (name, version) = match kind {
        ServiceKind::Dns => ("dnsmasq", "2.7x"),
        ServiceKind::Ftp => ("GNU Inetutils", "1.4.1"),
        ServiceKind::Ssh => ("dropbear", "2017.75"),
        ServiceKind::Http => ("micro_httpd", "14aug2014"),
        ServiceKind::HttpAlt => ("Jetty", "9.x"),
        ServiceKind::Ntp | ServiceKind::Telnet | ServiceKind::Tls => return None,
    };
    software_id(name, version)
}

/// Builds the application response a device's service instance produces.
fn service_response(
    device: &Device,
    kind: ServiceKind,
    inst: &ServiceInstance,
    _req: AppRequest,
) -> AppResponse {
    let vendor = inst.discloses_vendor.then_some(device.vendor);
    match kind {
        ServiceKind::Dns => AppResponse::DnsAnswer {
            software: inst
                .software
                .or_else(|| default_software(kind))
                .expect("dns default"),
        },
        ServiceKind::Ntp => AppResponse::NtpVersionReply { version: 4 },
        ServiceKind::Ftp => AppResponse::FtpBanner {
            software: inst
                .software
                .or_else(|| default_software(kind))
                .expect("ftp default"),
        },
        ServiceKind::Ssh => AppResponse::SshBanner {
            software: inst
                .software
                .or_else(|| default_software(kind))
                .expect("ssh default"),
        },
        ServiceKind::Telnet => AppResponse::TelnetPrompt {
            vendor_banner: vendor,
        },
        ServiceKind::Http | ServiceKind::HttpAlt => AppResponse::HttpPage {
            software: inst
                .software
                .or_else(|| default_software(kind))
                .expect("http default"),
            login_page: inst.login_page,
            vendor,
        },
        ServiceKind::Tls => AppResponse::TlsCertificate { vendor },
    }
}

impl Network for World {
    fn handle(&mut self, packet: Ipv6Packet) -> Vec<Ipv6Packet> {
        let mut out = Vec::new();
        self.handle_into(packet, &mut out);
        out
    }

    fn handle_into(&mut self, packet: Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        self.handle_inner(packet, out);
        if self.kill.is_some() {
            self.check_kill();
        }
        if self.telemetry_due() {
            self.publish_telemetry();
        }
    }

    fn tick(&mut self, ticks: u64) -> Vec<Ipv6Packet> {
        let mut due = Vec::new();
        self.tick_into(ticks, &mut due);
        due
    }

    fn tick_into(&mut self, ticks: u64, out: &mut Vec<Ipv6Packet>) {
        self.clock += ticks;
        if self.kill.is_some() {
            self.check_kill();
        }
        let before = out.len();
        while let Some(head) = self.delayed.peek() {
            if head.due_tick > self.clock {
                break;
            }
            out.push(self.delayed.pop().expect("peeked").packet);
        }
        let due = (out.len() - before) as u64;
        self.stats.responses += due;
        if self.telemetry.is_enabled() {
            self.telemetry.tick_event(self.clock, ticks, due);
            if self.telemetry_due() {
                self.publish_telemetry();
            }
        }
    }

    fn flush_telemetry(&mut self) {
        self.publish_telemetry();
    }

    fn in_flight(&self) -> usize {
        self.delayed.len()
    }

    fn restore_clock(&mut self, tick: u64) {
        // Resume path: realign time-keyed behaviour (loss draws, token
        // buckets, flaky outages) with the checkpointed run. The publish
        // watermark moves too, so no phantom tick delta reaches the
        // registry — the restored registry already accounts for it.
        self.clock = tick;
        self.published_clock = tick;
    }
}

impl World {
    /// The per-packet exchange logic behind [`Network::handle_into`]
    /// (split out so the telemetry publish happens at exactly one site
    /// despite the early returns). Responses are staged in an arena buffer
    /// before fault filtering, so the steady-state path never allocates.
    fn handle_inner(&mut self, packet: Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        self.stats.probes += 1;
        let plan = self.cfg.fault;
        if plan.drop_forward(packet.dst, self.clock) {
            self.stats.fwd_lost += 1;
            return;
        }
        if self.lost(&packet) {
            return;
        }
        let mut staged = self.arena.get();
        match &packet.payload {
            Payload::Icmp(Icmpv6::EchoRequest { .. }) => {
                if let Some(&DeviceRef::Isp { profile, index }) = self.registry.get(&packet.dst) {
                    if plan.device_down(profile as u64, index, self.clock) {
                        self.stats.flaky_dropped += 1;
                    } else {
                        staged.push(echo_reply(&packet));
                    }
                } else if let Some(pi) = self.scan_zone_of(packet.dst) {
                    self.handle_isp_echo(pi, &packet, &mut staged);
                } else {
                    self.handle_bgp_echo(&packet, &mut staged);
                }
            }
            Payload::Udp { .. } | Payload::Tcp { .. } => self.handle_app(&packet, &mut staged),
            Payload::Icmp(_) => {}
        }
        if !plan.any_faults() {
            // Fast path: the identity plan skips per-response draws.
            self.stats.responses += staged.len() as u64;
            out.append(&mut staged);
            self.arena.put(staged);
            return;
        }
        let tick = self.clock;
        let mut delivered = 0u64;
        for (k, resp) in staged.drain(..).enumerate() {
            let k = k as u64;
            if plan.drop_reverse(resp.src, tick, k) {
                self.stats.rev_lost += 1;
                continue;
            }
            // The per-copy draws are pure in (src, tick, k), so a duplicate
            // shares its original's jitter.
            let delay = plan.jitter_ticks(resp.src, tick, k);
            if plan.duplicate(resp.src, tick, k) {
                self.stats.dup_responses += 1;
                self.deliver_one(resp.clone(), delay, tick, out, &mut delivered);
            }
            self.deliver_one(resp, delay, tick, out, &mut delivered);
        }
        self.stats.responses += delivered;
        self.arena.put(staged);
    }

    /// Delivers one fault-filtered response: immediately into `out`, or
    /// onto the jitter heap when delayed.
    fn deliver_one(
        &mut self,
        packet: Ipv6Packet,
        delay: u64,
        tick: u64,
        out: &mut Vec<Ipv6Packet>,
        delivered: &mut u64,
    ) {
        if delay == 0 {
            out.push(packet);
            *delivered += 1;
        } else {
            self.stats.jittered += 1;
            self.delayed.push(DelayedResponse {
                due_tick: tick + delay,
                seq: self.delay_seq,
                packet,
            });
            self.delay_seq += 1;
        }
    }
}

/// Sanity check used by tests: every catalog software resolves.
#[doc(hidden)]
pub fn catalog_len() -> usize {
    SOFTWARE_CATALOG.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::with_config(WorldConfig::lossless(1234, 200))
    }

    fn vantage() -> Ip6 {
        "fd00::1".parse().unwrap()
    }

    /// Finds an allocated sub-prefix index in a profile.
    fn find_device(w: &World, pi: usize) -> (u64, Device) {
        for i in 0..5_000_000u64 {
            if let Some(d) = w.device_at(pi, i) {
                return (i, d);
            }
        }
        panic!("no device found in profile {pi}");
    }

    #[test]
    fn device_derivation_is_deterministic() {
        let w = small_world();
        let (i, d1) = find_device(&w, 0);
        let d2 = w.device_at(0, i).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn probe_to_allocated_prefix_draws_unreachable_or_te() {
        let mut w = small_world();
        let (i, d) = find_device(&w, 0);
        let p = &w.profiles()[0];
        let target = p
            .scan_prefix()
            .subprefix(p.assigned_len, i as u128)
            .addr()
            .with_iid(0x1234_5678_9abc_def0);
        let replies = w.handle(Ipv6Packet::echo_request(vantage(), target, 64, 1, 1));
        // Filtering can silence it; try until the device's filter decision
        // is known (deterministic): check against the filter hash.
        if w.filtered(p, i) {
            assert!(replies.is_empty());
            return;
        }
        assert_eq!(replies.len(), 1, "device {d:?}");
        let src_64 = replies[0].src.network(64);
        match d.reply_mode {
            ReplyMode::SamePrefix => assert_eq!(src_64, target.network(64)),
            ReplyMode::DiffPrefix => assert_ne!(src_64, target.network(64)),
        }
    }

    #[test]
    fn probe_to_unallocated_prefix_is_silent() {
        let mut w = small_world();
        let p = &w.profiles()[0];
        for i in 0..2000u64 {
            if w.device_at(0, i).is_none() {
                let target = p
                    .scan_prefix()
                    .subprefix(p.assigned_len, i as u128)
                    .addr()
                    .with_iid(1);
                assert!(w
                    .handle(Ipv6Packet::echo_request(vantage(), target, 64, 0, 0))
                    .is_empty());
                return;
            }
        }
        panic!("no unallocated prefix in the first 2000 (occupancy too high?)");
    }

    #[test]
    fn discovered_address_answers_echo_and_services() {
        let mut w = small_world();
        // China Mobile broadband (profile index 12) has rich services.
        let pi = 12;
        let p = &w.profiles()[pi];
        let mut responder = None;
        for i in 0..3_000_000u64 {
            let Some(d) = w.device_at(pi, i) else {
                continue;
            };
            if w.filtered(p, i) || !d.services.any() {
                continue;
            }
            let target = p
                .scan_prefix()
                .subprefix(p.assigned_len, i as u128)
                .addr()
                .with_iid(0xdead_beef);
            let replies = w.handle(Ipv6Packet::echo_request(vantage(), target, 64, 0, 0));
            if let Some(r) = replies.first() {
                responder = Some((r.src, d));
                break;
            }
        }
        let (addr, device) = responder.expect("found a service-rich device");
        // Echo to the discovered address now yields an echo reply.
        let replies = w.handle(Ipv6Packet::echo_request(vantage(), addr, 64, 5, 6));
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::EchoReply { ident: 5, seq: 6 })
        ));
        // Probe one of its open services.
        let (kind, _) = device.services.iter().next().expect("has a service");
        match kind.transport() {
            TransportProto::Udp => {
                let req =
                    Ipv6Packet::udp_request(vantage(), addr, 40000, kind.port(), kind.request());
                let resp = w.handle(req);
                assert_eq!(resp.len(), 1);
                match &resp[0].payload {
                    Payload::Udp {
                        data: AppData::Response(r),
                        ..
                    } => {
                        assert!(r.is_valid_for(kind))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            TransportProto::Tcp => {
                let syn = Ipv6Packet::tcp_syn(vantage(), addr, 40000, kind.port());
                let resp = w.handle(syn);
                assert!(matches!(
                    resp[0].payload,
                    Payload::Tcp {
                        flags: TcpFlags::SynAck,
                        ..
                    }
                ));
                let req =
                    Ipv6Packet::tcp_request(vantage(), addr, 40000, kind.port(), kind.request());
                let resp = w.handle(req);
                match &resp[0].payload {
                    Payload::Tcp {
                        data: AppData::Response(r),
                        ..
                    } => {
                        assert!(r.is_valid_for(kind))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn closed_port_answers_rst_or_unreachable() {
        let mut w = small_world();
        let (i, _) = find_device(&w, 0);
        let p = &w.profiles()[0];
        if w.filtered(p, i) {
            return;
        }
        let target = p
            .scan_prefix()
            .subprefix(p.assigned_len, i as u128)
            .addr()
            .with_iid(7);
        let replies = w.handle(Ipv6Packet::echo_request(vantage(), target, 64, 0, 0));
        let addr = replies[0].src;
        // Jio devices expose almost nothing; TLS/443 is closed on ~all.
        let resp = w.handle(Ipv6Packet::tcp_syn(vantage(), addr, 40000, 9999));
        assert!(matches!(
            resp[0].payload,
            Payload::Tcp {
                flags: TcpFlags::Rst,
                ..
            }
        ));
    }

    #[test]
    fn loop_vulnerable_device_answers_te_twice() {
        let mut w = small_world();
        // China Unicom broadband (index 11) has a 78.8% loop rate.
        let pi = 11;
        let p = &w.profiles()[pi];
        let mut found = None;
        for i in 0..3_000_000u64 {
            if let Some(d) = w.device_at(pi, i) {
                if d.loop_vuln_lan && !w.filtered(p, i) {
                    found = Some((i, d));
                    break;
                }
            }
        }
        let (i, d) = found.expect("loop-vulnerable device exists");
        // Aim outside the used subnet.
        let mut target = None;
        for s in 0..16u128 {
            let cand = d.delegated_prefix.subprefix(64, s);
            if cand != d.used_subnet64 {
                target = Some(cand.addr().with_iid(0x42));
                break;
            }
        }
        let target = target.unwrap();
        let _ = i;
        for h in [32u8, 34] {
            let replies = w.handle(Ipv6Packet::echo_request(vantage(), target, h, 0, 0));
            assert_eq!(replies.len(), 1, "hop limit {h}");
            assert!(matches!(
                replies[0].payload,
                Payload::Icmp(Icmpv6::TimeExceeded { .. })
            ));
        }
        assert!(w.stats().loop_events >= 2);
        assert!(w.stats().loop_forwards > 0);
    }

    #[test]
    fn small_hop_limit_expires_in_transit() {
        let mut w = small_world();
        let (i, _) = find_device(&w, 0);
        let p = &w.profiles()[0];
        let target = p
            .scan_prefix()
            .subprefix(p.assigned_len, i as u128)
            .addr()
            .with_iid(9);
        let replies = w.handle(Ipv6Packet::echo_request(vantage(), target, 3, 0, 0));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::TimeExceeded { .. })
        ));
        // Source is a transit router, not a periphery.
        assert!(replies[0].src.iid() & 0xffff_0000_0000_0000 == 0xffff_0000_0000_0000);
    }

    #[test]
    fn bgp_zone_responds() {
        let mut w = small_world();
        let entry = w.bgp().entries()[0];
        let mut responded = 0;
        for i in 0..60_000u64 {
            let target = entry.prefix.subprefix(48, i as u128).addr().with_iid(0xabc);
            let replies = w.handle(Ipv6Packet::echo_request(vantage(), target, 64, 0, 0));
            responded += replies.len();
            if responded > 3 {
                break;
            }
        }
        assert!(responded > 0, "no BGP-zone responses in 60k probes");
    }

    #[test]
    fn loss_drops_deterministically() {
        let mut cfg = WorldConfig {
            loss_frac: 1.0,
            ..WorldConfig::lossless(9, 50)
        };
        let mut w = World::with_config(cfg);
        let (i, _) = find_device(&w, 0);
        let p = &w.profiles()[0];
        let target = p
            .scan_prefix()
            .subprefix(p.assigned_len, i as u128)
            .addr()
            .with_iid(1);
        assert!(w
            .handle(Ipv6Packet::echo_request(vantage(), target, 64, 0, 0))
            .is_empty());
        cfg.loss_frac = 0.0;
        let mut w2 = World::with_config(cfg);
        assert!(
            !w2.handle(Ipv6Packet::echo_request(vantage(), target, 64, 0, 0))
                .is_empty()
                || w2.filtered(p, i)
        );
    }

    #[test]
    fn amplification_stat() {
        let mut s = WorldStats::default();
        assert_eq!(s.amplification(), 0.0);
        s.loop_events = 2;
        s.loop_forwards = 440;
        assert_eq!(s.amplification(), 220.0);
    }

    #[test]
    fn wan_share_shift_behaviour() {
        // Unique-WAN profiles use shift 0.
        assert_eq!(wan_share_shift(&SAMPLE_BLOCKS[0]), 0);
        // Comcast (index 4) aggregates ~15 CPEs per /64.
        let s = wan_share_shift(&SAMPLE_BLOCKS[4]);
        assert!((18..=22).contains(&s), "shift {s}");
    }

    #[test]
    fn mobile_blocks_yield_ue_devices() {
        let w = small_world();
        let (_, d) = find_device(&w, 2); // Bharti Airtel mobile
        assert_eq!(d.kind, DeviceClass::Ue);
        assert_eq!(d.reply_mode, ReplyMode::SamePrefix);
    }
}

#[cfg(test)]
mod realism_tests {
    use super::*;

    fn w() -> World {
        World::with_config(WorldConfig::lossless(31337, 10))
    }

    fn vantage() -> Ip6 {
        "fd00::1".parse().unwrap()
    }

    #[test]
    fn aliased_prefixes_answer_everything() {
        let mut world = w();
        // BSNL (index 1) has the highest aliased fraction (1e-5).
        let p = &SAMPLE_BLOCKS[1];
        let mut found = None;
        for i in 0..2_000_000u64 {
            if world.is_aliased(1, i) {
                found = Some(i);
                break;
            }
        }
        let i = found.expect("an aliased prefix exists in 2M indices");
        // Aliased prefixes never coincide with allocated devices in a way
        // that hides them; every IID answers echo from itself.
        for iid in [1u64, 0xdead_beef, u64::MAX] {
            let dst = p
                .scan_prefix()
                .subprefix(p.assigned_len, i as u128)
                .addr()
                .with_iid(iid);
            let resp = world.handle(Ipv6Packet::echo_request(vantage(), dst, 64, 2, 3));
            assert_eq!(resp.len(), 1, "iid {iid:#x}");
            assert_eq!(resp[0].src, dst);
            assert!(matches!(
                resp[0].payload,
                Payload::Icmp(Icmpv6::EchoReply { .. })
            ));
        }
    }

    #[test]
    fn lan_hosts_answer_echo_exactly() {
        let mut world = w();
        let mut target = None;
        for i in 0..2_000_000u64 {
            if world.device_at(12, i).is_some() {
                let hosts = world.hosts_of(12, i);
                if !hosts.is_empty() {
                    target = Some((i, hosts));
                    break;
                }
            }
        }
        let (i, hosts) = target.expect("a device with hosts");
        let device = world.device_at(12, i).unwrap();
        for host in &hosts {
            assert!(device.used_subnet64.contains(*host));
            let resp = world.handle(Ipv6Packet::echo_request(vantage(), *host, 64, 0, 0));
            assert_eq!(resp.len(), 1, "host {host}");
            assert!(matches!(
                resp[0].payload,
                Payload::Icmp(Icmpv6::EchoReply { .. })
            ));
        }
        // A neighbouring nonexistent address in the same subnet draws an
        // unreachable instead.
        let nx = device.used_subnet64.addr().with_iid(0x0bad_c0de_0000_1234);
        if !hosts.contains(&nx) {
            let resp = world.handle(Ipv6Packet::echo_request(vantage(), nx, 64, 0, 0));
            if let Some(first) = resp.first() {
                assert!(matches!(
                    first.payload,
                    Payload::Icmp(Icmpv6::DestUnreachable { .. })
                ));
            }
        }
    }

    #[test]
    fn hosts_are_stable_and_bounded() {
        let world = w();
        for i in 0..200_000u64 {
            if world.device_at(12, i).is_some() {
                let a = world.hosts_of(12, i);
                let b = world.hosts_of(12, i);
                assert_eq!(a, b);
                assert!((1..=3).contains(&a.len()));
                return;
            }
        }
        panic!("no device found");
    }

    #[test]
    fn error_rate_limiting_kicks_in_under_abuse() {
        let mut world = w();
        // Find a clean (non-loop) device and hammer its delegated prefix.
        let p = &SAMPLE_BLOCKS[12];
        let mut found = None;
        for i in 0..2_000_000u64 {
            if let Some(d) = world.device_at(12, i) {
                if !d.loop_vuln_lan && !d.loop_vuln_wan {
                    found = Some(i);
                    break;
                }
            }
        }
        let i = found.expect("clean device");
        let base = p.scan_prefix().subprefix(p.assigned_len, i as u128);
        let mut answered = 0u32;
        for k in 0..200u64 {
            let dst = base.addr().with_iid(0x1_0000 + k);
            if !world
                .handle(Ipv6Packet::echo_request(vantage(), dst, 64, 0, 0))
                .is_empty()
            {
                answered += 1;
            }
        }
        // Burst of 64 at full rate, then ~1/10.
        assert!(answered >= 64, "{answered}");
        assert!(answered < 120, "{answered}");
        assert!(world.stats().rate_limited > 50);
    }

    #[test]
    fn normal_scan_rate_unaffected_by_limiter() {
        let mut world = w();
        // One probe per sub-prefix (the paper's discipline) never trips
        // the limiter.
        let p = &SAMPLE_BLOCKS[2];
        let mut responses = 0;
        for i in 0..30_000u64 {
            let dst = p.scan_prefix().subprefix(64, i as u128).addr().with_iid(9);
            responses += world
                .handle(Ipv6Packet::echo_request(vantage(), dst, 64, 0, 0))
                .len();
        }
        assert!(responses > 50, "{responses}");
        assert_eq!(world.stats().rate_limited, 0);
    }

    #[test]
    fn clustered_allocation_concentrates_devices_into_pods() {
        let uniform = World::with_config(WorldConfig::lossless(7, 10));
        let clustered = World::with_config(WorldConfig::lossless(7, 10).with_allocation(
            Allocation::Clustered {
                pod_bits: 8,
                active_frac: 1.0 / 64.0,
            },
        ));
        // Airtel (index 2) is dense enough for tight statistics.
        let slice = 1u64 << 16;
        let mut uni_total = 0usize;
        let mut clu_total = 0usize;
        let mut pods_with_devices = std::collections::HashSet::new();
        for i in 0..slice {
            if uniform.device_at(2, i).is_some() {
                uni_total += 1;
            }
            if clustered.device_at(2, i).is_some() {
                clu_total += 1;
                pods_with_devices.insert(i >> 8);
            }
        }
        // Expected totals match, with wide slack: the pod count itself is
        // a small Poisson draw, so realized totals swing by small factors.
        let lo = uni_total / 4;
        let hi = uni_total * 4;
        assert!((lo..=hi).contains(&clu_total), "{uni_total} vs {clu_total}");
        // Devices occupy only a small fraction of the 256 pods.
        assert!(
            pods_with_devices.len() <= 16,
            "{} pods",
            pods_with_devices.len()
        );
        // Inactive pods are strictly empty: every device's pod is active.
        for pod in &pods_with_devices {
            let start = pod << 8;
            let count = (start..start + 256)
                .filter(|i| clustered.device_at(2, *i).is_some())
                .count();
            assert!(count > 0);
        }
    }

    #[test]
    fn uniform_allocation_is_unchanged_by_the_knob() {
        let a = World::with_config(WorldConfig::lossless(7, 10));
        let b =
            World::with_config(WorldConfig::lossless(7, 10).with_allocation(Allocation::Uniform));
        for i in 0..4096u64 {
            assert_eq!(a.device_at(2, i), b.device_at(2, i));
        }
    }
}
