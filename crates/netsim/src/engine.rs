//! Explicit packet-level simulation engine.
//!
//! The engine models a small topology node by node: each node owns
//! interface addresses, a list of directly attached hosts, and a routing
//! table evaluated by longest-prefix match. Packets are forwarded hop by
//! hop with hop-limit decrement; ICMPv6 errors are generated exactly where
//! RFC 4443 says they are:
//!
//! * hop limit expires in transit → Time Exceeded from that router,
//! * no route / reject route → Destination Unreachable from that router,
//! * destination inside an on-link /64 but no such neighbour → Destination
//!   Unreachable (address unreachable) from the *last-hop* router — the
//!   response the periphery-discovery technique harvests.
//!
//! Error and reply packets are themselves routed (so a spoofed-source attack
//! packet whose error response flows back into a looping prefix is modelled),
//! but per RFC 4443 §2.4(e) an ICMPv6 error never begets another error.
//!
//! Every link traversal is counted, which is how the routing-loop
//! amplification factor is measured (Section VI-A).

use std::collections::HashMap;

use xmap_addr::{Ip6, Prefix};

use crate::fault::FaultPlan;
use crate::packet::{Icmpv6, Ipv6Packet, Network, Payload, UnreachCode};

/// Identifier of a node inside an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

/// What a routing-table entry does with a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAction {
    /// Forward to another node over a link.
    Forward(NodeId),
    /// Administratively reject: answer Destination Unreachable (reject
    /// route). This is the RFC 7084 "unreachable route" a patched CE router
    /// installs for the unused part of its delegated prefix.
    Reject,
    /// Silently discard.
    Blackhole,
    /// The prefix is on-link: deliver to a local host or answer
    /// address-unreachable.
    OnLink,
}

/// A routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Action on match.
    pub action: RouteAction,
}

/// One router/host in the topology.
#[derive(Debug, Clone)]
struct Node {
    name: String,
    /// Interface addresses owned by this node (answer echo themselves).
    addrs: Vec<Ip6>,
    /// Directly attached neighbour hosts that answer echo.
    hosts: Vec<Ip6>,
    routes: Vec<Route>,
    /// Some router firmware rewrites large hop limits down to a small value
    /// when forwarding (observed as ">10 loop forwards" for Xiaomi/OpenWrt
    /// class devices in Table XII). `None` = standards-compliant decrement.
    hl_clamp: Option<u8>,
}

impl Node {
    /// Longest-prefix-match lookup.
    fn lookup(&self, dst: Ip6) -> Option<Route> {
        self.routes
            .iter()
            .filter(|r| r.prefix.contains(dst))
            .max_by_key(|r| r.prefix.len())
            .copied()
    }

    fn primary_addr(&self) -> Ip6 {
        *self.addrs.first().expect("node has no interface address")
    }
}

/// An explicit network topology with packet-by-packet forwarding.
///
/// # Examples
///
/// ```
/// use xmap_netsim::engine::{Engine, RouteAction};
/// use xmap_netsim::packet::{Ipv6Packet, Network};
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let mut e = Engine::new();
/// let vantage = e.add_node("vantage", vec!["fd::1".parse()?]);
/// let router = e.add_node("router", vec!["2001:db8::1".parse()?]);
/// e.add_route(vantage, "::/0".parse()?, RouteAction::Forward(router));
/// e.add_route(router, "fd::/16".parse()?, RouteAction::Forward(vantage));
/// e.add_route(router, "2001:db8::/64".parse()?, RouteAction::OnLink);
/// e.set_vantage(vantage);
///
/// // Ping the router itself: echo reply comes back.
/// let replies = e.handle(Ipv6Packet::echo_request(
///     "fd::1".parse()?, "2001:db8::1".parse()?, 64, 1, 1));
/// assert_eq!(replies.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Engine {
    nodes: Vec<Node>,
    vantage: Option<NodeId>,
    /// Per-directed-link forward counters.
    link_forwards: HashMap<(NodeId, NodeId), u64>,
    /// Total number of link traversals since the last reset.
    total_forwards: u64,
    /// Injected faults: per-link loss keyed on the fault seed and the
    /// virtual clock. Identity plan by default.
    fault: FaultPlan,
    /// Virtual clock in ticks; advanced by [`Network::tick`].
    clock: u64,
    /// Packets dropped on links by the fault plan since the last reset.
    link_drops: u64,
    /// Registry handles for the `netsim.engine.*` metric surface (inert
    /// unless [`Engine::set_telemetry`] attached a live bundle).
    telemetry: crate::telemetry::NetsimTelemetry,
}

impl Engine {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Adds a node with its interface addresses; returns its id.
    pub fn add_node(&mut self, name: &str, addrs: Vec<Ip6>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_owned(),
            addrs,
            hosts: Vec::new(),
            routes: Vec::new(),
            hl_clamp: None,
        });
        id
    }

    /// Adds an interface address to an existing node.
    pub fn add_addr(&mut self, node: NodeId, addr: Ip6) {
        self.nodes[node.0].addrs.push(addr);
    }

    /// Attaches a directly connected host (answers echo) to a node.
    pub fn add_host(&mut self, node: NodeId, addr: Ip6) {
        self.nodes[node.0].hosts.push(addr);
    }

    /// Installs a route on a node.
    pub fn add_route(&mut self, node: NodeId, prefix: Prefix, action: RouteAction) {
        self.nodes[node.0].routes.push(Route { prefix, action });
    }

    /// Makes a node clamp the hop limit of packets it forwards to at most
    /// `clamp` — the non-compliant behaviour of Table XII's limited-loop
    /// routers (they forward a 255-hop-limit loop packet only >10 times).
    pub fn set_hop_limit_clamp(&mut self, node: NodeId, clamp: u8) {
        self.nodes[node.0].hl_clamp = Some(clamp);
    }

    /// Declares the node the scanner sits on. Response packets arriving at
    /// any of its addresses are returned by [`Network::handle`].
    pub fn set_vantage(&mut self, node: NodeId) {
        self.vantage = Some(node);
    }

    /// Attaches a telemetry bundle: injections, deliveries, link
    /// traversals and fault drops are mirrored into its registry as
    /// `netsim.engine.*` counters, and ticks emit `netsim.tick` events.
    pub fn set_telemetry(&mut self, telemetry: &xmap_telemetry::Telemetry) {
        self.telemetry = crate::telemetry::NetsimTelemetry::bind(telemetry);
    }

    /// Installs a fault plan: every link traversal (in either direction)
    /// then drops the packet with the plan's forward-loss probability,
    /// redrawn per tick.
    pub fn set_fault_plan(&mut self, fault: FaultPlan) {
        self.fault = fault;
    }

    /// Packets dropped on links by the fault plan since the last
    /// [`Engine::reset_counters`].
    pub fn link_drops(&self) -> u64 {
        self.link_drops
    }

    /// The node's display name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Number of packets forwarded over the directed link `from → to` since
    /// the last [`Engine::reset_counters`].
    pub fn link_forwards(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_forwards.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Total link traversals since the last reset — the attack traffic
    /// volume used to compute amplification factors.
    pub fn total_forwards(&self) -> u64 {
        self.total_forwards
    }

    /// Zeroes all traffic counters.
    pub fn reset_counters(&mut self) {
        self.link_forwards.clear();
        self.total_forwards = 0;
        self.link_drops = 0;
    }

    /// Renders a node's routing table in `ip -6 route`-like text — the
    /// "Routing Table R / P" boxes of the paper's Figure 4.
    pub fn routing_table(&self, node: NodeId) -> String {
        use std::fmt::Write as _;
        let n = &self.nodes[node.0];
        let mut out = String::new();
        let _ = writeln!(out, "routing table of {} ({}):", n.name, n.primary_addr());
        let mut routes = n.routes.clone();
        routes.sort_by(|a, b| {
            b.prefix
                .len()
                .cmp(&a.prefix.len())
                .then(a.prefix.cmp(&b.prefix))
        });
        for r in routes {
            let action = match r.action {
                RouteAction::Forward(next) => {
                    format!("via {}", self.nodes[next.0].primary_addr())
                }
                RouteAction::Reject => "unreachable".to_owned(),
                RouteAction::Blackhole => "blackhole".to_owned(),
                RouteAction::OnLink => "dev lan (on-link)".to_owned(),
            };
            let _ = writeln!(out, "  {:<28} {}", r.prefix.to_string(), action);
        }
        out
    }

    /// Routes one packet from `at` until delivery, drop or error.
    /// Generated packets (errors/replies) are pushed to `out`, tagged with
    /// the node that emitted them.
    fn route_packet(
        &mut self,
        mut packet: Ipv6Packet,
        mut at: NodeId,
        is_error: bool,
        out: &mut Vec<(Ipv6Packet, NodeId)>,
    ) {
        loop {
            let node = &self.nodes[at.0];
            // Delivered to one of this node's own addresses?
            if node.addrs.contains(&packet.dst) {
                if let Some(resp) = local_response(&packet) {
                    self.emit(resp, at, out);
                }
                return;
            }
            let Some(route) = node.lookup(packet.dst) else {
                if !is_error {
                    let err = icmp_error(
                        node.primary_addr(),
                        &packet,
                        Icmpv6::DestUnreachable {
                            code: UnreachCode::NoRoute,
                            invoking: packet.quote(),
                        },
                    );
                    self.emit(err, at, out);
                }
                return;
            };
            match route.action {
                RouteAction::Reject => {
                    if !is_error {
                        let err = icmp_error(
                            node.primary_addr(),
                            &packet,
                            Icmpv6::DestUnreachable {
                                code: UnreachCode::RejectRoute,
                                invoking: packet.quote(),
                            },
                        );
                        self.emit(err, at, out);
                    }
                    return;
                }
                RouteAction::Blackhole => return,
                RouteAction::OnLink => {
                    if node.hosts.contains(&packet.dst) {
                        if let Some(resp) = local_response(&packet) {
                            self.emit(resp, at, out);
                        }
                    } else if !is_error {
                        // Nonexistent neighbour: the last-hop router answers
                        // address-unreachable — the discovery signal.
                        let err = icmp_error(
                            node.primary_addr(),
                            &packet,
                            Icmpv6::DestUnreachable {
                                code: UnreachCode::AddressUnreachable,
                                invoking: packet.quote(),
                            },
                        );
                        self.emit(err, at, out);
                    }
                    return;
                }
                RouteAction::Forward(next) => {
                    if let Some(clamp) = self.nodes[at.0].hl_clamp {
                        packet.hop_limit = packet.hop_limit.min(clamp);
                    }
                    if packet.hop_limit <= 1 {
                        if !is_error {
                            let err = icmp_error(
                                node.primary_addr(),
                                &packet,
                                Icmpv6::TimeExceeded {
                                    invoking: packet.quote(),
                                },
                            );
                            self.emit(err, at, out);
                        }
                        return;
                    }
                    packet.hop_limit -= 1;
                    if self
                        .fault
                        .drop_link(at.0 as u64, next.0 as u64, packet.dst, self.clock)
                    {
                        self.link_drops += 1;
                        return;
                    }
                    *self.link_forwards.entry((at, next)).or_insert(0) += 1;
                    self.total_forwards += 1;
                    at = next;
                }
            }
        }
    }

    /// Queues a generated packet for onward routing from `from`.
    fn emit(&mut self, packet: Ipv6Packet, from: NodeId, out: &mut Vec<(Ipv6Packet, NodeId)>) {
        out.push((packet, from));
    }
}

/// The response a node/host generates for a packet addressed to it.
fn local_response(packet: &Ipv6Packet) -> Option<Ipv6Packet> {
    match &packet.payload {
        Payload::Icmp(Icmpv6::EchoRequest { ident, seq }) => Some(Ipv6Packet {
            src: packet.dst,
            dst: packet.src,
            hop_limit: crate::packet::DEFAULT_HOP_LIMIT,
            payload: Payload::Icmp(Icmpv6::EchoReply {
                ident: *ident,
                seq: *seq,
            }),
        }),
        // Engine nodes run no application services; UDP gets port-unreachable.
        Payload::Udp { .. } => Some(icmp_error(
            packet.dst,
            packet,
            Icmpv6::DestUnreachable {
                code: UnreachCode::PortUnreachable,
                invoking: packet.quote(),
            },
        )),
        // TCP to engine nodes is refused.
        Payload::Tcp {
            src_port, dst_port, ..
        } => Some(Ipv6Packet {
            src: packet.dst,
            dst: packet.src,
            hop_limit: crate::packet::DEFAULT_HOP_LIMIT,
            payload: Payload::Tcp {
                src_port: *dst_port,
                dst_port: *src_port,
                flags: crate::packet::TcpFlags::Rst,
                data: crate::packet::AppData::None,
            },
        }),
        // Replies and errors are consumed silently.
        Payload::Icmp(_) => None,
    }
}

/// Builds an ICMPv6 error packet from `src` about `about`. Router stacks
/// commonly originate ICMPv6 with hop limit 255; this matters for the
/// spoofed-source loop-doubling attack, where the error itself re-enters
/// the loop and must survive another ~250 traversals.
fn icmp_error(src: Ip6, about: &Ipv6Packet, msg: Icmpv6) -> Ipv6Packet {
    Ipv6Packet {
        src,
        dst: about.src,
        hop_limit: crate::packet::MAX_HOP_LIMIT,
        payload: Payload::Icmp(msg),
    }
}

impl Network for Engine {
    /// Injects `packet` at the vantage node and returns every packet that
    /// makes it back to a vantage address.
    ///
    /// # Panics
    ///
    /// Panics if no vantage node has been set.
    fn handle(&mut self, packet: Ipv6Packet) -> Vec<Ipv6Packet> {
        let vantage = self.vantage.expect("vantage node not set");
        let vantage_addrs: Vec<Ip6> = self.nodes[vantage.0].addrs.clone();
        let forwards_before = self.total_forwards;
        let drops_before = self.link_drops;

        let mut queue: Vec<(Ipv6Packet, NodeId)> = Vec::new();
        self.route_packet(packet, vantage, false, &mut queue);

        // Route generated packets (errors/replies) from the node that
        // produced them until they reach the vantage or die. Each may itself
        // generate more traffic (e.g. spoofed-source loop doubling), but
        // never new ICMP errors about errors. Packets addressed to the
        // vantage are delivered directly (the reverse path to the scanner is
        // assumed up and is not part of any measured link).
        let mut delivered = Vec::new();
        // Bounded by hop limits; the guard is belt and braces.
        let mut steps = 0usize;
        while let Some((p, at)) = queue.pop() {
            steps += 1;
            if steps > 100_000 {
                break;
            }
            if vantage_addrs.contains(&p.dst) {
                delivered.push(p);
                continue;
            }
            let is_error = matches!(
                p.payload,
                Payload::Icmp(Icmpv6::DestUnreachable { .. })
                    | Payload::Icmp(Icmpv6::TimeExceeded { .. })
            );
            let mut more = Vec::new();
            self.route_packet(p, at, is_error, &mut more);
            queue.extend(more);
        }
        delivered.reverse();
        if self.telemetry.is_enabled() {
            self.telemetry.engine_injected.inc();
            self.telemetry.engine_delivered.add(delivered.len() as u64);
            self.telemetry
                .engine_forwards
                .add(self.total_forwards - forwards_before);
            self.telemetry
                .engine_link_drops
                .add(self.link_drops - drops_before);
        }
        delivered
    }

    fn tick(&mut self, ticks: u64) -> Vec<Ipv6Packet> {
        self.clock += ticks;
        if self.telemetry.is_enabled() {
            self.telemetry.record_tick(self.clock, ticks, 0);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DEFAULT_HOP_LIMIT;

    fn addr(s: &str) -> Ip6 {
        s.parse().unwrap()
    }

    fn prefix(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// vantage --- isp --- cpe (with an on-link LAN /64 and a delegated /60).
    fn three_node_topology(cpe_patched: bool) -> (Engine, NodeId, NodeId, NodeId) {
        let mut e = Engine::new();
        let vantage = e.add_node("vantage", vec![addr("fd::1")]);
        let isp = e.add_node("isp", vec![addr("2001:db8::1")]);
        let cpe = e.add_node("cpe", vec![addr("2001:db8:1234:5678::aa")]);

        e.set_vantage(vantage);
        e.add_route(vantage, prefix("::/0"), RouteAction::Forward(isp));

        // ISP: WAN /64 and delegated LAN /60 both routed to the CPE.
        e.add_route(
            isp,
            prefix("2001:db8:1234:5678::/64"),
            RouteAction::Forward(cpe),
        );
        e.add_route(
            isp,
            prefix("2001:db8:4321:8760::/60"),
            RouteAction::Forward(cpe),
        );
        e.add_route(isp, prefix("fd::/16"), RouteAction::Forward(vantage));
        e.add_route(isp, prefix("::/0"), RouteAction::Blackhole);

        // CPE: one subnet in use on-link; rest of the /60 is not used.
        e.add_route(cpe, prefix("2001:db8:4321:8765::/64"), RouteAction::OnLink);
        if cpe_patched {
            // RFC 7084: unreachable (reject) route for the delegated prefix.
            e.add_route(cpe, prefix("2001:db8:4321:8760::/60"), RouteAction::Reject);
        }
        e.add_route(cpe, prefix("::/0"), RouteAction::Forward(isp));
        e.add_host(cpe, addr("2001:db8:4321:8765::100"));
        (e, vantage, isp, cpe)
    }

    #[test]
    fn echo_reply_from_cpe_interface() {
        let (mut e, ..) = three_node_topology(true);
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:1234:5678::aa"),
            DEFAULT_HOP_LIMIT,
            1,
            2,
        ));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].src, addr("2001:db8:1234:5678::aa"));
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::EchoReply { ident: 1, seq: 2 })
        ));
    }

    #[test]
    fn echo_reply_from_lan_host() {
        let (mut e, ..) = three_node_topology(true);
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:4321:8765::100"),
            DEFAULT_HOP_LIMIT,
            0,
            0,
        ));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::EchoReply { .. })
        ));
    }

    #[test]
    fn nonexistent_lan_host_yields_address_unreachable_from_last_hop() {
        let (mut e, ..) = three_node_topology(true);
        let probe_dst = addr("2001:db8:4321:8765::dead");
        let replies = e.handle(Ipv6Packet::echo_request(addr("fd::1"), probe_dst, 64, 7, 7));
        assert_eq!(replies.len(), 1);
        // The CPE (last hop) answers from its own WAN address — this is the
        // periphery-discovery mechanism.
        assert_eq!(replies[0].src, addr("2001:db8:1234:5678::aa"));
        match &replies[0].payload {
            Payload::Icmp(Icmpv6::DestUnreachable { code, invoking }) => {
                assert_eq!(*code, UnreachCode::AddressUnreachable);
                assert_eq!(invoking.dst, probe_dst);
            }
            other => panic!("expected unreachable, got {other:?}"),
        }
    }

    #[test]
    fn patched_cpe_rejects_unused_prefix() {
        let (mut e, ..) = three_node_topology(true);
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:4321:8769::1"),
            64,
            0,
            0,
        ));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::RejectRoute,
                ..
            })
        ));
    }

    #[test]
    fn vulnerable_cpe_loops_until_hop_limit() {
        let (mut e, _v, isp, cpe) = three_node_topology(false);
        e.reset_counters();
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:4321:8769::1"),
            255,
            0,
            0,
        ));
        // The packet ping-pongs on the isp<->cpe link until hop limit death.
        let fwd = e.link_forwards(isp, cpe) + e.link_forwards(cpe, isp);
        assert!(fwd > 200, "loop traversals {fwd} should exceed 200");
        // A time-exceeded error eventually reaches the scanner.
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::TimeExceeded { .. })
        ));
    }

    #[test]
    fn loop_amplification_is_roughly_hoplimit_minus_path() {
        let (mut e, _v, isp, cpe) = three_node_topology(false);
        e.reset_counters();
        e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:4321:8769::1"),
            255,
            0,
            0,
        ));
        let loop_fwd = e.link_forwards(isp, cpe) + e.link_forwards(cpe, isp);
        // 254 forwards happen in total (hop limit 255 → 1); the first is
        // vantage→isp, the remaining 253 bounce on the isp↔cpe link. The
        // amplification factor of Section VI-A is ≈ 255 − n for path
        // length n.
        assert_eq!(loop_fwd, 253);
    }

    #[test]
    fn small_hop_limit_expires_in_transit() {
        let (mut e, ..) = three_node_topology(true);
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:4321:8765::100"),
            1,
            0,
            0,
        ));
        assert_eq!(replies.len(), 1);
        // Expired at the vantage's next hop before delivery.
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::TimeExceeded { .. })
        ));
    }

    #[test]
    fn no_route_yields_noroute_unreachable() {
        let mut e = Engine::new();
        let v = e.add_node("v", vec![addr("fd::1")]);
        let r = e.add_node("r", vec![addr("2001:db8::1")]);
        e.set_vantage(v);
        e.add_route(v, prefix("::/0"), RouteAction::Forward(r));
        e.add_route(r, prefix("fd::/16"), RouteAction::Forward(v));
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db9::1"),
            64,
            0,
            0,
        ));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::NoRoute,
                ..
            })
        ));
    }

    #[test]
    fn blackhole_is_silent() {
        let (mut e, ..) = three_node_topology(true);
        // Destination outside every specific route hits the ISP blackhole.
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:dead::1"),
            64,
            0,
            0,
        ));
        assert!(replies.is_empty());
    }

    #[test]
    fn longest_prefix_match_wins() {
        let (mut e, _v, _isp, cpe) = three_node_topology(false);
        // Add a more specific reject inside the delegated prefix; it must
        // shadow the default route for its own addresses only.
        e.add_route(cpe, prefix("2001:db8:4321:8768::/64"), RouteAction::Reject);
        let replies = e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:4321:8768::1"),
            255,
            0,
            0,
        ));
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::RejectRoute,
                ..
            })
        ));
    }

    #[test]
    fn udp_to_router_yields_port_unreachable() {
        let (mut e, ..) = three_node_topology(true);
        let replies = e.handle(Ipv6Packet::udp_request(
            addr("fd::1"),
            addr("2001:db8:1234:5678::aa"),
            40000,
            53,
            crate::services::AppRequest::DnsQuery,
        ));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].payload,
            Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::PortUnreachable,
                ..
            })
        ));
    }

    #[test]
    fn routing_table_renders_figure4_style() {
        let (e, _v, isp, cpe) = three_node_topology(true);
        let table = e.routing_table(cpe);
        assert!(table.contains("on-link"), "{table}");
        assert!(table.contains("unreachable"), "{table}");
        assert!(table.contains("::/0"), "{table}");
        // Most specific routes print first.
        let onlink_pos = table.find("2001:db8:4321:8765::/64").unwrap();
        let default_pos = table.find("::/0").unwrap();
        assert!(onlink_pos < default_pos, "{table}");
        let isp_table = e.routing_table(isp);
        assert!(isp_table.contains("via"), "{isp_table}");
    }

    #[test]
    fn counters_reset() {
        let (mut e, _v, isp, cpe) = three_node_topology(false);
        e.handle(Ipv6Packet::echo_request(
            addr("fd::1"),
            addr("2001:db8:4321:8769::1"),
            255,
            0,
            0,
        ));
        assert!(e.total_forwards() > 0);
        e.reset_counters();
        assert_eq!(e.total_forwards(), 0);
        assert_eq!(e.link_forwards(isp, cpe), 0);
    }
}
