//! The [`Transport`] boundary and the simulator-backed implementation.

use xmap_netsim::packet::{Ipv6Packet, Network};
use xmap_telemetry::{Counter, Gauge, Registry};

use crate::queue::BoundedQueue;

/// Default soft capacity of a transport's receive queue. Sized for the
/// lock-step envelope (one probe per slot can fan out to a handful of
/// replies) times a generous burst factor; the queue grows past it
/// rather than dropping, see [`BoundedQueue`].
pub const DEFAULT_RECV_CAPACITY: usize = 1024;

/// One received packet, stamped with the virtual tick it arrived at.
///
/// The stamp is what keeps a decoupled engine byte-identical to the
/// lock-step one: RTTs are computed from `tick`, not from whenever the
/// engine got around to polling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvEntry {
    /// Run-local virtual tick of arrival.
    pub tick: u64,
    /// The packet.
    pub packet: Ipv6Packet,
}

/// What an event-loop scan engine drives instead of a raw
/// [`Network`]: batched sends, polled receives, a virtual clock, and
/// deadline registration.
///
/// ## Contract
///
/// * [`send_batch`](Transport::send_batch) drains the probe buffer onto
///   the wire. Replies it produces are *queued*, stamped with the
///   current clock — never handed back synchronously.
/// * [`poll_recv`](Transport::poll_recv) appends every queued reply to
///   `out` in arrival order and returns the count. Arrival order is the
///   wire order; two polls never reorder.
/// * [`advance`](Transport::advance) moves the clock forward; replies
///   that come due in the advanced window are queued stamped with the
///   new clock.
/// * [`in_flight`](Transport::in_flight) counts replies the transport
///   still owes the engine: committed-but-undelivered wire traffic plus
///   anything queued. A checkpoint cut is only sound at
///   `in_flight() == 0`.
/// * [`register_deadline`](Transport::register_deadline) hints the next
///   engine timer. The simulator ignores it; a real-wire backend bounds
///   its blocking poll by it (see [`crate::tap`]).
pub trait Transport {
    /// Sends every probe in `probes` (drained).
    fn send_batch(&mut self, probes: &mut Vec<Ipv6Packet>);

    /// Appends queued arrivals to `out` in arrival order; returns count.
    fn poll_recv(&mut self, out: &mut Vec<RecvEntry>) -> usize;

    /// Advances the virtual clock by `ticks`.
    fn advance(&mut self, ticks: u64);

    /// The current virtual tick.
    fn now(&self) -> u64;

    /// Sets the virtual clock (resume path; run-local ticks).
    fn set_clock(&mut self, tick: u64);

    /// Replies committed but not yet delivered to the engine.
    fn in_flight(&self) -> usize;

    /// Hints the earliest engine deadline; default ignores it.
    fn register_deadline(&mut self, _deadline: u64) {}

    /// Flushes any batched transport-side telemetry.
    fn flush_telemetry(&mut self) {}
}

/// Opt-in queue-depth instrumentation for a transport. Disabled by
/// default so reactor runs export metrics snapshots byte-identical to
/// the lock-step engine's.
#[derive(Debug)]
struct QueueGauges {
    depth: Gauge,
    high_watermark: Gauge,
    saturated: Counter,
}

/// [`Transport`] over any [`Network`]: the simulator backend.
///
/// Wraps the network's synchronous `handle_into`/`tick_into` calls
/// behind the decoupled contract — replies are staged in a
/// [`BoundedQueue`] stamped with the tick they were produced at, so an
/// engine that absorbs by stamp reproduces the lock-step engine's
/// artifacts byte for byte. Works over `&mut N` too (the blanket
/// `Network for &mut N` impl), which is how the scanner lends its
/// network out for one run.
#[derive(Debug)]
pub struct SimTransport<N> {
    net: N,
    clock: u64,
    queue: BoundedQueue<RecvEntry>,
    scratch: Vec<Ipv6Packet>,
    gauges: Option<QueueGauges>,
}

impl<N: Network> SimTransport<N> {
    /// A transport over `net` with the clock at zero and the default
    /// receive-queue capacity.
    pub fn new(net: N) -> Self {
        SimTransport::with_capacity(net, DEFAULT_RECV_CAPACITY)
    }

    /// A transport with an explicit receive-queue soft capacity.
    pub fn with_capacity(net: N, capacity: usize) -> Self {
        SimTransport {
            net,
            clock: 0,
            queue: BoundedQueue::new(capacity),
            scratch: Vec::new(),
            gauges: None,
        }
    }

    /// Enables queue-depth gauges ([`crate::names`]) on `registry`.
    /// Off by default: enabling changes the set of exported metrics, so
    /// byte-identity with lock-step snapshots only holds without it.
    pub fn enable_queue_gauges(&mut self, registry: &Registry) {
        self.gauges = Some(QueueGauges {
            depth: registry.gauge(crate::names::RECV_DEPTH),
            high_watermark: registry.gauge(crate::names::RECV_HIGH_WATERMARK),
            saturated: registry.counter(crate::names::RECV_SATURATED),
        });
    }

    /// Borrows the wrapped network.
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.net
    }

    /// Consumes the transport, returning the network.
    pub fn into_network(self) -> N {
        self.net
    }

    /// The receive queue's deepest point so far.
    pub fn recv_high_watermark(&self) -> usize {
        self.queue.high_watermark()
    }

    /// Pushes staged replies from `scratch` into the queue, stamped now.
    fn stage_scratch(&mut self) {
        for packet in self.scratch.drain(..) {
            let saturated = self.queue.push(RecvEntry {
                tick: self.clock,
                packet,
            });
            if saturated {
                if let Some(g) = &self.gauges {
                    g.saturated.inc();
                }
            }
        }
        if let Some(g) = &self.gauges {
            g.depth.set(self.queue.len() as u64);
            g.high_watermark.set(self.queue.high_watermark() as u64);
        }
    }
}

impl<N: Network> Transport for SimTransport<N> {
    fn send_batch(&mut self, probes: &mut Vec<Ipv6Packet>) {
        for probe in probes.drain(..) {
            debug_assert!(self.scratch.is_empty());
            self.net.handle_into(probe, &mut self.scratch);
            self.stage_scratch();
        }
    }

    fn poll_recv(&mut self, out: &mut Vec<RecvEntry>) -> usize {
        let n = self.queue.drain_into(out);
        if let Some(g) = &self.gauges {
            g.depth.set(0);
        }
        n
    }

    fn advance(&mut self, ticks: u64) {
        debug_assert!(self.scratch.is_empty());
        self.net.tick_into(ticks, &mut self.scratch);
        self.clock += ticks;
        self.stage_scratch();
    }

    fn now(&self) -> u64 {
        self.clock
    }

    fn set_clock(&mut self, tick: u64) {
        self.clock = tick;
    }

    fn in_flight(&self) -> usize {
        self.net.in_flight() + self.queue.len()
    }

    fn flush_telemetry(&mut self) {
        self.net.flush_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::packet::{Icmpv6, Payload};
    use xmap_netsim::World;

    fn echo(dst: u128) -> Ipv6Packet {
        Ipv6Packet::echo_request(
            xmap_addr::Ip6::new(0xfd00 << 112 | 1),
            xmap_addr::Ip6::new(dst),
            64,
            7,
            1,
        )
    }

    #[test]
    fn stamps_immediate_replies_with_send_tick_and_delayed_with_due_tick() {
        let mut t = SimTransport::new(World::new(7));
        t.set_clock(5);
        let mut probes = vec![echo((0x2405_0200u128) << 96 | 0xabcd)];
        t.send_batch(&mut probes);
        assert!(probes.is_empty());
        let mut got = Vec::new();
        t.poll_recv(&mut got);
        for e in &got {
            assert_eq!(e.tick, 5, "immediate replies carry the send tick");
        }
        t.advance(3);
        assert_eq!(t.now(), 8);
        let mut later = Vec::new();
        t.poll_recv(&mut later);
        for e in &later {
            assert_eq!(e.tick, 8, "delayed replies carry the advance tick");
        }
    }

    #[test]
    fn matches_direct_network_replies() {
        let mut direct = World::new(7);
        let probe = echo((0x2405_0200u128) << 96 | 0x1234);
        let direct_replies = direct.handle(probe.clone());

        let mut t = SimTransport::new(World::new(7));
        let mut probes = vec![probe];
        t.send_batch(&mut probes);
        let mut got = Vec::new();
        t.poll_recv(&mut got);
        let via_transport: Vec<Ipv6Packet> = got.into_iter().map(|e| e.packet).collect();
        assert_eq!(via_transport, direct_replies);
    }

    #[test]
    fn queue_gauges_observe_depth() {
        let telemetry = xmap_telemetry::Telemetry::new();
        let mut t = SimTransport::with_capacity(World::new(7), 1);
        t.enable_queue_gauges(&telemetry.registry);
        // Probe a live CPE sub-prefix so replies actually queue.
        let mut probes = Vec::new();
        for i in 0..64u128 {
            probes.push(echo((0x2405_0200u128) << 96 | (i << 64) | 0xabcd));
        }
        t.send_batch(&mut probes);
        let snap = telemetry.registry.snapshot();
        let hwm = snap
            .gauges
            .get(crate::names::RECV_HIGH_WATERMARK)
            .copied()
            .unwrap_or(0);
        assert!(hwm >= 1, "some probe must have drawn a reply");
        if hwm > 1 {
            assert!(
                snap.counters
                    .get(crate::names::RECV_SATURATED)
                    .copied()
                    .unwrap_or(0)
                    > 0
            );
        }
        let mut sinkhole = Vec::new();
        t.poll_recv(&mut sinkhole);
        assert_eq!(
            telemetry
                .registry
                .snapshot()
                .gauges
                .get(crate::names::RECV_DEPTH)
                .copied()
                .unwrap_or(0),
            0
        );
        let _ = t.in_flight();
        let _ = matches!(
            sinkhole.first().map(|e| &e.packet.payload),
            Some(Payload::Icmp(Icmpv6::EchoReply { .. }))
        );
    }
}
