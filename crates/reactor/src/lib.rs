//! The scan reactor: a timer heap and bounded event queues behind a
//! pluggable [`Transport`] boundary.
//!
//! The lock-step scanner drives [`xmap_netsim::packet::Network`] directly:
//! every send slot calls `handle` and absorbs the answers synchronously,
//! so send and receive can never overlap and only the simulator shape
//! fits. This crate factors the loop's moving parts out of the engine:
//!
//! * [`TimerHeap`] — deadline-ordered timers with a deterministic
//!   `(deadline, seq)` tie-break, lazy cancellation and re-arm support.
//!   The scan engine parks retransmission timers here.
//! * [`BoundedQueue`] — the receive-side event queue. Backpressure is
//!   reported (saturation counter + high watermark), never enforced by
//!   dropping: a reply that made it off the wire is always delivered.
//! * [`Transport`] — the boundary an event-loop engine drives:
//!   `send_batch` / `poll_recv` / `advance` / deadline registration and a
//!   clock. Three backends ship:
//!   [`SimTransport`] (wraps any `Network`, byte-identical to lock-step),
//!   [`PcapReplayTransport`] (replays an NDJSON wire trace recorded by
//!   [`WireRecorder`]), and the feature-gated [`tap`] stub documenting
//!   the real-wire shape.
//!
//! Determinism contract: a transport stamps every delivered packet with
//! the virtual tick it arrived at ([`RecvEntry::tick`]), and delivers
//! packets in arrival order. An engine that computes RTTs and record
//! order from those stamps reproduces the lock-step engine's artifacts
//! byte for byte — see `DESIGN.md` §5i for the argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod replay;
pub mod tap;
pub mod timer;
pub mod transport;

pub use queue::BoundedQueue;
pub use replay::{PcapReplayTransport, ReplayError, ReplayNet, WireRecorder};
pub use tap::{TapConfig, TapError};
pub use timer::{TimerHeap, TimerId};
pub use transport::{RecvEntry, SimTransport, Transport};

/// Telemetry names exported by reactor transports (all opt-in: a scan
/// run does not create them unless queue gauges are enabled, so default
/// snapshots stay byte-identical to the lock-step engine's).
pub mod names {
    /// Gauge: receive-queue depth observed at the last poll.
    pub const RECV_DEPTH: &str = "reactor.recv_depth";
    /// Gauge: high watermark of the receive queue over the transport's
    /// lifetime.
    pub const RECV_HIGH_WATERMARK: &str = "reactor.recv_high_watermark";
    /// Counter: pushes that found the queue at or above its soft
    /// capacity (the queue grows instead of dropping; this counts how
    /// often backpressure would have engaged on a real wire).
    pub const RECV_SATURATED: &str = "reactor.recv_saturated";
}
