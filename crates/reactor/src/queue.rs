//! The bounded receive queue: backpressure that reports, never drops.

use std::collections::VecDeque;

/// A FIFO queue with a *soft* capacity.
///
/// A scan reply that made it off the wire must reach the engine — a
/// receive queue that drops under load would silently corrupt hit-rate
/// measurements (the paper's core numbers). So `push` always succeeds;
/// what the capacity bounds is the *unreported* regime: pushes beyond it
/// are counted as saturation events and the depth high-watermark is
/// tracked, so an operator (or the queue-depth gauges a transport
/// exports) sees exactly when a real-wire deployment would have had to
/// engage backpressure on the sender instead.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    saturated: u64,
    high_watermark: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue with the given soft capacity (must be nonzero).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        BoundedQueue {
            items: VecDeque::new(),
            capacity,
            saturated: 0,
            high_watermark: 0,
        }
    }

    /// Enqueues an item. Never drops; returns `true` when the push hit
    /// or exceeded the soft capacity (a saturation event).
    pub fn push(&mut self, item: T) -> bool {
        let saturating = self.items.len() >= self.capacity;
        if saturating {
            self.saturated += 1;
        }
        self.items.push_back(item);
        self.high_watermark = self.high_watermark.max(self.items.len());
        saturating
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Drains every queued item into `out` (appending), in FIFO order.
    /// Returns how many were moved.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let n = self.items.len();
        out.extend(self.items.drain(..));
        n
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The soft capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes that found the queue at or above capacity.
    pub fn saturated_pushes(&self) -> u64 {
        self.saturated
    }

    /// The deepest the queue has ever been.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_never_drops_past_capacity() {
        let mut q = BoundedQueue::new(4);
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10, "soft capacity must not drop");
        assert_eq!(q.saturated_pushes(), 6);
        assert_eq!(q.high_watermark(), 10);
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_preserves_order_and_empties() {
        let mut q = BoundedQueue::new(2);
        q.push("a");
        q.push("b");
        q.push("c");
        let mut out = vec!["pre"];
        assert_eq!(q.drain_into(&mut out), 3);
        assert_eq!(out, vec!["pre", "a", "b", "c"]);
        assert!(q.is_empty());
        assert_eq!(q.high_watermark(), 3);
    }
}
