//! The real-wire TAP backend stub.
//!
//! A production deployment of the reactor puts ICMPv6 on an actual wire
//! through a TAP/TUN device; this module documents that shape behind the
//! `tap` cargo feature without pulling in OS bindings (the workspace
//! builds offline and `#![forbid(unsafe_code)]`, so no `ioctl`).
//!
//! ## The real-wire shape
//!
//! ```text
//! open("/dev/net/tun")  -> fd
//! ioctl(fd, TUNSETIFF, ifreq { ifr_name, IFF_TAP | IFF_NO_PI })
//! ```
//!
//! then, against the [`Transport`](crate::Transport) contract:
//!
//! * `send_batch` — serialize each probe into an Ethernet + IPv6 frame
//!   and `write(fd)` the batch (coalesced with `sendmmsg` on a raw
//!   socket backend).
//! * `poll_recv` — drain frames already parked in the receive queue by
//!   the poller; the queue is the same [`BoundedQueue`](crate::BoundedQueue)
//!   the simulator backend uses, stamped with the tick derived from a
//!   monotonic clock quantized to the send-slot period.
//! * `register_deadline` — the crucial one on a wire: the poller blocks
//!   in `poll(fd, timeout)` where `timeout` is the gap to the earliest
//!   registered engine deadline, so retransmit timers fire on time even
//!   when the wire is silent.
//! * `advance` — on a wire the clock advances by itself; the
//!   implementation just releases the poller for one quantum.
//!
//! Determinism note: a wire is *not* deterministic, so the byte-identity
//! guarantees of `SimTransport`/`PcapReplayTransport` do not apply —
//! recording a run through [`WireRecorder`](crate::WireRecorder)
//! re-enters the deterministic envelope, which is exactly the
//! record-once / replay-forever workflow the trace format exists for.

use std::fmt;

/// Configuration for a TAP transport.
#[derive(Debug, Clone)]
pub struct TapConfig {
    /// Interface name to attach to (e.g. `tap0`).
    pub ifname: String,
    /// Send-slot period in microseconds (the tick quantum the wire
    /// clock is mapped onto).
    pub slot_micros: u64,
}

impl Default for TapConfig {
    fn default() -> Self {
        TapConfig {
            ifname: "tap0".to_owned(),
            slot_micros: 20, // 50 kpps — the paper's periphery scan rate
        }
    }
}

/// Why a TAP transport could not be opened.
#[derive(Debug)]
pub enum TapError {
    /// This build has no TAP support compiled in.
    Unsupported(&'static str),
}

impl fmt::Display for TapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapError::Unsupported(why) => write!(f, "TAP transport unavailable: {why}"),
        }
    }
}

impl std::error::Error for TapError {}

/// Attempts to open a TAP transport.
///
/// Always refuses in this workspace: without the `tap` feature the
/// backend is not compiled in at all, and with it the offline toolchain
/// still lacks the `ioctl` bindings a device attach needs — the module
/// documents the contract so a bindings-equipped build can fill in the
/// `Transport` impl without touching the engine.
pub fn open(config: &TapConfig) -> Result<std::convert::Infallible, TapError> {
    #[cfg(feature = "tap")]
    {
        let _ = config;
        Err(TapError::Unsupported(
            "the `tap` feature documents the wire shape; device attach needs ioctl bindings \
             this offline build does not carry",
        ))
    }
    #[cfg(not(feature = "tap"))]
    {
        let _ = config;
        Err(TapError::Unsupported(
            "built without the `tap` feature; use --transport sim or replay",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_refuses_with_clear_error() {
        let err = open(&TapConfig::default()).unwrap_err();
        assert!(err.to_string().contains("TAP transport unavailable"));
    }
}
