//! Deadline-ordered timers with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to an armed timer, used to cancel it. The inner sequence
/// number is unique for the heap's lifetime, so a handle can never
/// accidentally cancel a later re-arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// The timer's sequence number (its deterministic tie-break key).
    pub fn seq(&self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<T> {
    deadline: u64,
    seq: u64,
    payload: T,
}

// Reversed so `BinaryHeap` (a max-heap) pops the smallest
// `(deadline, seq)` first. `seq` is unique, so the order is total.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}

impl<T> Eq for Entry<T> {}

/// A deadline-ordered timer heap.
///
/// Timers fire in `(deadline, seq)` order: equal deadlines break ties by
/// arm order, deterministically. Cancellation is lazy — the entry stays
/// in the heap as a tombstone until it surfaces and is discarded then.
/// Only *cancelled* sequence numbers are tracked on the side, so while
/// no cancellations are pending (the scan engine never cancels) `arm`
/// and `pop_due` are pure heap operations with no hashing on the hot
/// path. `cancel` itself scans the heap (`O(n)`) to distinguish a live
/// timer from one that already fired — cancellation is rare in the
/// intended workloads and the heap is bounded, so the scan is cheap
/// where it matters. Re-arming is just arming again: the new handle
/// fires at the new deadline under a fresh sequence number.
///
/// The sequence counter is exposed ([`next_seq`](TimerHeap::next_seq) /
/// [`with_next_seq`](TimerHeap::with_next_seq) /
/// [`insert_restored`](TimerHeap::insert_restored)) so an engine that
/// checkpoints its timers can restore them byte-identically.
#[derive(Debug)]
pub struct TimerHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Sequence numbers of cancelled timers still sitting in the heap as
    /// tombstones. Invariant: every member is the seq of some entry
    /// currently in `heap`, so the live count is
    /// `heap.len() - cancelled.len()` and an empty set means every heap
    /// entry is live.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T> Default for TimerHeap<T> {
    fn default() -> Self {
        TimerHeap::new()
    }
}

impl<T> TimerHeap<T> {
    /// An empty heap with the sequence counter at zero.
    pub fn new() -> Self {
        TimerHeap::with_next_seq(0)
    }

    /// An empty heap whose next armed timer gets sequence number `seq`
    /// (the checkpoint-restore path).
    pub fn with_next_seq(seq: u64) -> Self {
        TimerHeap {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: seq,
        }
    }

    /// Arms a timer at `deadline`, returning a handle for cancellation.
    pub fn arm(&mut self, deadline: u64, payload: T) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            deadline,
            seq,
            payload,
        });
        TimerId(seq)
    }

    /// Re-inserts a checkpointed timer under its original sequence
    /// number. The caller owns sequencing: restored sequence numbers
    /// must be unique and below the counter this heap was created with.
    pub fn insert_restored(&mut self, deadline: u64, seq: u64, payload: T) {
        debug_assert!(
            seq < self.next_seq,
            "restored seq {seq} >= next_seq {}",
            self.next_seq
        );
        self.heap.push(Entry {
            deadline,
            seq,
            payload,
        });
    }

    /// Cancels an armed timer. Returns `false` if it already fired or
    /// was already cancelled — a stale handle never swallows a live
    /// timer, because sequence numbers are unique. Scans the heap to
    /// tell the two apart (`O(n)`, see the type-level docs).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.cancelled.contains(&id.0) {
            return false;
        }
        if self.heap.iter().any(|e| e.seq == id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Pops the earliest timer with `deadline <= now`, skipping
    /// cancelled entries. Returns `(deadline, seq, payload)`.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, u64, T)> {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.is_empty() || !self.cancelled.contains(&top.seq) {
                if top.deadline > now {
                    return None;
                }
                let e = self.heap.pop().expect("peeked");
                return Some((e.deadline, e.seq, e.payload));
            }
            // Cancelled tombstone: discard whatever its deadline.
            let e = self.heap.pop().expect("peeked");
            self.cancelled.remove(&e.seq);
        }
        None
    }

    /// The earliest live deadline, if any. Purges cancelled entries it
    /// encounters at the top.
    pub fn peek_deadline(&mut self) -> Option<u64> {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.is_empty() || !self.cancelled.contains(&top.seq) {
                return Some(top.deadline);
            }
            let e = self.heap.pop().expect("peeked");
            self.cancelled.remove(&e.seq);
        }
        None
    }

    /// Number of live (armed, not cancelled) timers.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live timers remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence number the next armed timer will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Iterates live timers as `(deadline, seq, &payload)` in arbitrary
    /// order (checkpoint capture sorts by `(deadline, seq)` itself).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &T)> {
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| (e.deadline, e.seq, &e.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_then_seq_order() {
        let mut h = TimerHeap::new();
        h.arm(5, "a");
        h.arm(3, "b");
        h.arm(5, "c");
        h.arm(1, "d");
        let mut fired = Vec::new();
        while let Some((_, _, p)) = h.pop_due(10) {
            fired.push(p);
        }
        assert_eq!(fired, vec!["d", "b", "a", "c"]);
    }

    #[test]
    fn not_due_stays() {
        let mut h = TimerHeap::new();
        h.arm(7, ());
        assert!(h.pop_due(6).is_none());
        assert_eq!(h.len(), 1);
        assert!(h.pop_due(7).is_some());
        assert!(h.is_empty());
    }

    #[test]
    fn cancel_prevents_fire_and_rearm_fires_once() {
        let mut h = TimerHeap::new();
        let id = h.arm(2, "old");
        assert!(h.cancel(id));
        assert!(!h.cancel(id), "double cancel must be a no-op");
        let _new = h.arm(4, "new");
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek_deadline(), Some(4));
        let fired: Vec<_> = std::iter::from_fn(|| h.pop_due(10)).collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].2, "new");
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        let mut h = TimerHeap::new();
        let id = h.arm(1, ());
        assert!(h.pop_due(1).is_some());
        assert!(!h.cancel(id));
        h.arm(2, ());
        assert_eq!(h.len(), 1, "stale cancel must not eat a live timer");
        assert!(h.pop_due(2).is_some());
    }

    #[test]
    fn restored_seq_preserves_order() {
        let mut h = TimerHeap::with_next_seq(10);
        h.insert_restored(4, 7, "restored");
        let fresh = h.arm(4, "fresh");
        assert_eq!(fresh.seq(), 10);
        assert_eq!(h.pop_due(4).map(|(_, s, p)| (s, p)), Some((7, "restored")));
        assert_eq!(h.pop_due(4).map(|(_, s, p)| (s, p)), Some((10, "fresh")));
    }
}
