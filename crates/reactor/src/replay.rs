//! Wire-trace recording and replay: the `PcapReplayTransport` backend.
//!
//! A [`WireRecorder`] wraps any [`Network`] and journals every exchange
//! — probes sent, replies observed (immediate and delayed), and clock
//! advances — as NDJSON, one event per line (the shape a pcap-derived
//! trace would be converted into). A [`ReplayNet`] then *is* a
//! [`Network`] backed by such a trace: it re-serves the recorded
//! replies in order, so a scan with the same seed and configuration
//! reproduces the original run's artifacts byte for byte without the
//! simulator (or, one day, the wire) being present. Wrapping a
//! `ReplayNet` in a [`SimTransport`] yields [`PcapReplayTransport`],
//! the reactor backend behind `--transport replay`.
//!
//! ## Trace format (`xmap-wire-trace/v1`)
//!
//! ```text
//! {"v":1,"kind":"xmap-wire-trace"}
//! {"ev":"send","tick":0,"pkt":{...}}
//! {"ev":"recv","tick":0,"pkt":{...}}   <- immediate reply to the send
//! {"ev":"tick","n":1,"tick":1}
//! {"ev":"recv","tick":1,"pkt":{...}}   <- reply that came due in the advance
//! ```
//!
//! A `recv` line belongs to the nearest preceding `send` or `tick`
//! line; that positional attachment is what lets replay reproduce the
//! immediate-vs-delayed split the engines' RTT accounting depends on.

use std::fmt;
use std::path::Path;

use xmap_addr::Ip6;
use xmap_netsim::packet::{
    AppData, Icmpv6, Invoking, Ipv6Packet, Network, Payload, QuotedProto, TcpFlags, UnreachCode,
};
use xmap_netsim::services::{intern_vendor, AppRequest, AppResponse, SoftwareId};
use xmap_state::json::{self, push_json_string, Value};

use crate::transport::{RecvEntry, SimTransport, Transport};

/// Errors loading or replaying a wire trace.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace file could not be read.
    Io(std::io::Error),
    /// The trace text is not a well-formed `xmap-wire-trace/v1`.
    Corrupt(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "wire trace I/O error: {e}"),
            ReplayError::Corrupt(why) => write!(f, "corrupt wire trace: {why}"),
        }
    }
}

impl std::error::Error for ReplayError {}

// ---------------------------------------------------------------------
// Packet codec
// ---------------------------------------------------------------------

fn push_addr(out: &mut String, ip: Ip6) {
    push_json_string(out, &ip.to_string());
}

fn encode_invoking(out: &mut String, inv: &Invoking) {
    out.push_str("{\"src\":");
    push_addr(out, inv.src);
    out.push_str(",\"dst\":");
    push_addr(out, inv.dst);
    out.push_str(",\"proto\":");
    match inv.proto {
        QuotedProto::Icmp { ident, seq } => {
            out.push_str(&format!(
                "{{\"t\":\"icmp\",\"ident\":{ident},\"seq\":{seq}}}"
            ));
        }
        QuotedProto::Udp { src_port, dst_port } => {
            out.push_str(&format!(
                "{{\"t\":\"udp\",\"sp\":{src_port},\"dp\":{dst_port}}}"
            ));
        }
        QuotedProto::Tcp { src_port, dst_port } => {
            out.push_str(&format!(
                "{{\"t\":\"tcp\",\"sp\":{src_port},\"dp\":{dst_port}}}"
            ));
        }
        QuotedProto::OtherIcmp => out.push_str("{\"t\":\"other\"}"),
    }
    out.push('}');
}

fn encode_opt_vendor(out: &mut String, vendor: Option<&'static str>) {
    match vendor {
        None => out.push_str("null"),
        Some(v) => push_json_string(out, v),
    }
}

fn encode_app(out: &mut String, data: &AppData) {
    match data {
        AppData::None => out.push_str("{\"t\":\"none\"}"),
        AppData::Request(req) => {
            let kind = match req {
                AppRequest::DnsQuery => "dns",
                AppRequest::NtpVersionQuery => "ntp",
                AppRequest::FtpConnect => "ftp",
                AppRequest::SshVersionRequest => "ssh",
                AppRequest::TelnetLogin => "telnet",
                AppRequest::HttpGet => "http",
                AppRequest::TlsCertificateRequest => "tls",
            };
            out.push_str(&format!("{{\"t\":\"req\",\"kind\":\"{kind}\"}}"));
        }
        AppData::Response(resp) => {
            out.push_str("{\"t\":\"resp\",");
            match resp {
                AppResponse::DnsAnswer { software } => {
                    out.push_str(&format!("\"kind\":\"dns\",\"sw\":{}", software.0));
                }
                AppResponse::NtpVersionReply { version } => {
                    out.push_str(&format!("\"kind\":\"ntp\",\"ver\":{version}"));
                }
                AppResponse::FtpBanner { software } => {
                    out.push_str(&format!("\"kind\":\"ftp\",\"sw\":{}", software.0));
                }
                AppResponse::SshBanner { software } => {
                    out.push_str(&format!("\"kind\":\"ssh\",\"sw\":{}", software.0));
                }
                AppResponse::TelnetPrompt { vendor_banner } => {
                    out.push_str("\"kind\":\"telnet\",\"vendor\":");
                    encode_opt_vendor(out, *vendor_banner);
                }
                AppResponse::HttpPage {
                    software,
                    login_page,
                    vendor,
                } => {
                    out.push_str(&format!(
                        "\"kind\":\"http\",\"sw\":{},\"login\":{login_page},\"vendor\":",
                        software.0
                    ));
                    encode_opt_vendor(out, *vendor);
                }
                AppResponse::TlsCertificate { vendor } => {
                    out.push_str("\"kind\":\"tls\",\"vendor\":");
                    encode_opt_vendor(out, *vendor);
                }
            }
            out.push('}');
        }
    }
}

/// Appends the JSON object encoding of `pkt` to `out`.
pub fn encode_packet(out: &mut String, pkt: &Ipv6Packet) {
    out.push_str("{\"src\":");
    push_addr(out, pkt.src);
    out.push_str(",\"dst\":");
    push_addr(out, pkt.dst);
    out.push_str(&format!(",\"hop\":{},\"pl\":", pkt.hop_limit));
    match &pkt.payload {
        Payload::Icmp(Icmpv6::EchoRequest { ident, seq }) => {
            out.push_str(&format!(
                "{{\"t\":\"echo_req\",\"ident\":{ident},\"seq\":{seq}}}"
            ));
        }
        Payload::Icmp(Icmpv6::EchoReply { ident, seq }) => {
            out.push_str(&format!(
                "{{\"t\":\"echo_rep\",\"ident\":{ident},\"seq\":{seq}}}"
            ));
        }
        Payload::Icmp(Icmpv6::DestUnreachable { code, invoking }) => {
            let code = match code {
                UnreachCode::NoRoute => "no_route",
                UnreachCode::AdminProhibited => "admin",
                UnreachCode::AddressUnreachable => "addr",
                UnreachCode::PortUnreachable => "port",
                UnreachCode::SourcePolicy => "policy",
                UnreachCode::RejectRoute => "reject",
            };
            out.push_str(&format!("{{\"t\":\"unreach\",\"code\":\"{code}\",\"inv\":"));
            encode_invoking(out, invoking);
            out.push('}');
        }
        Payload::Icmp(Icmpv6::TimeExceeded { invoking }) => {
            out.push_str("{\"t\":\"time_exc\",\"inv\":");
            encode_invoking(out, invoking);
            out.push('}');
        }
        Payload::Udp {
            src_port,
            dst_port,
            data,
        } => {
            out.push_str(&format!(
                "{{\"t\":\"udp\",\"sp\":{src_port},\"dp\":{dst_port},\"app\":"
            ));
            encode_app(out, data);
            out.push('}');
        }
        Payload::Tcp {
            src_port,
            dst_port,
            flags,
            data,
        } => {
            let flags = match flags {
                TcpFlags::Syn => "syn",
                TcpFlags::SynAck => "syn_ack",
                TcpFlags::Rst => "rst",
                TcpFlags::Ack => "ack",
                TcpFlags::Fin => "fin",
            };
            out.push_str(&format!(
                "{{\"t\":\"tcp\",\"sp\":{src_port},\"dp\":{dst_port},\"flags\":\"{flags}\",\"app\":"
            ));
            encode_app(out, data);
            out.push('}');
        }
    }
    out.push('}');
}

fn corrupt(why: impl Into<String>) -> ReplayError {
    ReplayError::Corrupt(why.into())
}

fn req_u64(v: &Value, key: &str, what: &str) -> Result<u64, ReplayError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| corrupt(format!("{what}: missing numeric `{key}`")))
}

fn req_str<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a str, ReplayError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| corrupt(format!("{what}: missing string `{key}`")))
}

fn decode_addr(v: &Value, key: &str, what: &str) -> Result<Ip6, ReplayError> {
    req_str(v, key, what)?
        .parse()
        .map_err(|_| corrupt(format!("{what}: bad address in `{key}`")))
}

fn decode_port(v: &Value, key: &str, what: &str) -> Result<u16, ReplayError> {
    u16::try_from(req_u64(v, key, what)?)
        .map_err(|_| corrupt(format!("{what}: `{key}` out of u16 range")))
}

fn decode_invoking(v: &Value, what: &str) -> Result<Invoking, ReplayError> {
    let src = decode_addr(v, "src", what)?;
    let dst = decode_addr(v, "dst", what)?;
    let p = v
        .get("proto")
        .ok_or_else(|| corrupt(format!("{what}: missing `proto`")))?;
    let proto = match req_str(p, "t", what)? {
        "icmp" => QuotedProto::Icmp {
            ident: decode_port(p, "ident", what)?,
            seq: decode_port(p, "seq", what)?,
        },
        "udp" => QuotedProto::Udp {
            src_port: decode_port(p, "sp", what)?,
            dst_port: decode_port(p, "dp", what)?,
        },
        "tcp" => QuotedProto::Tcp {
            src_port: decode_port(p, "sp", what)?,
            dst_port: decode_port(p, "dp", what)?,
        },
        "other" => QuotedProto::OtherIcmp,
        t => return Err(corrupt(format!("{what}: unknown quoted proto `{t}`"))),
    };
    Ok(Invoking { src, dst, proto })
}

/// Re-interns a recorded vendor string. Known strings resolve back to
/// the simulation's static vocabulary; unknown ones (a trace from a
/// different build) are leaked once — traces carry a small closed set.
fn decode_vendor(v: &Value, key: &str) -> Option<&'static str> {
    let s = v.get(key)?.as_str()?;
    intern_vendor(s).or_else(|| Some(&*Box::leak(s.to_owned().into_boxed_str())))
}

fn decode_app(v: &Value, what: &str) -> Result<AppData, ReplayError> {
    match req_str(v, "t", what)? {
        "none" => Ok(AppData::None),
        "req" => {
            let req = match req_str(v, "kind", what)? {
                "dns" => AppRequest::DnsQuery,
                "ntp" => AppRequest::NtpVersionQuery,
                "ftp" => AppRequest::FtpConnect,
                "ssh" => AppRequest::SshVersionRequest,
                "telnet" => AppRequest::TelnetLogin,
                "http" => AppRequest::HttpGet,
                "tls" => AppRequest::TlsCertificateRequest,
                k => return Err(corrupt(format!("{what}: unknown request kind `{k}`"))),
            };
            Ok(AppData::Request(req))
        }
        "resp" => {
            let sw = |key: &str| -> Result<SoftwareId, ReplayError> {
                Ok(SoftwareId(u16::try_from(req_u64(v, key, what)?).map_err(
                    |_| corrupt(format!("{what}: software id out of range")),
                )?))
            };
            let resp = match req_str(v, "kind", what)? {
                "dns" => AppResponse::DnsAnswer {
                    software: sw("sw")?,
                },
                "ntp" => AppResponse::NtpVersionReply {
                    version: u8::try_from(req_u64(v, "ver", what)?)
                        .map_err(|_| corrupt(format!("{what}: ntp version out of range")))?,
                },
                "ftp" => AppResponse::FtpBanner {
                    software: sw("sw")?,
                },
                "ssh" => AppResponse::SshBanner {
                    software: sw("sw")?,
                },
                "telnet" => AppResponse::TelnetPrompt {
                    vendor_banner: decode_vendor(v, "vendor"),
                },
                "http" => AppResponse::HttpPage {
                    software: sw("sw")?,
                    login_page: v
                        .get("login")
                        .and_then(Value::as_bool)
                        .ok_or_else(|| corrupt(format!("{what}: missing `login`")))?,
                    vendor: decode_vendor(v, "vendor"),
                },
                "tls" => AppResponse::TlsCertificate {
                    vendor: decode_vendor(v, "vendor"),
                },
                k => return Err(corrupt(format!("{what}: unknown response kind `{k}`"))),
            };
            Ok(AppData::Response(resp))
        }
        t => Err(corrupt(format!("{what}: unknown app payload `{t}`"))),
    }
}

/// Decodes a packet object produced by [`encode_packet`].
pub fn decode_packet(v: &Value) -> Result<Ipv6Packet, ReplayError> {
    let what = "packet";
    let src = decode_addr(v, "src", what)?;
    let dst = decode_addr(v, "dst", what)?;
    let hop_limit = u8::try_from(req_u64(v, "hop", what)?)
        .map_err(|_| corrupt("packet: hop limit out of range"))?;
    let pl = v.get("pl").ok_or_else(|| corrupt("packet: missing `pl`"))?;
    let payload = match req_str(pl, "t", what)? {
        "echo_req" => Payload::Icmp(Icmpv6::EchoRequest {
            ident: decode_port(pl, "ident", what)?,
            seq: decode_port(pl, "seq", what)?,
        }),
        "echo_rep" => Payload::Icmp(Icmpv6::EchoReply {
            ident: decode_port(pl, "ident", what)?,
            seq: decode_port(pl, "seq", what)?,
        }),
        "unreach" => {
            let code = match req_str(pl, "code", what)? {
                "no_route" => UnreachCode::NoRoute,
                "admin" => UnreachCode::AdminProhibited,
                "addr" => UnreachCode::AddressUnreachable,
                "port" => UnreachCode::PortUnreachable,
                "policy" => UnreachCode::SourcePolicy,
                "reject" => UnreachCode::RejectRoute,
                c => return Err(corrupt(format!("packet: unknown unreach code `{c}`"))),
            };
            let inv = pl
                .get("inv")
                .ok_or_else(|| corrupt("packet: missing `inv`"))?;
            Payload::Icmp(Icmpv6::DestUnreachable {
                code,
                invoking: decode_invoking(inv, "invoking")?,
            })
        }
        "time_exc" => {
            let inv = pl
                .get("inv")
                .ok_or_else(|| corrupt("packet: missing `inv`"))?;
            Payload::Icmp(Icmpv6::TimeExceeded {
                invoking: decode_invoking(inv, "invoking")?,
            })
        }
        "udp" => Payload::Udp {
            src_port: decode_port(pl, "sp", what)?,
            dst_port: decode_port(pl, "dp", what)?,
            data: decode_app(
                pl.get("app")
                    .ok_or_else(|| corrupt("packet: missing `app`"))?,
                "app",
            )?,
        },
        "tcp" => Payload::Tcp {
            src_port: decode_port(pl, "sp", what)?,
            dst_port: decode_port(pl, "dp", what)?,
            flags: match req_str(pl, "flags", what)? {
                "syn" => TcpFlags::Syn,
                "syn_ack" => TcpFlags::SynAck,
                "rst" => TcpFlags::Rst,
                "ack" => TcpFlags::Ack,
                "fin" => TcpFlags::Fin,
                f => return Err(corrupt(format!("packet: unknown tcp flags `{f}`"))),
            },
            data: decode_app(
                pl.get("app")
                    .ok_or_else(|| corrupt("packet: missing `app`"))?,
                "app",
            )?,
        },
        t => return Err(corrupt(format!("packet: unknown payload `{t}`"))),
    };
    Ok(Ipv6Packet {
        src,
        dst,
        hop_limit,
        payload,
    })
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

/// A [`Network`] wrapper that journals every exchange as an NDJSON wire
/// trace while delegating to the wrapped network.
///
/// Attach it under a scan (`Scanner::new(WireRecorder::new(world), ..)`),
/// run, then [`finish`](WireRecorder::finish) or
/// [`save`](WireRecorder::save) the trace for later replay.
#[derive(Debug)]
pub struct WireRecorder<N> {
    inner: N,
    lines: String,
    clock: u64,
    staged: Vec<Ipv6Packet>,
}

impl<N: Network> WireRecorder<N> {
    /// Starts recording over `inner`.
    pub fn new(inner: N) -> Self {
        let mut lines = String::new();
        lines.push_str("{\"v\":1,\"kind\":\"xmap-wire-trace\"}\n");
        WireRecorder {
            inner,
            lines,
            clock: 0,
            staged: Vec::new(),
        }
    }

    /// Borrows the wrapped network.
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// The trace recorded so far, consuming the recorder.
    pub fn finish(self) -> String {
        self.lines
    }

    /// Writes the trace to `path`, returning the wrapped network.
    pub fn save(self, path: &Path) -> std::io::Result<N> {
        std::fs::write(path, &self.lines)?;
        Ok(self.inner)
    }

    fn record_event(&mut self, ev: &str, pkt: Option<&Ipv6Packet>) {
        self.lines
            .push_str(&format!("{{\"ev\":\"{ev}\",\"tick\":{}", self.clock));
        if let Some(p) = pkt {
            self.lines.push_str(",\"pkt\":");
            encode_packet(&mut self.lines, p);
        }
        self.lines.push_str("}\n");
    }
}

impl<N: Network> Network for WireRecorder<N> {
    fn handle(&mut self, packet: Ipv6Packet) -> Vec<Ipv6Packet> {
        let mut out = Vec::new();
        self.handle_into(packet, &mut out);
        out
    }

    fn handle_into(&mut self, packet: Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        self.record_event("send", Some(&packet));
        debug_assert!(self.staged.is_empty());
        self.inner.handle_into(packet, &mut self.staged);
        let mut staged = std::mem::take(&mut self.staged);
        for p in staged.drain(..) {
            self.record_event("recv", Some(&p));
            out.push(p);
        }
        self.staged = staged;
    }

    fn tick(&mut self, ticks: u64) -> Vec<Ipv6Packet> {
        let mut out = Vec::new();
        self.tick_into(ticks, &mut out);
        out
    }

    fn tick_into(&mut self, ticks: u64, out: &mut Vec<Ipv6Packet>) {
        self.clock += ticks;
        self.lines.push_str(&format!(
            "{{\"ev\":\"tick\",\"n\":{ticks},\"tick\":{}}}\n",
            self.clock
        ));
        debug_assert!(self.staged.is_empty());
        self.inner.tick_into(ticks, &mut self.staged);
        let mut staged = std::mem::take(&mut self.staged);
        for p in staged.drain(..) {
            self.record_event("recv", Some(&p));
            out.push(p);
        }
        self.staged = staged;
    }

    fn flush_telemetry(&mut self) {
        self.inner.flush_telemetry();
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    fn restore_clock(&mut self, tick: u64) {
        self.clock = tick;
        self.inner.restore_clock(tick);
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Event {
    Send(Ipv6Packet),
    /// `true` when the reply was delayed (attached to a tick event).
    Recv(Ipv6Packet, bool),
    Tick(u64),
}

/// A [`Network`] that re-serves a recorded wire trace.
///
/// Drive it with the *same* scan configuration and seed that produced
/// the trace: each `handle` call consumes the next recorded send (and
/// its immediate replies), each `tick` call the next recorded advance
/// (and its due replies). Probes that do not match the recorded send
/// are counted in [`mismatched_sends`](ReplayNet::mismatched_sends) —
/// the recorded replies are served regardless, so a diverging replay
/// fails loudly at artifact comparison instead of silently hanging.
#[derive(Debug)]
pub struct ReplayNet {
    events: Vec<Event>,
    cursor: usize,
    /// `delayed_after[i]`: delayed recv events at index >= i — the
    /// replay's `in_flight` answer, precomputed.
    delayed_after: Vec<usize>,
    mismatched_sends: u64,
    desyncs: u64,
}

impl ReplayNet {
    /// Parses a trace produced by [`WireRecorder`].
    pub fn from_trace(text: &str) -> Result<Self, ReplayError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| corrupt("empty trace"))?;
        let hv = json::parse(header, "wire-trace header").map_err(|e| corrupt(e.to_string()))?;
        if hv.get("kind").and_then(Value::as_str) != Some("xmap-wire-trace")
            || hv.get("v").and_then(Value::as_u64) != Some(1)
        {
            return Err(corrupt("not an xmap-wire-trace/v1 header"));
        }
        let mut events = Vec::new();
        let mut after_tick = false;
        for (i, line) in lines.enumerate() {
            let v = json::parse(line, "wire-trace event").map_err(|e| corrupt(e.to_string()))?;
            let what = format!("event {}", i + 1);
            match req_str(&v, "ev", &what)? {
                "send" => {
                    after_tick = false;
                    let pkt = v
                        .get("pkt")
                        .ok_or_else(|| corrupt(format!("{what}: send without `pkt`")))?;
                    events.push(Event::Send(decode_packet(pkt)?));
                }
                "recv" => {
                    let pkt = v
                        .get("pkt")
                        .ok_or_else(|| corrupt(format!("{what}: recv without `pkt`")))?;
                    events.push(Event::Recv(decode_packet(pkt)?, after_tick));
                }
                "tick" => {
                    after_tick = true;
                    events.push(Event::Tick(req_u64(&v, "n", &what)?));
                }
                ev => return Err(corrupt(format!("{what}: unknown event `{ev}`"))),
            }
        }
        let mut delayed_after = vec![0usize; events.len() + 1];
        for i in (0..events.len()).rev() {
            delayed_after[i] =
                delayed_after[i + 1] + matches!(events[i], Event::Recv(_, true)) as usize;
        }
        Ok(ReplayNet {
            events,
            cursor: 0,
            delayed_after,
            mismatched_sends: 0,
            desyncs: 0,
        })
    }

    /// Loads and parses a trace file.
    pub fn from_file(path: &Path) -> Result<Self, ReplayError> {
        let text = std::fs::read_to_string(path).map_err(ReplayError::Io)?;
        ReplayNet::from_trace(&text)
    }

    /// Probes whose bytes differed from the recorded send at the same
    /// position (zero on a faithful replay).
    pub fn mismatched_sends(&self) -> u64 {
        self.mismatched_sends
    }

    /// Structural divergences: a send where the trace recorded a tick
    /// (or vice versa), or driving past the end of the trace.
    pub fn desyncs(&self) -> u64 {
        self.desyncs
    }

    /// Whether every recorded event has been consumed.
    pub fn fully_consumed(&self) -> bool {
        self.cursor == self.events.len()
    }

    /// Appends the consecutive recv events at the cursor to `out`.
    fn serve_recvs(&mut self, out: &mut Vec<Ipv6Packet>) {
        while let Some(Event::Recv(p, _)) = self.events.get(self.cursor) {
            out.push(p.clone());
            self.cursor += 1;
        }
    }
}

impl Network for ReplayNet {
    fn handle(&mut self, packet: Ipv6Packet) -> Vec<Ipv6Packet> {
        let mut out = Vec::new();
        self.handle_into(packet, &mut out);
        out
    }

    fn handle_into(&mut self, packet: Ipv6Packet, out: &mut Vec<Ipv6Packet>) {
        match self.events.get(self.cursor) {
            Some(Event::Send(recorded)) => {
                if *recorded != packet {
                    self.mismatched_sends += 1;
                }
                self.cursor += 1;
                self.serve_recvs(out);
            }
            _ => self.desyncs += 1,
        }
    }

    fn tick(&mut self, ticks: u64) -> Vec<Ipv6Packet> {
        let mut out = Vec::new();
        self.tick_into(ticks, &mut out);
        out
    }

    fn tick_into(&mut self, ticks: u64, out: &mut Vec<Ipv6Packet>) {
        match self.events.get(self.cursor) {
            Some(Event::Tick(n)) => {
                if *n != ticks {
                    self.desyncs += 1;
                }
                self.cursor += 1;
                self.serve_recvs(out);
            }
            _ => self.desyncs += 1,
        }
    }

    fn in_flight(&self) -> usize {
        self.delayed_after[self.cursor]
    }
}

/// The trace-replay reactor backend: a [`ReplayNet`] behind the
/// [`Transport`] contract (a [`SimTransport`] does the staging — replay
/// and live simulation share the queue/clock plumbing by construction).
#[derive(Debug)]
pub struct PcapReplayTransport {
    inner: SimTransport<ReplayNet>,
}

impl PcapReplayTransport {
    /// A transport replaying a parsed trace.
    pub fn new(net: ReplayNet) -> Self {
        PcapReplayTransport {
            inner: SimTransport::new(net),
        }
    }

    /// A transport replaying a trace file.
    pub fn from_file(path: &Path) -> Result<Self, ReplayError> {
        Ok(PcapReplayTransport::new(ReplayNet::from_file(path)?))
    }

    /// The replaying network (mismatch / consumption accounting).
    pub fn replay_mut(&mut self) -> &mut ReplayNet {
        self.inner.network_mut()
    }
}

impl Transport for PcapReplayTransport {
    fn send_batch(&mut self, probes: &mut Vec<Ipv6Packet>) {
        self.inner.send_batch(probes)
    }

    fn poll_recv(&mut self, out: &mut Vec<RecvEntry>) -> usize {
        self.inner.poll_recv(out)
    }

    fn advance(&mut self, ticks: u64) {
        self.inner.advance(ticks)
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn set_clock(&mut self, tick: u64) {
        self.inner.set_clock(tick)
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    fn flush_telemetry(&mut self) {
        self.inner.flush_telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::World;

    fn probe(i: u128) -> Ipv6Packet {
        Ipv6Packet::echo_request(
            Ip6::new(0xfd00 << 112 | 1),
            Ip6::new((0x2405_0200u128) << 96 | (i << 64) | 0x1),
            64,
            (i as u16) ^ 0x5aa5,
            i as u16,
        )
    }

    #[test]
    fn record_then_replay_reproduces_every_exchange() {
        let mut rec = WireRecorder::new(World::new(11));
        let mut recorded: Vec<(Vec<Ipv6Packet>, Vec<Ipv6Packet>)> = Vec::new();
        for i in 0..200u128 {
            let h = rec.handle(probe(i));
            let t = rec.tick(1);
            recorded.push((h, t));
        }
        // Drain in-flight jittered replies like a scan would.
        let mut drained = Vec::new();
        while rec.in_flight() > 0 {
            drained.push(rec.tick(1));
        }
        let trace = rec.finish();

        let mut replay = ReplayNet::from_trace(&trace).expect("parse own trace");
        for (i, (h, t)) in recorded.iter().enumerate() {
            assert_eq!(&replay.handle(probe(i as u128)), h, "probe {i}");
            assert_eq!(&replay.tick(1), t, "tick {i}");
        }
        for d in &drained {
            assert!(replay.in_flight() > 0 || d.is_empty());
            assert_eq!(&replay.tick(1), d);
        }
        assert_eq!(replay.in_flight(), 0);
        assert!(replay.fully_consumed());
        assert_eq!(replay.mismatched_sends(), 0);
        assert_eq!(replay.desyncs(), 0);
    }

    #[test]
    fn mismatched_probe_is_counted_not_fatal() {
        let mut rec = WireRecorder::new(World::new(11));
        let _ = rec.handle(probe(1));
        let trace = rec.finish();
        let mut replay = ReplayNet::from_trace(&trace).expect("parse");
        let _ = replay.handle(probe(2));
        assert_eq!(replay.mismatched_sends(), 1);
    }

    #[test]
    fn corrupt_header_is_rejected() {
        assert!(ReplayNet::from_trace("{\"v\":2,\"kind\":\"other\"}\n").is_err());
        assert!(ReplayNet::from_trace("").is_err());
        assert!(ReplayNet::from_trace("not json\n").is_err());
    }

    #[test]
    fn packet_codec_roundtrips_every_shape() {
        let inv = Invoking {
            src: Ip6::new(1),
            dst: Ip6::new(2),
            proto: QuotedProto::Icmp { ident: 3, seq: 4 },
        };
        let shapes = vec![
            Payload::Icmp(Icmpv6::EchoRequest { ident: 9, seq: 8 }),
            Payload::Icmp(Icmpv6::EchoReply { ident: 9, seq: 8 }),
            Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::RejectRoute,
                invoking: inv,
            }),
            Payload::Icmp(Icmpv6::TimeExceeded { invoking: inv }),
            Payload::Udp {
                src_port: 53,
                dst_port: 54,
                data: AppData::Request(AppRequest::DnsQuery),
            },
            Payload::Tcp {
                src_port: 80,
                dst_port: 81,
                flags: TcpFlags::SynAck,
                data: AppData::Response(AppResponse::HttpPage {
                    software: SoftwareId(3),
                    login_page: true,
                    vendor: intern_vendor("ZTE"),
                }),
            },
            Payload::Tcp {
                src_port: 23,
                dst_port: 23,
                flags: TcpFlags::Ack,
                data: AppData::Response(AppResponse::TelnetPrompt {
                    vendor_banner: None,
                }),
            },
        ];
        for payload in shapes {
            let pkt = Ipv6Packet {
                src: Ip6::new(0xfd00 << 112 | 1),
                dst: Ip6::new(0x2405 << 112 | 77),
                hop_limit: 200,
                payload,
            };
            let mut s = String::new();
            encode_packet(&mut s, &pkt);
            let v = json::parse(&s, "roundtrip").expect("well-formed");
            let back = decode_packet(&v).expect("decodes");
            assert_eq!(back, pkt);
        }
    }
}
