//! Property tests for the reactor's two ordering-critical structures.
//!
//! The scan engines' byte-identity contract rests on the timer heap
//! firing in a total, deterministic order and on the receive queue never
//! dropping a reply. Both are checked here against naive reference
//! models under proptest-driven operation sequences.

use proptest::prelude::*;
use xmap_reactor::{BoundedQueue, TimerHeap};

/// Splitmix-style generator: turns one proptest-drawn seed into an
/// arbitrary operation sequence.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary arms drained at an arbitrary sequence of advancing
    /// clocks fire in strict `(deadline, seq)` order, never early, and
    /// every armed timer fires exactly once.
    #[test]
    fn timers_fire_in_deadline_then_arm_order(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let n = 1 + g.below(64) as usize;
        let mut heap = TimerHeap::new();
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let deadline = g.below(16); // dense deadlines force tie-breaks
            let id = heap.arm(deadline, deadline);
            expected.push((deadline, id.seq()));
        }
        // The reference model: sort by (deadline, seq).
        expected.sort_unstable();

        let mut fired: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        while fired.len() < n {
            while let Some((deadline, seq, payload)) = heap.pop_due(now) {
                prop_assert!(deadline <= now, "fired early: {deadline} > {now}");
                prop_assert_eq!(payload, deadline, "payload follows its timer");
                fired.push((deadline, seq));
            }
            now += 1 + g.below(4);
        }
        prop_assert_eq!(fired, expected);
        prop_assert!(heap.is_empty());
    }

    /// A random interleaving of arm / cancel / re-arm / pop keeps the
    /// heap consistent with a naive model: cancelled timers never fire,
    /// stale handles never swallow live timers, `len` always equals the
    /// model's live count, and the survivors drain in model order.
    #[test]
    fn cancel_and_rearm_never_corrupt_the_live_set(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let mut heap = TimerHeap::new();
        // Model: live timers as (deadline, seq); retired handles kept
        // around so stale cancels get exercised.
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut handles = Vec::new();
        let mut stale = Vec::new();
        let mut now = 0u64;

        for _ in 0..200 {
            match g.below(5) {
                0 | 1 => {
                    let deadline = now + g.below(8);
                    let id = heap.arm(deadline, ());
                    live.push((deadline, id.seq()));
                    handles.push(id);
                }
                2 => {
                    // Cancel a handle: sometimes live, sometimes stale.
                    let pool = if !handles.is_empty() && g.below(4) > 0 {
                        &mut handles
                    } else {
                        &mut stale
                    };
                    if !pool.is_empty() {
                        let id = pool.swap_remove(g.below(pool.len() as u64) as usize);
                        let was_live = live.iter().any(|&(_, s)| s == id.seq());
                        prop_assert_eq!(heap.cancel(id), was_live);
                        live.retain(|&(_, s)| s != id.seq());
                        stale.push(id);
                    }
                }
                3 => {
                    // Cancel + immediate re-arm at a new deadline (the
                    // engine's re-schedule path).
                    if !handles.is_empty() {
                        let i = g.below(handles.len() as u64) as usize;
                        let old = handles.swap_remove(i);
                        if heap.cancel(old) {
                            live.retain(|&(_, s)| s != old.seq());
                        }
                        stale.push(old);
                        let deadline = now + g.below(8);
                        let id = heap.arm(deadline, ());
                        live.push((deadline, id.seq()));
                        handles.push(id);
                    }
                }
                _ => {
                    now += g.below(4);
                    while let Some((deadline, seq, ())) = heap.pop_due(now) {
                        prop_assert!(deadline <= now);
                        // The model says this exact timer is the next due.
                        live.sort_unstable();
                        prop_assert!(!live.is_empty());
                        prop_assert_eq!(live.remove(0), (deadline, seq));
                        handles.retain(|h| h.seq() != seq);
                    }
                    if let Some(&(d, _)) = live.iter().min() {
                        prop_assert!(d > now, "due timer left unfired");
                    }
                }
            }
            prop_assert_eq!(heap.len(), live.len());
        }

        // Drain what's left; it must come out exactly in model order.
        live.sort_unstable();
        let mut drained = Vec::new();
        while let Some((deadline, seq, ())) = heap.pop_due(u64::MAX) {
            drained.push((deadline, seq));
        }
        prop_assert_eq!(drained, live);
    }

    /// Backpressure property: however pushes and pops interleave, the
    /// queue never loses or reorders an item — every element drains in
    /// FIFO order — while saturation events and the high watermark
    /// account exactly for the over-capacity regime.
    #[test]
    fn bounded_queue_never_drops_a_reply(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let capacity = 1 + g.below(8) as usize;
        let mut q = BoundedQueue::new(capacity);
        let mut model = std::collections::VecDeque::new();
        let mut pushed = 0u64;
        let mut expected_saturated = 0u64;
        let mut expected_watermark = 0usize;

        for _ in 0..300 {
            if g.below(3) > 0 {
                let depth = model.len();
                let saturated = q.push(pushed);
                prop_assert_eq!(saturated, depth >= capacity,
                    "saturation must mean at-or-over capacity");
                if saturated {
                    expected_saturated += 1;
                }
                model.push_back(pushed);
                pushed += 1;
                expected_watermark = expected_watermark.max(model.len());
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
        }

        prop_assert_eq!(q.saturated_pushes(), expected_saturated);
        prop_assert_eq!(q.high_watermark(), expected_watermark);
        // Final drain: everything still there, still in order.
        let mut out = Vec::new();
        q.drain_into(&mut out);
        prop_assert_eq!(out, model.into_iter().collect::<Vec<_>>());
        prop_assert!(q.is_empty());
    }
}
