//! The control plane: newline-delimited JSON requests over a Unix
//! domain socket.
//!
//! One request per line, one response per line, any number of requests
//! per connection. Requests are objects with a `cmd` field:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"submit","tenant":"alice","spec":{"type":"periphery-campaign",
//!     "targets_per_block":4096,"seed":7,"world_seed":99}}
//! {"cmd":"status"}
//! {"cmd":"cancel","job":3}
//! {"cmd":"drain"}
//! ```
//!
//! Responses always carry `"ok"`: `{"ok":true,...}` on success,
//! `{"ok":false,"error":"..."}` on failure. A malformed line never
//! kills the daemon — it produces an error response.
//!
//! Everything except the socket plumbing is synchronous, pure
//! string-to-string code ([`handle_line`]), so the whole protocol is
//! unit-testable without a socket.

use xmap_addr::Ip6;
use xmap_state::json::{self, push_json_string, Value};

use crate::daemon::Daemon;
use crate::job::JobSpec;

/// Handles one request line against `daemon`, returning the response
/// line (without the trailing newline).
pub fn handle_line(daemon: &Daemon, line: &str) -> String {
    match run_cmd(daemon, line) {
        Ok(body) => body,
        Err(msg) => {
            let mut out = String::from("{\"ok\":false,\"error\":");
            push_json_string(&mut out, &msg);
            out.push('}');
            out
        }
    }
}

fn run_cmd(daemon: &Daemon, line: &str) -> Result<String, String> {
    let req = json::parse(line, "control request").map_err(|e| e.to_string())?;
    let cmd = req
        .req_str("cmd", "control request")
        .map_err(|e| e.to_string())?;
    match cmd.as_str() {
        "ping" => Ok("{\"ok\":true,\"pong\":true}".to_owned()),
        "submit" => {
            let tenant = req
                .req_str("tenant", "submit request")
                .map_err(|e| e.to_string())?;
            let spec = parse_spec(
                req.get("spec")
                    .ok_or_else(|| "submit request: missing `spec`".to_owned())?,
            )?;
            let job = daemon.submit(&tenant, spec).map_err(|e| e.to_string())?;
            Ok(format!("{{\"ok\":true,\"job\":{job}}}"))
        }
        "cancel" => {
            let job = req
                .req_u64("job", "cancel request")
                .map_err(|e| e.to_string())?;
            daemon.cancel(job).map_err(|e| e.to_string())?;
            Ok(format!("{{\"ok\":true,\"job\":{job}}}"))
        }
        "drain" => {
            daemon.drain();
            Ok("{\"ok\":true,\"draining\":true}".to_owned())
        }
        "status" => Ok(render_status(daemon)),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses the `spec` object of a submit request.
pub fn parse_spec(spec: &Value) -> Result<JobSpec, String> {
    let kind = spec
        .req_str("type", "job spec")
        .map_err(|e| e.to_string())?;
    let seed = spec
        .req_u64("seed", "job spec")
        .map_err(|e| e.to_string())?;
    let world_seed = spec
        .req_u64("world_seed", "job spec")
        .map_err(|e| e.to_string())?;
    match kind.as_str() {
        "periphery-campaign" => {
            let mut block_targets = Vec::new();
            if let Some(raw) = spec.get("block_targets").and_then(Value::as_arr) {
                for v in raw {
                    let pair = v.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        "campaign spec: block_targets entries must be [block, targets] pairs"
                            .to_owned()
                    })?;
                    let idx = pair[0].as_u64().ok_or_else(|| {
                        "campaign spec: block index must be an integer".to_owned()
                    })?;
                    let n = pair[1].as_u64().filter(|n| *n >= 1).ok_or_else(|| {
                        "campaign spec: per-block targets must be a positive integer".to_owned()
                    })?;
                    let blocks = xmap_netsim::isp::SAMPLE_BLOCKS.len() as u64;
                    if idx >= blocks {
                        return Err(format!(
                            "campaign spec: block {idx} out of range (campaign has {blocks} blocks)"
                        ));
                    }
                    block_targets.push((idx as usize, n));
                }
            }
            Ok(JobSpec::PeripheryCampaign {
                targets_per_block: spec
                    .req_u64("targets_per_block", "campaign spec")
                    .map_err(|e| e.to_string())?,
                seed,
                world_seed,
                mop_up_ticks: spec.get("mop_up_ticks").and_then(Value::as_u64),
                block_targets,
            })
        }
        "loopscan-survey" => Ok(JobSpec::LoopscanSurvey {
            probes_per_block: spec
                .req_u64("probes_per_block", "survey spec")
                .map_err(|e| e.to_string())?,
            seed,
            world_seed,
        }),
        "appscan-grab" => {
            let raw = spec
                .get("targets")
                .and_then(Value::as_arr)
                .ok_or_else(|| "grab spec: missing `targets` array".to_owned())?;
            if raw.is_empty() {
                return Err("grab spec: `targets` must be non-empty".to_owned());
            }
            let mut targets = Vec::with_capacity(raw.len());
            for v in raw {
                let s = v
                    .as_str()
                    .ok_or_else(|| "grab spec: targets must be address strings".to_owned())?;
                targets.push(
                    s.parse::<Ip6>()
                        .map_err(|e| format!("grab spec: bad address `{s}`: {e}"))?,
                );
            }
            Ok(JobSpec::AppscanGrab {
                targets,
                seed,
                world_seed,
            })
        }
        "adaptive-campaign" => {
            let root_bits = match spec.get("root_bits").and_then(Value::as_u64) {
                Some(b) if b == 0 || b > 64 => {
                    return Err(format!("adaptive spec: root_bits {b} out of range 1..=64"))
                }
                Some(b) => Some(b as u8),
                None => None,
            };
            Ok(JobSpec::AdaptiveCampaign {
                probe_budget: spec
                    .req_u64("probe_budget", "adaptive spec")
                    .map_err(|e| e.to_string())?,
                root_bits,
                seed,
                world_seed,
            })
        }
        other => Err(format!("unknown job type `{other}`")),
    }
}

fn render_status(daemon: &Daemon) -> String {
    let report = daemon.status();
    let mut out = String::with_capacity(256);
    out.push_str("{\"ok\":true,\"draining\":");
    out.push_str(if report.draining { "true" } else { "false" });
    out.push_str(&format!(
        ",\"queue_depth\":{},\"jobs\":[",
        report.queue_depth
    ));
    for (i, j) in report.jobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"job\":{},\"tenant\":", j.job));
        push_json_string(&mut out, &j.tenant);
        out.push_str(&format!(
            ",\"kind\":\"{}\",\"state\":\"{}\",\"units_done\":{},\"units_total\":{},\
             \"sent\":{},\"budget\":{}}}",
            j.kind, j.state, j.units_done, j.units_total, j.sent, j.budget
        ));
    }
    out.push_str("],\"tenants\":{");
    for (i, (tenant, sent)) in report.tenant_sent.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, tenant);
        let depth = report.tenant_depth.get(tenant).copied().unwrap_or(0);
        out.push_str(&format!(":{{\"sent\":{sent},\"pending_units\":{depth}}}"));
    }
    out.push_str("}}");
    out
}

/// Socket plumbing (Unix only): the daemon side serves connections
/// serially (`ctl` clients are one-shot), the client side sends one
/// request and reads one response.
#[cfg(unix)]
pub mod socket {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};

    use crate::daemon::Daemon;

    /// Serves control connections until `stopped` is observed set (the
    /// engine pokes the socket after draining to unblock `accept`).
    pub fn serve(daemon: &Daemon, listener: &UnixListener, stopped: &AtomicBool) {
        for conn in listener.incoming() {
            if stopped.load(Ordering::Acquire) {
                break;
            }
            // A broken connection only loses that client.
            let Ok(stream) = conn else { continue };
            let _ = serve_conn(daemon, stream);
        }
    }

    fn serve_conn(daemon: &Daemon, stream: UnixStream) -> std::io::Result<()> {
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut response = super::handle_line(daemon, &line);
            response.push('\n');
            writer.write_all(response.as_bytes())?;
            writer.flush()?;
        }
        Ok(())
    }

    /// Unblocks a [`serve`] loop stuck in `accept` by connecting once.
    pub fn poke(path: &Path) {
        let _ = UnixStream::connect(path);
    }

    /// Client side: sends one request line, returns the response line.
    pub fn request(path: &Path, line: &str) -> std::io::Result<String> {
        let mut stream = UnixStream::connect(path)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.shutdown(std::net::Shutdown::Write)?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response)?;
        Ok(response.trim_end().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::ServeConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xmap-serve-proto-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn protocol_round_trip() {
        let root = temp_root("rt");
        let daemon = Daemon::open(&root, ServeConfig::default()).expect("open");
        assert_eq!(
            handle_line(&daemon, "{\"cmd\":\"ping\"}"),
            "{\"ok\":true,\"pong\":true}"
        );
        let resp = handle_line(
            &daemon,
            "{\"cmd\":\"submit\",\"tenant\":\"alice\",\"spec\":{\"type\":\"loopscan-survey\",\
             \"probes_per_block\":64,\"seed\":3,\"world_seed\":5}}",
        );
        let v = json::parse(&resp, "submit response").expect("valid json");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let job = v.req_u64("job", "submit response").expect("job id");
        let status = handle_line(&daemon, "{\"cmd\":\"status\"}");
        let v = json::parse(&status, "status response").expect("valid json");
        let jobs = v.get("jobs").and_then(Value::as_arr).expect("jobs array");
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].req_u64("job", "job row").unwrap(), job);
        assert_eq!(
            jobs[0].req_str("kind", "job row").unwrap(),
            "loopscan-survey"
        );
        let resp = handle_line(&daemon, &format!("{{\"cmd\":\"cancel\",\"job\":{job}}}"));
        assert!(resp.contains("\"ok\":true"));
        let resp = handle_line(&daemon, "{\"cmd\":\"drain\"}");
        assert!(resp.contains("\"draining\":true"));
        daemon.run().expect("drained run");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn malformed_lines_yield_error_responses() {
        let root = temp_root("bad");
        let daemon = Daemon::open(&root, ServeConfig::default()).expect("open");
        for line in [
            "not json",
            "{}",
            "{\"cmd\":\"warp\"}",
            "{\"cmd\":\"submit\",\"tenant\":\"a\",\"spec\":{\"type\":\"nope\",\"seed\":1,\"world_seed\":1}}",
            "{\"cmd\":\"submit\",\"tenant\":\"a\",\"spec\":{\"type\":\"appscan-grab\",\"targets\":[],\"seed\":1,\"world_seed\":1}}",
            "{\"cmd\":\"submit\",\"tenant\":\"a\",\"spec\":{\"type\":\"appscan-grab\",\"targets\":[\"zz\"],\"seed\":1,\"world_seed\":1}}",
            "{\"cmd\":\"cancel\",\"job\":42}",
        ] {
            let resp = handle_line(&daemon, line);
            assert!(
                resp.starts_with("{\"ok\":false,\"error\":"),
                "line `{line}` got `{resp}`"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn spec_parse_accepts_all_kinds() {
        let v = json::parse(
            "{\"type\":\"periphery-campaign\",\"targets_per_block\":128,\"seed\":1,\
             \"world_seed\":2,\"mop_up_ticks\":64}",
            "spec",
        )
        .unwrap();
        assert_eq!(
            parse_spec(&v).unwrap(),
            JobSpec::PeripheryCampaign {
                targets_per_block: 128,
                seed: 1,
                world_seed: 2,
                mop_up_ticks: Some(64),
                block_targets: Vec::new(),
            }
        );
        let v = json::parse(
            "{\"type\":\"periphery-campaign\",\"targets_per_block\":128,\"seed\":1,\
             \"world_seed\":2,\"block_targets\":[[2,65536],[0,64]]}",
            "spec",
        )
        .unwrap();
        assert_eq!(
            parse_spec(&v).unwrap(),
            JobSpec::PeripheryCampaign {
                targets_per_block: 128,
                seed: 1,
                world_seed: 2,
                mop_up_ticks: None,
                block_targets: vec![(2, 65536), (0, 64)],
            }
        );
        for bad in [
            "[[99,64]]",  // block index out of range
            "[[2,0]]",    // zero targets
            "[[2]]",      // not a pair
            "[\"2:64\"]", // wrong element shape
        ] {
            let v = json::parse(
                &format!(
                    "{{\"type\":\"periphery-campaign\",\"targets_per_block\":128,\"seed\":1,\
                     \"world_seed\":2,\"block_targets\":{bad}}}"
                ),
                "spec",
            )
            .unwrap();
            assert!(parse_spec(&v).is_err(), "{bad} must be rejected");
        }
        let v = json::parse(
            "{\"type\":\"appscan-grab\",\"targets\":[\"2001:db8::1\"],\"seed\":1,\"world_seed\":2}",
            "spec",
        )
        .unwrap();
        match parse_spec(&v).unwrap() {
            JobSpec::AppscanGrab { targets, .. } => assert_eq!(targets.len(), 1),
            other => panic!("wrong kind: {other:?}"),
        }
        let v = json::parse(
            "{\"type\":\"adaptive-campaign\",\"probe_budget\":2048,\"root_bits\":12,\
             \"seed\":1,\"world_seed\":2}",
            "spec",
        )
        .unwrap();
        assert_eq!(
            parse_spec(&v).unwrap(),
            JobSpec::AdaptiveCampaign {
                probe_budget: 2048,
                root_bits: Some(12),
                seed: 1,
                world_seed: 2,
            }
        );
        let v = json::parse(
            "{\"type\":\"adaptive-campaign\",\"probe_budget\":64,\"root_bits\":99,\
             \"seed\":1,\"world_seed\":2}",
            "spec",
        )
        .unwrap();
        assert!(parse_spec(&v).is_err(), "root_bits out of range");
    }

    #[test]
    fn status_reports_budget_per_job() {
        let root = temp_root("budget");
        let daemon = Daemon::open(&root, ServeConfig::default()).expect("open");
        let resp = handle_line(
            &daemon,
            "{\"cmd\":\"submit\",\"tenant\":\"bob\",\"spec\":{\"type\":\"adaptive-campaign\",\
             \"probe_budget\":512,\"root_bits\":10,\"seed\":3,\"world_seed\":5}}",
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let status = handle_line(&daemon, "{\"cmd\":\"status\"}");
        let v = json::parse(&status, "status response").expect("valid json");
        let jobs = v.get("jobs").and_then(Value::as_arr).expect("jobs array");
        assert_eq!(jobs[0].req_str("kind", "row").unwrap(), "adaptive-campaign");
        // 15 blocks, 512 probes budgeted each.
        assert_eq!(jobs[0].req_u64("budget", "row").unwrap(), 15 * 512);
        assert_eq!(jobs[0].req_u64("sent", "row").unwrap(), 0);
        let _ = handle_line(&daemon, "{\"cmd\":\"drain\"}");
        daemon.run().expect("drained run");
        let status = handle_line(&daemon, "{\"cmd\":\"status\"}");
        let v = json::parse(&status, "status response").expect("valid json");
        let jobs = v.get("jobs").and_then(Value::as_arr).expect("jobs array");
        let sent = jobs[0].req_u64("sent", "row").unwrap();
        let budget = jobs[0].req_u64("budget", "row").unwrap();
        assert!(sent > 0, "drained adaptive job must have probed");
        assert!(
            sent <= budget,
            "probes-sent {sent} must stay within budget {budget}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
