//! The daemon engine: worker pool, per-job persistence, resume-on-open.
//!
//! # On-disk layout
//!
//! ```text
//! root/
//!   ledger.wal                 job-lifecycle journal (submit/complete/cancel)
//!   jobs/job-000001/
//!     unit-000.ckpt            one `xmap-checkpoint/v1` file per finished
//!     unit-001.ckpt            unit: the unit's output + telemetry delta,
//!     ...                      fingerprint-stamped against the job spec
//!     result.csv               final artifact, published on completion
//!     metrics.json             merged telemetry, published on completion
//! ```
//!
//! # Resume-on-restart invariants
//!
//! * The ledger names the live jobs (`Submitted` without a terminal
//!   record). Nothing else is trusted: stray job directories without a
//!   ledger record are ignored.
//! * A unit is *done* iff its checkpoint file reads back intact with the
//!   job's spec fingerprint. Torn, corrupt or mismatched checkpoints are
//!   re-run — safe because units are pure functions of `(spec, unit)`
//!   and checkpoint publication is atomic (tmp + rename).
//! * Final artifacts are rendered from the unit checkpoints in unit
//!   order, never from in-memory state, so an interrupted daemon's
//!   `result.csv`/`metrics.json` are byte-identical to an
//!   uninterrupted run's.
//! * A job whose units are all done but which lacks a `Completed`
//!   record (killed mid-finalize) is finalized again on open;
//!   finalization is idempotent.
//!
//! All file writes route through `xmap-failpoint`, so the torture suite
//! can kill the daemon at every filesystem operation and assert the
//! invariants above.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use xmap::telemetry::names;
use xmap::{merge_worker_snapshots, ScanEngine};
use xmap_failpoint::fs as fp;
use xmap_state::checkpoint::{decode_snapshot, encode_snapshot};
use xmap_state::checkpoint::{read_sectioned, write_sectioned};
use xmap_state::{Fingerprint, StateError};
use xmap_telemetry::{Registry, Snapshot};

use crate::job::{JobSpec, UnitOutput};
use crate::ledger::{Ledger, LedgerEvent};
use crate::sched::{AdmissionError, AdmissionPolicy, DrrScheduler};

/// Daemon-level metric names.
pub mod metric {
    /// Jobs admitted.
    pub const SUBMITTED: &str = "serve.submitted";
    /// Submissions refused by admission control.
    pub const ADMISSION_REJECTED: &str = "serve.admission_rejected";
    /// Jobs finalized.
    pub const COMPLETED: &str = "serve.completed";
    /// Jobs cancelled.
    pub const CANCELLED: &str = "serve.cancelled";
    /// Units executed to completion (committed).
    pub const UNITS_EXECUTED: &str = "serve.units_executed";
    /// Worker panics caught by the supervisor.
    pub const WORKER_PANICS: &str = "serve.worker_panics";
    /// Units requeued after a panic.
    pub const REQUEUED: &str = "serve.requeued";
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the scheduler.
    pub workers: usize,
    /// DRR probe quantum per round per unit of tenant weight.
    pub quantum: u64,
    /// Admission limits.
    pub admission: AdmissionPolicy,
    /// Per-tenant DRR weights; unlisted tenants get weight 1.
    pub tenant_weights: BTreeMap<String, u64>,
    /// Attempts per unit before the owning job is failed (counting the
    /// first), mirroring the executors' [`xmap::Supervision`] default.
    pub max_attempts: u32,
    /// Scan engine units execute on. Both engines are byte-identical,
    /// so this is an operational knob (not job identity) and may change
    /// across daemon restarts without invalidating resume state.
    pub engine: ScanEngine,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            quantum: 4096,
            admission: AdmissionPolicy::default(),
            tenant_weights: BTreeMap::new(),
            max_attempts: 2,
            engine: ScanEngine::default(),
        }
    }
}

/// Errors surfaced to tenants through the control plane.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the submission.
    Admission(AdmissionError),
    /// The daemon is draining and takes no new jobs.
    Draining,
    /// No such job id.
    UnknownJob(u64),
    /// A storage operation failed.
    State(StateError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Admission(e) => write!(f, "admission refused: {e}"),
            ServeError::Draining => write!(f, "daemon is draining"),
            ServeError::UnknownJob(id) => write!(f, "no such job {id}"),
            ServeError::State(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl From<StateError> for ServeError {
    fn from(e: StateError) -> Self {
        ServeError::State(e)
    }
}

/// Lifecycle state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Active,
    Completed,
    Cancelled,
    Failed(String),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Active => "active",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    tenant: String,
    spec: JobSpec,
    fp: u64,
    state: JobState,
    done: Vec<bool>,
    done_count: usize,
    attempts: Vec<u32>,
    /// Per-job metric store; unit deltas fold in via `Registry::absorb`.
    registry: Arc<Registry>,
}

#[derive(Debug)]
struct Engine {
    jobs: BTreeMap<u64, JobEntry>,
    sched: DrrScheduler,
    next_id: u64,
    draining: bool,
    stopping: bool,
    in_flight: usize,
    fatal: Option<StateError>,
}

/// One job's externally visible status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id.
    pub job: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Job kind label.
    pub kind: &'static str,
    /// Lifecycle state label: `active`, `completed`, `cancelled`,
    /// `failed`.
    pub state: &'static str,
    /// Units finished.
    pub units_done: usize,
    /// Units total.
    pub units_total: usize,
    /// Probes sent so far (`scan.sent` from the job's registry).
    pub sent: u64,
    /// The job's probe budget: the sum of its units' scheduling costs.
    /// `sent / budget` is the tenant-visible progress-by-volume gauge;
    /// adaptive jobs typically finish well under it.
    pub budget: u64,
}

/// A full status report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusReport {
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Units pending across all jobs.
    pub queue_depth: usize,
    /// Per-job statuses in job-id order.
    pub jobs: Vec<JobStatus>,
    /// Probes sent per tenant across that tenant's jobs.
    pub tenant_sent: BTreeMap<String, u64>,
    /// Pending units per tenant.
    pub tenant_depth: BTreeMap<String, usize>,
}

/// What [`Daemon::run`] drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Jobs that reached `Completed` over the daemon's lifetime
    /// (including jobs finalized during open-time resume).
    pub completed: u64,
}

/// The scan-campaign daemon. See the [module docs](self) for the
/// on-disk layout and resume invariants.
#[derive(Debug)]
pub struct Daemon {
    root: PathBuf,
    cfg: ServeConfig,
    state: Mutex<Engine>,
    wake: Condvar,
    ledger: Mutex<Ledger>,
    metrics: Arc<Registry>,
    resumed_jobs: usize,
    resumed_pending: usize,
}

impl Daemon {
    /// Opens (or creates) a daemon root, replaying the job ledger and
    /// resuming every live job: finished units load from their
    /// checkpoints, unfinished units re-enter the scheduler, and jobs
    /// killed mid-finalize are finalized here.
    pub fn open(root: &Path, cfg: ServeConfig) -> Result<Daemon, StateError> {
        std::fs::create_dir_all(root.join("jobs"))
            .map_err(|e| StateError::io(format!("create daemon root {}", root.display()), e))?;
        let (ledger, events) = Ledger::open(&root.join("ledger.wal"))?;
        let mut live: BTreeMap<u64, (String, JobSpec)> = BTreeMap::new();
        let mut next_id = 1;
        for ev in events {
            match ev {
                LedgerEvent::Submitted { job, tenant, spec } => {
                    next_id = next_id.max(job + 1);
                    live.insert(job, (tenant, spec));
                }
                // First terminal event wins; later ones are no-ops.
                LedgerEvent::Completed { job } | LedgerEvent::Cancelled { job } => {
                    live.remove(&job);
                }
            }
        }
        let mut engine = Engine {
            jobs: BTreeMap::new(),
            sched: DrrScheduler::new(cfg.quantum),
            next_id,
            draining: false,
            stopping: false,
            in_flight: 0,
            fatal: None,
        };
        let mut resumed_pending = 0;
        let resumed_jobs = live.len();
        let mut finalize: Vec<u64> = Vec::new();
        for (job, (tenant, spec)) in live {
            let fp = spec.fingerprint();
            let units = spec.units();
            let registry = Arc::new(Registry::new());
            let mut done = vec![false; units];
            let mut done_count = 0;
            let mut pending = Vec::new();
            for (unit, done_slot) in done.iter_mut().enumerate() {
                match load_unit(root, job, unit, fp) {
                    Some((_, delta)) => {
                        *done_slot = true;
                        done_count += 1;
                        registry.absorb(&delta);
                    }
                    None => pending.push((unit, spec.unit_cost(unit))),
                }
            }
            resumed_pending += pending.len();
            let weight = cfg.tenant_weights.get(&tenant).copied().unwrap_or(1);
            engine.sched.admit(job, &tenant, weight, pending);
            if done_count == units {
                finalize.push(job);
            }
            engine.jobs.insert(
                job,
                JobEntry {
                    tenant,
                    spec,
                    fp,
                    state: JobState::Active,
                    done,
                    done_count,
                    attempts: vec![0; units],
                    registry,
                },
            );
        }
        let daemon = Daemon {
            root: root.to_path_buf(),
            cfg,
            state: Mutex::new(engine),
            wake: Condvar::new(),
            ledger: Mutex::new(ledger),
            metrics: Arc::new(Registry::new()),
            resumed_jobs,
            resumed_pending,
        };
        // Jobs killed between last-unit commit and Completed: finish the
        // interrupted finalization now (idempotent).
        for job in finalize {
            daemon.finalize(job)?;
        }
        Ok(daemon)
    }

    /// `(jobs, pending units)` resumed from the ledger at open.
    pub fn resumed(&self) -> (usize, usize) {
        (self.resumed_jobs, self.resumed_pending)
    }

    /// The daemon root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The daemon's own metric registry (`serve.*` counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    fn engine(&self) -> MutexGuard<'_, Engine> {
        self.state.lock().expect("daemon engine poisoned")
    }

    /// Submits a job for `tenant`, journaling it durably before
    /// acknowledging. Returns the assigned job id.
    pub fn submit(&self, tenant: &str, spec: JobSpec) -> Result<u64, ServeError> {
        let mut eng = self.engine();
        if eng.draining || eng.stopping {
            return Err(ServeError::Draining);
        }
        let active_total = eng
            .jobs
            .values()
            .filter(|j| j.state == JobState::Active)
            .count();
        let active_tenant = eng
            .jobs
            .values()
            .filter(|j| j.state == JobState::Active && j.tenant == tenant)
            .count();
        if active_tenant >= self.cfg.admission.max_active_per_tenant {
            self.metrics.counter(metric::ADMISSION_REJECTED).inc();
            return Err(ServeError::Admission(AdmissionError::TenantBusy {
                limit: self.cfg.admission.max_active_per_tenant,
            }));
        }
        if active_total >= self.cfg.admission.max_active_total {
            self.metrics.counter(metric::ADMISSION_REJECTED).inc();
            return Err(ServeError::Admission(AdmissionError::DaemonBusy {
                limit: self.cfg.admission.max_active_total,
            }));
        }
        let job = eng.next_id;
        eng.next_id += 1;
        // Durable before acknowledged: the ledger append flushes.
        self.ledger
            .lock()
            .expect("ledger poisoned")
            .append(&LedgerEvent::Submitted {
                job,
                tenant: tenant.to_owned(),
                spec: spec.clone(),
            })?;
        let units = spec.units();
        let fp = spec.fingerprint();
        let weight = self.cfg.tenant_weights.get(tenant).copied().unwrap_or(1);
        eng.sched.admit(
            job,
            tenant,
            weight,
            (0..units).map(|u| (u, spec.unit_cost(u))),
        );
        eng.jobs.insert(
            job,
            JobEntry {
                tenant: tenant.to_owned(),
                spec,
                fp,
                state: JobState::Active,
                done: vec![false; units],
                done_count: 0,
                attempts: vec![0; units],
                registry: Arc::new(Registry::new()),
            },
        );
        self.metrics.counter(metric::SUBMITTED).inc();
        drop(eng);
        self.wake.notify_all();
        Ok(job)
    }

    /// Cancels a job. Idempotent: cancelling a finished or already
    /// cancelled job is a no-op.
    pub fn cancel(&self, job: u64) -> Result<(), ServeError> {
        let mut eng = self.engine();
        let entry = eng.jobs.get_mut(&job).ok_or(ServeError::UnknownJob(job))?;
        if entry.state != JobState::Active {
            return Ok(());
        }
        entry.state = JobState::Cancelled;
        eng.sched.remove(job);
        self.ledger
            .lock()
            .expect("ledger poisoned")
            .append(&LedgerEvent::Cancelled { job })?;
        self.metrics.counter(metric::CANCELLED).inc();
        drop(eng);
        self.wake.notify_all();
        Ok(())
    }

    /// Starts draining: no new submissions; [`Daemon::run`] returns once
    /// every pending unit has finished.
    pub fn drain(&self) {
        self.engine().draining = true;
        self.wake.notify_all();
    }

    /// Whether [`Daemon::run`] has stopped (drained or failed).
    pub fn is_stopped(&self) -> bool {
        let eng = self.engine();
        eng.stopping || (eng.draining && eng.in_flight == 0 && eng.sched.total_pending() == 0)
    }

    /// A point-in-time status report.
    pub fn status(&self) -> StatusReport {
        let eng = self.engine();
        let mut jobs = Vec::with_capacity(eng.jobs.len());
        let mut tenant_sent: BTreeMap<String, u64> = BTreeMap::new();
        for (id, entry) in &eng.jobs {
            let sent = entry.registry.counter(names::SENT).get();
            *tenant_sent.entry(entry.tenant.clone()).or_insert(0) += sent;
            jobs.push(JobStatus {
                job: *id,
                tenant: entry.tenant.clone(),
                kind: entry.spec.kind_name(),
                state: entry.state.label(),
                units_done: entry.done_count,
                units_total: entry.spec.units(),
                sent,
                budget: (0..entry.spec.units())
                    .map(|u| entry.spec.unit_cost(u))
                    .sum(),
            });
        }
        StatusReport {
            draining: eng.draining,
            queue_depth: eng.sched.total_pending(),
            jobs,
            tenant_sent,
            tenant_depth: eng.sched.tenant_depths(),
        }
    }

    /// One job's merged telemetry snapshot (absorbed unit deltas).
    pub fn job_snapshot(&self, job: u64) -> Result<Snapshot, ServeError> {
        let eng = self.engine();
        let entry = eng.jobs.get(&job).ok_or(ServeError::UnknownJob(job))?;
        Ok(entry.registry.snapshot())
    }

    /// Runs the worker pool until the daemon is drained or a storage
    /// fault stops it. All scheduling state is re-derivable, so an `Err`
    /// return leaves the root resumable by a fresh [`Daemon::open`].
    pub fn run(&self) -> Result<DrainOutcome, StateError> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.cfg.workers.max(1))
                .map(|_| scope.spawn(|| self.worker_loop()))
                .collect();
            for h in handles {
                h.join().expect("worker loops catch their panics");
            }
        });
        match self.engine().fatal.take() {
            Some(e) => Err(e),
            None => Ok(DrainOutcome {
                completed: self.metrics.counter(metric::COMPLETED).get(),
            }),
        }
    }

    fn worker_loop(&self) {
        loop {
            let dispatch = {
                let mut eng = self.engine();
                loop {
                    if eng.stopping {
                        drop(eng);
                        self.wake.notify_all();
                        return;
                    }
                    if let Some((job, unit)) = eng.sched.next_unit() {
                        let entry = &eng.jobs[&job];
                        let spec = entry.spec.clone();
                        let fp = entry.fp;
                        eng.in_flight += 1;
                        break (job, unit, spec, fp);
                    }
                    if eng.draining && eng.in_flight == 0 {
                        drop(eng);
                        self.wake.notify_all();
                        return;
                    }
                    eng = self.wake.wait(eng).expect("daemon engine poisoned");
                }
            };
            let (job, unit, spec, fp) = dispatch;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                spec.run_unit_with_engine(unit, self.cfg.engine)
            }));
            match attempt {
                Ok((out, delta)) => {
                    let write = write_unit(&self.root, job, unit, fp, &out, &delta);
                    let finalize = {
                        let mut eng = self.engine();
                        eng.in_flight -= 1;
                        if let Err(e) = write {
                            self.fail(&mut eng, e);
                            continue;
                        }
                        let entry = eng.jobs.get_mut(&job).expect("jobs are never dropped");
                        if entry.state == JobState::Active && !entry.done[unit] {
                            entry.done[unit] = true;
                            entry.done_count += 1;
                            entry.registry.absorb(&delta);
                            self.metrics.counter(metric::UNITS_EXECUTED).inc();
                            entry.done_count == entry.spec.units()
                        } else {
                            false
                        }
                    };
                    if finalize {
                        if let Err(e) = self.finalize(job) {
                            let mut eng = self.engine();
                            self.fail(&mut eng, e);
                            continue;
                        }
                    }
                    self.wake.notify_all();
                }
                Err(_) => {
                    let mut eng = self.engine();
                    eng.in_flight -= 1;
                    self.metrics.counter(metric::WORKER_PANICS).inc();
                    let entry = eng.jobs.get_mut(&job).expect("jobs are never dropped");
                    if entry.state == JobState::Active {
                        entry.attempts[unit] += 1;
                        if entry.attempts[unit] < self.cfg.max_attempts.max(1) {
                            let cost = entry.spec.unit_cost(unit);
                            eng.sched.requeue(job, unit, cost);
                            self.metrics.counter(metric::REQUEUED).inc();
                        } else {
                            entry.state = JobState::Failed(format!(
                                "unit {unit} panicked {} times",
                                entry.attempts[unit]
                            ));
                            eng.sched.remove(job);
                        }
                    }
                    drop(eng);
                    self.wake.notify_all();
                }
            }
        }
    }

    /// Records a fatal storage fault and stops every worker. The fault
    /// is returned from [`Daemon::run`]; on-disk state stays resumable.
    fn fail(&self, eng: &mut Engine, e: StateError) {
        if eng.fatal.is_none() {
            eng.fatal = Some(e);
        }
        eng.stopping = true;
        self.wake.notify_all();
    }

    /// Publishes a finished job's final artifacts from its unit
    /// checkpoints and journals `Completed`. Idempotent; called by the
    /// worker that commits the last unit, or by [`Daemon::open`] for
    /// jobs killed mid-finalize.
    fn finalize(&self, job: u64) -> Result<(), StateError> {
        let (spec, fp) = {
            let eng = self.engine();
            let entry = &eng.jobs[&job];
            (entry.spec.clone(), entry.fp)
        };
        let units = spec.units();
        let mut outputs = Vec::with_capacity(units);
        let mut deltas = Vec::with_capacity(units);
        for unit in 0..units {
            let (out, delta) = load_unit(&self.root, job, unit, fp).ok_or_else(|| {
                StateError::Corrupt(format!(
                    "job {job}: unit {unit} checkpoint unreadable during finalize"
                ))
            })?;
            outputs.push(out);
            deltas.push(delta);
        }
        let dir = job_dir(&self.root, job);
        let csv = spec.render_csv(&outputs);
        publish(&dir.join("result.csv"), csv.as_bytes())?;
        let merged = merge_worker_snapshots(deltas);
        publish(&dir.join("metrics.json"), merged.to_json().as_bytes())?;
        let mut eng = self.engine();
        let entry = eng.jobs.get_mut(&job).expect("jobs are never dropped");
        if entry.state == JobState::Active {
            entry.state = JobState::Completed;
            self.ledger
                .lock()
                .expect("ledger poisoned")
                .append(&LedgerEvent::Completed { job })?;
            self.metrics.counter(metric::COMPLETED).inc();
        }
        drop(eng);
        self.wake.notify_all();
        Ok(())
    }
}

/// The directory holding one job's checkpoints and artifacts.
pub fn job_dir(root: &Path, job: u64) -> PathBuf {
    root.join("jobs").join(format!("job-{job:06}"))
}

fn unit_path(root: &Path, job: u64, unit: usize) -> PathBuf {
    job_dir(root, job).join(format!("unit-{unit:03}.ckpt"))
}

/// Atomically publishes `bytes` at `path` (tmp + rename, fsynced),
/// routed through the failpoint layer.
fn publish(path: &Path, bytes: &[u8]) -> Result<(), StateError> {
    let tmp = path.with_extension("tmp");
    fp::write(&tmp, bytes)
        .map_err(|e| StateError::io(format!("write artifact {}", tmp.display()), e))?;
    fp::sync_file(&tmp)
        .map_err(|e| StateError::io(format!("sync artifact {}", tmp.display()), e))?;
    fp::rename(&tmp, path)
        .map_err(|e| StateError::io(format!("publish artifact {}", path.display()), e))
}

fn write_unit(
    root: &Path,
    job: u64,
    unit: usize,
    fp_id: u64,
    out: &UnitOutput,
    delta: &Snapshot,
) -> Result<(), StateError> {
    let dir = job_dir(root, job);
    std::fs::create_dir_all(&dir)
        .map_err(|e| StateError::io(format!("create job dir {}", dir.display()), e))?;
    let mut e = xmap_state::codec::Encoder::new();
    out.encode(&mut e);
    let header = format!(
        "{{\"schema\":\"{}\",\"kind\":\"serve-unit\",\"job\":{job},\"unit\":{unit},\"fp\":{fp_id}}}",
        xmap_state::CHECKPOINT_SCHEMA
    );
    write_sectioned(
        &unit_path(root, job, unit),
        &header,
        &[("output", e.finish()), ("metrics", encode_snapshot(delta))],
    )
}

/// Loads one unit checkpoint, verifying kind, coordinates, spec
/// fingerprint and a self-check fingerprint of the decode. Any failure
/// — missing file, torn write, drifted spec — yields `None`: the unit
/// simply re-runs, which rewrites identical bytes.
fn load_unit(root: &Path, job: u64, unit: usize, fp_id: u64) -> Option<(UnitOutput, Snapshot)> {
    let path = unit_path(root, job, unit);
    if !path.exists() {
        return None;
    }
    let (header, mut sections) = read_sectioned(&path, "serve unit checkpoint").ok()?;
    if header.req_str("kind", "serve unit").ok()? != "serve-unit"
        || header.req_u64("job", "serve unit").ok()? != job
        || header.req_u64("unit", "serve unit").ok()? != unit as u64
        || header.req_u64("fp", "serve unit").ok()? != fp_id
    {
        return None;
    }
    let out_raw = sections.remove("output")?;
    let metrics_raw = sections.remove("metrics")?;
    let mut d = xmap_state::codec::Decoder::new(&out_raw, "serve unit output");
    let out = UnitOutput::decode(&mut d).ok()?;
    d.expect_end().ok()?;
    let delta = decode_snapshot(&metrics_raw).ok()?;
    Some((out, delta))
}

/// A stable fingerprint over a rendered artifact, used by tests to
/// compare runs without holding file contents.
pub fn artifact_fingerprint(bytes: &[u8]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_bytes(bytes);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xmap-serve-{}-{tag}-{n}", std::process::id()))
    }

    fn small_survey(seed: u64) -> JobSpec {
        JobSpec::LoopscanSurvey {
            probes_per_block: 64,
            seed,
            world_seed: seed.wrapping_mul(3).wrapping_add(1),
        }
    }

    #[test]
    fn submit_drain_produces_artifacts() {
        let root = temp_root("basic");
        let daemon = Daemon::open(&root, ServeConfig::default()).expect("open");
        let job = daemon.submit("alice", small_survey(5)).expect("submit");
        daemon.drain();
        daemon.run().expect("run");
        let dir = job_dir(&root, job);
        let csv = std::fs::read_to_string(dir.join("result.csv")).expect("csv");
        assert!(csv.starts_with("profile_id,address,asn,same64,iid_class,mac\n"));
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics");
        assert!(metrics.contains("scan.sent"));
        let status = daemon.status();
        assert_eq!(status.jobs.len(), 1);
        assert_eq!(status.jobs[0].state, "completed");
        assert_eq!(status.jobs[0].units_done, status.jobs[0].units_total);
        assert!(status.tenant_sent["alice"] > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn admission_caps_are_enforced() {
        let root = temp_root("admission");
        let cfg = ServeConfig {
            admission: AdmissionPolicy {
                max_active_per_tenant: 1,
                max_active_total: 2,
            },
            ..ServeConfig::default()
        };
        let daemon = Daemon::open(&root, cfg).expect("open");
        daemon.submit("alice", small_survey(1)).expect("first");
        let err = daemon.submit("alice", small_survey(2)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Admission(AdmissionError::TenantBusy { limit: 1 })
        ));
        daemon
            .submit("bob", small_survey(3))
            .expect("second tenant");
        let err = daemon.submit("carol", small_survey(4)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Admission(AdmissionError::DaemonBusy { limit: 2 })
        ));
        assert_eq!(
            daemon.metrics().counter(metric::ADMISSION_REJECTED).get(),
            2
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cancel_stops_a_pending_job() {
        let root = temp_root("cancel");
        let daemon = Daemon::open(&root, ServeConfig::default()).expect("open");
        let job = daemon.submit("alice", small_survey(9)).expect("submit");
        daemon.cancel(job).expect("cancel");
        // Idempotent.
        daemon.cancel(job).expect("cancel again");
        assert!(matches!(
            daemon.cancel(999).unwrap_err(),
            ServeError::UnknownJob(999)
        ));
        daemon.drain();
        daemon.run().expect("run");
        assert_eq!(daemon.status().jobs[0].state, "cancelled");
        assert!(!job_dir(&root, job).join("result.csv").exists());
        // A restart does not resurrect it.
        drop(daemon);
        let daemon = Daemon::open(&root, ServeConfig::default()).expect("reopen");
        assert_eq!(daemon.resumed(), (0, 0));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submissions_refused_while_draining() {
        let root = temp_root("draining");
        let daemon = Daemon::open(&root, ServeConfig::default()).expect("open");
        daemon.drain();
        assert!(matches!(
            daemon.submit("alice", small_survey(1)).unwrap_err(),
            ServeError::Draining
        ));
        daemon.run().expect("run");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        // Same job set, same seeds: the merged artifacts must not depend
        // on the worker count (scheduler determinism acceptance).
        let mut artifacts: Vec<Vec<u64>> = Vec::new();
        for workers in [1usize, 2, 4] {
            let root = temp_root(&format!("det{workers}"));
            let cfg = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let daemon = Daemon::open(&root, cfg).expect("open");
            let a = daemon.submit("alice", small_survey(7)).expect("submit a");
            let b = daemon
                .submit(
                    "bob",
                    JobSpec::PeripheryCampaign {
                        targets_per_block: 256,
                        seed: 11,
                        world_seed: 13,
                        mop_up_ticks: None,
                        block_targets: Vec::new(),
                    },
                )
                .expect("submit b");
            daemon.drain();
            daemon.run().expect("run");
            let mut fps = Vec::new();
            for job in [a, b] {
                let dir = job_dir(&root, job);
                fps.push(artifact_fingerprint(
                    &std::fs::read(dir.join("result.csv")).expect("csv"),
                ));
                fps.push(artifact_fingerprint(
                    &std::fs::read(dir.join("metrics.json")).expect("metrics"),
                ));
            }
            artifacts.push(fps);
            let _ = std::fs::remove_dir_all(&root);
        }
        assert_eq!(artifacts[0], artifacts[1]);
        assert_eq!(artifacts[0], artifacts[2]);
    }
}
