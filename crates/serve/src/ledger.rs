//! The job ledger: a WAL journaling every job-lifecycle event.
//!
//! The ledger is the daemon's source of truth for *which jobs exist*.
//! Replaying it yields the live set: every `Submitted` job that has no
//! terminal (`Completed` / `Cancelled`) record. Unit-level progress is
//! deliberately **not** journaled here — it lives in per-job checkpoint
//! directories, where a finished unit is exactly a readable checkpoint
//! file. That split keeps the ledger tiny (a handful of records per
//! job) and makes unit commit idempotent: re-running a unit whose
//! checkpoint was lost to a torn write rewrites the same bytes.
//!
//! Every append is flushed before the daemon acknowledges the event, so
//! an acknowledged submit survives any later crash. The underlying
//! [`Wal`] tolerates a torn tail: a crash mid-append loses only the
//! unacknowledged record.

use std::path::Path;

use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{StateError, Wal};

use crate::job::JobSpec;

/// One job-lifecycle event in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEvent {
    /// A job was admitted: it must eventually complete or be cancelled.
    Submitted {
        /// Daemon-assigned job id (sequential from 1).
        job: u64,
        /// Owning tenant.
        tenant: String,
        /// The full job spec (replayable without external state).
        spec: JobSpec,
    },
    /// The job finished and its final artifacts were published.
    Completed {
        /// The finished job.
        job: u64,
    },
    /// The job was cancelled by a tenant.
    Cancelled {
        /// The cancelled job.
        job: u64,
    },
}

impl LedgerEvent {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            LedgerEvent::Submitted { job, tenant, spec } => {
                e.u8(1);
                e.u64(*job);
                e.str(tenant);
                spec.encode(&mut e);
            }
            LedgerEvent::Completed { job } => {
                e.u8(2);
                e.u64(*job);
            }
            LedgerEvent::Cancelled { job } => {
                e.u8(3);
                e.u64(*job);
            }
        }
        e.finish()
    }

    fn decode(raw: &[u8]) -> Result<LedgerEvent, StateError> {
        let mut d = Decoder::new(raw, "job ledger entry");
        let ev = match d.u8()? {
            1 => LedgerEvent::Submitted {
                job: d.u64()?,
                tenant: d.str()?,
                spec: JobSpec::decode(&mut d)?,
            },
            2 => LedgerEvent::Completed { job: d.u64()? },
            3 => LedgerEvent::Cancelled { job: d.u64()? },
            tag => {
                return Err(StateError::Corrupt(format!(
                    "job ledger: unknown event tag {tag}"
                )))
            }
        };
        d.expect_end()?;
        Ok(ev)
    }
}

/// An append-only journal of [`LedgerEvent`]s backed by an
/// `xmap-state` [`Wal`].
#[derive(Debug)]
pub struct Ledger {
    wal: Wal,
}

impl Ledger {
    /// Opens (or creates) the ledger at `path`, returning it positioned
    /// for appends plus every intact historical event in order. A torn
    /// tail from a crash mid-append is truncated away.
    pub fn open(path: &Path) -> Result<(Ledger, Vec<LedgerEvent>), StateError> {
        if !path.exists() {
            return Ok((
                Ledger {
                    wal: Wal::create(path)?,
                },
                Vec::new(),
            ));
        }
        let recovered = Wal::recover(path)?;
        let mut events = Vec::with_capacity(recovered.entries.len());
        for raw in &recovered.entries {
            events.push(LedgerEvent::decode(raw)?);
        }
        let keep = recovered.entries.len() as u64;
        let (wal, _) = Wal::open_truncated(path, keep)?;
        Ok((Ledger { wal }, events))
    }

    /// Appends one event and flushes it, so the event is on its way to
    /// disk before the daemon acknowledges it to the tenant.
    pub fn append(&mut self, event: &LedgerEvent) -> Result<(), StateError> {
        self.wal.append(&event.encode())?;
        self.wal.flush()
    }

    /// Count of events journalled so far.
    pub fn len(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Whether the ledger holds no events yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "xmap-serve-ledger-{}-{tag}-{n}.wal",
            std::process::id()
        ))
    }

    fn sample_events() -> Vec<LedgerEvent> {
        vec![
            LedgerEvent::Submitted {
                job: 1,
                tenant: "alice".to_owned(),
                spec: JobSpec::LoopscanSurvey {
                    probes_per_block: 128,
                    seed: 3,
                    world_seed: 5,
                },
            },
            LedgerEvent::Submitted {
                job: 2,
                tenant: "bob".to_owned(),
                spec: JobSpec::PeripheryCampaign {
                    targets_per_block: 1024,
                    seed: 9,
                    world_seed: 2,
                    mop_up_ticks: None,
                    block_targets: Vec::new(),
                },
            },
            LedgerEvent::Cancelled { job: 2 },
            LedgerEvent::Completed { job: 1 },
        ]
    }

    #[test]
    fn ledger_replays_in_order() {
        let path = temp_path("replay");
        let (mut ledger, past) = Ledger::open(&path).expect("open");
        assert!(past.is_empty());
        assert!(ledger.is_empty());
        for ev in sample_events() {
            ledger.append(&ev).expect("append");
        }
        drop(ledger);
        let (ledger, past) = Ledger::open(&path).expect("reopen");
        assert_eq!(past, sample_events());
        assert_eq!(ledger.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_drops_only_last_record() {
        let path = temp_path("torn");
        let (mut ledger, _) = Ledger::open(&path).expect("open");
        for ev in sample_events() {
            ledger.append(&ev).expect("append");
        }
        drop(ledger);
        // Chop bytes off the tail: the final record decays, the rest hold.
        let raw = std::fs::read(&path).expect("read");
        std::fs::write(&path, &raw[..raw.len() - 3]).expect("truncate");
        let (_, past) = Ledger::open(&path).expect("reopen torn");
        assert_eq!(past, sample_events()[..3]);
        let _ = std::fs::remove_file(&path);
    }
}
