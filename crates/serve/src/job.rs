//! Typed scan jobs and their decomposition into schedulable units.
//!
//! Modeled on prefix-crab's probe-type queue: the daemon does not take
//! opaque closures, it takes a closed enum of the scan shapes this
//! workspace knows how to run. That buys three things — the ledger can
//! persist a job losslessly, a restarted daemon can re-instantiate it
//! without help, and the scheduler can cost its units up front.
//!
//! Every unit runs on a **fresh** scanner over a fresh seeded world
//! replica (the supervisor-fallback pattern the parallel campaign
//! executor already proved byte-identical to sequential execution), so
//! a unit's output is a pure function of `(spec, unit index)`. The
//! daemon's crash-resume and cross-worker-count determinism both reduce
//! to this property.

use std::fmt::Write as _;

use xmap::{ScanConfig, ScanEngine, Scanner};
use xmap_addr::{IidClass, Ip6, Mac};
use xmap_appscan::{grab_with, GrabOutcome};
use xmap_loopscan::survey::LoopPeriphery;
use xmap_loopscan::{DepthSurvey, DepthSurveyResult};
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::services::ServiceKind;
use xmap_netsim::World;
use xmap_periphery::{
    decode_block, encode_block, AdaptiveCampaign as PeripheryAdaptive, AdaptiveConfig, BlockResult,
    Campaign, CampaignResult,
};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{Fingerprint, StateError};
use xmap_telemetry::{Snapshot, Telemetry};

/// A typed scan job: what a tenant submits to the daemon.
///
/// Each variant carries its own `seed` (scanner permutation / cookies)
/// and `world_seed` (netsim replica), so two tenants' jobs never share
/// entropy and a replayed job reproduces its original output exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// A periphery-discovery campaign over the fifteen sample blocks
    /// (paper Table II); one unit per block.
    PeripheryCampaign {
        /// Probes per block (slice of the sub-prefix space).
        targets_per_block: u64,
        /// Scanner seed.
        seed: u64,
        /// Netsim world seed.
        world_seed: u64,
        /// Mop-up pass delay in virtual ticks, if enabled.
        mop_up_ticks: Option<u64>,
        /// Per-block overrides of `targets_per_block` (block index →
        /// probes), for skewed campaigns. Part of the job identity: the
        /// override map changes unit outputs and unit costs.
        block_targets: Vec<(usize, u64)>,
    },
    /// A routing-loop depth survey over the sample blocks (paper
    /// Table XI); one unit per block.
    LoopscanSurvey {
        /// Probes per block.
        probes_per_block: u64,
        /// Scanner seed.
        seed: u64,
        /// Netsim world seed.
        world_seed: u64,
    },
    /// Application-layer service grabs (paper Table VI) against an
    /// explicit target list; one unit per address, each grabbing all
    /// eight known services.
    AppscanGrab {
        /// Target addresses, one unit each.
        targets: Vec<Ip6>,
        /// Scanner seed.
        seed: u64,
        /// Netsim world seed.
        world_seed: u64,
    },
    /// A density-guided adaptive periphery campaign (prefix-tree
    /// split/prune); one unit per sample block, each running the full
    /// adaptive loop within its probe budget.
    AdaptiveCampaign {
        /// Probe budget per block.
        probe_budget: u64,
        /// Restrict each block to its first `2^root_bits` sub-prefixes.
        root_bits: Option<u8>,
        /// Scanner seed.
        seed: u64,
        /// Netsim world seed.
        world_seed: u64,
    },
}

impl JobSpec {
    /// Stable kind label used in the control protocol and status output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            JobSpec::PeripheryCampaign { .. } => "periphery-campaign",
            JobSpec::LoopscanSurvey { .. } => "loopscan-survey",
            JobSpec::AppscanGrab { .. } => "appscan-grab",
            JobSpec::AdaptiveCampaign { .. } => "adaptive-campaign",
        }
    }

    /// Number of independent units this job decomposes into.
    pub fn units(&self) -> usize {
        match self {
            JobSpec::PeripheryCampaign { .. }
            | JobSpec::LoopscanSurvey { .. }
            | JobSpec::AdaptiveCampaign { .. } => SAMPLE_BLOCKS.len(),
            JobSpec::AppscanGrab { targets, .. } => targets.len(),
        }
    }

    /// Scheduling cost of one unit, in probes. The DRR dispatcher
    /// charges this against the job's deficit, so tenant budgets are
    /// denominated in probe volume, not unit count.
    pub fn unit_cost(&self, unit: usize) -> u64 {
        let _ = unit;
        match self {
            JobSpec::PeripheryCampaign {
                targets_per_block,
                block_targets,
                ..
            } => block_targets
                .iter()
                .find(|(idx, _)| *idx == unit)
                .map(|(_, n)| *n)
                .unwrap_or(*targets_per_block)
                .max(1),
            JobSpec::LoopscanSurvey {
                probes_per_block, ..
            } => (*probes_per_block).max(1),
            // Eight service grabs, a handful of packets each.
            JobSpec::AppscanGrab { .. } => ServiceKind::ALL.len() as u64,
            // The budget is the worst case; adaptive blocks usually
            // stop well short of it, so the charge is conservative.
            JobSpec::AdaptiveCampaign { probe_budget, .. } => (*probe_budget).max(1),
        }
    }

    /// The scanner seed.
    pub fn seed(&self) -> u64 {
        match self {
            JobSpec::PeripheryCampaign { seed, .. }
            | JobSpec::LoopscanSurvey { seed, .. }
            | JobSpec::AppscanGrab { seed, .. }
            | JobSpec::AdaptiveCampaign { seed, .. } => *seed,
        }
    }

    /// The netsim world seed.
    pub fn world_seed(&self) -> u64 {
        match self {
            JobSpec::PeripheryCampaign { world_seed, .. }
            | JobSpec::LoopscanSurvey { world_seed, .. }
            | JobSpec::AppscanGrab { world_seed, .. }
            | JobSpec::AdaptiveCampaign { world_seed, .. } => *world_seed,
        }
    }

    /// Serialises the spec into `e` (tag byte + fields).
    pub fn encode(&self, e: &mut Encoder) {
        match self {
            JobSpec::PeripheryCampaign {
                targets_per_block,
                seed,
                world_seed,
                mop_up_ticks,
                block_targets,
            } => {
                e.u8(1);
                e.u64(*targets_per_block);
                e.u64(*seed);
                e.u64(*world_seed);
                e.opt_u64(*mop_up_ticks);
                e.seq(block_targets.len());
                for (idx, n) in block_targets {
                    e.u64(*idx as u64);
                    e.u64(*n);
                }
            }
            JobSpec::LoopscanSurvey {
                probes_per_block,
                seed,
                world_seed,
            } => {
                e.u8(2);
                e.u64(*probes_per_block);
                e.u64(*seed);
                e.u64(*world_seed);
            }
            JobSpec::AppscanGrab {
                targets,
                seed,
                world_seed,
            } => {
                e.u8(3);
                e.seq(targets.len());
                for t in targets {
                    e.u128(t.bits());
                }
                e.u64(*seed);
                e.u64(*world_seed);
            }
            JobSpec::AdaptiveCampaign {
                probe_budget,
                root_bits,
                seed,
                world_seed,
            } => {
                e.u8(4);
                e.u64(*probe_budget);
                e.opt_u64(root_bits.map(u64::from));
                e.u64(*seed);
                e.u64(*world_seed);
            }
        }
    }

    /// Inverse of [`JobSpec::encode`].
    pub fn decode(d: &mut Decoder) -> Result<JobSpec, StateError> {
        match d.u8()? {
            1 => {
                let targets_per_block = d.u64()?;
                let seed = d.u64()?;
                let world_seed = d.u64()?;
                let mop_up_ticks = d.opt_u64()?;
                let n = d.seq()?;
                let mut block_targets = Vec::with_capacity(n);
                for _ in 0..n {
                    let idx = d.u64()?;
                    let idx = usize::try_from(idx).map_err(|_| {
                        StateError::Corrupt(format!("job spec: block index {idx} exceeds usize"))
                    })?;
                    block_targets.push((idx, d.u64()?));
                }
                Ok(JobSpec::PeripheryCampaign {
                    targets_per_block,
                    seed,
                    world_seed,
                    mop_up_ticks,
                    block_targets,
                })
            }
            2 => Ok(JobSpec::LoopscanSurvey {
                probes_per_block: d.u64()?,
                seed: d.u64()?,
                world_seed: d.u64()?,
            }),
            3 => {
                let n = d.seq()?;
                let mut targets = Vec::with_capacity(n);
                for _ in 0..n {
                    targets.push(Ip6::from(d.u128()?));
                }
                Ok(JobSpec::AppscanGrab {
                    targets,
                    seed: d.u64()?,
                    world_seed: d.u64()?,
                })
            }
            4 => {
                let probe_budget = d.u64()?;
                let root_bits = match d.opt_u64()? {
                    Some(b) => Some(u8::try_from(b).map_err(|_| {
                        StateError::Corrupt(format!("job spec: root_bits {b} exceeds u8"))
                    })?),
                    None => None,
                };
                Ok(JobSpec::AdaptiveCampaign {
                    probe_budget,
                    root_bits,
                    seed: d.u64()?,
                    world_seed: d.u64()?,
                })
            }
            tag => Err(StateError::Corrupt(format!(
                "job spec: unknown kind tag {tag}"
            ))),
        }
    }

    /// Identity fingerprint of the spec (FNV-1a over the encoded form).
    /// Stamped into every unit checkpoint so a checkpoint directory can
    /// never be resumed under a drifted spec.
    pub fn fingerprint(&self) -> u64 {
        let mut e = Encoder::new();
        self.encode(&mut e);
        let mut fp = Fingerprint::new();
        fp.push_str("xmap-serve/job");
        fp.push_bytes(&e.finish());
        fp.finish()
    }

    /// Runs one unit to completion on a fresh scanner + world replica,
    /// returning the unit's output and its telemetry delta (the whole
    /// registry of the fresh scanner).
    ///
    /// # Panics
    ///
    /// Panics if `unit >= self.units()`.
    pub fn run_unit(&self, unit: usize) -> (UnitOutput, Snapshot) {
        self.run_unit_with_engine(unit, ScanEngine::default())
    }

    /// [`run_unit`](Self::run_unit), but on an explicit scan engine.
    /// The engine is an execution strategy, not part of the job
    /// identity: both engines produce byte-identical unit outputs, so
    /// it is deliberately absent from the spec fingerprint and a daemon
    /// may switch engines between restarts of the same job.
    ///
    /// # Panics
    ///
    /// Panics if `unit >= self.units()`.
    pub fn run_unit_with_engine(&self, unit: usize, engine: ScanEngine) -> (UnitOutput, Snapshot) {
        assert!(unit < self.units(), "unit {unit} out of range");
        if let JobSpec::AdaptiveCampaign {
            probe_budget,
            root_bits,
            seed,
            world_seed,
        } = self
        {
            // The adaptive engine owns its replicas and telemetry: it
            // spawns a fresh world per round unit, so the daemon hands
            // it the whole block instead of a shared scanner.
            let adaptive = PeripheryAdaptive::new(AdaptiveConfig {
                probe_budget: *probe_budget,
                root_bits: *root_bits,
                ..AdaptiveConfig::default()
            });
            let base = ScanConfig {
                seed: *seed,
                engine,
                ..Default::default()
            };
            let ws = *world_seed;
            let (block, snapshot) = adaptive.run_single_block(unit, &base, |telemetry| {
                let mut world = World::new(ws);
                world.set_telemetry(telemetry);
                world
            });
            return (UnitOutput::Campaign(block), snapshot);
        }
        let telemetry = Telemetry::new();
        let mut world = World::new(self.world_seed());
        world.set_telemetry(&telemetry);
        let config = ScanConfig {
            seed: self.seed(),
            engine,
            ..Default::default()
        };
        let mut scanner = Scanner::with_telemetry(world, config, telemetry.clone());
        let out = match self {
            JobSpec::PeripheryCampaign {
                targets_per_block,
                mop_up_ticks,
                block_targets,
                ..
            } => {
                let mut campaign = Campaign::new(*targets_per_block);
                if !block_targets.is_empty() {
                    campaign = campaign.with_block_targets(block_targets.clone());
                }
                if let Some(ticks) = mop_up_ticks {
                    campaign = campaign.with_mop_up(*ticks);
                }
                UnitOutput::Campaign(campaign.run_block(&mut scanner, &SAMPLE_BLOCKS[unit]))
            }
            JobSpec::LoopscanSurvey {
                probes_per_block, ..
            } => {
                let survey = DepthSurvey::new(*probes_per_block);
                let mut result = DepthSurveyResult::default();
                survey.run_block(&mut scanner, &SAMPLE_BLOCKS[unit], &mut result);
                let profile_id = SAMPLE_BLOCKS[unit].id;
                UnitOutput::Loopscan {
                    profile_id,
                    probed: result
                        .probed_per_block
                        .get(&profile_id)
                        .copied()
                        .unwrap_or(0),
                    peripheries: result.peripheries,
                }
            }
            JobSpec::AppscanGrab { targets, .. } => {
                let addr = targets[unit];
                let mut outcomes = [0u8; 8];
                let mut scratch = Vec::new();
                for (i, kind) in ServiceKind::ALL.iter().enumerate() {
                    outcomes[i] = outcome_code(&grab_with(&mut scanner, addr, *kind, &mut scratch));
                }
                UnitOutput::Appscan { addr, outcomes }
            }
            JobSpec::AdaptiveCampaign { .. } => unreachable!("handled above"),
        };
        (out, telemetry.registry.snapshot())
    }

    /// Renders the job's final `result.csv` from its unit outputs, which
    /// must be in unit order and complete. Campaign jobs render through
    /// [`CampaignResult::to_csv`], so a daemon-run campaign is
    /// byte-comparable with `xmap-campaign` output for the same spec.
    ///
    /// # Panics
    ///
    /// Panics if an output's variant does not match the spec (unit
    /// checkpoints are fingerprint-guarded, so that indicates a bug).
    pub fn render_csv(&self, outputs: &[UnitOutput]) -> String {
        match self {
            JobSpec::PeripheryCampaign { .. } | JobSpec::AdaptiveCampaign { .. } => {
                let blocks: Vec<BlockResult> = outputs
                    .iter()
                    .map(|o| match o {
                        UnitOutput::Campaign(b) => b.clone(),
                        other => panic!("campaign job holds {} unit", other.kind_name()),
                    })
                    .collect();
                CampaignResult { blocks }.to_csv()
            }
            JobSpec::LoopscanSurvey { .. } => {
                let mut out = String::from("profile_id,address,asn,same64,iid_class,mac\n");
                for o in outputs {
                    let UnitOutput::Loopscan { peripheries, .. } = o else {
                        panic!("loopscan job holds {} unit", o.kind_name());
                    };
                    for p in peripheries {
                        let _ = writeln!(
                            out,
                            "{},{},{},{},{},{}",
                            p.profile_id,
                            p.address,
                            p.asn,
                            p.same64,
                            p.iid_class,
                            p.mac.map(|m| m.to_string()).unwrap_or_default(),
                        );
                    }
                }
                out
            }
            JobSpec::AppscanGrab { .. } => {
                let mut out = String::from("address,service,outcome\n");
                for o in outputs {
                    let UnitOutput::Appscan { addr, outcomes } = o else {
                        panic!("appscan job holds {} unit", o.kind_name());
                    };
                    for (i, kind) in ServiceKind::ALL.iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "{},{},{}",
                            addr,
                            kind.short_name().to_ascii_lowercase(),
                            outcome_label(outcomes[i]),
                        );
                    }
                }
                out
            }
        }
    }
}

/// The committed result of one finished unit.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitOutput {
    /// One campaign block (paper Table II row).
    Campaign(BlockResult),
    /// One depth-survey block (paper Table XI row).
    Loopscan {
        /// Block id the unit surveyed.
        profile_id: u8,
        /// Probes actually sent in the block.
        probed: u64,
        /// Vulnerable peripheries found in the block.
        peripheries: Vec<LoopPeriphery>,
    },
    /// One target address's eight service grabs.
    Appscan {
        /// The probed address.
        addr: Ip6,
        /// Per-service outcome codes in [`ServiceKind::ALL`] order (see
        /// [`outcome_code`]).
        outcomes: [u8; 8],
    },
}

impl UnitOutput {
    /// Stable kind label (matches [`JobSpec::kind_name`]).
    pub fn kind_name(&self) -> &'static str {
        match self {
            UnitOutput::Campaign(_) => "periphery-campaign",
            UnitOutput::Loopscan { .. } => "loopscan-survey",
            UnitOutput::Appscan { .. } => "appscan-grab",
        }
    }

    /// Serialises the output into `e` (tag byte + payload).
    pub fn encode(&self, e: &mut Encoder) {
        match self {
            UnitOutput::Campaign(block) => {
                e.u8(1);
                encode_block(e, block);
            }
            UnitOutput::Loopscan {
                profile_id,
                probed,
                peripheries,
            } => {
                e.u8(2);
                e.u8(*profile_id);
                e.u64(*probed);
                e.seq(peripheries.len());
                for p in peripheries {
                    e.u128(p.address.bits());
                    e.u8(p.profile_id);
                    e.u32(p.asn);
                    e.bool(p.same64);
                    e.u8(IidClass::ALL
                        .iter()
                        .position(|c| *c == p.iid_class)
                        .expect("every class is in ALL") as u8);
                    match p.mac {
                        Some(mac) => {
                            e.bool(true);
                            e.bytes(&mac.octets());
                        }
                        None => e.bool(false),
                    }
                }
            }
            UnitOutput::Appscan { addr, outcomes } => {
                e.u8(3);
                e.u128(addr.bits());
                e.bytes(outcomes);
            }
        }
    }

    /// Inverse of [`UnitOutput::encode`].
    pub fn decode(d: &mut Decoder) -> Result<UnitOutput, StateError> {
        match d.u8()? {
            1 => Ok(UnitOutput::Campaign(decode_block(d)?)),
            2 => {
                let profile_id = d.u8()?;
                let probed = d.u64()?;
                let n = d.seq()?;
                let mut peripheries = Vec::with_capacity(n);
                for _ in 0..n {
                    let address = Ip6::from(d.u128()?);
                    let profile_id = d.u8()?;
                    let asn = d.u32()?;
                    let same64 = d.bool()?;
                    let class_idx = d.u8()? as usize;
                    let iid_class = *IidClass::ALL.get(class_idx).ok_or_else(|| {
                        StateError::Corrupt(format!("loopscan unit: unknown IID class {class_idx}"))
                    })?;
                    let mac = if d.bool()? {
                        let octets = d.bytes()?;
                        let octets: [u8; 6] = octets.as_slice().try_into().map_err(|_| {
                            StateError::Corrupt(format!(
                                "loopscan unit: MAC must be 6 octets, found {}",
                                octets.len()
                            ))
                        })?;
                        Some(Mac::new(octets))
                    } else {
                        None
                    };
                    peripheries.push(LoopPeriphery {
                        address,
                        profile_id,
                        asn,
                        same64,
                        iid_class,
                        mac,
                    });
                }
                Ok(UnitOutput::Loopscan {
                    profile_id,
                    probed,
                    peripheries,
                })
            }
            3 => {
                let addr = Ip6::from(d.u128()?);
                let raw = d.bytes()?;
                let outcomes: [u8; 8] = raw.as_slice().try_into().map_err(|_| {
                    StateError::Corrupt(format!(
                        "appscan unit: expected 8 outcome codes, found {}",
                        raw.len()
                    ))
                })?;
                if let Some(bad) = outcomes.iter().find(|c| **c > 3) {
                    return Err(StateError::Corrupt(format!(
                        "appscan unit: unknown outcome code {bad}"
                    )));
                }
                Ok(UnitOutput::Appscan { addr, outcomes })
            }
            tag => Err(StateError::Corrupt(format!(
                "unit output: unknown kind tag {tag}"
            ))),
        }
    }
}

/// Compact code for one [`GrabOutcome`]: 0 silent, 1 closed, 2 protocol
/// mismatch, 3 open.
pub fn outcome_code(out: &GrabOutcome) -> u8 {
    match out {
        GrabOutcome::Silent => 0,
        GrabOutcome::Closed => 1,
        GrabOutcome::Protocol => 2,
        GrabOutcome::Open(_) => 3,
    }
}

/// CSV label for an [`outcome_code`] value.
pub fn outcome_label(code: u8) -> &'static str {
    match code {
        0 => "silent",
        1 => "closed",
        2 => "protocol",
        _ => "open",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_spec(spec: &JobSpec) {
        let mut e = Encoder::new();
        spec.encode(&mut e);
        let raw = e.finish();
        let mut d = Decoder::new(&raw, "job spec");
        let back = JobSpec::decode(&mut d).expect("decode");
        d.expect_end().expect("trailing bytes");
        assert_eq!(*spec, back);
    }

    #[test]
    fn spec_roundtrips() {
        roundtrip_spec(&JobSpec::PeripheryCampaign {
            targets_per_block: 4096,
            seed: 7,
            world_seed: 99,
            mop_up_ticks: Some(2048),
            block_targets: Vec::new(),
        });
        roundtrip_spec(&JobSpec::PeripheryCampaign {
            targets_per_block: 4096,
            seed: 7,
            world_seed: 99,
            mop_up_ticks: None,
            block_targets: vec![(2, 1 << 16), (0, 64)],
        });
        roundtrip_spec(&JobSpec::LoopscanSurvey {
            probes_per_block: 512,
            seed: 3,
            world_seed: 11,
        });
        roundtrip_spec(&JobSpec::AppscanGrab {
            targets: vec![Ip6::from(1u128), Ip6::from(0xdead_beefu128)],
            seed: 1,
            world_seed: 2,
        });
        roundtrip_spec(&JobSpec::AdaptiveCampaign {
            probe_budget: 2048,
            root_bits: Some(12),
            seed: 9,
            world_seed: 21,
        });
        roundtrip_spec(&JobSpec::AdaptiveCampaign {
            probe_budget: 1 << 16,
            root_bits: None,
            seed: 0,
            world_seed: 0,
        });
    }

    #[test]
    fn adaptive_units_are_pure_and_render_campaign_csv() {
        let spec = JobSpec::AdaptiveCampaign {
            probe_budget: 1 << 10,
            root_bits: Some(12),
            seed: 42,
            world_seed: 9,
        };
        assert_eq!(spec.units(), SAMPLE_BLOCKS.len());
        assert_eq!(spec.unit_cost(0), 1 << 10);
        let (a, da) = spec.run_unit(3);
        let (b, db) = spec.run_unit(3);
        assert_eq!(a, b);
        assert_eq!(da, db);
        let UnitOutput::Campaign(block) = &a else {
            panic!("adaptive unit must produce a campaign block");
        };
        assert!(block.probed <= 1 << 10, "budget respected");
        let csv = spec.render_csv(std::slice::from_ref(&a));
        assert!(csv.starts_with("profile_id,address,target"), "{csv}");
    }

    #[test]
    fn fingerprint_tracks_identity() {
        let a = JobSpec::LoopscanSurvey {
            probes_per_block: 512,
            seed: 3,
            world_seed: 11,
        };
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        if let JobSpec::LoopscanSurvey { seed, .. } = &mut b {
            *seed = 4;
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn unit_outputs_roundtrip() {
        let spec = JobSpec::LoopscanSurvey {
            probes_per_block: 256,
            seed: 5,
            world_seed: 17,
        };
        let (out, delta) = spec.run_unit(0);
        let mut e = Encoder::new();
        out.encode(&mut e);
        let raw = e.finish();
        let mut d = Decoder::new(&raw, "unit output");
        let back = UnitOutput::decode(&mut d).expect("decode");
        d.expect_end().expect("trailing bytes");
        assert_eq!(out, back);
        assert!(delta.counter(xmap::telemetry::names::SENT) > 0);
    }

    #[test]
    fn units_are_pure_functions_of_spec_and_index() {
        let spec = JobSpec::PeripheryCampaign {
            targets_per_block: 1 << 10,
            seed: 42,
            world_seed: 9,
            mop_up_ticks: None,
            block_targets: Vec::new(),
        };
        let (a, da) = spec.run_unit(3);
        let (b, db) = spec.run_unit(3);
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    /// A per-block override skews exactly its own unit: the overridden
    /// block runs (and is costed) at the override, every other unit is
    /// untouched, and the override is part of the job identity.
    #[test]
    fn block_target_overrides_are_per_unit() {
        let plain = JobSpec::PeripheryCampaign {
            targets_per_block: 1 << 10,
            seed: 42,
            world_seed: 9,
            mop_up_ticks: None,
            block_targets: Vec::new(),
        };
        let skewed = JobSpec::PeripheryCampaign {
            targets_per_block: 1 << 10,
            seed: 42,
            world_seed: 9,
            mop_up_ticks: None,
            block_targets: vec![(3, 1 << 11)],
        };
        assert_ne!(plain.fingerprint(), skewed.fingerprint());
        assert_eq!(skewed.unit_cost(3), 1 << 11);
        assert_eq!(skewed.unit_cost(2), 1 << 10);
        assert_eq!(plain.run_unit(2), skewed.run_unit(2));
        let bigger = JobSpec::PeripheryCampaign {
            targets_per_block: 1 << 11,
            seed: 42,
            world_seed: 9,
            mop_up_ticks: None,
            block_targets: Vec::new(),
        };
        assert_eq!(
            skewed.run_unit(3),
            bigger.run_unit(3),
            "overridden block must run exactly as if targets_per_block were the override"
        );
    }

    /// The engine knob must not change unit outputs: the reactor's
    /// byte-identity contract extends through every spec kind the
    /// daemon can execute.
    #[test]
    fn units_are_engine_independent() {
        let specs = [
            JobSpec::PeripheryCampaign {
                targets_per_block: 1 << 10,
                seed: 42,
                world_seed: 9,
                mop_up_ticks: Some(256),
                block_targets: vec![(2, 1 << 9)],
            },
            JobSpec::LoopscanSurvey {
                probes_per_block: 256,
                seed: 5,
                world_seed: 17,
            },
            JobSpec::AdaptiveCampaign {
                probe_budget: 1 << 10,
                root_bits: Some(12),
                seed: 42,
                world_seed: 9,
            },
        ];
        for spec in &specs {
            let (lock, lock_delta) = spec.run_unit_with_engine(2, ScanEngine::LockStep);
            let (reactor, reactor_delta) = spec.run_unit_with_engine(2, ScanEngine::Reactor);
            assert_eq!(lock, reactor, "unit output diverged for {spec:?}");
            assert_eq!(lock_delta, reactor_delta, "telemetry diverged for {spec:?}");
        }
    }

    #[test]
    fn appscan_units_and_csv() {
        let spec = JobSpec::AppscanGrab {
            targets: vec![Ip6::from(0x2001_0db8_u128 << 96 | 1)],
            seed: 7,
            world_seed: 7,
        };
        assert_eq!(spec.units(), 1);
        let (out, _) = spec.run_unit(0);
        let csv = spec.render_csv(std::slice::from_ref(&out));
        assert!(csv.starts_with("address,service,outcome\n"));
        // One line per service plus the header.
        assert_eq!(csv.lines().count(), 1 + ServiceKind::ALL.len());
    }
}
