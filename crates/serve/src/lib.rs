//! `xmap-serve`: a multi-tenant scan-campaign daemon.
//!
//! Every binary in this workspace is one-shot: it runs a campaign,
//! writes results, exits. This crate turns the same deterministic
//! executors into a *service* — a long-running daemon that accepts
//! typed scan jobs ([`JobSpec`]: periphery campaigns, loopscan depth
//! surveys, appscan service grabs), admits them under per-tenant
//! budgets, schedules their units fairly across one shared worker pool,
//! and survives being killed at any instant.
//!
//! # Architecture
//!
//! * [`job`] — the typed job enum. Each job decomposes into independent
//!   **units** (one sample block for campaigns and surveys, one target
//!   address for grabs). A unit runs on a fresh [`xmap::Scanner`] over a
//!   fresh seeded [`xmap_netsim::World`] replica, so its result is a pure
//!   function of `(spec, unit)` — the property every resume and fairness
//!   guarantee in this crate leans on.
//! * [`sched`] — admission control plus a two-level queue: per-job unit
//!   queues drained by a deficit-round-robin dispatcher, so one
//!   tenant's fifteen-block campaign cannot starve another's two-block
//!   job.
//! * [`ledger`] — the job ledger, an `xmap-state` WAL journaling
//!   submit/complete/cancel events; replaying it after a crash
//!   reconstructs exactly the set of live jobs.
//! * [`daemon`] — the engine: worker pool, per-job checkpoint
//!   directories (one `xmap-checkpoint/v1` file per finished unit),
//!   per-job telemetry [`Registry`](xmap_telemetry::Registry) instances
//!   merged via `Registry::absorb`/`Snapshot::diff`, and resume-on-open.
//! * [`proto`] — the control plane: newline-delimited JSON over a Unix
//!   domain socket (`submit` / `status` / `cancel` / `drain` / `ping`).
//!
//! # Crash-resume invariant
//!
//! A killed daemon restarted on the same `--root` resumes every
//! in-flight job and produces `result.csv` / `metrics.json` files
//! byte-identical to an uninterrupted run: the ledger names the live
//! jobs, finished units are re-read from their checkpoints, unfinished
//! units re-run deterministically, and final artifacts are rendered
//! from the checkpoint files in unit order — never from transient
//! in-memory state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod job;
pub mod ledger;
pub mod proto;
pub mod sched;

pub use daemon::{Daemon, DrainOutcome, JobStatus, ServeConfig};
pub use job::{JobSpec, UnitOutput};
pub use ledger::{Ledger, LedgerEvent};
pub use sched::{AdmissionPolicy, DrrScheduler};
