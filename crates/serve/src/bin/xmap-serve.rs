//! `xmap-serve` — the multi-tenant scan-campaign daemon and its
//! control client.
//!
//! ```text
//! xmap-serve daemon --root DIR --socket PATH [--workers N] [--quantum N]
//!                   [--max-per-tenant N] [--max-total N]
//!                   [--weight TENANT=W]... [-q]
//!
//! xmap-serve ctl --socket PATH ping
//! xmap-serve ctl --socket PATH submit --tenant T --type campaign
//!                   [--targets-per-block N] [--seed N] [--world-seed N]
//!                   [--mop-up TICKS]
//! xmap-serve ctl --socket PATH submit --tenant T --type loopscan
//!                   [--probes-per-block N] [--seed N] [--world-seed N]
//! xmap-serve ctl --socket PATH submit --tenant T --type appscan
//!                   --target ADDR [--target ADDR]... [--seed N] [--world-seed N]
//! xmap-serve ctl --socket PATH status|drain
//! xmap-serve ctl --socket PATH cancel --job N
//! ```
//!
//! The daemon runs until drained (`ctl drain`) or killed; a restart on
//! the same `--root` resumes every in-flight job. Exit codes: 0 drained
//! cleanly, 1 storage fault (state on disk stays resumable), 2 usage
//! error.

use std::process::ExitCode;

#[cfg(unix)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("daemon") => daemon_main(&args[1..]),
        Some("ctl") => ctl_main(&args[1..]),
        Some("-h") | Some("--help") => {
            print_help();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("xmap-serve: expected a `daemon` or `ctl` subcommand");
            print_help();
            ExitCode::from(2)
        }
    }
}

#[cfg(not(unix))]
fn main() -> ExitCode {
    eprintln!("xmap-serve: the control socket requires a Unix platform");
    ExitCode::from(2)
}

#[cfg(unix)]
fn print_help() {
    eprintln!(
        "usage:\n  xmap-serve daemon --root DIR --socket PATH [--workers N] [--quantum N]\n\
         \x20                 [--max-per-tenant N] [--max-total N] [--weight TENANT=W]... [-q]\n\
         \x20 xmap-serve ctl --socket PATH ping|status|drain\n\
         \x20 xmap-serve ctl --socket PATH submit --tenant T --type campaign|loopscan|appscan ...\n\
         \x20 xmap-serve ctl --socket PATH cancel --job N"
    );
}

#[cfg(unix)]
fn daemon_main(args: &[String]) -> ExitCode {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};

    use xmap_serve::daemon::{Daemon, ServeConfig};
    use xmap_serve::proto::socket;
    use xmap_serve::sched::AdmissionPolicy;

    let mut root: Option<PathBuf> = None;
    let mut sock: Option<PathBuf> = None;
    let mut cfg = ServeConfig::default();
    let mut quiet = false;
    let mut iter = args.iter().peekable();
    let result = (|| -> Result<(), String> {
        let value = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                     flag: &str|
         -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let int = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                   flag: &str|
         -> Result<u64, String> {
            value(iter, flag)?
                .parse()
                .map_err(|_| format!("{flag} must be an integer"))
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--root" => root = Some(PathBuf::from(value(&mut iter, arg)?)),
                "--socket" => sock = Some(PathBuf::from(value(&mut iter, arg)?)),
                "--workers" => cfg.workers = int(&mut iter, arg)?.max(1) as usize,
                "--quantum" => cfg.quantum = int(&mut iter, arg)?,
                "--max-per-tenant" => {
                    cfg.admission = AdmissionPolicy {
                        max_active_per_tenant: int(&mut iter, arg)? as usize,
                        ..cfg.admission
                    }
                }
                "--max-total" => {
                    cfg.admission = AdmissionPolicy {
                        max_active_total: int(&mut iter, arg)? as usize,
                        ..cfg.admission
                    }
                }
                "--weight" => {
                    let raw = value(&mut iter, arg)?;
                    let (tenant, w) = raw
                        .split_once('=')
                        .ok_or_else(|| format!("--weight expects TENANT=W, got {raw:?}"))?;
                    let w: u64 = w
                        .parse()
                        .map_err(|_| format!("--weight {raw:?}: weight must be an integer"))?;
                    cfg.tenant_weights.insert(tenant.to_owned(), w);
                }
                "--max-attempts" => cfg.max_attempts = int(&mut iter, arg)?.max(1) as u32,
                "-q" | "--quiet" => quiet = true,
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = result {
        eprintln!("xmap-serve daemon: {msg}");
        return ExitCode::from(2);
    }
    let (Some(root), Some(sock)) = (root, sock) else {
        eprintln!("xmap-serve daemon: --root and --socket are required");
        return ExitCode::from(2);
    };
    let daemon = match Daemon::open(&root, cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xmap-serve daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (jobs, units) = daemon.resumed();
    if !quiet {
        eprintln!(
            "# xmap-serve: root {} resumed {jobs} jobs ({units} units pending)",
            root.display()
        );
    }
    // A stale socket file from a killed daemon would fail the bind.
    let _ = std::fs::remove_file(&sock);
    let listener = match std::os::unix::net::UnixListener::bind(&sock) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("xmap-serve daemon: bind {}: {e}", sock.display());
            return ExitCode::FAILURE;
        }
    };
    let stopped = AtomicBool::new(false);
    let outcome = std::thread::scope(|scope| {
        let engine = scope.spawn(|| {
            let out = daemon.run();
            stopped.store(true, Ordering::Release);
            socket::poke(&sock);
            out
        });
        socket::serve(&daemon, &listener, &stopped);
        engine.join().expect("engine thread does not panic")
    });
    let _ = std::fs::remove_file(&sock);
    match outcome {
        Ok(drained) => {
            if !quiet {
                eprintln!(
                    "# xmap-serve: drained ({} jobs completed)",
                    drained.completed
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xmap-serve daemon: {e}");
            eprintln!(
                "# xmap-serve: state under {} remains resumable",
                root.display()
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn ctl_main(args: &[String]) -> ExitCode {
    use std::path::PathBuf;

    use xmap_serve::proto::socket;
    use xmap_state::json::{self, push_json_string, Value};

    let mut sock: Option<PathBuf> = None;
    let mut verb: Option<String> = None;
    let mut tenant = "default".to_owned();
    let mut kind: Option<String> = None;
    let mut targets_per_block = 1u64 << 12;
    let mut probes_per_block = 256u64;
    let mut targets: Vec<String> = Vec::new();
    let mut seed = 1u64;
    let mut world_seed = 0xDA7A_5EEDu64;
    let mut mop_up: Option<u64> = None;
    let mut job: Option<u64> = None;
    let mut iter = args.iter().peekable();
    let result = (|| -> Result<(), String> {
        let value = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                     flag: &str|
         -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let int = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                   flag: &str|
         -> Result<u64, String> {
            value(iter, flag)?
                .parse()
                .map_err(|_| format!("{flag} must be an integer"))
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--socket" => sock = Some(PathBuf::from(value(&mut iter, arg)?)),
                "ping" | "status" | "drain" | "submit" | "cancel" => {
                    if verb.is_some() {
                        return Err(format!("unexpected second command {arg:?}"));
                    }
                    verb = Some(arg.clone());
                }
                "--tenant" => tenant = value(&mut iter, arg)?,
                "--type" => kind = Some(value(&mut iter, arg)?),
                "--targets-per-block" => targets_per_block = int(&mut iter, arg)?,
                "--probes-per-block" => probes_per_block = int(&mut iter, arg)?,
                "--target" => targets.push(value(&mut iter, arg)?),
                "-s" | "--seed" => seed = int(&mut iter, arg)?,
                "--world-seed" => world_seed = int(&mut iter, arg)?,
                "--mop-up" => mop_up = Some(int(&mut iter, arg)?),
                "--job" => job = Some(int(&mut iter, arg)?),
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = result {
        eprintln!("xmap-serve ctl: {msg}");
        return ExitCode::from(2);
    }
    let Some(sock) = sock else {
        eprintln!("xmap-serve ctl: --socket is required");
        return ExitCode::from(2);
    };
    let Some(verb) = verb else {
        eprintln!("xmap-serve ctl: expected ping|status|drain|submit|cancel");
        return ExitCode::from(2);
    };
    let request = match verb.as_str() {
        "ping" => "{\"cmd\":\"ping\"}".to_owned(),
        "status" => "{\"cmd\":\"status\"}".to_owned(),
        "drain" => "{\"cmd\":\"drain\"}".to_owned(),
        "cancel" => {
            let Some(job) = job else {
                eprintln!("xmap-serve ctl: cancel requires --job N");
                return ExitCode::from(2);
            };
            format!("{{\"cmd\":\"cancel\",\"job\":{job}}}")
        }
        "submit" => {
            let spec = match kind.as_deref() {
                Some("campaign") => {
                    let mop = mop_up
                        .map(|t| format!(",\"mop_up_ticks\":{t}"))
                        .unwrap_or_default();
                    format!(
                        "{{\"type\":\"periphery-campaign\",\"targets_per_block\":{targets_per_block},\
                         \"seed\":{seed},\"world_seed\":{world_seed}{mop}}}"
                    )
                }
                Some("loopscan") => format!(
                    "{{\"type\":\"loopscan-survey\",\"probes_per_block\":{probes_per_block},\
                     \"seed\":{seed},\"world_seed\":{world_seed}}}"
                ),
                Some("appscan") => {
                    if targets.is_empty() {
                        eprintln!("xmap-serve ctl: appscan submit requires --target ADDR");
                        return ExitCode::from(2);
                    }
                    let mut list = String::new();
                    for (i, t) in targets.iter().enumerate() {
                        if i > 0 {
                            list.push(',');
                        }
                        push_json_string(&mut list, t);
                    }
                    format!(
                        "{{\"type\":\"appscan-grab\",\"targets\":[{list}],\
                         \"seed\":{seed},\"world_seed\":{world_seed}}}"
                    )
                }
                _ => {
                    eprintln!("xmap-serve ctl: submit requires --type campaign|loopscan|appscan");
                    return ExitCode::from(2);
                }
            };
            let mut req = String::from("{\"cmd\":\"submit\",\"tenant\":");
            push_json_string(&mut req, &tenant);
            req.push_str(",\"spec\":");
            req.push_str(&spec);
            req.push('}');
            req
        }
        _ => unreachable!("verb is validated above"),
    };
    let response = match socket::request(&sock, &request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xmap-serve ctl: {}: {e}", sock.display());
            return ExitCode::FAILURE;
        }
    };
    println!("{response}");
    match json::parse(&response, "daemon response")
        .ok()
        .and_then(|v| v.get("ok").and_then(Value::as_bool))
    {
        Some(true) => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}
