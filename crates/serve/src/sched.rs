//! Admission control and the two-level fair scheduler.
//!
//! The existing executors schedule *within* one campaign (block-level
//! work stealing); the daemon must schedule *across* campaigns owned by
//! different tenants. The shape here is a classic two-level queue:
//!
//! * level 1 — one FIFO of pending units per job (units run in index
//!   order within a job, which keeps resume bookkeeping trivial),
//! * level 2 — a deficit-round-robin (DRR) dispatcher over the jobs.
//!   Each round a job's deficit grows by `quantum × tenant weight`; the
//!   job dispatches units while its deficit covers their probe cost.
//!
//! DRR gives each tenant a long-run probe-volume share proportional to
//! its weight regardless of job sizes — a fifteen-block campaign and a
//! two-block job interleave instead of queueing, so the small job
//! finishes within ~2× of its solo runtime (asserted in the fairness
//! test below on a virtual clock).
//!
//! The scheduler is pure state-machine code: no clocks, no threads, no
//! I/O. Dispatch order is a deterministic function of the admitted job
//! set, which is half of the daemon's determinism story (the other half
//! being that units themselves are pure functions of `(spec, unit)`).

use std::collections::{BTreeMap, VecDeque};

/// Admission limits applied before a job enters the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Most jobs one tenant may have active (queued or running) at once.
    pub max_active_per_tenant: usize,
    /// Most jobs active across all tenants.
    pub max_active_total: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_active_per_tenant: 4,
            max_active_total: 16,
        }
    }
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant is at its active-job cap.
    TenantBusy {
        /// The refusing cap.
        limit: usize,
    },
    /// The daemon is at its global active-job cap.
    DaemonBusy {
        /// The refusing cap.
        limit: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TenantBusy { limit } => {
                write!(f, "tenant already has {limit} active jobs (the cap)")
            }
            AdmissionError::DaemonBusy { limit } => {
                write!(f, "daemon already has {limit} active jobs (the cap)")
            }
        }
    }
}

/// One job's pending-unit queue inside the dispatcher.
#[derive(Debug)]
struct JobQueue {
    job: u64,
    tenant: String,
    weight: u64,
    deficit: u64,
    /// Pending `(unit index, probe cost)` pairs, dispatched front-first.
    units: VecDeque<(usize, u64)>,
}

/// The deficit-round-robin dispatcher over admitted jobs.
///
/// `quantum` is the probe budget a weight-1 job accrues per round.
/// Jobs are visited in admission order; a job with enough deficit to
/// cover its head unit dispatches it (and keeps dispatching until the
/// deficit runs dry), then the cursor moves on.
#[derive(Debug)]
pub struct DrrScheduler {
    quantum: u64,
    jobs: Vec<JobQueue>,
    cursor: usize,
}

impl DrrScheduler {
    /// A dispatcher granting `quantum` probes per round per unit of
    /// tenant weight. Zero is clamped to 1.
    pub fn new(quantum: u64) -> Self {
        DrrScheduler {
            quantum: quantum.max(1),
            jobs: Vec::new(),
            cursor: 0,
        }
    }

    /// Admits a job with `units` pending `(index, cost)` pairs. Units
    /// dispatch in the given order.
    pub fn admit(
        &mut self,
        job: u64,
        tenant: &str,
        weight: u64,
        units: impl IntoIterator<Item = (usize, u64)>,
    ) {
        self.jobs.push(JobQueue {
            job,
            tenant: tenant.to_owned(),
            weight: weight.max(1),
            deficit: 0,
            units: units.into_iter().collect(),
        });
    }

    /// Removes a job (cancel or failure), dropping its pending units.
    pub fn remove(&mut self, job: u64) {
        if let Some(pos) = self.jobs.iter().position(|q| q.job == job) {
            self.jobs.remove(pos);
            if self.cursor > pos {
                self.cursor -= 1;
            }
        }
    }

    /// Puts a unit back at the *front* of its job's queue (a worker
    /// panicked mid-unit; the unit re-runs next). No deficit refund —
    /// the lost attempt's cost stays charged, which keeps misbehaving
    /// jobs from gaining share through failure.
    pub fn requeue(&mut self, job: u64, unit: usize, cost: u64) {
        if let Some(q) = self.jobs.iter_mut().find(|q| q.job == job) {
            q.units.push_front((unit, cost));
        }
    }

    /// Dispatches the next `(job, unit)` under DRR, or `None` when every
    /// queue is empty. Empty jobs stay admitted (their units may be
    /// requeued) but accrue no deficit.
    pub fn next_unit(&mut self) -> Option<(u64, usize)> {
        if self.total_pending() == 0 {
            return None;
        }
        loop {
            if self.jobs.is_empty() {
                return None;
            }
            self.cursor %= self.jobs.len();
            let q = &mut self.jobs[self.cursor];
            if q.units.is_empty() {
                self.cursor += 1;
                continue;
            }
            let (unit, cost) = *q.units.front().expect("non-empty queue");
            if q.deficit >= cost {
                q.deficit -= cost;
                q.units.pop_front();
                if q.units.is_empty() {
                    // A drained job must not bank leftover budget.
                    q.deficit = 0;
                }
                let job = q.job;
                return Some((job, unit));
            }
            q.deficit += self.quantum * q.weight;
            self.cursor += 1;
        }
    }

    /// Pending units for one job.
    pub fn depth(&self, job: u64) -> usize {
        self.jobs
            .iter()
            .find(|q| q.job == job)
            .map_or(0, |q| q.units.len())
    }

    /// Pending units across all jobs.
    pub fn total_pending(&self) -> usize {
        self.jobs.iter().map(|q| q.units.len()).sum()
    }

    /// Pending units per tenant (for status output).
    pub fn tenant_depths(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for q in &self.jobs {
            *out.entry(q.tenant.clone()).or_insert(0) += q.units.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit_uniform(sched: &mut DrrScheduler, job: u64, tenant: &str, units: usize, cost: u64) {
        sched.admit(job, tenant, 1, (0..units).map(|u| (u, cost)));
    }

    /// Simulates `workers` identical workers draining the scheduler on a
    /// virtual clock where a unit of cost `c` takes `c` ticks, returning
    /// each job's completion tick.
    fn simulate(
        sched: &mut DrrScheduler,
        workers: usize,
        costs: &BTreeMap<u64, u64>,
    ) -> BTreeMap<u64, u64> {
        let mut free_at = vec![0u64; workers];
        let mut done = BTreeMap::new();
        while let Some((job, _unit)) = sched.next_unit() {
            // Earliest-free worker takes the dispatch.
            let w = (0..workers)
                .min_by_key(|w| free_at[*w])
                .expect("workers > 0");
            free_at[w] += costs[&job];
            done.insert(job, free_at[w]);
        }
        done
    }

    #[test]
    fn small_job_is_not_starved_by_large_one() {
        // The acceptance fairness case: a 15-block campaign and a
        // 2-block job under equal tenant budgets. Solo, the small job
        // takes 2 cost-units of virtual time per worker; under DRR it
        // must finish within 2x that.
        let cost = 4096u64;
        for workers in [1usize, 2] {
            let mut sched = DrrScheduler::new(cost);
            admit_uniform(&mut sched, 1, "alice", 15, cost);
            admit_uniform(&mut sched, 2, "bob", 2, cost);
            let costs = BTreeMap::from([(1u64, cost), (2u64, cost)]);
            let done = simulate(&mut sched, workers, &costs);
            let solo = 2 * cost / workers as u64;
            assert!(
                done[&2] <= 2 * solo,
                "{workers} workers: small job finished at {} > 2x solo {}",
                done[&2],
                2 * solo
            );
            // The large job still completes.
            assert!(done.contains_key(&1));
        }
    }

    #[test]
    fn dispatch_order_is_deterministic() {
        let order = |quantum| {
            let mut sched = DrrScheduler::new(quantum);
            admit_uniform(&mut sched, 1, "a", 5, 100);
            admit_uniform(&mut sched, 2, "b", 3, 700);
            admit_uniform(&mut sched, 3, "a", 4, 50);
            let mut out = Vec::new();
            while let Some(d) = sched.next_unit() {
                out.push(d);
            }
            out
        };
        assert_eq!(order(256), order(256));
        // All units dispatch exactly once.
        assert_eq!(order(256).len(), 12);
    }

    #[test]
    fn weights_skew_share() {
        // Two equal jobs, one with triple weight: in the first rounds the
        // heavy job should dispatch ~3x the units of the light one.
        let mut sched = DrrScheduler::new(100);
        sched.admit(1, "heavy", 3, (0..30).map(|u| (u, 100)));
        sched.admit(2, "light", 1, (0..30).map(|u| (u, 100)));
        let mut first = Vec::new();
        for _ in 0..16 {
            first.push(sched.next_unit().expect("work pending").0);
        }
        let heavy = first.iter().filter(|j| **j == 1).count();
        let light = first.len() - heavy;
        assert!(
            heavy >= 2 * light,
            "heavy job got {heavy} of the first 16 dispatches vs {light}"
        );
    }

    #[test]
    fn requeue_runs_next_without_deficit_refund() {
        let mut sched = DrrScheduler::new(10);
        admit_uniform(&mut sched, 1, "a", 2, 10);
        let (job, unit) = sched.next_unit().expect("dispatch");
        assert_eq!((job, unit), (1, 0));
        sched.requeue(1, 0, 10);
        assert_eq!(sched.next_unit(), Some((1, 0)), "requeued unit runs first");
        assert_eq!(sched.next_unit(), Some((1, 1)));
        assert_eq!(sched.next_unit(), None);
    }

    #[test]
    fn remove_drops_pending_units() {
        let mut sched = DrrScheduler::new(10);
        admit_uniform(&mut sched, 1, "a", 3, 10);
        admit_uniform(&mut sched, 2, "b", 3, 10);
        let _ = sched.next_unit();
        sched.remove(1);
        assert_eq!(sched.depth(1), 0);
        let mut rest = Vec::new();
        while let Some((job, _)) = sched.next_unit() {
            rest.push(job);
        }
        assert!(rest.iter().all(|j| *j == 2));
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn tenant_depths_aggregate_jobs() {
        let mut sched = DrrScheduler::new(10);
        admit_uniform(&mut sched, 1, "a", 3, 10);
        admit_uniform(&mut sched, 2, "a", 2, 10);
        admit_uniform(&mut sched, 3, "b", 1, 10);
        let depths = sched.tenant_depths();
        assert_eq!(depths["a"], 5);
        assert_eq!(depths["b"], 1);
        assert_eq!(sched.total_pending(), 6);
    }
}
