//! MAC addresses and modified EUI-64 interface identifiers.

use std::fmt;
use std::str::FromStr;

use crate::error::{ErrorKind, ParseAddrError};

/// A 48-bit IEEE 802 MAC address.
///
/// Peripheries that autoconfigure with legacy SLAAC embed their MAC in the
/// interface identifier using the *modified EUI-64* transform (RFC 4291
/// App. A): the universal/local bit is flipped and `ff:fe` is inserted
/// between the OUI and the NIC-specific half. [`Mac::to_eui64`] and
/// [`Mac::from_eui64`] implement both directions; the latter is how the
/// paper recovers device vendors from discovered addresses.
///
/// # Examples
///
/// ```
/// use xmap_addr::Mac;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let mac: Mac = "00:1a:2b:3c:4d:5e".parse()?;
/// let iid = mac.to_eui64();
/// assert_eq!(Mac::from_eui64(iid), Some(mac));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mac([u8; 6]);

impl Mac {
    /// Creates a MAC from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        Mac(octets)
    }

    /// Creates a MAC from a 24-bit OUI and a 24-bit NIC-specific value.
    ///
    /// Only the low 24 bits of each argument are used.
    pub const fn from_oui_nic(oui: u32, nic: u32) -> Self {
        Mac([
            (oui >> 16) as u8,
            (oui >> 8) as u8,
            oui as u8,
            (nic >> 16) as u8,
            (nic >> 8) as u8,
            nic as u8,
        ])
    }

    /// The six octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// The 24-bit Organizationally Unique Identifier (vendor part).
    pub const fn oui(&self) -> u32 {
        ((self.0[0] as u32) << 16) | ((self.0[1] as u32) << 8) | self.0[2] as u32
    }

    /// The 24-bit NIC-specific part.
    pub const fn nic(&self) -> u32 {
        ((self.0[3] as u32) << 16) | ((self.0[4] as u32) << 8) | self.0[5] as u32
    }

    /// Whether the address is locally administered (U/L bit set).
    pub const fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Whether the address is multicast (I/G bit set).
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Converts to a modified EUI-64 interface identifier (RFC 4291 App. A):
    /// flips the universal/local bit and inserts `ff:fe` in the middle.
    pub const fn to_eui64(self) -> u64 {
        let o = self.0;
        ((o[0] ^ 0x02) as u64) << 56
            | (o[1] as u64) << 48
            | (o[2] as u64) << 40
            | 0xff << 32
            | 0xfe << 24
            | (o[3] as u64) << 16
            | (o[4] as u64) << 8
            | o[5] as u64
    }

    /// Recovers the MAC from a modified EUI-64 interface identifier, or
    /// `None` when `iid` does not carry the `ff:fe` marker octets.
    pub const fn from_eui64(iid: u64) -> Option<Mac> {
        if (iid >> 24) & 0xffff != 0xfffe {
            return None;
        }
        Some(Mac([
            ((iid >> 56) as u8) ^ 0x02,
            (iid >> 48) as u8,
            (iid >> 40) as u8,
            (iid >> 16) as u8,
            (iid >> 8) as u8,
            iid as u8,
        ]))
    }
}

impl FromStr for Mac {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut octets {
            let part = parts
                .next()
                .ok_or_else(|| ParseAddrError::new(ErrorKind::Mac, s))?;
            if part.len() != 2 {
                return Err(ParseAddrError::new(ErrorKind::Mac, s));
            }
            *slot =
                u8::from_str_radix(part, 16).map_err(|_| ParseAddrError::new(ErrorKind::Mac, s))?;
        }
        if parts.next().is_some() {
            return Err(ParseAddrError::new(ErrorKind::Mac, s));
        }
        Ok(Mac(octets))
    }
}

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        let mac: Mac = "00:1a:2b:3c:4d:5e".parse().unwrap();
        assert_eq!(mac.to_string(), "00:1a:2b:3c:4d:5e");
        assert_eq!(mac.octets(), [0x00, 0x1a, 0x2b, 0x3c, 0x4d, 0x5e]);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "00:1a:2b:3c:4d",
            "00:1a:2b:3c:4d:5e:6f",
            "0:1a:2b:3c:4d:5e",
            "zz:1a:2b:3c:4d:5e",
        ] {
            assert!(bad.parse::<Mac>().is_err(), "{bad}");
        }
    }

    #[test]
    fn eui64_rfc4291_example() {
        // RFC 4291 App A: MAC 34-56-78-9A-BC-DE -> IID 3656:78ff:fe9a:bcde.
        let mac: Mac = "34:56:78:9a:bc:de".parse().unwrap();
        assert_eq!(mac.to_eui64(), 0x3656_78ff_fe9a_bcde);
    }

    #[test]
    fn eui64_roundtrip() {
        let mac = Mac::from_oui_nic(0x001a2b, 0x3c4d5e);
        assert_eq!(Mac::from_eui64(mac.to_eui64()), Some(mac));
    }

    #[test]
    fn from_eui64_requires_fffe() {
        assert_eq!(Mac::from_eui64(0x0212_3400_0056_789a), None);
        assert!(Mac::from_eui64(0x0212_34ff_fe56_789a).is_some());
    }

    #[test]
    fn oui_and_nic_split() {
        let mac = Mac::from_oui_nic(0xaabbcc, 0x112233);
        assert_eq!(mac.oui(), 0xaabbcc);
        assert_eq!(mac.nic(), 0x112233);
    }

    #[test]
    fn flag_bits() {
        assert!(Mac::new([0x02, 0, 0, 0, 0, 0]).is_local());
        assert!(!Mac::new([0x00, 0, 0, 0, 0, 0]).is_local());
        assert!(Mac::new([0x01, 0, 0, 0, 0, 0]).is_multicast());
    }
}
