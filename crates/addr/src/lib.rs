//! IPv6 address primitives for network-periphery measurement.
//!
//! This crate provides the address-layer foundation shared by the whole
//! workspace:
//!
//! * [`Ip6`] — a `u128`-backed IPv6 address with cheap bit arithmetic,
//! * [`Prefix`] — a CIDR prefix with containment and sub-prefix iteration,
//! * [`ScanRange`] — an *arbitrary bit range* of the address space such as
//!   `2001:db8::/32-64` (the 2³² sub-prefixes between bit 32 and bit 64),
//!   which is the scanning unit of the XMap scanner,
//! * [`Mac`] / EUI-64 conversion and a static OUI→vendor registry,
//! * [`IidClass`] — interface-identifier classification following the
//!   `addr6` tool used in the paper (EUI-64, embed-IPv4, low-byte,
//!   byte-pattern, randomized).
//!
//! # Examples
//!
//! ```
//! use xmap_addr::{Ip6, Prefix, ScanRange};
//!
//! # fn main() -> Result<(), xmap_addr::ParseAddrError> {
//! let block: Prefix = "2001:db8::/32".parse()?;
//! let range: ScanRange = "2001:db8::/32-64".parse()?;
//! assert_eq!(range.space_bits(), 32);
//! assert!(block.contains(Ip6::from_segments([0x2001, 0xdb8, 1, 2, 3, 4, 5, 6])));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fxhash;
mod iid;
mod ip6;
mod mac;
pub mod oui;
mod prefix;
mod prefix_tree;
mod range;
mod slaac;

pub use error::ParseAddrError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use iid::{classify_iid, IidClass, IidHistogram};
pub use ip6::Ip6;
pub use mac::Mac;
pub use prefix::Prefix;
pub use prefix_tree::{NodeState, PrefixTree, TreeNode};
pub use range::ScanRange;
pub use slaac::{eui64_address, random_iid_address, stable_opaque_iid};
