//! A dependency-free Fx-style hasher for hot-path dedup sets.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 — a keyed PRF chosen
//! for HashDoS resistance, not speed. Scan-side dedup sets (responder
//! addresses, /64 prefixes, MACs) are keyed by values *we* derive from a
//! seeded simulation, so the adversarial-input defence buys nothing and
//! its per-insert cost is measurable once a campaign block collects
//! hundreds of thousands of responders.
//!
//! [`FxHasher`] is the multiply-fold hasher popularized by the Rust
//! compiler's `rustc-hash` crate: each 8-byte word of input is folded in
//! with an xor and a multiplication by a single odd 64-bit constant
//! (derived from the golden ratio, so the high bits — the ones hash maps
//! index with — mix well). It is not DoS-resistant and must not be used
//! for attacker-controlled keys.
//!
//! # Examples
//!
//! ```
//! use xmap_addr::{FxHashSet, Ip6};
//!
//! let mut seen: FxHashSet<Ip6> = FxHashSet::default();
//! assert!(seen.insert(Ip6::new(1)));
//! assert!(!seen.insert(Ip6::new(1)));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The golden-ratio multiplier (`2^64 / φ`, forced odd) — one odd
/// constant is all Fx needs for full-width avalanche of the high bits.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// How far to rotate the accumulator before each fold, so consecutive
/// small integers don't collide in the low bits.
const ROTATE: u32 = 5;

/// The Fx multiply-fold hasher. Fast, deterministic across runs and
/// platforms, **not** HashDoS-resistant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length byte keeps `[1]` and `[1, 0]` distinct.
            tail[7] = rest.len() as u8;
            self.fold(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_eq!(hash_of("periphery"), hash_of("periphery"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Consecutive integers — the common dedup workload — must spread.
        let hashes: std::collections::HashSet<u64> = (0u64..1024).map(hash_of).collect();
        assert_eq!(hashes.len(), 1024);
    }

    #[test]
    fn tail_bytes_are_length_prefixed() {
        assert_ne!(hash_of([1u8].as_slice()), hash_of([1u8, 0].as_slice()));
    }

    #[test]
    fn u128_folds_both_halves() {
        let low = hash_of(7u128);
        let high = hash_of(7u128 << 64);
        assert_ne!(low, high);
    }

    #[test]
    fn set_and_map_aliases_work() {
        let mut set: FxHashSet<crate::Ip6> = FxHashSet::default();
        assert!(set.insert(crate::Ip6::new(42)));
        assert!(set.contains(&crate::Ip6::new(42)));
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        map.insert(1, 2);
        assert_eq!(map.get(&1), Some(&2));
    }
}
