//! SLAAC-style address construction helpers.
//!
//! Peripheries form their 128-bit addresses by appending an interface
//! identifier to an assigned /64 prefix (RFC 4862). Three generators are
//! provided, matching the address populations the paper observes:
//!
//! * [`eui64_address`] — legacy SLAAC, MAC-derived (trackable; 7.6% of
//!   discovered peripheries),
//! * [`random_iid_address`] — fully random IIDs as produced by privacy
//!   extensions (RFC 4941) and most CPE stacks (75.5%),
//! * [`stable_opaque_iid`] — RFC 7217 semantically-opaque, *stable* IIDs:
//!   deterministic per (secret, prefix, interface), which the simulator uses
//!   so that repeated scans observe stable addresses.

use crate::ip6::Ip6;
use crate::mac::Mac;
use crate::prefix::Prefix;

/// Builds the SLAAC address `prefix64 + modified-EUI-64(mac)`.
///
/// # Panics
///
/// Panics if `prefix64` is longer than 64 bits (there would be no room for
/// the interface identifier).
///
/// # Examples
///
/// ```
/// use xmap_addr::{eui64_address, Mac, Prefix};
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let p: Prefix = "2001:db8:1:2::/64".parse()?;
/// let mac: Mac = "34:56:78:9a:bc:de".parse()?;
/// assert_eq!(eui64_address(p, mac).to_string(), "2001:db8:1:2:3656:78ff:fe9a:bcde");
/// # Ok(())
/// # }
/// ```
pub fn eui64_address(prefix64: Prefix, mac: Mac) -> Ip6 {
    assert!(
        prefix64.len() <= 64,
        "prefix /{} leaves no IID space",
        prefix64.len()
    );
    prefix64.addr().with_iid(mac.to_eui64())
}

/// Builds an address with the given 64-bit random IID under `prefix64`.
///
/// The caller supplies the randomness (typically from a seeded RNG) so that
/// simulations stay deterministic.
///
/// # Panics
///
/// Panics if `prefix64` is longer than 64 bits.
pub fn random_iid_address(prefix64: Prefix, iid: u64) -> Ip6 {
    assert!(
        prefix64.len() <= 64,
        "prefix /{} leaves no IID space",
        prefix64.len()
    );
    prefix64.addr().with_iid(iid)
}

/// RFC 7217-style stable opaque IID: a keyed hash of (secret, prefix,
/// interface index). Deterministic, stable across calls, and it never
/// collides with the modified-EUI-64 encoding (the `ff:fe` marker bytes are
/// remapped), so generated opaque addresses always classify as
/// `Randomized`/`Byte-pattern`, never as `Eui64`.
///
/// # Examples
///
/// ```
/// use xmap_addr::{stable_opaque_iid, Prefix};
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let p: Prefix = "2001:db8:1:2::/64".parse()?;
/// let a = stable_opaque_iid(0xdead_beef, p, 0);
/// let b = stable_opaque_iid(0xdead_beef, p, 0);
/// assert_eq!(a, b); // stable
/// # Ok(())
/// # }
/// ```
pub fn stable_opaque_iid(secret: u64, prefix64: Prefix, if_index: u32) -> u64 {
    let mut h = secret ^ 0x9e37_79b9_7f4a_7c15;
    h = mix(h ^ (prefix64.addr().bits() >> 64) as u64);
    h = mix(h ^ prefix64.addr().bits() as u64);
    h = mix(h ^ prefix64.len() as u64);
    h = mix(h ^ if_index as u64);
    // Avoid the modified-EUI-64 marker so opaque IIDs never parse as MACs.
    if (h >> 24) & 0xffff == 0xfffe {
        h ^= 1 << 24;
    }
    h
}

/// SplitMix64 finalizer — a full-avalanche 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iid::{classify_iid, IidClass};

    fn p64(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn eui64_address_matches_rfc_example() {
        let a = eui64_address(p64("2001:db8::/64"), "34:56:78:9a:bc:de".parse().unwrap());
        assert_eq!(a.to_string(), "2001:db8::3656:78ff:fe9a:bcde");
        assert_eq!(classify_iid(a), IidClass::Eui64);
    }

    #[test]
    #[should_panic(expected = "no IID space")]
    fn eui64_address_rejects_long_prefix() {
        eui64_address(p64("2001:db8::/80"), Mac::default());
    }

    #[test]
    fn random_iid_places_bits() {
        let a = random_iid_address(p64("2001:db8:1:2::/64"), 0xdead_beef_0000_0001);
        assert_eq!(a.to_string(), "2001:db8:1:2:dead:beef:0:1");
    }

    #[test]
    fn opaque_iid_is_stable_and_prefix_sensitive() {
        let p1 = p64("2001:db8:1:2::/64");
        let p2 = p64("2001:db8:1:3::/64");
        assert_eq!(stable_opaque_iid(42, p1, 0), stable_opaque_iid(42, p1, 0));
        assert_ne!(stable_opaque_iid(42, p1, 0), stable_opaque_iid(42, p2, 0));
        assert_ne!(stable_opaque_iid(42, p1, 0), stable_opaque_iid(42, p1, 1));
        assert_ne!(stable_opaque_iid(42, p1, 0), stable_opaque_iid(43, p1, 0));
    }

    #[test]
    fn opaque_iid_never_looks_like_eui64() {
        for secret in 0..64u64 {
            for idx in 0..16u32 {
                let iid = stable_opaque_iid(secret, p64("2001:db8::/64"), idx);
                assert_ne!((iid >> 24) & 0xffff, 0xfffe);
            }
        }
    }
}
