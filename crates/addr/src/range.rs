//! Arbitrary bit-range scan spaces — XMap's target notation.

use std::fmt;
use std::str::FromStr;

use crate::error::{ErrorKind, ParseAddrError};
use crate::ip6::Ip6;
use crate::prefix::Prefix;

/// A scan space addressing an arbitrary bit range of a prefix, written
/// `2001:db8::/32-64`.
///
/// This is the key generalization XMap makes over ZMap: ZMap can only permute
/// the *rear* segment of a 32-bit IPv4 address, while XMap permutes the bits
/// between `start_bit` and `end_bit` of any base prefix, leaving bits above
/// `start_bit` fixed and bits below `end_bit` to be filled by an IID
/// generator.
///
/// For the paper's periphery scans, `2001:db8::/32-64` enumerates all 2³²
/// /64 sub-prefixes of the ISP block `2001:db8::/32`; one probe is sent to a
/// (random-IID) address inside each.
///
/// A plain prefix string like `2001:db8::/32` parses as the range
/// `/32-64` when the prefix is shorter than 64 bits, and `/len-128`
/// otherwise, mirroring XMap's default of probing /64 subnets.
///
/// # Examples
///
/// ```
/// use xmap_addr::ScanRange;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let r: ScanRange = "2001:db8::/32-64".parse()?;
/// assert_eq!(r.space_size(), 1u128 << 32);
/// let target = r.nth(0x1234_5678).expect("in range");
/// assert_eq!(target.to_string(), "2001:db8:1234:5678::/64");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScanRange {
    base: Prefix,
    end_bit: u8,
}

impl ScanRange {
    /// Creates a scan range over the bits `base.len()..end_bit`.
    ///
    /// # Errors
    ///
    /// Fails when `end_bit` is not in `base.len()+1 ..= 128` or when the
    /// permuted space is wider than 64 bits (wider spaces are infeasible to
    /// enumerate and unsupported).
    pub fn new(base: Prefix, end_bit: u8) -> Result<Self, ParseAddrError> {
        let repr = format!("{base}-{end_bit}");
        if end_bit <= base.len() || end_bit > 128 {
            return Err(ParseAddrError::new(ErrorKind::BitRange, &repr));
        }
        if end_bit - base.len() > 64 {
            return Err(ParseAddrError::new(ErrorKind::BitRange, &repr));
        }
        Ok(ScanRange { base, end_bit })
    }

    /// The fixed base prefix (bits above `start_bit`).
    pub const fn base(&self) -> Prefix {
        self.base
    }

    /// First permuted bit position (== `base().len()`).
    pub const fn start_bit(&self) -> u8 {
        self.base.len()
    }

    /// One past the last permuted bit position.
    pub const fn end_bit(&self) -> u8 {
        self.end_bit
    }

    /// Number of permuted bits.
    pub const fn space_bits(&self) -> u8 {
        self.end_bit - self.base.len()
    }

    /// Number of enumerable targets, `2^space_bits()`.
    pub const fn space_size(&self) -> u128 {
        1u128 << self.space_bits()
    }

    /// The `index`-th target sub-prefix (of length `end_bit`), or `None` when
    /// `index >= space_size()`.
    pub fn nth(&self, index: u64) -> Option<Prefix> {
        if (index as u128) >= self.space_size() {
            return None;
        }
        Some(self.base.subprefix(self.end_bit, index as u128))
    }

    /// The index of the target sub-prefix containing `addr`, or `None` when
    /// `addr` lies outside the base prefix.
    pub fn index_of(&self, addr: Ip6) -> Option<u64> {
        self.base
            .subprefix_index(self.end_bit, addr)
            .map(|i| i as u64)
    }

    /// Restricts this range to a narrower sub-space: the `index`-th of
    /// `count` contiguous slices. Used to scale experiments down (DESIGN.md
    /// §1) and to split work across shards by space rather than by stride.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, not a power of two, larger than the space,
    /// or `index >= count`.
    pub fn slice(&self, index: u64, count: u64) -> ScanRange {
        assert!(
            count.is_power_of_two(),
            "slice count must be a power of two"
        );
        assert!(index < count, "slice index out of range");
        let slice_bits = count.trailing_zeros() as u8;
        assert!(
            slice_bits <= self.space_bits(),
            "slice count larger than space"
        );
        let new_base_len = self.base.len() + slice_bits;
        let base = self.base.subprefix(new_base_len, index as u128);
        ScanRange {
            base,
            end_bit: self.end_bit,
        }
    }
}

impl FromStr for ScanRange {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, rest) = s
            .split_once('/')
            .ok_or_else(|| ParseAddrError::new(ErrorKind::BitRange, s))?;
        // Dual-stack, like the real XMap: an IPv4 expression such as
        // `192.168.0.0/20-25` scans the corresponding bit range of the
        // v4-mapped space `::ffff:192.168.0.0/116-121`.
        if addr_part.contains('.') {
            let v4: std::net::Ipv4Addr = addr_part
                .parse()
                .map_err(|_| ParseAddrError::new(ErrorKind::Address, s))?;
            let mapped = Ip6::new(0xffff_0000_0000 | u32::from(v4) as u128);
            let (len_str, end_str) = match rest.split_once('-') {
                Some((l, e)) => (l, Some(e)),
                None => (rest, None),
            };
            let len: u8 = len_str
                .parse()
                .map_err(|_| ParseAddrError::new(ErrorKind::PrefixLen, s))?;
            if len > 32 {
                return Err(ParseAddrError::new(ErrorKind::PrefixLen, s));
            }
            let end: u8 = match end_str {
                Some(e) => {
                    let e: u8 = e
                        .parse()
                        .map_err(|_| ParseAddrError::new(ErrorKind::BitRange, s))?;
                    if e > 32 {
                        return Err(ParseAddrError::new(ErrorKind::BitRange, s));
                    }
                    e
                }
                None => 32,
            };
            let base = Prefix::new(mapped, 96 + len);
            return ScanRange::new(base, 96 + end)
                .map_err(|_| ParseAddrError::new(ErrorKind::BitRange, s));
        }
        let addr: Ip6 = addr_part.parse()?;
        let (len_str, end_str) = match rest.split_once('-') {
            Some((l, e)) => (l, Some(e)),
            None => (rest, None),
        };
        let len: u8 = len_str
            .parse()
            .map_err(|_| ParseAddrError::new(ErrorKind::PrefixLen, s))?;
        if len > 128 {
            return Err(ParseAddrError::new(ErrorKind::PrefixLen, s));
        }
        let base = Prefix::new(addr, len);
        let end_bit: u8 = match end_str {
            Some(e) => e
                .parse()
                .map_err(|_| ParseAddrError::new(ErrorKind::BitRange, s))?,
            // Default: probe /64 subnets, or single addresses for long bases.
            None => {
                if len < 64 {
                    64
                } else {
                    128
                }
            }
        };
        ScanRange::new(base, end_bit).map_err(|_| ParseAddrError::new(ErrorKind::BitRange, s))
    }
}

impl fmt::Display for ScanRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.base, self.end_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> ScanRange {
        s.parse().unwrap()
    }

    #[test]
    fn parse_explicit_range() {
        let sr = r("2001:db8::/32-64");
        assert_eq!(sr.start_bit(), 32);
        assert_eq!(sr.end_bit(), 64);
        assert_eq!(sr.space_bits(), 32);
        assert_eq!(sr.to_string(), "2001:db8::/32-64");
    }

    #[test]
    fn parse_default_end_bit() {
        assert_eq!(r("2001:db8::/32").end_bit(), 64);
        assert_eq!(r("2001:db8::/28").end_bit(), 64);
        assert_eq!(r("2001:db8:1:2:3::/80").end_bit(), 128);
    }

    #[test]
    fn rejects_invalid_ranges() {
        assert!("2001:db8::/64-32".parse::<ScanRange>().is_err());
        assert!("2001:db8::/32-32".parse::<ScanRange>().is_err());
        assert!("2001:db8::/32-129".parse::<ScanRange>().is_err());
        // wider than 64 permuted bits
        assert!("2001:db8::/32-128".parse::<ScanRange>().is_err());
        assert!("::/0-128".parse::<ScanRange>().is_err());
    }

    #[test]
    fn nth_and_index_roundtrip() {
        let sr = r("2001:db8::/32-64");
        let target = sr.nth(0xdead_beef).unwrap();
        assert_eq!(target.to_string(), "2001:db8:dead:beef::/64");
        assert_eq!(sr.index_of(target.addr()), Some(0xdead_beef));
        assert_eq!(sr.index_of(target.addr().with_iid(42)), Some(0xdead_beef));
        assert_eq!(sr.index_of("2001:db9::".parse().unwrap()), None);
        assert_eq!(sr.nth(u64::MAX), None);
    }

    #[test]
    fn mid_position_range() {
        // Permute bits 20..25 of 2001:d00::/20 — the example from Section IV-B.
        let base = Prefix::new("2001:d00::".parse().unwrap(), 20);
        let sr = ScanRange::new(base, 25).unwrap();
        assert_eq!(sr.space_size(), 32);
        let all: Vec<_> = (0..32).map(|i| sr.nth(i).unwrap()).collect();
        // All distinct and all inside the base.
        for w in all.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        for p in &all {
            assert!(base.covers(*p));
        }
    }

    #[test]
    fn slice_partitions_space() {
        let sr = r("2001:db8::/32-64");
        let s0 = sr.slice(0, 4);
        let s3 = sr.slice(3, 4);
        assert_eq!(s0.space_size(), sr.space_size() / 4);
        assert_eq!(s0.base().to_string(), "2001:db8::/34");
        assert_eq!(s3.base().to_string(), "2001:db8:c000::/34");
        assert_eq!(s0.end_bit(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn slice_rejects_non_power_of_two() {
        r("2001:db8::/32-64").slice(0, 3);
    }

    #[test]
    fn ipv4_expressions_map_into_v4mapped_space() {
        // The XMap paper's own example: 192.168.0.0/20-25.
        let sr = r("192.168.0.0/20-25");
        assert_eq!(sr.start_bit(), 116);
        assert_eq!(sr.end_bit(), 121);
        assert_eq!(sr.space_size(), 32);
        let first = sr.nth(0).unwrap();
        assert!(first.addr().to_string().contains("192.168.0.0"), "{first}");
        // A plain v4 prefix scans down to single addresses (/32 = bit 128).
        let hosts = r("10.0.0.0/24");
        assert_eq!(hosts.space_bits(), 8);
        assert_eq!(hosts.end_bit(), 128);
        let h5 = hosts.nth(5).unwrap();
        assert!(h5.addr().to_string().ends_with("10.0.0.5"), "{h5}");
    }

    #[test]
    fn ipv4_expressions_reject_bad_lengths() {
        assert!("10.0.0.0/33".parse::<ScanRange>().is_err());
        assert!("10.0.0.0/8-40".parse::<ScanRange>().is_err());
        assert!("10.0.0.999/8".parse::<ScanRange>().is_err());
    }
}
