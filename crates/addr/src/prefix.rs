//! CIDR prefixes.

use std::fmt;
use std::str::FromStr;

use crate::error::{ErrorKind, ParseAddrError};
use crate::ip6::{mask, Ip6};

/// An IPv6 CIDR prefix, e.g. `2001:db8::/32`.
///
/// The network address is always stored in canonical form (host bits zero).
///
/// # Examples
///
/// ```
/// use xmap_addr::{Ip6, Prefix};
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let p: Prefix = "2001:db8::/32".parse()?;
/// assert!(p.contains("2001:db8:ffff::1".parse::<Ip6>()?));
/// assert!(!p.contains("2001:db9::".parse::<Ip6>()?));
/// assert_eq!(p.len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Ip6,
    len: u8,
}

impl Prefix {
    /// The whole address space, `::/0`.
    pub const ALL: Prefix = Prefix {
        addr: Ip6::UNSPECIFIED,
        len: 0,
    };

    /// Creates a prefix, canonicalizing the address by zeroing host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    pub fn new(addr: Ip6, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} out of range");
        Prefix {
            addr: addr.network(len),
            len,
        }
    }

    /// Creates a prefix only if `addr` already has all host bits zero.
    pub fn new_strict(addr: Ip6, len: u8) -> Result<Self, ParseAddrError> {
        if len > 128 {
            return Err(ParseAddrError::new(ErrorKind::PrefixLen, &len.to_string()));
        }
        if addr.network(len) != addr {
            return Err(ParseAddrError::new(ErrorKind::HostBits, &addr.to_string()));
        }
        Ok(Prefix { addr, len })
    }

    /// The canonical network address.
    pub const fn addr(&self) -> Ip6 {
        self.addr
    }

    /// The prefix length in bits.
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// Whether this prefix covers the whole address space (`::/0`).
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ip6) -> bool {
        addr.bits() & mask(self.len) == self.addr.bits()
    }

    /// Tests whether `other` is fully contained in this prefix.
    pub fn covers(&self, other: Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The first address of the prefix (the network address).
    pub const fn first(&self) -> Ip6 {
        self.addr
    }

    /// The last address of the prefix.
    pub fn last(&self) -> Ip6 {
        Ip6::new(self.addr.bits() | !mask(self.len))
    }

    /// The number of `sub_len`-length sub-prefixes, or `None` when that count
    /// does not fit in a `u128` (only possible for `::/0` split into /128s...
    /// never in practice) or `sub_len < self.len`.
    pub fn subprefix_count(&self, sub_len: u8) -> Option<u128> {
        if sub_len < self.len || sub_len > 128 {
            return None;
        }
        let bits = sub_len - self.len;
        if bits >= 128 {
            None
        } else {
            Some(1u128 << bits)
        }
    }

    /// Returns the `index`-th sub-prefix of length `sub_len`.
    ///
    /// # Panics
    ///
    /// Panics if `sub_len` is not in `self.len()..=128` or `index` is out of
    /// range.
    pub fn subprefix(&self, sub_len: u8, index: u128) -> Prefix {
        let count = self
            .subprefix_count(sub_len)
            .unwrap_or_else(|| panic!("invalid sub-prefix length {sub_len} for /{}", self.len));
        assert!(
            index < count,
            "sub-prefix index {index} out of range (count {count})"
        );
        let shift = 128 - sub_len as u32;
        Prefix {
            addr: Ip6::new(self.addr.bits() | (index << shift)),
            len: sub_len,
        }
    }

    /// The index of `addr`'s enclosing `sub_len` sub-prefix within this prefix,
    /// or `None` if `addr` is outside the prefix.
    pub fn subprefix_index(&self, sub_len: u8, addr: Ip6) -> Option<u128> {
        if !self.contains(addr) || sub_len < self.len || sub_len > 128 {
            return None;
        }
        let shift = 128 - sub_len as u32;
        Some((addr.bits() & !mask(self.len)) >> shift)
    }

    /// Iterates over all `sub_len` sub-prefixes in address order.
    ///
    /// # Panics
    ///
    /// Panics if `sub_len` is not in `self.len()..=128`.
    pub fn subprefixes(&self, sub_len: u8) -> Subprefixes {
        let count = self
            .subprefix_count(sub_len)
            .unwrap_or_else(|| panic!("invalid sub-prefix length {sub_len} for /{}", self.len));
        Subprefixes {
            base: *self,
            sub_len,
            next: 0,
            count,
        }
    }
}

/// Iterator over the sub-prefixes of a [`Prefix`], created by
/// [`Prefix::subprefixes`].
#[derive(Debug, Clone)]
pub struct Subprefixes {
    base: Prefix,
    sub_len: u8,
    next: u128,
    count: u128,
}

impl Iterator for Subprefixes {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        if self.next >= self.count {
            return None;
        }
        let p = self.base.subprefix(self.sub_len, self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.count - self.next;
        if rem > usize::MAX as u128 {
            (usize::MAX, None)
        } else {
            (rem as usize, Some(rem as usize))
        }
    }
}

impl FromStr for Prefix {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = s
            .split_once('/')
            .ok_or_else(|| ParseAddrError::new(ErrorKind::PrefixLen, s))?;
        let addr: Ip6 = addr_part.parse()?;
        let len: u8 = len_part
            .parse()
            .map_err(|_| ParseAddrError::new(ErrorKind::PrefixLen, s))?;
        if len > 128 {
            return Err(ParseAddrError::new(ErrorKind::PrefixLen, s));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip6 {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "2001:db8::/32",
            "::/0",
            "2001:db8:1234:5678::/64",
            "ff00::/8",
        ] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_canonicalizes_host_bits() {
        assert_eq!(p("2001:db8::1/32"), p("2001:db8::/32"));
    }

    #[test]
    fn strict_rejects_host_bits() {
        assert!(Prefix::new_strict(a("2001:db8::1"), 32).is_err());
        assert!(Prefix::new_strict(a("2001:db8::"), 32).is_ok());
    }

    #[test]
    fn parse_rejects_bad_len() {
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("2001:db8::/x".parse::<Prefix>().is_err());
        assert!("2001:db8::".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment() {
        let block = p("2001:db8::/32");
        assert!(block.contains(a("2001:db8::")));
        assert!(block.contains(a("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff")));
        assert!(!block.contains(a("2001:db9::")));
        assert!(Prefix::ALL.contains(a("::")));
        assert!(Prefix::ALL.contains(a("ffff::")));
    }

    #[test]
    fn covers_relation() {
        assert!(p("2001:db8::/32").covers(p("2001:db8:1::/48")));
        assert!(p("2001:db8::/32").covers(p("2001:db8::/32")));
        assert!(!p("2001:db8:1::/48").covers(p("2001:db8::/32")));
        assert!(!p("2001:db8::/32").covers(p("2001:db9::/48")));
    }

    #[test]
    fn first_last() {
        let p64 = p("2001:db8:1:2::/64");
        assert_eq!(p64.first(), a("2001:db8:1:2::"));
        assert_eq!(p64.last(), a("2001:db8:1:2:ffff:ffff:ffff:ffff"));
    }

    #[test]
    fn subprefix_count_and_indexing() {
        let block = p("2001:db8::/32");
        assert_eq!(block.subprefix_count(64), Some(1u128 << 32));
        assert_eq!(block.subprefix_count(32), Some(1));
        assert_eq!(block.subprefix_count(16), None);
        let sp = block.subprefix(64, 0x1234_5678);
        assert_eq!(sp, p("2001:db8:1234:5678::/64"));
        assert_eq!(block.subprefix_index(64, sp.addr()), Some(0x1234_5678));
        assert_eq!(block.subprefix_index(64, a("2001:db9::")), None);
    }

    #[test]
    fn subprefixes_iterate_in_order() {
        let block = p("2001:db8::/62");
        let subs: Vec<_> = block.subprefixes(64).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], p("2001:db8::/64"));
        assert_eq!(subs[3], p("2001:db8:0:3::/64"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subprefix_index_bounds() {
        p("2001:db8::/32").subprefix(33, 2);
    }
}
