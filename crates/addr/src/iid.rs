//! Interface-identifier (IID) classification, following the `addr6` tool.
//!
//! The paper (Tables III, V and X) classifies each discovered 128-bit
//! address by the structure of its low 64 bits:
//!
//! * **EUI-64** — carries the `ff:fe` marker, i.e. embeds a MAC address,
//! * **Embed-IPv4** — embeds an IPv4 address (hex- or decimal-coded),
//! * **Low-byte** — a run of zeroes followed only by a low number,
//! * **Byte-pattern** — some other discernible repetition pattern,
//! * **Randomized** — none of the above (SLAAC privacy / opaque addresses).
//!
//! Classification is ordered: the first matching class wins, in the order
//! above, mirroring `addr6`'s precedence.

use std::fmt;

use crate::ip6::Ip6;
use crate::mac::Mac;

/// The structural class of an interface identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IidClass {
    /// Modified EUI-64 with an embedded MAC address.
    Eui64,
    /// An embedded IPv4 address.
    EmbedIpv4,
    /// A run of zeroes followed only by a low number.
    LowByte,
    /// A discernible repetition pattern.
    BytePattern,
    /// No detectable structure.
    Randomized,
}

impl IidClass {
    /// All classes in classification (and reporting) order.
    pub const ALL: [IidClass; 5] = [
        IidClass::Eui64,
        IidClass::EmbedIpv4,
        IidClass::LowByte,
        IidClass::BytePattern,
        IidClass::Randomized,
    ];
}

impl fmt::Display for IidClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IidClass::Eui64 => "EUI-64",
            IidClass::EmbedIpv4 => "Embed-IPv4",
            IidClass::LowByte => "Low-byte",
            IidClass::BytePattern => "Byte-pattern",
            IidClass::Randomized => "Randomized",
        };
        f.write_str(s)
    }
}

/// Classifies the interface identifier of `addr`.
///
/// # Examples
///
/// ```
/// use xmap_addr::{classify_iid, Ip6, IidClass};
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let eui: Ip6 = "2001:db8::0221:2fff:fe34:5678".parse()?;
/// assert_eq!(classify_iid(eui), IidClass::Eui64);
/// let low: Ip6 = "2001:db8::1".parse()?;
/// assert_eq!(classify_iid(low), IidClass::LowByte);
/// # Ok(())
/// # }
/// ```
pub fn classify_iid(addr: Ip6) -> IidClass {
    let iid = addr.iid();
    if Mac::from_eui64(iid).is_some() {
        return IidClass::Eui64;
    }
    if is_embed_ipv4(iid) {
        return IidClass::EmbedIpv4;
    }
    if is_low_byte(iid) {
        return IidClass::LowByte;
    }
    if is_byte_pattern(iid) {
        return IidClass::BytePattern;
    }
    IidClass::Randomized
}

/// Low-byte: the IID is zero except for its lowest 16 bits, and nonzero
/// (a zero IID is the subnet-router anycast address, treated as low-byte
/// too since it appears in manual configurations).
fn is_low_byte(iid: u64) -> bool {
    iid <= 0xffff
}

/// Embed-IPv4: either the high 32 bits are zero and the low 32 bits read as
/// a plausible dotted quad (hex-coded, e.g. `::c0a8:0101` = 192.168.1.1), or
/// each 16-bit group is a decimal-coded octet (e.g. `:0192:0168:0001:0001`).
fn is_embed_ipv4(iid: u64) -> bool {
    if iid >> 32 == 0 && iid > 0xffff {
        let octets = (iid as u32).to_be_bytes();
        // Require a non-degenerate first octet so `::1:2` style low values
        // don't all count; real embeddings start with a routable first octet.
        if octets[0] != 0 {
            return true;
        }
    }
    // Decimal-coded quad: every group, read as hex digits, is a decimal
    // number <= 255 (e.g. 0192:0168:0001:0001).
    let groups = [
        (iid >> 48) as u16,
        (iid >> 32) as u16,
        (iid >> 16) as u16,
        iid as u16,
    ];
    if groups
        .iter()
        .all(|g| decimal_value(*g).is_some_and(|v| v <= 255))
        && decimal_value(groups[0]).is_some_and(|v| v > 0)
        && iid > 0xffff
    {
        return true;
    }
    false
}

/// Reads a 16-bit group's hex digits as a decimal number (so 0x0192 → 192),
/// or `None` if any nibble is not a decimal digit.
fn decimal_value(group: u16) -> Option<u16> {
    let mut v: u16 = 0;
    for shift in [12u16, 8, 4, 0] {
        let nibble = (group >> shift) & 0xf;
        if nibble > 9 {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(nibble)?;
    }
    Some(v)
}

/// Byte-pattern: at most two distinct byte values, identical 16-bit groups,
/// or one nibble value covering at least 12 of the 16 nibbles.
fn is_byte_pattern(iid: u64) -> bool {
    let bytes = iid.to_be_bytes();
    let mut distinct: Vec<u8> = Vec::with_capacity(8);
    for b in bytes {
        if !distinct.contains(&b) {
            distinct.push(b);
        }
    }
    if distinct.len() <= 2 {
        return true;
    }
    let groups = [
        (iid >> 48) as u16,
        (iid >> 32) as u16,
        (iid >> 16) as u16,
        iid as u16,
    ];
    if groups.iter().all(|g| *g == groups[0]) {
        return true;
    }
    let mut nibble_counts = [0u8; 16];
    let mut v = iid;
    for _ in 0..16 {
        nibble_counts[(v & 0xf) as usize] += 1;
        v >>= 4;
    }
    nibble_counts.iter().any(|c| *c >= 12)
}

/// A histogram over [`IidClass`] used to render Tables III, V and X.
///
/// # Examples
///
/// ```
/// use xmap_addr::{IidClass, IidHistogram};
///
/// let mut h = IidHistogram::new();
/// h.add("2001:db8::1".parse()?);
/// h.add("2001:db8::0221:2fff:fe34:5678".parse()?);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.count(IidClass::Eui64), 1);
/// assert!((h.percent(IidClass::LowByte) - 50.0).abs() < 1e-9);
/// # Ok::<(), xmap_addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IidHistogram {
    counts: [u64; 5],
}

impl IidHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies `addr` and records it.
    pub fn add(&mut self, addr: Ip6) {
        self.record(classify_iid(addr));
    }

    /// Records an already-classified IID.
    pub fn record(&mut self, class: IidClass) {
        self.counts[Self::slot(class)] += 1;
    }

    /// Count recorded for `class`.
    pub fn count(&self, class: IidClass) -> u64 {
        self.counts[Self::slot(class)]
    }

    /// Total addresses recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage of the total in `class` (0 when empty).
    pub fn percent(&self, class: IidClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 * 100.0 / total as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &IidHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    fn slot(class: IidClass) -> usize {
        match class {
            IidClass::Eui64 => 0,
            IidClass::EmbedIpv4 => 1,
            IidClass::LowByte => 2,
            IidClass::BytePattern => 3,
            IidClass::Randomized => 4,
        }
    }
}

impl Extend<Ip6> for IidHistogram {
    fn extend<T: IntoIterator<Item = Ip6>>(&mut self, iter: T) {
        for a in iter {
            self.add(a);
        }
    }
}

impl FromIterator<Ip6> for IidHistogram {
    fn from_iter<T: IntoIterator<Item = Ip6>>(iter: T) -> Self {
        let mut h = IidHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(s: &str) -> IidClass {
        classify_iid(s.parse().unwrap())
    }

    #[test]
    fn eui64_detected() {
        assert_eq!(class("2001:db8::3656:78ff:fe9a:bcde"), IidClass::Eui64);
    }

    #[test]
    fn low_byte_detected() {
        assert_eq!(class("2001:db8::1"), IidClass::LowByte);
        assert_eq!(class("2001:db8::53"), IidClass::LowByte);
        assert_eq!(class("2001:db8::ffff"), IidClass::LowByte);
        assert_eq!(class("2001:db8::"), IidClass::LowByte);
    }

    #[test]
    fn embed_ipv4_hex_coded() {
        // 192.168.1.1 hex-coded in the low 32 bits.
        assert_eq!(class("2001:db8::c0a8:0101"), IidClass::EmbedIpv4);
        // 8.8.8.8
        assert_eq!(class("2001:db8::808:808"), IidClass::EmbedIpv4);
    }

    #[test]
    fn embed_ipv4_decimal_coded() {
        assert_eq!(class("2001:db8::192:168:1:1"), IidClass::EmbedIpv4);
        assert_eq!(class("2001:db8::10:0:0:138"), IidClass::EmbedIpv4);
    }

    #[test]
    fn byte_pattern_detected() {
        assert_eq!(
            class("2001:db8::dead:dead:dead:dead"),
            IidClass::BytePattern
        );
        assert_eq!(
            class("2001:db8::abab:abab:abab:abab"),
            IidClass::BytePattern
        );
        assert_eq!(
            class("2001:db8::1111:1111:1111:1234"),
            IidClass::BytePattern
        );
    }

    #[test]
    fn randomized_fallback() {
        assert_eq!(class("2001:db8::9c3a:71e2:b048:5d16"), IidClass::Randomized);
        assert_eq!(class("2001:db8::4f21:8a6c:d93e:07b5"), IidClass::Randomized);
    }

    #[test]
    fn eui64_wins_over_pattern() {
        // ff:fe marker always classifies as EUI-64, even with patterned MAC.
        assert_eq!(class("2001:db8::0200:00ff:fe00:0000"), IidClass::Eui64);
    }

    #[test]
    fn decimal_value_parsing() {
        assert_eq!(decimal_value(0x0192), Some(192));
        assert_eq!(decimal_value(0x0255), Some(255));
        assert_eq!(decimal_value(0x0a00), None);
        assert_eq!(decimal_value(0x9999), Some(9999));
    }

    #[test]
    fn histogram_counts_and_percentages() {
        let addrs: Vec<Ip6> = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            "2001:db8::3656:78ff:fe9a:bcde".parse().unwrap(),
            "2001:db8::9c3a:71e2:b048:5d16".parse().unwrap(),
        ];
        let h: IidHistogram = addrs.into_iter().collect();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(IidClass::LowByte), 2);
        assert_eq!(h.count(IidClass::Eui64), 1);
        assert_eq!(h.count(IidClass::Randomized), 1);
        assert!((h.percent(IidClass::LowByte) - 50.0).abs() < 1e-9);
        let empty = IidHistogram::new();
        assert_eq!(empty.percent(IidClass::Eui64), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = IidHistogram::new();
        a.record(IidClass::Eui64);
        let mut b = IidHistogram::new();
        b.record(IidClass::Eui64);
        b.record(IidClass::Randomized);
        a.merge(&b);
        assert_eq!(a.count(IidClass::Eui64), 2);
        assert_eq!(a.total(), 3);
    }
}
