//! Radix prefix tree with per-node responsiveness statistics.
//!
//! The adaptive target-generation engine models a scan block as a tree
//! of sub-prefixes. Each node tracks how many probes it has absorbed
//! and how many drew a periphery response; the engine *splits* nodes
//! whose hit density warrants finer-grained probing, *prunes* nodes
//! that stayed silent, and marks fully enumerated nodes *exhausted*.
//!
//! The tree itself is policy-free: it stores structure and statistics
//! and enforces two structural invariants that the engine's correctness
//! argument rests on:
//!
//! 1. **Coverage is a partition** — at any time the terminal nodes
//!    (active, pruned, exhausted) cover the root's leaf-target space
//!    exactly once ([`PrefixTree::coverage_is_partition`]).
//! 2. **A responsive node is never pruned** — [`PrefixTree::prune`]
//!    refuses nodes with recorded hits.

use crate::Prefix;

/// Lifecycle state of a [`PrefixTree`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// In the sampling frontier.
    Active,
    /// Replaced by its children; no longer sampled itself.
    Split,
    /// Dismissed as silent; its span is no longer probed.
    Pruned,
    /// Fully enumerated: every leaf target under it has been probed.
    Exhausted,
}

impl NodeState {
    /// All states in canonical (codec tag) order.
    pub const ALL: [NodeState; 4] = [
        NodeState::Active,
        NodeState::Split,
        NodeState::Pruned,
        NodeState::Exhausted,
    ];
}

/// One node of a [`PrefixTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// The sub-prefix this node spans.
    pub prefix: Prefix,
    /// Lifecycle state.
    pub state: NodeState,
    /// Probes sent into this node's span while it was active.
    pub probes: u64,
    /// Probes that drew a periphery response.
    pub hits: u64,
    /// Next unprobed position in the node's private sample permutation.
    pub cursor: u64,
    /// Children as a `(start, count)` range into the node vector, once
    /// split.
    pub children: Option<(u32, u32)>,
}

impl TreeNode {
    /// Hit density observed so far (0 when unprobed).
    pub fn density(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }
}

/// Radix tree over the sub-prefixes of one scan block.
///
/// Nodes live in a flat vector in creation order (children are appended
/// contiguously on split), which makes the structure cheap to snapshot
/// and byte-stable to rebuild. All mutation entry points take node
/// indices as returned by [`frontier`](Self::frontier) or
/// [`split`](Self::split).
///
/// # Examples
///
/// ```
/// use xmap_addr::{Prefix, PrefixTree};
///
/// let root: Prefix = "2001:db8::/48".parse().unwrap();
/// let mut tree = PrefixTree::new(root, 64, 4);
/// assert_eq!(tree.span(0), 1 << 16);
/// let children = tree.split(0).unwrap();
/// assert_eq!(children.len(), 16);
/// assert!(tree.coverage_is_partition());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixTree {
    root: Prefix,
    leaf_len: u8,
    branch_bits: u8,
    nodes: Vec<TreeNode>,
}

impl PrefixTree {
    /// A tree over `root` whose leaf targets are the `/leaf_len`
    /// sub-prefixes, splitting `branch_bits` bits at a time.
    ///
    /// # Panics
    ///
    /// Panics when `leaf_len` is not in `(root.len(), 128]`, the leaf
    /// space exceeds 2^64 targets, or `branch_bits` is not in `1..=8`.
    pub fn new(root: Prefix, leaf_len: u8, branch_bits: u8) -> Self {
        assert!(
            leaf_len > root.len() && leaf_len <= 128,
            "leaf length {leaf_len} must lie in ({}, 128]",
            root.len()
        );
        assert!(
            leaf_len - root.len() <= 64,
            "leaf space must fit in 64 bits"
        );
        assert!(
            (1..=8).contains(&branch_bits),
            "branch bits {branch_bits} must lie in 1..=8"
        );
        PrefixTree {
            root,
            leaf_len,
            branch_bits,
            nodes: vec![TreeNode {
                prefix: root,
                state: NodeState::Active,
                probes: 0,
                hits: 0,
                cursor: 0,
                children: None,
            }],
        }
    }

    /// Rebuilds a tree from a snapshot, validating every structural
    /// invariant the codec cannot express. Node order must be the
    /// original creation order.
    pub fn from_parts(
        root: Prefix,
        leaf_len: u8,
        branch_bits: u8,
        nodes: Vec<TreeNode>,
    ) -> Result<Self, String> {
        if !(leaf_len > root.len() && leaf_len <= 128 && leaf_len - root.len() <= 64) {
            return Err(format!("invalid leaf length {leaf_len} for root {root}"));
        }
        if !(1..=8).contains(&branch_bits) {
            return Err(format!("invalid branch bits {branch_bits}"));
        }
        match nodes.first() {
            Some(first) if first.prefix == root => {}
            _ => return Err("first node must be the root".to_owned()),
        }
        for (idx, node) in nodes.iter().enumerate() {
            if node.prefix.len() > leaf_len || !root.covers(node.prefix) {
                return Err(format!("node {idx} span {} escapes the tree", node.prefix));
            }
            match (node.state, node.children) {
                (NodeState::Split, Some((start, count))) => {
                    let child_len =
                        node.prefix.len() + branch_bits.min(leaf_len - node.prefix.len());
                    if count as u128 != node.prefix.subprefix_count(child_len).unwrap_or(0) {
                        return Err(format!("node {idx} has a partial child set"));
                    }
                    for k in 0..count {
                        let child = nodes
                            .get(start as usize + k as usize)
                            .ok_or_else(|| format!("node {idx} children out of bounds"))?;
                        if child.prefix != node.prefix.subprefix(child_len, k as u128) {
                            return Err(format!("node {idx} child {k} is misplaced"));
                        }
                    }
                }
                (NodeState::Split, None) => {
                    return Err(format!("split node {idx} has no children"));
                }
                (_, Some(_)) => {
                    return Err(format!("non-split node {idx} has children"));
                }
                (NodeState::Pruned, None) if node.hits > 0 => {
                    return Err(format!("node {idx} is pruned despite {} hits", node.hits));
                }
                _ => {}
            }
        }
        let tree = PrefixTree {
            root,
            leaf_len,
            branch_bits,
            nodes,
        };
        if !tree.coverage_is_partition() {
            return Err("terminal nodes do not partition the root".to_owned());
        }
        Ok(tree)
    }

    /// The block this tree spans.
    pub fn root(&self) -> Prefix {
        self.root
    }

    /// Length of the leaf target sub-prefixes.
    pub fn leaf_len(&self) -> u8 {
        self.leaf_len
    }

    /// Bits added per split level.
    pub fn branch_bits(&self) -> u8 {
        self.branch_bits
    }

    /// Number of nodes ever created.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (never true in practice: the root
    /// always exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `idx`.
    pub fn node(&self, idx: usize) -> &TreeNode {
        &self.nodes[idx]
    }

    /// All nodes in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = &TreeNode> {
        self.nodes.iter()
    }

    /// Number of leaf targets under node `idx`.
    pub fn span(&self, idx: usize) -> u128 {
        self.nodes[idx]
            .prefix
            .subprefix_count(self.leaf_len)
            .expect("node length never exceeds leaf length")
    }

    /// Indices of the active (sampling-frontier) nodes, in canonical
    /// prefix order — deterministic regardless of split history.
    pub fn frontier(&self) -> Vec<usize> {
        let mut f: Vec<usize> = (0..self.nodes.len())
            .filter(|i| self.nodes[*i].state == NodeState::Active)
            .collect();
        f.sort_by_key(|i| {
            (
                self.nodes[*i].prefix.addr().bits(),
                self.nodes[*i].prefix.len(),
            )
        });
        f
    }

    /// Whether node `idx` can be split further (is coarser than a leaf).
    pub fn can_split(&self, idx: usize) -> bool {
        self.nodes[idx].prefix.len() < self.leaf_len
    }

    /// Records `probes` samples (advancing the node's cursor) of which
    /// `hits` drew a response.
    ///
    /// # Panics
    ///
    /// Panics when the node is not active or `hits > probes`.
    pub fn record(&mut self, idx: usize, probes: u64, hits: u64) {
        let node = &mut self.nodes[idx];
        assert_eq!(node.state, NodeState::Active, "recording on settled node");
        assert!(hits <= probes, "more hits than probes");
        node.probes += probes;
        node.hits += hits;
        node.cursor += probes;
    }

    /// Splits active node `idx` into its children, returning their index
    /// range. The node keeps its statistics but leaves the frontier.
    ///
    /// Returns `None` when the node is already at leaf granularity.
    ///
    /// # Panics
    ///
    /// Panics when the node is not active.
    pub fn split(&mut self, idx: usize) -> Option<std::ops::Range<usize>> {
        assert_eq!(
            self.nodes[idx].state,
            NodeState::Active,
            "splitting a settled node"
        );
        if !self.can_split(idx) {
            return None;
        }
        let prefix = self.nodes[idx].prefix;
        let child_len = prefix.len() + self.branch_bits.min(self.leaf_len - prefix.len());
        let count = prefix
            .subprefix_count(child_len)
            .expect("child length is valid") as u32;
        let start = self.nodes.len();
        for k in 0..count {
            self.nodes.push(TreeNode {
                prefix: prefix.subprefix(child_len, k as u128),
                state: NodeState::Active,
                probes: 0,
                hits: 0,
                cursor: 0,
                children: None,
            });
        }
        let node = &mut self.nodes[idx];
        node.state = NodeState::Split;
        node.children = Some((start as u32, count));
        Some(start..start + count as usize)
    }

    /// Prunes active node `idx` out of the frontier. Refuses (returning
    /// `false`, leaving the node active) when the node has hits: a
    /// responsive sub-prefix is never pruned.
    ///
    /// # Panics
    ///
    /// Panics when the node is not active.
    pub fn prune(&mut self, idx: usize) -> bool {
        let node = &mut self.nodes[idx];
        assert_eq!(node.state, NodeState::Active, "pruning a settled node");
        if node.hits > 0 {
            return false;
        }
        node.state = NodeState::Pruned;
        true
    }

    /// Marks active node `idx` exhausted (fully enumerated).
    ///
    /// # Panics
    ///
    /// Panics when the node is not active.
    pub fn exhaust(&mut self, idx: usize) {
        let node = &mut self.nodes[idx];
        assert_eq!(node.state, NodeState::Active, "exhausting a settled node");
        node.state = NodeState::Exhausted;
    }

    /// Leaf targets under terminal nodes in the given state.
    fn span_in(&self, state: NodeState) -> u128 {
        (0..self.nodes.len())
            .filter(|i| self.nodes[*i].state == state)
            .map(|i| self.span(i))
            .sum()
    }

    /// Leaf targets still in the frontier.
    pub fn active_span(&self) -> u128 {
        self.span_in(NodeState::Active)
    }

    /// Leaf targets dismissed by pruning.
    pub fn pruned_span(&self) -> u128 {
        self.span_in(NodeState::Pruned)
    }

    /// Leaf targets fully enumerated.
    pub fn exhausted_span(&self) -> u128 {
        self.span_in(NodeState::Exhausted)
    }

    /// Verifies the coverage invariant: terminal (non-split) nodes
    /// partition the root's leaf space — they are pairwise disjoint and
    /// their spans sum to the root span.
    pub fn coverage_is_partition(&self) -> bool {
        // Split nodes delegate their span to children, so the terminal
        // spans must add up exactly; disjointness follows from the
        // construction (children subdivide the parent), which
        // `from_parts` re-validates on rebuild.
        let terminal: u128 = self.active_span() + self.pruned_span() + self.exhausted_span();
        terminal == self.span(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> PrefixTree {
        PrefixTree::new("2001:db8::/48".parse().unwrap(), 64, 4)
    }

    #[test]
    fn root_starts_active_and_partitioned() {
        let t = tree();
        assert_eq!(t.len(), 1);
        assert_eq!(t.frontier(), vec![0]);
        assert_eq!(t.span(0), 1 << 16);
        assert!(t.coverage_is_partition());
    }

    #[test]
    fn split_produces_ordered_children() {
        let mut t = tree();
        let kids = t.split(0).unwrap();
        assert_eq!(kids, 1..17);
        assert_eq!(t.node(0).state, NodeState::Split);
        for (k, idx) in kids.clone().enumerate() {
            assert_eq!(
                t.node(idx).prefix,
                t.root().subprefix(52, k as u128),
                "child {k}"
            );
        }
        assert!(t.coverage_is_partition());
        assert_eq!(t.frontier().len(), 16);
    }

    #[test]
    fn split_clamps_to_leaf_length() {
        let mut t = PrefixTree::new("2001:db8::/48".parse().unwrap(), 50, 4);
        let kids = t.split(0).unwrap();
        assert_eq!(kids.len(), 4, "only 2 bits remain before the leaves");
        for idx in kids {
            assert!(!t.can_split(idx));
            assert!(t.split(idx).is_none());
        }
    }

    #[test]
    fn responsive_node_is_never_pruned() {
        let mut t = tree();
        t.record(0, 16, 1);
        assert!(!t.prune(0), "a responsive node must refuse pruning");
        assert_eq!(t.node(0).state, NodeState::Active);
        let mut t = tree();
        t.record(0, 16, 0);
        assert!(t.prune(0));
        assert_eq!(t.node(0).state, NodeState::Pruned);
    }

    #[test]
    fn record_advances_cursor() {
        let mut t = tree();
        t.record(0, 8, 2);
        t.record(0, 8, 0);
        let n = t.node(0);
        assert_eq!((n.probes, n.hits, n.cursor), (16, 2, 16));
        assert!((n.density() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut t = tree();
        let kids = t.split(0).unwrap();
        let first = kids.start;
        t.record(first, 4, 0);
        assert!(t.prune(first));
        t.record(first + 1, 4, 2);
        t.exhaust(first + 1);
        let nodes: Vec<TreeNode> = t.nodes().cloned().collect();
        let back = PrefixTree::from_parts(t.root(), t.leaf_len(), t.branch_bits(), nodes).unwrap();
        assert_eq!(back, t);

        // Tampered child prefix is rejected.
        let mut bad: Vec<TreeNode> = t.nodes().cloned().collect();
        bad[first + 2].prefix = "2001:db9::/52".parse().unwrap();
        assert!(PrefixTree::from_parts(t.root(), 64, 4, bad).is_err());

        // A pruned-but-responsive node is rejected.
        let mut bad: Vec<TreeNode> = t.nodes().cloned().collect();
        bad[first].hits = 3;
        assert!(PrefixTree::from_parts(t.root(), 64, 4, bad).is_err());
    }

    #[test]
    fn span_accounting_tracks_states() {
        let mut t = tree();
        let kids = t.split(0).unwrap();
        let per_child = 1u128 << 12;
        assert_eq!(t.active_span(), 16 * per_child);
        assert!(t.prune(kids.start));
        t.exhaust(kids.start + 1);
        assert_eq!(t.pruned_span(), per_child);
        assert_eq!(t.exhausted_span(), per_child);
        assert_eq!(t.active_span(), 14 * per_child);
        assert!(t.coverage_is_partition());
    }
}
