//! Static OUI → vendor registry.
//!
//! The paper resolves device vendors by looking up the OUI embedded in
//! EUI-64 interface identifiers against the IEEE Registration Authority
//! database. That database is not available offline, so this module embeds a
//! snapshot covering every vendor the paper names (Tables IV and XII,
//! Figures 2, 3 and 6) plus the device class each vendor ships
//! (customer-premises equipment vs. user equipment).
//!
//! The simulator assigns MACs out of the same table, so lookups on simulated
//! scans behave exactly like IEEE lookups on real scans.

use crate::mac::Mac;

/// The device class a vendor predominantly ships at the IPv6 periphery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Customer-premises edge — home routers and gateways.
    Cpe,
    /// User equipment — smartphones and cellular devices.
    Ue,
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceClass::Cpe => f.write_str("CPE"),
            DeviceClass::Ue => f.write_str("UE"),
        }
    }
}

/// One registry entry: a 24-bit OUI, the organization name and device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuiEntry {
    /// 24-bit organizationally unique identifier.
    pub oui: u32,
    /// Organization (vendor) name as the paper reports it.
    pub vendor: &'static str,
    /// Predominant device class.
    pub class: DeviceClass,
}

/// Embedded OUI snapshot. Sorted by `oui` for binary search; every vendor the
/// paper names is present. One vendor may own several OUIs (as in the real
/// registry); the table keeps one per vendor plus extras for the largest.
pub const OUI_TABLE: &[OuiEntry] = &[
    // Keep sorted by `oui`.
    OuiEntry {
        oui: 0x00037F,
        vendor: "Technicolor",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x000C43,
        vendor: "MikroTik",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x000FE2,
        vendor: "H3C",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x001018,
        vendor: "Hitron Tech",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x0014BF,
        vendor: "Linksys",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x001882,
        vendor: "Huawei",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x001D0F,
        vendor: "TP-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x002275,
        vendor: "Belkin",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x00248C,
        vendor: "Asus",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x0024D2,
        vendor: "StarNet",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x0025F1,
        vendor: "ARRIS",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x04BD70,
        vendor: "China Mobile",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x081077,
        vendor: "Fiberhome",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x0C8063,
        vendor: "Tenda",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x105F06,
        vendor: "Skyworth",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x14CC20,
        vendor: "TP-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x1C1D67,
        vendor: "Huawei",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x203DB2,
        vendor: "Mercury",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x20E52A,
        vendor: "Netgear",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x2C9D1E,
        vendor: "China Unicom",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x30B5C2,
        vendor: "TP-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x3460F9,
        vendor: "Fiberhome",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x38E1AA,
        vendor: "ZTE",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x3C9872,
        vendor: "Youhua Tech",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x40A5EF,
        vendor: "Shenzhen",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x446EE5,
        vendor: "HMD Global",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x48BF74,
        vendor: "NTMore",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x4C6E6E,
        vendor: "Optilink",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x506255,
        vendor: "D-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x546CEB,
        vendor: "Vivo",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x58C876,
        vendor: "China Telecom",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x5C63BF,
        vendor: "TP-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x60427F,
        vendor: "Skyworth",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x640980,
        vendor: "Xiaomi",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x68DBF5,
        vendor: "AVM GmbH",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x6C5AB5,
        vendor: "ZTE",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x70F96D,
        vendor: "China Mobile",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x744D28,
        vendor: "MikroTik",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x78DD12,
        vendor: "Oppo",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x7C2664,
        vendor: "Samsung",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x80E650,
        vendor: "Apple",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x847060,
        vendor: "Nokia",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x88E9FE,
        vendor: "Totolink",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x8C53C3,
        vendor: "LG",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x903CB3,
        vendor: "FAST",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x94D9B3,
        vendor: "Hisense",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0x98DAC4,
        vendor: "Motorola",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0x9C216A,
        vendor: "iKuai",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xA0AB1B,
        vendor: "Lenovo",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0xA47733,
        vendor: "OpenWrt",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xA85E45,
        vendor: "Nubia",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0xAC8467,
        vendor: "Xfinity",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xB07FB9,
        vendor: "OnePlus",
        class: DeviceClass::Ue,
    },
    OuiEntry {
        oui: 0xB4B024,
        vendor: "ZTE",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xB8F883,
        vendor: "China Mobile",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xBC4699,
        vendor: "Youhua Tech",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xC09F05,
        vendor: "Skyworth",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xC4E90A,
        vendor: "D-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xC83A35,
        vendor: "Tenda",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xCC2D83,
        vendor: "China Unicom",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xD0608C,
        vendor: "Fiberhome",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xD4EE07,
        vendor: "StarNet",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xD8C771,
        vendor: "Huawei",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xDC028E,
        vendor: "ZTE",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xE01954,
        vendor: "China Mobile",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xE4BD4B,
        vendor: "ZTE",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xE8CC18,
        vendor: "D-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xECF00E,
        vendor: "Netgear",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xF0B429,
        vendor: "Xiaomi",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xF42981,
        vendor: "AVM GmbH",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xF8D111,
        vendor: "TP-Link",
        class: DeviceClass::Cpe,
    },
    OuiEntry {
        oui: 0xFC3719,
        vendor: "Samsung",
        class: DeviceClass::Ue,
    },
];

/// Looks up a registry entry by 24-bit OUI.
///
/// # Examples
///
/// ```
/// use xmap_addr::oui;
///
/// let entry = oui::lookup_oui(0x38E1AA).expect("known OUI");
/// assert_eq!(entry.vendor, "ZTE");
/// ```
pub fn lookup_oui(oui: u32) -> Option<&'static OuiEntry> {
    OUI_TABLE
        .binary_search_by_key(&oui, |e| e.oui)
        .ok()
        .map(|i| &OUI_TABLE[i])
}

/// Looks up the vendor entry for a MAC address.
pub fn lookup_mac(mac: Mac) -> Option<&'static OuiEntry> {
    lookup_oui(mac.oui())
}

/// All OUIs registered to `vendor` (case-sensitive exact match).
pub fn ouis_of(vendor: &str) -> impl Iterator<Item = u32> + '_ {
    OUI_TABLE
        .iter()
        .filter(move |e| e.vendor == vendor)
        .map(|e| e.oui)
}

/// The device class a vendor ships, or `None` for unknown vendors.
pub fn class_of(vendor: &str) -> Option<DeviceClass> {
    OUI_TABLE
        .iter()
        .find(|e| e.vendor == vendor)
        .map(|e| e.class)
}

/// Distinct vendor names of a device class, in table order.
pub fn vendors(class: DeviceClass) -> Vec<&'static str> {
    let mut out = Vec::new();
    for e in OUI_TABLE {
        if e.class == class && !out.contains(&e.vendor) {
            out.push(e.vendor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for w in OUI_TABLE.windows(2) {
            assert!(
                w[0].oui < w[1].oui,
                "table not strictly sorted at {:06x}",
                w[1].oui
            );
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert_eq!(lookup_oui(0x38E1AA).unwrap().vendor, "ZTE");
        assert_eq!(lookup_oui(0x000000), None);
        assert_eq!(lookup_oui(0xFFFFFF), None);
    }

    #[test]
    fn lookup_by_mac() {
        let mac = Mac::from_oui_nic(0x640980, 0x123456);
        assert_eq!(lookup_mac(mac).unwrap().vendor, "Xiaomi");
    }

    #[test]
    fn paper_vendors_present() {
        // Every vendor named in Table IV and Table XII must resolve.
        for v in [
            "China Mobile",
            "ZTE",
            "Skyworth",
            "Fiberhome",
            "Youhua Tech",
            "China Unicom",
            "AVM GmbH",
            "Technicolor",
            "Huawei",
            "StarNet",
            "TP-Link",
            "D-Link",
            "Xiaomi",
            "Hitron Tech",
            "Netgear",
            "Linksys",
            "Asus",
            "Optilink",
            "Tenda",
            "MikroTik",
            "NTMore",
            "HMD Global",
            "Vivo",
            "Oppo",
            "Apple",
            "Samsung",
            "Nokia",
            "LG",
            "Motorola",
            "Lenovo",
            "Nubia",
            "OnePlus",
            "Totolink",
            "FAST",
            "H3C",
            "Hisense",
            "iKuai",
            "Mercury",
            "OpenWrt",
        ] {
            assert!(
                ouis_of(v).next().is_some(),
                "vendor {v} missing from OUI table"
            );
        }
    }

    #[test]
    fn vendor_classes_partition() {
        let cpe = vendors(DeviceClass::Cpe);
        let ue = vendors(DeviceClass::Ue);
        assert!(cpe.contains(&"TP-Link"));
        assert!(ue.contains(&"Apple"));
        for v in &ue {
            assert!(!cpe.contains(v), "vendor {v} in both classes");
        }
    }

    #[test]
    fn multi_oui_vendor() {
        assert!(ouis_of("ZTE").count() >= 3);
        assert!(ouis_of("TP-Link").count() >= 3);
    }
}
