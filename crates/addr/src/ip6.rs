//! A `u128`-backed IPv6 address.

use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

use crate::error::{ErrorKind, ParseAddrError};

/// An IPv6 address stored as a big-endian `u128`.
///
/// Unlike [`std::net::Ipv6Addr`], `Ip6` exposes the raw integer so that
/// prefix arithmetic, bit-range permutation and procedural generation are
/// single integer operations. Conversions to and from the standard type are
/// free.
///
/// # Examples
///
/// ```
/// use xmap_addr::Ip6;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let a: Ip6 = "2001:db8::1".parse()?;
/// assert_eq!(a.bits() >> 96, 0x2001_0db8);
/// assert_eq!(a.to_string(), "2001:db8::1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip6(u128);

impl Ip6 {
    /// The unspecified address `::`.
    pub const UNSPECIFIED: Ip6 = Ip6(0);

    /// Creates an address from its 128-bit big-endian integer value.
    pub const fn new(bits: u128) -> Self {
        Ip6(bits)
    }

    /// Creates an address from eight 16-bit segments, most significant first.
    pub const fn from_segments(seg: [u16; 8]) -> Self {
        let mut bits: u128 = 0;
        let mut i = 0;
        while i < 8 {
            bits = (bits << 16) | seg[i] as u128;
            i += 1;
        }
        Ip6(bits)
    }

    /// Returns the address as a 128-bit big-endian integer.
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Returns the eight 16-bit segments, most significant first.
    pub const fn segments(self) -> [u16; 8] {
        let b = self.0;
        [
            (b >> 112) as u16,
            (b >> 96) as u16,
            (b >> 80) as u16,
            (b >> 64) as u16,
            (b >> 48) as u16,
            (b >> 32) as u16,
            (b >> 16) as u16,
            b as u16,
        ]
    }

    /// Returns the 16 raw octets in network byte order.
    pub const fn octets(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Returns the low 64 bits — the interface identifier (IID) when the
    /// address sits in a /64 subnet.
    pub const fn iid(self) -> u64 {
        self.0 as u64
    }

    /// Returns the high 64 bits — the /64 subnet prefix value.
    pub const fn subnet64(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// Replaces the low 64 bits with `iid`.
    #[must_use]
    pub const fn with_iid(self, iid: u64) -> Self {
        Ip6((self.0 & !(u64::MAX as u128)) | iid as u128)
    }

    /// Returns the address with everything below `prefix_len` bits zeroed.
    ///
    /// `network(0)` is `::`; `network(128)` is the address itself.
    #[must_use]
    pub const fn network(self, prefix_len: u8) -> Self {
        Ip6(self.0 & mask(prefix_len))
    }

    /// Extracts the value of the bit slice `[start, end)` counted from the
    /// most significant bit (bit 0), as used in scan-range notation.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`, `end > 128`, or the slice is wider than 64
    /// bits.
    pub fn bit_slice(self, start: u8, end: u8) -> u64 {
        assert!(start < end && end <= 128, "invalid bit slice {start}-{end}");
        let width = end - start;
        assert!(width <= 64, "bit slice wider than 64 bits");
        let shifted = self.0 >> (128 - end as u32);
        (shifted as u64) & width_mask(width)
    }

    /// Returns the address with the bit slice `[start, end)` replaced by the
    /// low `end - start` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics like [`Ip6::bit_slice`].
    #[must_use]
    pub fn with_bit_slice(self, start: u8, end: u8, value: u64) -> Self {
        assert!(start < end && end <= 128, "invalid bit slice {start}-{end}");
        let width = end - start;
        assert!(width <= 64, "bit slice wider than 64 bits");
        let value = (value & width_mask(width)) as u128;
        let shift = 128 - end as u32;
        let slice_mask = (width_mask(width) as u128) << shift;
        Ip6((self.0 & !slice_mask) | (value << shift))
    }
}

/// Network mask with the top `prefix_len` bits set.
pub(crate) const fn mask(prefix_len: u8) -> u128 {
    if prefix_len == 0 {
        0
    } else if prefix_len >= 128 {
        u128::MAX
    } else {
        !(u128::MAX >> prefix_len)
    }
}

const fn width_mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl From<Ipv6Addr> for Ip6 {
    fn from(a: Ipv6Addr) -> Self {
        Ip6(u128::from_be_bytes(a.octets()))
    }
}

impl From<Ip6> for Ipv6Addr {
    fn from(a: Ip6) -> Self {
        Ipv6Addr::from(a.0.to_be_bytes())
    }
}

impl From<u128> for Ip6 {
    fn from(bits: u128) -> Self {
        Ip6(bits)
    }
}

impl From<Ip6> for u128 {
    fn from(a: Ip6) -> Self {
        a.0
    }
}

impl FromStr for Ip6 {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<Ipv6Addr>()
            .map(Ip6::from)
            .map_err(|_| ParseAddrError::new(ErrorKind::Address, s))
    }
}

impl fmt::Display for Ip6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Ipv6Addr::from(*self).fmt(f)
    }
}

impl fmt::LowerHex for Ip6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Ip6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Ip6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_std() {
        let std_addr: Ipv6Addr = "2001:db8:1234:5678:9abc:def0:1111:2222".parse().unwrap();
        let a = Ip6::from(std_addr);
        assert_eq!(Ipv6Addr::from(a), std_addr);
        assert_eq!(a.to_string(), std_addr.to_string());
    }

    #[test]
    fn segments_roundtrip() {
        let seg = [0x2001, 0x0db8, 0, 1, 2, 3, 4, 5];
        let a = Ip6::from_segments(seg);
        assert_eq!(a.segments(), seg);
    }

    #[test]
    fn network_masks_low_bits() {
        let a: Ip6 = "2001:db8:1234:5678::1".parse().unwrap();
        assert_eq!(a.network(32).to_string(), "2001:db8::");
        assert_eq!(a.network(64).to_string(), "2001:db8:1234:5678::");
        assert_eq!(a.network(0), Ip6::UNSPECIFIED);
        assert_eq!(a.network(128), a);
    }

    #[test]
    fn iid_and_subnet() {
        let a: Ip6 = "2001:db8:1234:5678:dead:beef:cafe:f00d".parse().unwrap();
        assert_eq!(a.iid(), 0xdead_beef_cafe_f00d);
        assert_eq!(a.subnet64(), 0x2001_0db8_1234_5678);
        assert_eq!(a.with_iid(7).to_string(), "2001:db8:1234:5678::7");
    }

    #[test]
    fn bit_slice_extracts_and_inserts() {
        let a: Ip6 = "2001:db8:1234:5678::".parse().unwrap();
        assert_eq!(a.bit_slice(32, 64), 0x1234_5678);
        assert_eq!(a.bit_slice(0, 16), 0x2001);
        let b = a.with_bit_slice(32, 64, 0xabcd_ef01);
        assert_eq!(b.to_string(), "2001:db8:abcd:ef01::");
        // Inserting back the original value is the identity.
        assert_eq!(b.with_bit_slice(32, 64, 0x1234_5678), a);
    }

    #[test]
    fn bit_slice_full_64() {
        let a: Ip6 = "::ffff:ffff:ffff:ffff".parse().unwrap();
        assert_eq!(a.bit_slice(64, 128), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid bit slice")]
    fn bit_slice_rejects_reversed() {
        Ip6::UNSPECIFIED.bit_slice(64, 32);
    }

    #[test]
    #[should_panic(expected = "wider than 64")]
    fn bit_slice_rejects_wide() {
        Ip6::UNSPECIFIED.bit_slice(0, 128);
    }

    #[test]
    fn parse_error_carries_input() {
        let err = "not-an-address".parse::<Ip6>().unwrap_err();
        assert_eq!(err.input(), "not-an-address");
    }

    #[test]
    fn hex_formatting() {
        let a = Ip6::new(0x2001_0db8 << 96);
        assert!(format!("{a:x}").starts_with("20010db8"));
    }

    #[test]
    fn mask_boundaries() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(128), u128::MAX);
        assert_eq!(mask(1), 1u128 << 127);
        assert_eq!(mask(64), !(u64::MAX as u128));
    }
}
