//! Error types for address parsing.

use std::error::Error;
use std::fmt;

/// Error returned when parsing an [`Ip6`](crate::Ip6), [`Prefix`](crate::Prefix),
/// [`ScanRange`](crate::ScanRange) or [`Mac`](crate::Mac) from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    kind: ErrorKind,
    input: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ErrorKind {
    /// The address portion is not a valid IPv6 address.
    Address,
    /// The prefix length is missing or not in `0..=128`.
    PrefixLen,
    /// The bit-range bounds are missing, reversed or out of `0..=128`.
    BitRange,
    /// The MAC address is not six `:`-separated hex octets.
    Mac,
    /// Host bits are set beyond the prefix length.
    HostBits,
}

impl ParseAddrError {
    pub(crate) fn new(kind: ErrorKind, input: &str) -> Self {
        ParseAddrError {
            kind,
            input: input.to_owned(),
        }
    }

    /// The original input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            ErrorKind::Address => "invalid IPv6 address syntax",
            ErrorKind::PrefixLen => "prefix length must be an integer in 0..=128",
            ErrorKind::BitRange => "bit range must be `start-end` with 0 <= start < end <= 128",
            ErrorKind::Mac => "MAC address must be six colon-separated hex octets",
            ErrorKind::HostBits => "address has bits set beyond the prefix length",
        };
        write!(f, "{what}: {:?}", self.input)
    }
}

impl Error for ParseAddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_input() {
        let err = ParseAddrError::new(ErrorKind::Address, "zz::1");
        let msg = err.to_string();
        assert!(msg.contains("zz::1"), "{msg}");
        assert!(msg.contains("invalid IPv6 address"), "{msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseAddrError>();
    }
}
