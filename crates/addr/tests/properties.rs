//! Property-based tests for xmap-addr invariants.

use proptest::prelude::*;
use xmap_addr::{
    classify_iid, eui64_address, IidClass, Ip6, Mac, NodeState, Prefix, PrefixTree, ScanRange,
};

proptest! {
    /// Display → parse is the identity for addresses.
    #[test]
    fn ip6_display_parse_roundtrip(bits in any::<u128>()) {
        let a = Ip6::new(bits);
        let parsed: Ip6 = a.to_string().parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    /// bit_slice / with_bit_slice are inverse operations.
    #[test]
    fn bit_slice_roundtrip(bits in any::<u128>(), start in 0u8..127, width in 1u8..=64) {
        let end = start.saturating_add(width).min(128);
        prop_assume!(end > start);
        let a = Ip6::new(bits);
        let v = a.bit_slice(start, end);
        prop_assert_eq!(a.with_bit_slice(start, end, v), a);
        // And inserting any value then extracting returns that value.
        let b = a.with_bit_slice(start, end, !v);
        prop_assert_eq!(b.bit_slice(start, end), !v & if end - start == 64 { u64::MAX } else { (1u64 << (end - start)) - 1 });
    }

    /// A prefix contains exactly the addresses sharing its top bits.
    #[test]
    fn prefix_contains_iff_network_matches(bits in any::<u128>(), other in any::<u128>(), len in 0u8..=128) {
        let p = Prefix::new(Ip6::new(bits), len);
        let o = Ip6::new(other);
        prop_assert_eq!(p.contains(o), o.network(len) == p.addr());
    }

    /// first() <= every contained address <= last().
    #[test]
    fn prefix_first_last_bound(bits in any::<u128>(), len in 0u8..=128) {
        let p = Prefix::new(Ip6::new(bits), len);
        prop_assert!(p.first() <= p.last());
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
    }

    /// subprefix / subprefix_index roundtrip.
    #[test]
    fn subprefix_index_roundtrip(bits in any::<u128>(), len in 0u8..=64, extra in 1u8..=32, idx_seed in any::<u128>()) {
        let sub_len = (len + extra).min(128);
        prop_assume!(sub_len > len);
        let p = Prefix::new(Ip6::new(bits), len);
        let count = p.subprefix_count(sub_len).unwrap();
        let idx = idx_seed % count;
        let sp = p.subprefix(sub_len, idx);
        prop_assert!(p.covers(sp));
        prop_assert_eq!(p.subprefix_index(sub_len, sp.addr()), Some(idx));
    }

    /// ScanRange::nth yields distinct targets inside the base, and index_of inverts it.
    #[test]
    fn scan_range_nth_inverts(block in any::<u64>(), i in any::<u64>(), j in any::<u64>()) {
        let base = Prefix::new(Ip6::new((block as u128) << 96), 32);
        let range = ScanRange::new(base, 64).unwrap();
        let i = i % range.space_size() as u64;
        let j = j % range.space_size() as u64;
        let ti = range.nth(i).unwrap();
        prop_assert!(base.covers(ti));
        prop_assert_eq!(range.index_of(ti.addr()), Some(i));
        if i != j {
            prop_assert_ne!(ti, range.nth(j).unwrap());
        }
    }

    /// MAC ↔ EUI-64 roundtrip, and such addresses always classify as EUI-64.
    #[test]
    fn mac_eui64_roundtrip(octets in any::<[u8; 6]>()) {
        let mac = Mac::new(octets);
        prop_assert_eq!(Mac::from_eui64(mac.to_eui64()), Some(mac));
        let addr = eui64_address("2001:db8::/64".parse().unwrap(), mac);
        prop_assert_eq!(classify_iid(addr), IidClass::Eui64);
    }

    /// Classification is total and deterministic.
    #[test]
    fn classification_deterministic(bits in any::<u128>()) {
        let a = Ip6::new(bits);
        prop_assert_eq!(classify_iid(a), classify_iid(a));
    }

    /// Slicing a range partitions its space: every nth of a slice is inside
    /// the parent base and recoverable by the parent's index_of.
    #[test]
    fn range_slice_within_parent(block in any::<u64>(), slice_bits in 1u32..8, pick in any::<u64>()) {
        let base = Prefix::new(Ip6::new((block as u128) << 96), 32);
        let range = ScanRange::new(base, 64).unwrap();
        let count = 1u64 << slice_bits;
        let idx = pick % count;
        let slice = range.slice(idx, count);
        let inner = pick % slice.space_size() as u64;
        let t = slice.nth(inner).unwrap();
        prop_assert!(base.covers(t));
        prop_assert!(range.index_of(t.addr()).is_some());
    }

    /// Under arbitrary record/split/prune/exhaust sequences the prefix
    /// tree keeps the two invariants the adaptive engine rests on: the
    /// terminal nodes always partition the root's leaf space, and a node
    /// that ever drew a hit is never pruned.
    #[test]
    fn prefix_tree_random_ops_hold_invariants(seed in any::<u64>(), leaf_extra in 4u8..=16, branch in 1u8..=8) {
        let mut rng = seed;
        let mut next = || {
            // splitmix64: full-period, seed-friendly.
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let root: Prefix = "2001:db8::/48".parse().unwrap();
        let mut tree = PrefixTree::new(root, root.len() + leaf_extra, branch);
        for _ in 0..64 {
            let frontier = tree.frontier();
            if frontier.is_empty() {
                break;
            }
            let idx = frontier[next() as usize % frontier.len()];
            match next() % 4 {
                0 => {
                    let probes = next() % 16;
                    tree.record(idx, probes, if probes == 0 { 0 } else { next() % (probes + 1) });
                }
                1 => {
                    let had_hits = tree.node(idx).hits > 0;
                    let pruned = tree.prune(idx);
                    prop_assert_eq!(pruned, !had_hits, "prune must refuse exactly the responsive nodes");
                    if had_hits {
                        prop_assert_eq!(tree.node(idx).state, NodeState::Active);
                    }
                }
                2 => {
                    prop_assert_eq!(tree.split(idx).is_some(), tree.can_split(idx));
                }
                _ => tree.exhaust(idx),
            }
            prop_assert!(tree.coverage_is_partition(), "terminal spans must partition the root");
        }
        for node in tree.nodes() {
            if node.state == NodeState::Pruned {
                prop_assert_eq!(node.hits, 0, "a responsive sub-prefix was pruned");
            }
        }
        // The surviving structure is exactly reconstructible — the shape
        // the checkpoint codec round-trips through.
        let nodes: Vec<_> = tree.nodes().cloned().collect();
        let rebuilt = PrefixTree::from_parts(tree.root(), tree.leaf_len(), tree.branch_bits(), nodes).unwrap();
        prop_assert_eq!(rebuilt, tree);
    }
}
