//! Property tests for the adaptive target-generation engine's
//! determinism contract: the worker count is unobservable in every
//! output, across randomly drawn configurations and worlds.
//!
//! The unit tests pin one configuration; these properties draw the
//! engine knobs, scan seed and world allocation from proptest seeds, so
//! a merge-order or seed-threading regression that happens to be
//! invisible at the pinned configuration still fails here. Case counts
//! are kept small: every case runs two full (if deliberately tiny)
//! fifteen-block campaigns.

use proptest::prelude::*;
use xmap::ScanConfig;
use xmap_netsim::world::{Allocation, World, WorldConfig};
use xmap_periphery::{AdaptiveCampaign, AdaptiveConfig};
use xmap_telemetry::Telemetry;

fn run(
    config: AdaptiveConfig,
    workers: usize,
    seed: u64,
    world_seed: u64,
    clustered: bool,
) -> (String, String, u64) {
    let mut wc = WorldConfig::lossless(world_seed, 10);
    if clustered {
        wc = wc.with_allocation(Allocation::Clustered {
            pod_bits: 8,
            active_frac: 1.0 / 64.0,
        });
    }
    let base = ScanConfig {
        seed,
        ..Default::default()
    };
    let outcome = AdaptiveCampaign::new(config).with_workers(workers).run(
        &base,
        move |telemetry: &Telemetry| {
            let mut world = World::with_config(wc);
            world.set_telemetry(telemetry);
            world
        },
    );
    let probed = outcome.result.blocks.iter().map(|b| b.probed).sum();
    (outcome.result.to_csv(), outcome.snapshot.to_json(), probed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N-worker adaptive output is byte-identical to 1-worker: CSV,
    /// telemetry JSON and probe accounting all match for arbitrary
    /// engine knobs.
    #[test]
    fn worker_count_is_unobservable(
        seed in any::<u64>(),
        world_seed in any::<u64>(),
        budget_bits in 9u64..=12,
        root_bits in 9u8..=12,
        branch_bits in 2u8..=4,
        samples in 4u64..=32,
        workers in 2usize..=4,
        clustered in any::<bool>(),
    ) {
        let config = AdaptiveConfig {
            probe_budget: 1 << budget_bits,
            samples_per_node: samples,
            branch_bits,
            root_bits: Some(root_bits),
            ..AdaptiveConfig::default()
        };
        let solo = run(config.clone(), 1, seed, world_seed, clustered);
        let fleet = run(config, workers, seed, world_seed, clustered);
        prop_assert_eq!(&solo.0, &fleet.0, "CSV diverged at {} workers", workers);
        prop_assert_eq!(&solo.1, &fleet.1, "telemetry diverged at {} workers", workers);
        prop_assert_eq!(solo.2, fleet.2, "probe count diverged at {} workers", workers);
    }
}
