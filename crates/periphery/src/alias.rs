//! Aliased-prefix detection.
//!
//! Some prefixes are *aliased*: a middlebox (load balancer, CDN front,
//! misconfigured firewall) answers for every address beneath them. Counting
//! them as peripheries would wildly inflate discovery results, so the paper
//! reports "unique, non-aliased last hop addresses" (Section IV-E). The
//! standard de-aliasing technique (Gasser et al., IMC'18) probes several
//! pseudorandom addresses under the suspect prefix: real subnets answer a
//! nonexistent-address probe with an ICMPv6 error or silence, while an
//! aliased prefix answers *every* probe from the probed address itself.

use xmap::{IcmpEchoProbe, ProbeResult, Scanner};
use xmap_addr::Prefix;
use xmap_netsim::packet::Network;

/// Number of detection probes used by [`check_aliased`]'s convenience form.
pub const DEFAULT_PROBES: u32 = 4;

/// Verdict of an alias check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AliasVerdict {
    /// Whether every detection probe was answered by its own target
    /// address (the alias signature).
    pub aliased: bool,
    /// Probes sent.
    pub probes: u32,
    /// Probes answered by the probed address itself.
    pub self_replies: u32,
}

/// Probes `k` pseudorandom addresses under `prefix`; the prefix is aliased
/// iff every probe draws an echo reply from the probed address itself.
pub fn check_aliased<N: Network>(scanner: &mut Scanner<N>, prefix: Prefix, k: u32) -> AliasVerdict {
    assert!(k > 0, "at least one detection probe is required");
    let mut self_replies = 0;
    for attempt in 0..k {
        let dst = xmap::fill_host_bits(prefix, scanner.config().seed ^ (0xa11a5 + attempt as u64));
        let answered_self = scanner
            .probe_addr(dst, &IcmpEchoProbe, 64)
            .iter()
            .any(|(src, r)| matches!(r, ProbeResult::Alive) && *src == dst);
        if answered_self {
            self_replies += 1;
        } else {
            // One miss is enough to clear the prefix.
            return AliasVerdict {
                aliased: false,
                probes: attempt + 1,
                self_replies,
            };
        }
    }
    AliasVerdict {
        aliased: true,
        probes: k,
        self_replies,
    }
}

/// Convenience form with [`DEFAULT_PROBES`].
pub fn is_aliased<N: Network>(scanner: &mut Scanner<N>, prefix: Prefix) -> bool {
    check_aliased(scanner, prefix, DEFAULT_PROBES).aliased
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::ScanConfig;
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::{World, WorldConfig};

    fn scanner() -> Scanner<World> {
        let world = World::with_config(WorldConfig::lossless(31337, 10));
        Scanner::new(
            world,
            ScanConfig {
                seed: 8,
                ..Default::default()
            },
        )
    }

    #[test]
    fn detects_world_aliased_prefixes() {
        let mut s = scanner();
        // BSNL (index 1) has the highest aliased fraction.
        let p = &SAMPLE_BLOCKS[1];
        let mut checked = 0;
        for i in 0..2_000_000u64 {
            if s.network_mut().is_aliased(1, i) {
                let prefix = p.scan_prefix().subprefix(p.assigned_len, i as u128);
                let verdict = check_aliased(&mut s, prefix, 4);
                assert!(verdict.aliased, "{prefix} should be aliased: {verdict:?}");
                assert_eq!(verdict.self_replies, 4);
                checked += 1;
                if checked >= 3 {
                    break;
                }
            }
        }
        assert!(checked > 0, "no aliased prefix found to check");
    }

    #[test]
    fn real_periphery_prefixes_are_not_aliased() {
        let mut s = scanner();
        let p = &SAMPLE_BLOCKS[12];
        let mut checked = 0;
        for i in 0..1_000_000u64 {
            if s.network_mut().device_at(12, i).is_some() && !s.network_mut().is_aliased(12, i) {
                let prefix = p.scan_prefix().subprefix(p.assigned_len, i as u128);
                assert!(!is_aliased(&mut s, prefix), "{prefix} wrongly flagged");
                checked += 1;
                if checked >= 5 {
                    break;
                }
            }
        }
        assert!(checked >= 5);
    }

    #[test]
    fn unallocated_prefixes_are_not_aliased() {
        let mut s = scanner();
        let p = &SAMPLE_BLOCKS[0];
        for i in 0..2000u64 {
            if s.network_mut().device_at(0, i).is_none() && !s.network_mut().is_aliased(0, i) {
                let prefix = p.scan_prefix().subprefix(p.assigned_len, i as u128);
                let verdict = check_aliased(&mut s, prefix, 4);
                assert!(!verdict.aliased);
                // Cleared after the first unanswered probe.
                assert_eq!(verdict.probes, 1);
                return;
            }
        }
        panic!("no unallocated prefix found");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_probes_rejected() {
        check_aliased(&mut scanner(), "2405:200::/64".parse().unwrap(), 0);
    }
}
