//! Adaptive density-guided target generation.
//!
//! The exhaustive campaign spends its probe budget uniformly across a
//! block, dense and silent space alike. This module drives the same
//! discovery pipeline with a feedback loop in the shape of prefix-crab's
//! split-and-follow-up: model the block as a [`PrefixTree`], seed a
//! coarse sweep, score sub-prefixes by hit density, **split** responsive
//! ones for finer-grained probing, **prune** silent ones early, fully
//! enumerate responsive nodes once they are small, and stop when the
//! marginal-discovery rate falls below a threshold or the probe budget
//! runs out.
//!
//! # Determinism
//!
//! A campaign is a sequence of *rounds*; a round is a list of *units*
//! (one frontier node's sample batch), fixed before any probe is sent.
//! Every unit runs as a pure function — fresh world replica, fresh
//! telemetry, private scanner — and the driver merges unit results in
//! unit-index order, exactly the block-executor's private-replica +
//! canonical-merge recipe. Worker count only changes which thread runs
//! a unit, never what the unit computes or the order results merge, so
//! output is byte-identical across 1/2/4 workers. Round boundaries
//! double as checkpoint points: the tree, the in-progress block and the
//! merged telemetry land in an `xmap-checkpoint/v1` file whose
//! tree-snapshot section lets a killed campaign resume mid-block.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use xmap::{
    fill_host_bits, merge_worker_snapshots, Blocklist, FeistelPermutation, IcmpEchoProbe,
    IndexWalk, ProbeResult, ScanConfig, ScanStats, Scanner,
};
use xmap_addr::{classify_iid, FxHashSet, IidClass, Ip6, Mac, Prefix, PrefixTree};
use xmap_netsim::isp::{IspProfile, SAMPLE_BLOCKS};
use xmap_netsim::packet::{Ipv6Packet, Network};
use xmap_state::checkpoint::{
    decode_snapshot, decode_tree, encode_snapshot, encode_tree, parse_fp, read_sectioned,
    write_sectioned,
};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{Fingerprint, StateError, CHECKPOINT_SCHEMA};
use xmap_telemetry::{Snapshot, Telemetry};

use crate::campaign::{
    decode_block, encode_block, BlockResult, CampaignResult, DiscoveredPeriphery,
};
use crate::infer_boundary;

/// Tuning knobs of the adaptive engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Maximum probes drawn per block (the scan stops early when the
    /// frontier empties or the marginal-discovery rate collapses).
    pub probe_budget: u64,
    /// Samples drawn from each frontier node per round.
    pub samples_per_node: u64,
    /// Minimum hit density for a responsive node to split (0 splits on
    /// any hit).
    pub split_density: f64,
    /// Silent probes a node must absorb before it may be pruned or
    /// force-split (`u64::MAX` disables pruning — the exhaustive
    /// ablation arm).
    pub prune_after: u64,
    /// Only silent nodes spanning at most this many leaf targets are
    /// pruned; larger silent nodes split instead, so sparse-but-alive
    /// space keeps being examined at finer granularity.
    pub prune_max_span: u128,
    /// Responsive nodes spanning at most this many leaf targets are
    /// enumerated to exhaustion instead of split (splitting overhead
    /// would exceed the enumeration).
    pub exhaust_span: u128,
    /// Stop the block when a round's newly discovered peripheries per
    /// drawn probe falls below this rate (0 disables the stop).
    pub min_marginal: f64,
    /// Bits added per split level.
    pub branch_bits: u8,
    /// Restrict each block to its first `2^root_bits` leaf targets —
    /// the equal-coverage slice the ablation compares on. `None` scans
    /// the whole block.
    pub root_bits: Option<u8>,
    /// Safety valve on rounds per block.
    pub max_rounds: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            probe_budget: 1 << 16,
            samples_per_node: 16,
            split_density: 0.0,
            prune_after: 32,
            prune_max_span: 256,
            exhaust_span: 256,
            min_marginal: 0.0,
            branch_bits: 4,
            root_bits: None,
            max_rounds: 10_000,
        }
    }
}

impl AdaptiveConfig {
    /// The exhaustive ablation arm: the same pipeline with adaptation
    /// switched off — nothing is ever pruned or split, the root is
    /// enumerated to exhaustion. Probes drawn equals the root span, so
    /// this is the equal-coverage baseline the adaptive arm is compared
    /// against.
    pub fn exhaustive(root_bits: Option<u8>) -> Self {
        AdaptiveConfig {
            probe_budget: u64::MAX,
            samples_per_node: 4096,
            // A split needs density > 1.0: impossible, so the root
            // stays whole and is sampled until its cursor exhausts it.
            split_density: 2.0,
            prune_after: u64::MAX,
            prune_max_span: 0,
            exhaust_span: u128::MAX,
            min_marginal: 0.0,
            branch_bits: 4,
            root_bits,
            max_rounds: u64::MAX,
        }
    }
}

/// Outcome of an adaptive campaign.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Per-block results in Table II order (same shape as the
    /// exhaustive campaign, so CSV rendering and serve units reuse it).
    pub result: CampaignResult,
    /// Merged telemetry across every unit, in unit order.
    pub snapshot: Snapshot,
    /// Whether the campaign stopped at the engine kill point with its
    /// progress checkpointed (exit-code-3 path).
    pub interrupted: bool,
}

/// Adaptive-campaign driver over the fifteen sample blocks.
///
/// # Examples
///
/// ```
/// use xmap::ScanConfig;
/// use xmap_netsim::World;
/// use xmap_periphery::{AdaptiveCampaign, AdaptiveConfig};
///
/// let engine = AdaptiveCampaign::new(AdaptiveConfig {
///     probe_budget: 1 << 10,
///     root_bits: Some(12),
///     ..AdaptiveConfig::default()
/// });
/// let base = ScanConfig { seed: 7, ..Default::default() };
/// let outcome = engine.run(&base, |telemetry| {
///     let mut world = World::new(99);
///     world.set_telemetry(telemetry);
///     world
/// });
/// assert_eq!(outcome.result.blocks.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveCampaign {
    /// Engine knobs.
    pub config: AdaptiveConfig,
    workers: usize,
    blocklist: Blocklist,
    infer: bool,
    kill_after_probes: Option<u64>,
}

/// One frontier node's sample batch — fixed before the round starts.
#[derive(Debug, Clone, Copy)]
struct Unit {
    node: usize,
    prefix: Prefix,
    span: u64,
    cursor: u64,
    count: u64,
}

/// What a unit computed, merged in unit-index order.
#[derive(Debug)]
struct UnitResult {
    node: usize,
    drawn: u64,
    hits: u64,
    /// (responder, target, probe_dst, via_time_exceeded)
    finds: Vec<(Ip6, Prefix, Ip6, bool)>,
    aliases: Vec<Prefix>,
    stats: ScanStats,
    snapshot: Snapshot,
}

/// An in-progress block between rounds (the checkpointed state).
#[derive(Debug, Clone)]
struct PartialBlock {
    tree: PrefixTree,
    block: BlockResult,
    round: u64,
    leaf_len: u8,
}

impl AdaptiveCampaign {
    /// An engine with the standard reserved-space blocklist and one
    /// worker.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveCampaign {
            config,
            workers: 1,
            blocklist: Blocklist::with_standard_reserved(),
            infer: false,
            kill_after_probes: None,
        }
    }

    /// Sets the worker-thread count. Output is byte-identical for any
    /// value.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        self.workers = workers;
        self
    }

    /// Overrides the blocklist.
    #[must_use]
    pub fn with_blocklist(mut self, blocklist: Blocklist) -> Self {
        self.blocklist = blocklist;
        self
    }

    /// Infers each block's subnet boundary (Section IV-A) before
    /// building its tree, instead of trusting the profile's assigned
    /// length; the inference's probes count against the block's budget.
    #[must_use]
    pub fn with_inferred_boundary(mut self, infer: bool) -> Self {
        self.infer = infer;
        self
    }

    /// Arms a deterministic engine kill: once the campaign has drawn
    /// this many probes in total it stops at the next round boundary
    /// with everything checkpointed (the kill-and-resume test hook;
    /// round boundaries make it worker-count-independent).
    #[must_use]
    pub fn with_kill_after_probes(mut self, probes: u64) -> Self {
        self.kill_after_probes = Some(probes);
        self
    }

    /// Identity of this engine + scan configuration; a checkpoint
    /// resumes only under the same. Deliberately excludes the worker
    /// count.
    pub fn fingerprint(&self, base: &ScanConfig) -> u64 {
        let c = &self.config;
        let mut fp = Fingerprint::new();
        fp.push_str("adaptive")
            .push_u64(c.probe_budget)
            .push_u64(c.samples_per_node)
            .push_u64(c.split_density.to_bits())
            .push_u64(c.prune_after)
            .push_u128(c.prune_max_span)
            .push_u128(c.exhaust_span)
            .push_u64(c.min_marginal.to_bits())
            .push_u64(c.branch_bits as u64)
            .push_u64(match c.root_bits {
                Some(b) => 1 + b as u64,
                None => 0,
            })
            .push_u64(c.max_rounds)
            .push_u64(self.infer as u64)
            .push_u64(self.blocklist.fingerprint())
            .push_u64(base.seed)
            .push_u64(base.hop_limit as u64);
        fp.finish()
    }

    /// Runs the adaptive campaign over every sample block.
    pub fn run<N, F>(&self, base: &ScanConfig, make_world: F) -> AdaptiveOutcome
    where
        N: Network,
        F: Fn(&Telemetry) -> N + Sync,
    {
        self.run_inner(base, None, false, &make_world)
            .expect("in-memory run cannot hit checkpoint I/O")
    }

    /// Runs with round-granular checkpointing at `path` (a file). When
    /// the engine kill point fires the call returns with
    /// [`AdaptiveOutcome::interrupted`] set; rerunning with
    /// `resume: true` — under any worker count — continues from the
    /// last round boundary and produces byte-identical final output.
    pub fn run_checkpointed<N, F>(
        &self,
        base: &ScanConfig,
        path: &Path,
        resume: bool,
        make_world: F,
    ) -> Result<AdaptiveOutcome, StateError>
    where
        N: Network,
        F: Fn(&Telemetry) -> N + Sync,
    {
        self.run_inner(base, Some(path), resume, &make_world)
    }

    /// Runs the adaptive loop over a single sample block — the
    /// `xmap-serve` unit shape (one block per schedulable unit, pure
    /// function of the spec).
    ///
    /// # Panics
    ///
    /// Panics if `block >= SAMPLE_BLOCKS.len()`.
    pub fn run_single_block<N, F>(
        &self,
        block: usize,
        base: &ScanConfig,
        make_world: F,
    ) -> (BlockResult, Snapshot)
    where
        N: Network,
        F: Fn(&Telemetry) -> N + Sync,
    {
        let profile = &SAMPLE_BLOCKS[block];
        let mut snapshot = Snapshot::default();
        let mut spent = 0u64;
        let state = self.init_block(profile, base, &make_world, &mut snapshot, &mut spent);
        let (done, _) = self
            .run_block(
                profile,
                state,
                base,
                &make_world,
                None,
                0,
                &[],
                &mut snapshot,
                &mut spent,
            )
            .expect("in-memory block run cannot hit checkpoint I/O");
        (done, snapshot)
    }

    fn run_inner<N, F>(
        &self,
        base: &ScanConfig,
        path: Option<&Path>,
        resume: bool,
        make_world: &F,
    ) -> Result<AdaptiveOutcome, StateError>
    where
        N: Network,
        F: Fn(&Telemetry) -> N + Sync,
    {
        let fp = self.fingerprint(base);
        let mut blocks: Vec<BlockResult> = Vec::new();
        let mut snapshot = Snapshot::default();
        let mut spent_total = 0u64;
        let mut partial: Option<PartialBlock> = None;
        if resume {
            if let Some(p) = path {
                if let Some(saved) = load_ckpt(p, fp)? {
                    blocks = saved.blocks;
                    snapshot = saved.snapshot;
                    spent_total = saved.spent;
                    partial = saved.partial;
                }
                // Killed before the first checkpoint: fresh start.
            }
        }
        let start = blocks.len();
        for profile in SAMPLE_BLOCKS.iter().skip(start) {
            let state = match partial.take() {
                Some(p) => {
                    debug_assert_eq!(p.block.profile_id, profile.id, "checkpoint block order");
                    p
                }
                None => self.init_block(profile, base, make_world, &mut snapshot, &mut spent_total),
            };
            let (done, interrupted) = self.run_block(
                profile,
                state,
                base,
                make_world,
                path,
                fp,
                &blocks,
                &mut snapshot,
                &mut spent_total,
            )?;
            if interrupted {
                return Ok(AdaptiveOutcome {
                    result: CampaignResult { blocks },
                    snapshot: merge_worker_snapshots([snapshot]),
                    interrupted: true,
                });
            }
            blocks.push(done);
            if let Some(p) = path {
                write_ckpt(p, fp, &blocks, &snapshot, spent_total, None)?;
            }
        }
        Ok(AdaptiveOutcome {
            result: CampaignResult { blocks },
            snapshot: merge_worker_snapshots([snapshot]),
            interrupted: false,
        })
    }

    /// Builds a block's starting state: optional boundary inference,
    /// then a fresh tree over the (possibly restricted) root.
    fn init_block<N, F>(
        &self,
        profile: &IspProfile,
        base: &ScanConfig,
        make_world: &F,
        snapshot: &mut Snapshot,
        spent_total: &mut u64,
    ) -> PartialBlock
    where
        N: Network,
        F: Fn(&Telemetry) -> N + Sync,
    {
        let mut stats = ScanStats::default();
        let mut probed = 0u64;
        let leaf_len = if self.infer {
            let telemetry = Telemetry::new();
            let network = make_world(&telemetry);
            let mut scanner = Scanner::with_telemetry(network, base.clone(), telemetry.clone());
            let inference = infer_boundary(&mut scanner, profile.scan_prefix(), 64, 3);
            stats.merge(&ScanStats {
                sent: inference.probes,
                ..ScanStats::default()
            });
            probed += inference.probes;
            *spent_total += inference.probes;
            snapshot.merge(&telemetry.registry.snapshot());
            inference.inferred_len.unwrap_or(profile.assigned_len)
        } else {
            profile.assigned_len
        };
        let mut root = profile.scan_prefix();
        if let Some(bits) = self.config.root_bits {
            let bits = bits.min(leaf_len - root.len()).max(1);
            root = root.subprefix(leaf_len - bits, 0);
        }
        assert!(
            leaf_len - root.len() < 64,
            "adaptive trees index their leaf space with u64 cursors"
        );
        let tree = PrefixTree::new(root, leaf_len, self.config.branch_bits);
        let space_size = tree.span(0);
        PartialBlock {
            tree,
            block: BlockResult {
                profile_id: profile.id,
                peripheries: Vec::new(),
                stats,
                probed,
                space_size,
                alias_candidates: Vec::new(),
                mop_up_recovered: 0,
            },
            round: 0,
            leaf_len,
        }
    }

    /// Drives one block's rounds to completion (or the engine kill).
    #[allow(clippy::too_many_arguments)]
    fn run_block<N, F>(
        &self,
        profile: &IspProfile,
        mut state: PartialBlock,
        base: &ScanConfig,
        make_world: &F,
        path: Option<&Path>,
        fp: u64,
        done_blocks: &[BlockResult],
        snapshot: &mut Snapshot,
        spent_total: &mut u64,
    ) -> Result<(BlockResult, bool), StateError>
    where
        N: Network,
        F: Fn(&Telemetry) -> N + Sync,
    {
        let cfg = &self.config;
        let mut seen: FxHashSet<Ip6> = state.block.peripheries.iter().map(|p| p.address).collect();
        loop {
            if state.round >= cfg.max_rounds {
                break;
            }
            // Fix the round's units in canonical frontier order; the
            // budget truncates deterministically.
            let mut remaining = cfg.probe_budget.saturating_sub(state.block.probed);
            if remaining == 0 {
                break;
            }
            let mut units = Vec::new();
            for idx in state.tree.frontier() {
                if remaining == 0 {
                    break;
                }
                let span = u64::try_from(state.tree.span(idx)).expect("span fits u64");
                let node = state.tree.node(idx);
                let count = cfg.samples_per_node.min(span - node.cursor).min(remaining);
                if count == 0 {
                    continue;
                }
                remaining -= count;
                units.push(Unit {
                    node: idx,
                    prefix: node.prefix,
                    span,
                    cursor: node.cursor,
                    count,
                });
            }
            if units.is_empty() {
                break; // frontier empty or fully drawn
            }
            let results = self.run_round(&units, state.leaf_len, base, make_world);

            // Merge in unit-index order — the deterministic merge point.
            let mut round_drawn = 0u64;
            let mut round_new = 0u64;
            for r in &results {
                state.tree.record(r.node, r.drawn, r.hits);
                round_drawn += r.drawn;
                for (responder, target, probe_dst, via_te) in &r.finds {
                    if !seen.insert(*responder) {
                        continue;
                    }
                    round_new += 1;
                    let mac = Mac::from_eui64(responder.iid())
                        .filter(|_| classify_iid(*responder) == IidClass::Eui64);
                    state.block.peripheries.push(DiscoveredPeriphery {
                        address: *responder,
                        target: *target,
                        probe_dst: *probe_dst,
                        same64: responder.network(64) == probe_dst.network(64),
                        iid_class: classify_iid(*responder),
                        mac,
                        via_time_exceeded: *via_te,
                    });
                }
                state
                    .block
                    .alias_candidates
                    .extend(r.aliases.iter().copied());
                state.block.stats.merge(&r.stats);
                snapshot.merge(&r.snapshot);
            }
            state.block.probed += round_drawn;
            *spent_total += round_drawn;
            state.round += 1;

            // Settle the frontier: exhaust, split or prune each sampled
            // node in the same canonical order.
            for u in &units {
                let node = state.tree.node(u.node);
                let span = state.tree.span(u.node);
                if node.cursor as u128 >= span {
                    state.tree.exhaust(u.node);
                    continue;
                }
                if node.hits > 0 {
                    if span > cfg.exhaust_span
                        && state.tree.can_split(u.node)
                        && node.density() >= cfg.split_density
                    {
                        state.tree.split(u.node);
                    }
                    continue;
                }
                if node.probes >= cfg.prune_after {
                    if span <= cfg.prune_max_span || !state.tree.can_split(u.node) {
                        state.tree.prune(u.node);
                    } else {
                        state.tree.split(u.node);
                    }
                }
            }

            if let Some(p) = path {
                write_ckpt(p, fp, done_blocks, snapshot, *spent_total, Some(&state))?;
            }
            if let Some(kill) = self.kill_after_probes {
                if *spent_total >= kill {
                    return Ok((state.block, true));
                }
            }
            if cfg.min_marginal > 0.0
                && round_drawn > 0
                && (round_new as f64 / round_drawn as f64) < cfg.min_marginal
            {
                break;
            }
        }
        let _ = profile;
        Ok((state.block, false))
    }

    /// Executes a round's units — possibly in parallel — returning
    /// results in unit-index order regardless of scheduling.
    fn run_round<N, F>(
        &self,
        units: &[Unit],
        leaf_len: u8,
        base: &ScanConfig,
        make_world: &F,
    ) -> Vec<UnitResult>
    where
        N: Network,
        F: Fn(&Telemetry) -> N + Sync,
    {
        let exec = |u: &Unit| -> UnitResult {
            let telemetry = Telemetry::new();
            let network = make_world(&telemetry);
            let scanner = Scanner::with_telemetry(network, base.clone(), telemetry.clone());
            run_unit(
                u,
                leaf_len,
                base.seed,
                base.hop_limit,
                &self.blocklist,
                scanner,
                &telemetry,
            )
        };
        let n_workers = self.workers.min(units.len()).max(1);
        if n_workers == 1 {
            return units.iter().map(exec).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<UnitResult>>> =
            units.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..n_workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let r = exec(&units[i]);
                    match slots[i].lock() {
                        Ok(mut slot) => *slot = Some(r),
                        Err(poisoned) => *poisoned.into_inner() = Some(r),
                    }
                });
            }
            // scope joins every worker; a worker panic propagates here.
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every unit slot is filled before the scope ends")
            })
            .collect()
    }
}

/// Seed of a node's private sample permutation: derived from the scan
/// seed and the node's identity, so every node walks its own
/// without-replacement pseudorandom order and a rebuilt tree resumes
/// the identical walk.
fn node_seed(seed: u64, prefix: Prefix) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_str("adaptive-node")
        .push_u64(seed)
        .push_u128(prefix.addr().bits())
        .push_u64(prefix.len() as u64);
    fp.finish()
}

/// Runs one unit as a pure function of (unit, seed, world): draws the
/// batch through the chunked [`IndexWalk`] streaming path, probes each
/// leaf target once, and classifies responses with the campaign's
/// transit filter and alias signature.
fn run_unit<N: Network>(
    unit: &Unit,
    leaf_len: u8,
    seed: u64,
    hop_limit: u8,
    blocklist: &Blocklist,
    mut scanner: Scanner<N>,
    telemetry: &Telemetry,
) -> UnitResult {
    let perm = FeistelPermutation::new(unit.span, node_seed(seed, unit.prefix));
    let mut walk = IndexWalk::Feistel {
        perm,
        next_pos: unit.cursor,
        stride: 1,
    };
    let mut buf = [0u64; 64];
    let mut drawn = 0u64;
    let mut hits = 0u64;
    let mut finds = Vec::new();
    let mut aliases = Vec::new();
    let mut scratch: Vec<Ipv6Packet> = Vec::new();
    let mut answers: Vec<(Ip6, ProbeResult)> = Vec::new();
    let baseline = scanner.metrics().baseline();
    while drawn < unit.count {
        let want = ((unit.count - drawn) as usize).min(buf.len());
        let n = walk.fill(&mut buf[..want]);
        if n == 0 {
            break;
        }
        for &index in &buf[..n] {
            drawn += 1;
            let target = unit.prefix.subprefix(leaf_len, index as u128);
            let dst = fill_host_bits(target, seed);
            if !blocklist.is_allowed(dst) {
                scanner.metrics().blocked.inc();
                continue;
            }
            scanner.probe_addr_into(dst, &IcmpEchoProbe, hop_limit, &mut scratch, &mut answers);
            let mut hit = false;
            for (src, result) in &answers {
                let via_te = match result {
                    ProbeResult::Unreachable { .. } => false,
                    ProbeResult::TimeExceeded => true,
                    ProbeResult::Alive if *src == dst => {
                        aliases.push(target);
                        continue;
                    }
                    _ => continue,
                };
                // Transit-router time-exceeded sources are not
                // peripheries (synthetic transit IID marker).
                if via_te && src.iid() >> 48 == 0xffff {
                    continue;
                }
                hit = true;
                finds.push((*src, target, dst, via_te));
            }
            if hit {
                hits += 1;
            }
        }
    }
    let stats = scanner.metrics().stats_since(&baseline);
    UnitResult {
        node: unit.node,
        drawn,
        hits,
        finds,
        aliases,
        stats,
        snapshot: telemetry.registry.snapshot(),
    }
}

/// A loaded adaptive checkpoint.
struct AdaptiveCkpt {
    blocks: Vec<BlockResult>,
    snapshot: Snapshot,
    spent: u64,
    partial: Option<PartialBlock>,
}

fn write_ckpt(
    path: &Path,
    fp: u64,
    blocks: &[BlockResult],
    snapshot: &Snapshot,
    spent: u64,
    partial: Option<&PartialBlock>,
) -> Result<(), StateError> {
    let sections_list = if partial.is_some() {
        "[\"metrics\",\"blocks\",\"tree\",\"partial\"]"
    } else {
        "[\"metrics\",\"blocks\"]"
    };
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"adaptive-campaign\",\
         \"completed_blocks\":{},\"spent\":{spent},\
         \"adaptive_fp\":\"{fp:#018x}\",\"sections\":{sections_list}}}",
        blocks.len()
    );
    let mut be = Encoder::new();
    be.seq(blocks.len());
    for b in blocks {
        encode_block(&mut be, b);
    }
    let mut sections: Vec<(&str, Vec<u8>)> = vec![
        ("metrics", encode_snapshot(snapshot)),
        ("blocks", be.finish()),
    ];
    if let Some(p) = partial {
        let mut te = Encoder::new();
        encode_tree(&mut te, &p.tree);
        sections.push(("tree", te.finish()));
        let mut pe = Encoder::new();
        encode_block(&mut pe, &p.block);
        pe.u64(p.round);
        pe.u8(p.leaf_len);
        sections.push(("partial", pe.finish()));
    }
    write_sectioned(path, &header, &sections)
}

/// Loads and validates an adaptive checkpoint; `Ok(None)` when none
/// exists yet.
fn load_ckpt(path: &Path, expected_fp: u64) -> Result<Option<AdaptiveCkpt>, StateError> {
    if !path.exists() {
        return Ok(None);
    }
    let what = "adaptive checkpoint";
    let (header, mut sections) = read_sectioned(path, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "adaptive-campaign" {
        return Err(StateError::Corrupt(format!(
            "{what}: expected kind `adaptive-campaign`, found `{kind}`"
        )));
    }
    let fp = parse_fp(&header.req_str("adaptive_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "adaptive checkpoint was taken under configuration {fp:#018x}, \
             this engine fingerprints as {expected_fp:#018x}"
        )));
    }
    let metrics_raw = sections
        .remove("metrics")
        .ok_or_else(|| StateError::Corrupt(format!("{what}: missing `metrics` section")))?;
    let blocks_raw = sections
        .remove("blocks")
        .ok_or_else(|| StateError::Corrupt(format!("{what}: missing `blocks` section")))?;
    let mut d = Decoder::new(&blocks_raw, "adaptive blocks");
    let n = d.seq()?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(decode_block(&mut d)?);
    }
    d.expect_end()?;
    let partial = match (sections.remove("tree"), sections.remove("partial")) {
        (Some(tree_raw), Some(partial_raw)) => {
            let mut td = Decoder::new(&tree_raw, "adaptive tree");
            let tree = decode_tree(&mut td)?;
            td.expect_end()?;
            let mut pd = Decoder::new(&partial_raw, "adaptive partial block");
            let block = decode_block(&mut pd)?;
            let round = pd.u64()?;
            let leaf_len = pd.u8()?;
            pd.expect_end()?;
            if leaf_len != tree.leaf_len() {
                return Err(StateError::Corrupt(format!(
                    "{what}: partial block leaf length {leaf_len} disagrees with tree {}",
                    tree.leaf_len()
                )));
            }
            Some(PartialBlock {
                tree,
                block,
                round,
                leaf_len,
            })
        }
        (None, None) => None,
        _ => {
            return Err(StateError::Corrupt(format!(
                "{what}: `tree` and `partial` sections must appear together"
            )))
        }
    };
    Ok(Some(AdaptiveCkpt {
        blocks,
        snapshot: decode_snapshot(&metrics_raw)?,
        spent: header.req_u64("spent", what)?,
        partial,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::world::{Allocation, World, WorldConfig};

    fn sparse_world(telemetry: &Telemetry) -> World {
        // Concentration matters: active pods must be dense enough that
        // `prune_after` silent probes is strong evidence of emptiness.
        let mut world = World::with_config(WorldConfig::lossless(99, 10).with_allocation(
            Allocation::Clustered {
                pod_bits: 8,
                active_frac: 1.0 / 256.0,
            },
        ));
        world.set_telemetry(telemetry);
        world
    }

    fn base() -> ScanConfig {
        ScanConfig {
            seed: 5,
            ..Default::default()
        }
    }

    fn engine() -> AdaptiveCampaign {
        AdaptiveCampaign::new(AdaptiveConfig {
            root_bits: Some(16),
            ..AdaptiveConfig::default()
        })
    }

    #[test]
    fn adaptive_beats_exhaustive_at_equal_discovery_on_sparse_world() {
        let adaptive = engine().run(&base(), sparse_world);
        let exhaustive =
            AdaptiveCampaign::new(AdaptiveConfig::exhaustive(Some(16))).run(&base(), sparse_world);
        let a_probes: u64 = adaptive.result.blocks.iter().map(|b| b.probed).sum();
        let e_probes: u64 = exhaustive.result.blocks.iter().map(|b| b.probed).sum();
        assert!(
            a_probes * 3 < e_probes,
            "adaptive {a_probes} vs exhaustive {e_probes}"
        );
        // Equal discovered-responder set.
        let aset: FxHashSet<Ip6> = adaptive.result.peripheries().map(|p| p.address).collect();
        let eset: FxHashSet<Ip6> = exhaustive.result.peripheries().map(|p| p.address).collect();
        assert!(!eset.is_empty(), "exhaustive arm found nothing");
        let recall = aset.intersection(&eset).count() as f64 / eset.len() as f64;
        assert!(recall >= 0.95, "recall {recall}");
    }

    #[test]
    fn worker_count_is_unobservable() {
        let one = engine().with_workers(1).run(&base(), sparse_world);
        let two = engine().with_workers(2).run(&base(), sparse_world);
        let four = engine().with_workers(4).run(&base(), sparse_world);
        assert_eq!(one.result, two.result);
        assert_eq!(one.result, four.result);
        assert_eq!(one.result.to_csv(), four.result.to_csv());
        assert_eq!(one.snapshot.to_json(), four.snapshot.to_json());
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted() {
        let dir = std::env::temp_dir().join(format!("xmap-adaptive-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adaptive.ckpt");
        let baseline = engine().run(&base(), sparse_world);

        let killed = engine().with_kill_after_probes(9_000);
        let outcome = killed
            .run_checkpointed(&base(), &path, false, sparse_world)
            .unwrap();
        assert!(outcome.interrupted, "kill point must interrupt");
        assert!(outcome.result.blocks.len() < baseline.result.blocks.len());

        // Resume under a different worker count.
        let resumed = engine()
            .with_workers(2)
            .run_checkpointed(&base(), &path, true, sparse_world)
            .unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.result, baseline.result);
        assert_eq!(resumed.result.to_csv(), baseline.result.to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_config_is_refused() {
        let dir = std::env::temp_dir().join(format!("xmap-adaptive-mm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adaptive.ckpt");
        let killed = engine().with_kill_after_probes(4_000);
        let outcome = killed
            .run_checkpointed(&base(), &path, false, sparse_world)
            .unwrap();
        assert!(outcome.interrupted);
        let other = AdaptiveCampaign::new(AdaptiveConfig {
            probe_budget: 1 << 10,
            root_bits: Some(16),
            ..AdaptiveConfig::default()
        });
        let err = other
            .run_checkpointed(&base(), &path, true, sparse_world)
            .unwrap_err();
        assert!(matches!(err, StateError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boundary_inference_composes() {
        let small = AdaptiveCampaign::new(AdaptiveConfig {
            probe_budget: 1 << 12,
            root_bits: Some(12),
            ..AdaptiveConfig::default()
        })
        .with_inferred_boundary(true);
        let outcome = small.run(&base(), |t| {
            let mut w = World::with_config(WorldConfig::lossless(99, 10));
            w.set_telemetry(t);
            w
        });
        assert_eq!(outcome.result.blocks.len(), 15);
        // Inference probes count against the block accounting.
        assert!(outcome.result.blocks.iter().all(|b| b.probed > 0));
    }

    #[test]
    fn marginal_stop_halts_before_budget() {
        let stopped = AdaptiveCampaign::new(AdaptiveConfig {
            min_marginal: 0.5, // absurdly high: stop after round 1
            root_bits: Some(16),
            ..AdaptiveConfig::default()
        })
        .run(&base(), sparse_world);
        let free = engine().run(&base(), sparse_world);
        let s: u64 = stopped.result.blocks.iter().map(|b| b.probed).sum();
        let f: u64 = free.result.blocks.iter().map(|b| b.probed).sum();
        assert!(s < f, "marginal stop must cut probes: {s} vs {f}");
    }
}
