//! Subnet-boundary (sub-prefix length) inference — Section IV-A.
//!
//! Before scanning a block, the campaign needs the length of the
//! sub-prefix an ISP assigns to each periphery (the subnet boundary).
//! The paper's algorithm:
//!
//! 1. *Preliminary scan*: probe random /64s inside the block until one
//!    periphery answers; remember its address.
//! 2. *Bit walk*: flip the target's bits from position 63 up toward
//!    position 32 (i.e. widen the change) and re-probe. While the **same**
//!    periphery keeps answering, the flipped bit is still inside its
//!    assigned prefix; the first position where the responder changes (or
//!    vanishes) is the subnet boundary.
//! 3. *Replication*: repeat from several starting peripheries and take the
//!    majority answer.

use xmap::{IcmpEchoProbe, ProbeResult, Scanner};
use xmap_addr::{Ip6, Prefix};
use xmap_netsim::packet::Network;

/// Outcome of a boundary inference on one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryInference {
    /// The block probed.
    pub block: Prefix,
    /// Majority inferred sub-prefix length, when any periphery was found.
    pub inferred_len: Option<u8>,
    /// Individual per-periphery inferences (for confidence assessment).
    pub samples: Vec<u8>,
    /// Probes spent.
    pub probes: u64,
}

impl BoundaryInference {
    /// Agreement ratio of the majority answer among samples.
    pub fn confidence(&self) -> f64 {
        let Some(len) = self.inferred_len else {
            return 0.0;
        };
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| **s == len).count() as f64 / self.samples.len() as f64
    }
}

/// Probes `dst` and returns the address of the periphery-like responder
/// (unreachable/time-exceeded source), if any.
fn probe_responder<N: Network>(scanner: &mut Scanner<N>, dst: Ip6) -> Option<Ip6> {
    scanner
        .probe_addr(dst, &IcmpEchoProbe, 64)
        .into_iter()
        .find_map(|(src, result)| match result {
            ProbeResult::Unreachable { .. } | ProbeResult::TimeExceeded => {
                // Ignore transit-router time-exceeded sources.
                (src.iid() >> 48 != 0xffff).then_some(src)
            }
            _ => None,
        })
}

/// Infers the subnet boundary of `block`, testing at most `max_preliminary`
/// random /64s and replicating over up to `replications` found peripheries.
///
/// Returns lengths in `32..=64`; blocks assigning prefixes longer than /64
/// are reported as 64 (the paper takes /64 as the longest assignment).
pub fn infer_boundary<N: Network>(
    scanner: &mut Scanner<N>,
    block: Prefix,
    max_preliminary: u64,
    replications: usize,
) -> BoundaryInference {
    assert!(
        block.len() <= 32,
        "boundary inference expects a block of /32 or shorter"
    );
    let start_tick = scanner.ticks();
    let mut probes = 0u64;
    let mut samples = Vec::new();
    let mut found = 0usize;

    // Preliminary scan: deterministic pseudorandom walk over /64 indices.
    for attempt in 0..max_preliminary {
        if found >= replications {
            break;
        }
        let index = spread(attempt, scanner.config().seed) & ((1u64 << (64 - block.len())) - 1);
        let target64 = block.subprefix(64, index as u128);
        let dst = xmap::fill_host_bits(target64, scanner.config().seed);
        probes += 1;
        let Some(responder) = probe_responder(scanner, dst) else {
            continue;
        };
        found += 1;

        // Bit walk: flip bit positions from 63 down to 32. Bit position b
        // (0-based from the MSB) is inside the periphery's prefix iff
        // b >= assigned_len; the first flip that changes the responder
        // marks the boundary.
        let mut boundary = 64u8;
        for b in (32..64).rev() {
            let flipped = Ip6::new(dst.bits() ^ (1u128 << (127 - b)));
            probes += 1;
            match probe_responder(scanner, flipped) {
                Some(r) if r == responder => {
                    // Same device still answers: bit b is inside its prefix.
                    boundary = b;
                }
                Some(r)
                    if r.network(64) == flipped.network(64)
                        && responder.network(64) == dst.network(64) =>
                {
                    // Same-prefix repliers answer from the probed /64, so
                    // the address changes even inside one device's prefix;
                    // compare IIDs instead.
                    if r.iid() == responder.iid() {
                        boundary = b;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        samples.push(boundary);
    }

    let inferred_len = majority(&samples);
    if scanner.tracer().is_enabled() {
        scanner.tracer().span_event(
            start_tick,
            scanner.ticks(),
            "periphery.boundary",
            vec![
                ("probes", probes.into()),
                ("samples", (samples.len() as u64).into()),
                ("inferred_len", u64::from(inferred_len.unwrap_or(0)).into()),
            ],
        );
    }
    BoundaryInference {
        block,
        inferred_len,
        samples,
        probes,
    }
}

/// Deterministic index spreading for the preliminary scan.
fn spread(i: u64, seed: u64) -> u64 {
    let mut z = i.wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

fn majority(samples: &[u8]) -> Option<u8> {
    let mut best: Option<(u8, usize)> = None;
    for s in samples {
        let count = samples.iter().filter(|x| *x == s).count();
        if best.is_none_or(|(_, c)| count > c) {
            best = Some((*s, count));
        }
    }
    best.map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::ScanConfig;
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::{World, WorldConfig};

    fn scanner() -> Scanner<World> {
        let world = World::with_config(WorldConfig::lossless(31, 10));
        Scanner::new(
            world,
            ScanConfig {
                seed: 3,
                ..Default::default()
            },
        )
    }

    #[test]
    fn infers_64_for_mobile_block() {
        // Bharti Airtel (index 2): /64 assignment, dense population.
        let p = &SAMPLE_BLOCKS[2];
        let mut s = scanner();
        let inf = infer_boundary(&mut s, p.scan_prefix(), 4000, 3);
        assert_eq!(inf.inferred_len, Some(64), "samples {:?}", inf.samples);
        assert!(inf.confidence() > 0.6);
    }

    #[test]
    fn infers_60_for_chinese_broadband() {
        // China Mobile broadband (index 12): /60 assignment, dense.
        let p = &SAMPLE_BLOCKS[12];
        let mut s = scanner();
        let inf = infer_boundary(&mut s, p.scan_prefix(), 4000, 5);
        assert_eq!(inf.inferred_len, Some(60), "samples {:?}", inf.samples);
    }

    #[test]
    fn sparse_block_may_fail_gracefully() {
        // BSNL (index 1) has ~2.4k devices in 2^32: the preliminary scan
        // will not find one in a few thousand probes.
        let p = &SAMPLE_BLOCKS[1];
        let mut s = scanner();
        let inf = infer_boundary(&mut s, p.scan_prefix(), 500, 3);
        assert_eq!(inf.inferred_len, None);
        assert_eq!(inf.confidence(), 0.0);
        assert!(inf.probes >= 500);
    }

    #[test]
    fn majority_vote() {
        assert_eq!(majority(&[60, 60, 64]), Some(60));
        assert_eq!(majority(&[]), None);
        assert_eq!(majority(&[64]), Some(64));
    }
}
