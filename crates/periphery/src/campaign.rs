//! The periphery-discovery campaign (Section IV / Table II).
//!
//! One ICMPv6 echo probe is sent to a pseudorandom address inside every
//! sub-prefix of each sample block's scan range; every validated ICMPv6
//! destination-unreachable or time-exceeded response exposes a last-hop
//! address. The campaign deduplicates responders, classifies each as
//! replying from the *same* /64 as the probe or a *different* one, and
//! extracts MAC addresses from EUI-64 IIDs — exactly the columns of
//! Table II.

use std::path::Path;

use xmap::{
    Blocklist, Confidence, IcmpEchoProbe, ProbeModule, ProbeResult, ScanConfig, ScanRecord,
    ScanStats, Scanner,
};
use xmap_addr::{classify_iid, FxHashSet, IidClass, IidHistogram, Ip6, Mac, Prefix};
use xmap_netsim::isp::{IspProfile, SAMPLE_BLOCKS};
use xmap_netsim::packet::{Network, UnreachCode};
use xmap_state::checkpoint::{
    decode_snapshot, encode_snapshot, parse_fp, read_sectioned, write_sectioned,
};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{Fingerprint, StateError, CHECKPOINT_SCHEMA};
use xmap_telemetry::{Snapshot, Tracer};

use crate::split::SplitUnit;

/// One discovered periphery (deduplicated last hop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredPeriphery {
    /// The exposed last-hop address (WAN/UE address).
    pub address: Ip6,
    /// The sub-prefix whose probe elicited the response.
    pub target: Prefix,
    /// The probed 128-bit destination.
    pub probe_dst: Ip6,
    /// Whether the responder shares the probe's /64 (Table II "same").
    pub same64: bool,
    /// IID class of the responder address.
    pub iid_class: IidClass,
    /// MAC embedded in the IID, for EUI-64 responders.
    pub mac: Option<Mac>,
    /// Whether the response was a Time Exceeded (loop-vulnerable path)
    /// rather than a Destination Unreachable.
    pub via_time_exceeded: bool,
}

/// Per-block campaign outcome — one row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockResult {
    /// Table VII row id of the block (1..=15).
    pub profile_id: u8,
    /// Deduplicated peripheries in discovery order.
    pub peripheries: Vec<DiscoveredPeriphery>,
    /// Raw scanner counters.
    pub stats: ScanStats,
    /// Number of targets probed (for scale correction).
    pub probed: u64,
    /// Size of the full scan space.
    pub space_size: u128,
    /// Targets that answered the discovery probe with an echo reply from
    /// the probed address itself — the aliased-prefix signature; excluded
    /// from the periphery population (Section IV-E reports non-aliased
    /// counts).
    pub alias_candidates: Vec<Prefix>,
    /// Peripheries recovered only by the mop-up pass (0 when mop-up is
    /// disabled); included in `peripheries`.
    pub mop_up_recovered: usize,
}

impl BlockResult {
    /// The profile backing this block.
    pub fn profile(&self) -> &'static IspProfile {
        SAMPLE_BLOCKS
            .iter()
            .find(|p| p.id == self.profile_id)
            .expect("block result references a known profile")
    }

    /// Unique last hops discovered.
    pub fn unique(&self) -> usize {
        self.peripheries.len()
    }

    /// Fraction of last hops replying from the probed /64.
    pub fn same_frac(&self) -> f64 {
        if self.peripheries.is_empty() {
            return 0.0;
        }
        self.peripheries.iter().filter(|p| p.same64).count() as f64 / self.peripheries.len() as f64
    }

    /// Unique /64 prefixes among responders (Table II "/64 prefix").
    pub fn unique_64(&self) -> usize {
        self.peripheries
            .iter()
            .map(|p| p.address.network(64))
            .collect::<FxHashSet<_>>()
            .len()
    }

    /// Peripheries with EUI-64 format addresses.
    pub fn eui64_count(&self) -> usize {
        self.peripheries
            .iter()
            .filter(|p| p.iid_class == IidClass::Eui64)
            .count()
    }

    /// Unique MAC addresses among EUI-64 responders (Table II "MAC addr").
    pub fn unique_mac(&self) -> usize {
        self.peripheries
            .iter()
            .filter_map(|p| p.mac)
            .collect::<FxHashSet<_>>()
            .len()
    }

    /// IID histogram of the block's peripheries (Table III per block).
    pub fn iid_histogram(&self) -> IidHistogram {
        self.peripheries.iter().map(|p| p.address).collect()
    }

    /// Linear scale-correction factor from the probed slice to the block's
    /// full scan space.
    pub fn scale_factor(&self) -> f64 {
        if self.probed == 0 {
            return 0.0;
        }
        self.space_size as f64 / self.probed as f64
    }

    /// Scale-corrected estimate of the block's full periphery population.
    pub fn estimated_total(&self) -> f64 {
        self.unique() as f64 * self.scale_factor()
    }
}

/// Whole-campaign outcome across all sample blocks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignResult {
    /// Per-block results in Table II order.
    pub blocks: Vec<BlockResult>,
}

impl CampaignResult {
    /// Total unique last hops across blocks.
    pub fn total_unique(&self) -> usize {
        self.blocks.iter().map(BlockResult::unique).sum()
    }

    /// Scale-corrected total (the paper's 52.5M headline).
    pub fn estimated_total(&self) -> f64 {
        self.blocks.iter().map(BlockResult::estimated_total).sum()
    }

    /// Pooled same-/64 fraction (Table II total row: 77.2% same).
    pub fn same_frac(&self) -> f64 {
        let total = self.total_unique();
        if total == 0 {
            return 0.0;
        }
        let same: usize = self
            .blocks
            .iter()
            .map(|b| b.peripheries.iter().filter(|p| p.same64).count())
            .sum();
        same as f64 / total as f64
    }

    /// Pooled IID histogram (Table III).
    pub fn iid_histogram(&self) -> IidHistogram {
        let mut h = IidHistogram::new();
        for b in &self.blocks {
            h.merge(&b.iid_histogram());
        }
        h
    }

    /// All discovered peripheries.
    pub fn peripheries(&self) -> impl Iterator<Item = &DiscoveredPeriphery> {
        self.blocks.iter().flat_map(|b| b.peripheries.iter())
    }

    /// Renders every discovered periphery as CSV, blocks in Table II
    /// order, peripheries in discovery order. Formatting is fixed, so
    /// equal results render byte-identically — the equality channel the
    /// parallel-executor tests and the CI kill-and-resume smoke compare.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * self.total_unique() + CSV_HEADER.len() + 1);
        out.push_str(CSV_HEADER);
        out.push('\n');
        for b in &self.blocks {
            for p in &b.peripheries {
                use std::fmt::Write as _;
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{}",
                    b.profile_id,
                    p.address,
                    p.target,
                    p.probe_dst,
                    p.same64,
                    p.iid_class,
                    p.mac.map(|m| m.to_string()).unwrap_or_default(),
                    p.via_time_exceeded,
                );
            }
        }
        out
    }
}

/// Header line of [`CampaignResult::to_csv`].
pub const CSV_HEADER: &str = "profile_id,address,target,probe_dst,same64,iid_class,mac,via_te";

/// Discovery-campaign driver.
///
/// # Examples
///
/// ```
/// use xmap::{ScanConfig, Scanner};
/// use xmap_netsim::World;
/// use xmap_periphery::Campaign;
///
/// let mut scanner = Scanner::new(World::new(7), ScanConfig::default());
/// // Scan a 2^14 slice of each block (fast; scale-corrected estimates).
/// let result = Campaign::new(1 << 14).run(&mut scanner);
/// assert_eq!(result.blocks.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Probes per block (slice of the full space).
    pub targets_per_block: u64,
    /// Blocklist applied to every probe.
    blocklist: Blocklist,
    /// Second-chance pass over silent targets (off by default).
    mop_up: bool,
    /// Virtual ticks to wait before the mop-up pass so depleted ICMPv6
    /// error token buckets (RFC 4443 §2.4) refill.
    mop_up_delay_ticks: u64,
    /// Per-block `(block index, walk positions)` overrides of
    /// `targets_per_block`, sorted by index; lets a run skew one block's
    /// cost (the straggler bench) or trim a known-expensive block.
    block_caps: Vec<(usize, u64)>,
}

impl Campaign {
    /// A campaign probing `targets_per_block` sub-prefixes per block with
    /// the standard reserved-space blocklist.
    pub fn new(targets_per_block: u64) -> Self {
        Campaign {
            targets_per_block,
            blocklist: Blocklist::with_standard_reserved(),
            mop_up: false,
            mop_up_delay_ticks: 2048,
            block_caps: Vec::new(),
        }
    }

    /// Overrides the blocklist.
    pub fn with_blocklist(mut self, blocklist: Blocklist) -> Self {
        self.blocklist = blocklist;
        self
    }

    /// Overrides the walk-position budget of individual blocks: each
    /// `(index, targets)` pair caps block `index` (Table II order) at
    /// `targets` instead of `targets_per_block`. Out-of-range indices are
    /// ignored; for duplicate indices the first pair wins. Part of the
    /// campaign fingerprint — a checkpoint taken under one set of
    /// overrides refuses to resume under another.
    pub fn with_block_targets(mut self, caps: Vec<(usize, u64)>) -> Self {
        self.block_caps = caps;
        self.block_caps.sort_by_key(|(idx, _)| *idx);
        self
    }

    /// The walk-position budget of `profile`'s block: its override if one
    /// is set, else `targets_per_block`, clamped to the block's space.
    pub fn block_cap(&self, profile: &IspProfile) -> u64 {
        let idx = SAMPLE_BLOCKS
            .iter()
            .position(|p| p.id == profile.id)
            .expect("campaign profiles come from SAMPLE_BLOCKS");
        let budget = self
            .block_caps
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, t)| *t)
            .unwrap_or(self.targets_per_block);
        (budget as u128).min(profile.scan_range().space_size()) as u64
    }

    /// Enables the mop-up pass: after the discovery scan of a block, wait
    /// `delay_ticks` of virtual time (so ICMPv6 rate limiters refill) and
    /// re-probe every silent sub-prefix once with fresh host bits. Devices
    /// whose error budget was exhausted during the main pass — silent to a
    /// single-probe scan — answer here.
    pub fn with_mop_up(mut self, delay_ticks: u64) -> Self {
        self.mop_up = true;
        self.mop_up_delay_ticks = delay_ticks;
        self
    }

    /// Verifies a block's alias candidates with the de-aliasing check
    /// (Section IV-E reports only non-aliased last hops). Returns the
    /// confirmed aliased prefixes; unconfirmed candidates (flukes) are
    /// dropped from the candidate list.
    pub fn verify_aliases<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        block: &mut BlockResult,
    ) -> Vec<Prefix> {
        let mut confirmed = Vec::new();
        block.alias_candidates.retain(|prefix| {
            let aliased = crate::alias::is_aliased(scanner, *prefix);
            if aliased {
                confirmed.push(*prefix);
            }
            aliased
        });
        confirmed
    }

    /// Runs the discovery scan over every sample block.
    pub fn run<N: Network>(&self, scanner: &mut Scanner<N>) -> CampaignResult {
        let mut result = CampaignResult::default();
        for (idx, profile) in SAMPLE_BLOCKS.iter().enumerate() {
            let _ = idx;
            result.blocks.push(self.run_block(scanner, profile));
        }
        result
    }

    /// Runs the campaign with block-granular checkpointing at `path`.
    ///
    /// After every completed block the campaign writes a single-file
    /// checkpoint (kind `campaign`) holding the blocks so far, the
    /// scanner's telemetry snapshot and virtual-clock tick. If the
    /// scanner's armed [abort signal](Scanner::set_abort) fires — at any
    /// point, including mid-mop-up — the partial block is discarded, the
    /// previous checkpoint stands, and the call returns with the second
    /// tuple element `true`. A later `resume: true` invocation restores
    /// the registry and clock and re-runs from the interrupted block, so
    /// the completed campaign is byte-identical to an uninterrupted one
    /// (same determinism envelope as the scanner's own checkpoints).
    ///
    /// Resuming under a different campaign or scanner configuration is a
    /// hard [`StateError::Mismatch`].
    pub fn run_checkpointed<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        path: &Path,
        resume: bool,
    ) -> Result<(CampaignResult, bool), StateError> {
        let fp = self.fingerprint(scanner);
        let mut result = CampaignResult::default();
        let mut start = 0;
        if resume {
            if let Some(saved) = load_campaign_ckpt(path, fp)? {
                scanner.restore_metrics(&saved.metrics);
                scanner.restore_clock(saved.tick);
                result.blocks = saved.blocks;
                start = saved.next_block;
            }
            // A kill before the first checkpoint resumes as a fresh start.
        }
        for (idx, profile) in SAMPLE_BLOCKS.iter().enumerate().skip(start) {
            if scanner.is_aborted() {
                return Ok((result, true));
            }
            let block = self.run_block(scanner, profile);
            if scanner.is_aborted() {
                return Ok((result, true));
            }
            result.blocks.push(block);
            // run/probe_addr/advance flush coalesced network counters, so
            // the snapshot here is exact.
            let snap = scanner.telemetry().registry.snapshot();
            write_campaign_ckpt(path, fp, idx + 1, scanner.ticks(), &snap, &result.blocks)?;
        }
        Ok((result, false))
    }

    /// Identity of this campaign + scanner pairing; resume refuses a
    /// checkpoint taken under any other.
    fn fingerprint<N: Network>(&self, scanner: &Scanner<N>) -> u64 {
        self.fingerprint_cfg(scanner.config())
    }

    /// [`fingerprint`](Self::fingerprint) from a bare [`ScanConfig`] —
    /// the parallel executor fingerprints before any worker scanner
    /// exists. Deliberately excludes the worker count: a checkpoint
    /// resumes under any N.
    pub(crate) fn fingerprint_cfg(&self, cfg: &ScanConfig) -> u64 {
        let mut fp = Fingerprint::new();
        fp.push_str("campaign")
            .push_u64(self.targets_per_block)
            .push_u64(self.mop_up as u64)
            .push_u64(self.mop_up_delay_ticks)
            .push_u64(self.blocklist.fingerprint())
            .push_u64(cfg.seed)
            .push_u64(cfg.hop_limit as u64)
            .push_u64(cfg.probes_per_target as u64)
            .push_u64(cfg.rto_ticks)
            .push_u64(self.block_caps.len() as u64);
        for (idx, targets) in &self.block_caps {
            fp.push_u64(*idx as u64).push_u64(*targets);
        }
        fp.finish()
    }

    /// Runs the discovery scan over one block: the whole-block root unit
    /// through the same main-scan → mop-up → assemble pipeline the
    /// split-capable parallel executor drives unit by unit.
    pub fn run_block<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        profile: &IspProfile,
    ) -> BlockResult {
        let block_start = scanner.ticks();
        let unit = SplitUnit::whole(self.block_cap(profile));
        let mut raw = self.unit_main(scanner, profile, unit);
        self.unit_mop_up(scanner, profile, &mut raw);
        let block = self.assemble(profile, vec![raw], scanner.tracer());
        if scanner.tracer().is_enabled() {
            scanner.tracer().span_event(
                block_start,
                scanner.ticks(),
                "periphery.block",
                vec![
                    ("profile", (profile.id as u64).into()),
                    ("probed", block.probed.into()),
                    ("peripheries", (block.peripheries.len() as u64).into()),
                ],
            );
        }
        block
    }

    /// Runs one unit's main discovery pass: the sub-progression of the
    /// block's walk the unit owns, with record/silence walk positions
    /// mapped back to base coordinates (the profile-order merge keys).
    /// Scanner knobs are saved and restored around the run; an armed
    /// yield request or `set_force_yield_at` can stop the walk early, in
    /// which case `yielded` is set and `consumed` tells the executor
    /// where to split the remainder.
    pub(crate) fn unit_main<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        profile: &IspProfile,
        unit: SplitUnit,
    ) -> UnitRaw {
        let range = profile.scan_range();
        let saved_max = scanner.config().max_targets;
        let saved_silent = scanner.config().record_silent;
        scanner.set_max_targets(Some(unit.cap));
        if self.mop_up {
            scanner.set_record_silent(true);
        }
        scanner.set_track_positions(true);
        // The plain root runs under the scanner's own shard config, so a
        // whole-block unit on a sharded scanner behaves exactly as the
        // legacy block scan did; proper sub-units overlay their nested
        // (shard, shards, skip) triple and restore it afterwards.
        let overlay = (unit.offset != 0 || unit.stride != 1).then(|| scanner.sub_shard());
        if overlay.is_some() {
            scanner.set_sub_shard(unit.shard(), unit.stride, unit.walk_skip());
        }
        let results = scanner.run(&range, &IcmpEchoProbe, &self.blocklist);
        if let Some((shard, shards, skip)) = overlay {
            scanner.set_sub_shard(shard, shards, skip);
        }
        scanner.set_track_positions(false);
        scanner.set_max_targets(saved_max);
        scanner.set_record_silent(saved_silent);
        UnitRaw {
            unit,
            positions: results
                .record_positions
                .iter()
                .map(|j| unit.position(*j))
                .collect(),
            silent_positions: results
                .silent_positions
                .iter()
                .map(|j| unit.position(*j))
                .collect(),
            records: results.records,
            silent: results.silent_targets,
            mopup: Vec::new(),
            stats: results.stats,
            consumed: results.consumed,
            yielded: results.yielded,
            interrupted: results.interrupted,
            mopup_span: None,
        }
    }

    /// Runs the mop-up pass over one unit's silent targets on the unit's
    /// own scanner (each unit advances its replica's refill delay
    /// independently), accumulating raw [`MopAnswer`]s — classification
    /// and dedup happen later, in [`assemble`](Self::assemble)'s merged
    /// position order. No-op when mop-up is off, the unit was interrupted
    /// (the block is discarded and re-run on resume), or nothing was
    /// silent. A *yielded* unit must be settled first (its `unit`
    /// shrunk to the consumed prefix) — the silent list only ever covers
    /// consumed positions, so the pass is already exact.
    pub(crate) fn unit_mop_up<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        _profile: &IspProfile,
        raw: &mut UnitRaw,
    ) {
        if !self.mop_up || raw.interrupted || raw.silent.is_empty() {
            return;
        }
        // Let rate-limited devices accrue error tokens before the
        // second chance; discards any (stale) delayed deliveries.
        let mut late = Vec::new();
        scanner.advance(self.mop_up_delay_ticks, &mut late);
        let seed = scanner.config().seed;
        let hop_limit = scanner.config().hop_limit;
        let mop_up_start = scanner.ticks();
        // The registry is the single source of truth for mop-up
        // accounting: probe_addr counts sent/received/valid/invalid
        // through the shared metric handles, the pass tops up the
        // retransmit/rate-limit counters, and the unit's stats absorb
        // the exact registry delta at the end.
        let base = scanner.metrics().baseline();
        for (i, target) in raw.silent.iter().enumerate() {
            if scanner.is_aborted() {
                break;
            }
            // Fresh host bits: never re-probe the exact first address.
            let dst = xmap::fill_host_bits(*target, seed ^ MOP_UP_SALT);
            if !self.blocklist.is_allowed(dst) {
                continue;
            }
            scanner.metrics().retransmits.inc();
            let mut answers = scanner.probe_addr(dst, &IcmpEchoProbe, hop_limit);
            late.clear();
            scanner.advance(1, &mut late);
            for p in &late {
                // Late (jittered) deliveries bypass probe_addr, so they
                // are accounted here through the same handles.
                let result = IcmpEchoProbe.classify(p, scanner.validator());
                scanner.metrics().received.inc();
                if matches!(result, ProbeResult::Invalid) {
                    scanner.metrics().invalid.inc();
                } else {
                    scanner.metrics().valid.inc();
                }
                answers.push((p.src, result));
            }
            for (responder, result) in answers {
                let via_te = match result {
                    ProbeResult::Unreachable { .. } => false,
                    ProbeResult::TimeExceeded => true,
                    _ => continue,
                };
                // A silent-then-answering device was most likely
                // rate limited during the main pass. Counted at probe
                // time (dedup-independent), so unit stats are exact
                // whatever merge the answers later land in.
                scanner.metrics().rate_limited_suspected.inc();
                raw.mopup.push(MopAnswer {
                    position: raw.silent_positions[i],
                    target: *target,
                    probe_dst: dst,
                    responder,
                    via_te,
                });
            }
        }
        raw.stats.merge(&scanner.metrics().stats_since(&base));
        raw.mopup_span = Some((mop_up_start, scanner.ticks()));
    }

    /// Merges the units of one block — in any split layout, including the
    /// trivial single-root one — into the block's result. Units are
    /// ordered by offset; record and mop-up streams are k-way-merged on
    /// base walk position (each unit's internal arrival order preserved,
    /// so a single-unit block reproduces the legacy arrival-order walk
    /// byte-for-byte); classification, dedup and alias detection run over
    /// the merged order, which no split schedule can perturb.
    pub(crate) fn assemble(
        &self,
        profile: &IspProfile,
        mut units: Vec<UnitRaw>,
        tracer: &Tracer,
    ) -> BlockResult {
        units.sort_by_key(|u| u.unit.offset);
        let probed = units.iter().map(|u| u.unit.cap).sum();

        // Fx-hashed set: responder dedup is the hot loop of a dense block
        // and the keys are simulation-derived, not attacker-controlled.
        let mut seen = FxHashSet::default();
        let mut peripheries = Vec::new();
        let mut alias_candidates = Vec::new();
        let mut push_periphery =
            |responder: Ip6, target: Prefix, probe_dst: Ip6, via_te: bool| -> bool {
                // Transit-router time-exceeded sources are not peripheries;
                // they appear only for short hop limits, but filter
                // defensively on the synthetic transit IID marker.
                if via_te && responder.iid() >> 48 == 0xffff {
                    return false;
                }
                if !seen.insert(responder) {
                    return false;
                }
                let mac = Mac::from_eui64(responder.iid())
                    .filter(|_| classify_iid(responder) == IidClass::Eui64);
                peripheries.push(DiscoveredPeriphery {
                    address: responder,
                    target,
                    probe_dst,
                    same64: responder.network(64) == probe_dst.network(64),
                    iid_class: classify_iid(responder),
                    mac,
                    via_time_exceeded: via_te,
                });
                true
            };

        for (record, _) in merge_by_position(&units, |u| {
            u.records.iter().zip(u.positions.iter().copied())
        }) {
            let via_te = match record.result {
                ProbeResult::Unreachable { .. } => false,
                ProbeResult::TimeExceeded => true,
                // An echo reply from the probed (pseudorandom, should-be-
                // nonexistent) address is the aliased-prefix signature.
                ProbeResult::Alive if record.responder == record.probe_dst => {
                    alias_candidates.push(record.target);
                    continue;
                }
                _ => continue,
            };
            push_periphery(record.responder, record.target, record.probe_dst, via_te);
        }

        let mut mop_up_recovered = 0;
        let mut unit_recovered = vec![0u64; units.len()];
        // Every stored answer is a TE or unreachable (filtered at probe
        // time); dedup them in merged position order.
        for (answer, from_unit) in
            merge_by_position(&units, |u| u.mopup.iter().map(|a| (a, a.position)))
        {
            if push_periphery(
                answer.responder,
                answer.target,
                answer.probe_dst,
                answer.via_te,
            ) {
                mop_up_recovered += 1;
                unit_recovered[from_unit] += 1;
            }
        }

        let mut stats = ScanStats::default();
        for u in &units {
            stats.merge(&u.stats);
        }
        if tracer.is_enabled() {
            for (u, recovered) in units.iter().zip(&unit_recovered) {
                if let Some((start, end)) = u.mopup_span {
                    tracer.span_event(
                        start,
                        end,
                        "periphery.mopup",
                        vec![
                            ("silent", (u.silent.len() as u64).into()),
                            ("recovered", (*recovered).into()),
                        ],
                    );
                }
            }
        }
        BlockResult {
            profile_id: profile.id,
            peripheries,
            stats,
            probed,
            space_size: profile.scan_range().space_size(),
            alias_candidates,
            mop_up_recovered,
        }
    }
}

/// K-way merge of per-unit `(item, base position)` streams: repeatedly
/// yields the stream whose *next* item has the lowest position (ties to
/// the lowest unit index), preserving each stream's internal order. With
/// one stream this is the identity walk — the legacy arrival order.
fn merge_by_position<'a, T, I, F>(
    units: &'a [UnitRaw],
    stream: F,
) -> impl Iterator<Item = (T, usize)> + 'a
where
    I: Iterator<Item = (T, u64)> + 'a,
    F: Fn(&'a UnitRaw) -> I + 'a,
{
    let mut streams: Vec<std::iter::Peekable<I>> =
        units.iter().map(|u| stream(u).peekable()).collect();
    std::iter::from_fn(move || {
        let best = streams
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.peek().map(|(_, pos)| (*pos, i)))
            .min()?;
        let (item, _) = streams[best.1].next().expect("peeked stream is nonempty");
        Some((item, best.1))
    })
}

/// Seed perturbation for mop-up host-bit fill (distinct from every
/// `seed + attempt` fill of the main pass).
const MOP_UP_SALT: u64 = 0x6d6f_7075;

/// One raw mop-up response, recorded at probe time and classified later
/// in [`Campaign::assemble`]'s merged position order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MopAnswer {
    /// Base walk position of the silent target this answer re-probed —
    /// the merge key across units.
    pub position: u64,
    /// The silent sub-prefix.
    pub target: Prefix,
    /// The mop-up probe's destination (fresh host bits).
    pub probe_dst: Ip6,
    /// Responding last-hop address.
    pub responder: Ip6,
    /// Time-exceeded (vs destination-unreachable) response.
    pub via_te: bool,
}

/// One unit's raw, classification-free output: everything
/// [`Campaign::assemble`] needs to merge any split layout of a block
/// back into the byte-exact sequential result. Also the payload of the
/// executor's per-unit checkpoints (kind `campaign-unit`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UnitRaw {
    /// The sub-progression of the block walk this unit covered. After a
    /// yield the executor settles it to the consumed prefix.
    pub unit: SplitUnit,
    /// Validated responses in this unit's arrival order.
    pub records: Vec<ScanRecord>,
    /// Base walk positions of `records` (parallel vector).
    pub positions: Vec<u64>,
    /// Silent targets, in this unit's probe order.
    pub silent: Vec<Prefix>,
    /// Base walk positions of `silent` (parallel vector).
    pub silent_positions: Vec<u64>,
    /// Raw mop-up answers ([`Campaign::unit_mop_up`]).
    pub mopup: Vec<MopAnswer>,
    /// Scanner counters attributable to this unit (mop-up included).
    pub stats: ScanStats,
    /// Unit-local walk positions consumed (== `unit.cap` unless the run
    /// yielded or was interrupted).
    pub consumed: u64,
    /// The main pass stopped at a cooperative yield with budget left.
    pub yielded: bool,
    /// The main pass was aborted; the block is discarded and re-run.
    pub interrupted: bool,
    /// Virtual tick stamps `(start, end)` of the unit's mop-up pass,
    /// replayed as a `periphery.mopup` span at assembly.
    pub mopup_span: Option<(u64, u64)>,
}

/// [`ProbeResult`] wire tags for the unit codec (stable across
/// versions, like [`encode_block`]'s IID-class indices).
fn encode_probe_result(e: &mut Encoder, r: &ProbeResult) {
    match r {
        ProbeResult::Alive => e.u8(0),
        ProbeResult::Unreachable { code } => {
            e.u8(1);
            e.u8(match code {
                UnreachCode::NoRoute => 0,
                UnreachCode::AdminProhibited => 1,
                UnreachCode::AddressUnreachable => 3,
                UnreachCode::PortUnreachable => 4,
                UnreachCode::SourcePolicy => 5,
                UnreachCode::RejectRoute => 6,
            });
        }
        ProbeResult::TimeExceeded => e.u8(2),
        ProbeResult::Refused => e.u8(3),
        ProbeResult::Invalid => e.u8(4),
    }
}

fn decode_probe_result(d: &mut Decoder) -> Result<ProbeResult, StateError> {
    Ok(match d.u8()? {
        0 => ProbeResult::Alive,
        1 => {
            let code = match d.u8()? {
                0 => UnreachCode::NoRoute,
                1 => UnreachCode::AdminProhibited,
                3 => UnreachCode::AddressUnreachable,
                4 => UnreachCode::PortUnreachable,
                5 => UnreachCode::SourcePolicy,
                6 => UnreachCode::RejectRoute,
                c => {
                    return Err(StateError::Corrupt(format!(
                        "campaign unit: unknown unreachable code {c}"
                    )))
                }
            };
            ProbeResult::Unreachable { code }
        }
        2 => ProbeResult::TimeExceeded,
        3 => ProbeResult::Refused,
        4 => ProbeResult::Invalid,
        t => {
            return Err(StateError::Corrupt(format!(
                "campaign unit: unknown probe result tag {t}"
            )))
        }
    })
}

fn encode_stats(e: &mut Encoder, s: &ScanStats) {
    for v in [
        s.sent,
        s.blocked,
        s.received,
        s.invalid,
        s.valid,
        s.retransmits,
        s.rate_limited_suspected,
        s.gave_up,
    ] {
        e.u64(v);
    }
    e.f64_bits(s.paced_secs);
}

fn decode_stats(d: &mut Decoder) -> Result<ScanStats, StateError> {
    Ok(ScanStats {
        sent: d.u64()?,
        blocked: d.u64()?,
        received: d.u64()?,
        invalid: d.u64()?,
        valid: d.u64()?,
        retransmits: d.u64()?,
        rate_limited_suspected: d.u64()?,
        gave_up: d.u64()?,
        paced_secs: d.f64_bits()?,
    })
}

/// Serialises one [`UnitRaw`] in the `xmap-checkpoint/v1` campaign-unit
/// wire form — the per-unit checkpoint payload a killed split block
/// resumes from.
pub(crate) fn encode_unit_raw(e: &mut Encoder, u: &UnitRaw) {
    e.u64(u.unit.offset);
    e.u64(u.unit.stride);
    e.u64(u.unit.cap);
    e.seq(u.records.len());
    for (r, pos) in u.records.iter().zip(&u.positions) {
        e.u64(*pos);
        encode_prefix(e, &r.target);
        e.u128(r.probe_dst.bits());
        e.u128(r.responder.bits());
        encode_probe_result(e, &r.result);
        match r.confidence {
            Confidence::FirstTry => e.u8(0),
            Confidence::Retry(n) => {
                e.u8(1);
                e.u32(n);
            }
        }
    }
    e.seq(u.silent.len());
    for (t, pos) in u.silent.iter().zip(&u.silent_positions) {
        e.u64(*pos);
        encode_prefix(e, t);
    }
    e.seq(u.mopup.len());
    for a in &u.mopup {
        e.u64(a.position);
        encode_prefix(e, &a.target);
        e.u128(a.probe_dst.bits());
        e.u128(a.responder.bits());
        e.bool(a.via_te);
    }
    encode_stats(e, &u.stats);
    e.u64(u.consumed);
    e.bool(u.yielded);
    e.bool(u.interrupted);
    match u.mopup_span {
        Some((start, end)) => {
            e.bool(true);
            e.u64(start);
            e.u64(end);
        }
        None => e.bool(false),
    }
}

/// Inverse of [`encode_unit_raw`].
pub(crate) fn decode_unit_raw(d: &mut Decoder) -> Result<UnitRaw, StateError> {
    let unit = SplitUnit {
        offset: d.u64()?,
        stride: d.u64()?,
        cap: d.u64()?,
    };
    let n = d.seq()?;
    let mut records = Vec::with_capacity(n);
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(d.u64()?);
        let target = decode_prefix(d)?;
        let probe_dst = d.u128()?.into();
        let responder = d.u128()?.into();
        let result = decode_probe_result(d)?;
        let confidence = match d.u8()? {
            0 => Confidence::FirstTry,
            1 => Confidence::Retry(d.u32()?),
            t => {
                return Err(StateError::Corrupt(format!(
                    "campaign unit: unknown confidence tag {t}"
                )))
            }
        };
        records.push(ScanRecord {
            target,
            probe_dst,
            responder,
            result,
            confidence,
        });
    }
    let n = d.seq()?;
    let mut silent = Vec::with_capacity(n);
    let mut silent_positions = Vec::with_capacity(n);
    for _ in 0..n {
        silent_positions.push(d.u64()?);
        silent.push(decode_prefix(d)?);
    }
    let n = d.seq()?;
    let mut mopup = Vec::with_capacity(n);
    for _ in 0..n {
        mopup.push(MopAnswer {
            position: d.u64()?,
            target: decode_prefix(d)?,
            probe_dst: d.u128()?.into(),
            responder: d.u128()?.into(),
            via_te: d.bool()?,
        });
    }
    let stats = decode_stats(d)?;
    let consumed = d.u64()?;
    let yielded = d.bool()?;
    let interrupted = d.bool()?;
    let mopup_span = if d.bool()? {
        Some((d.u64()?, d.u64()?))
    } else {
        None
    };
    Ok(UnitRaw {
        unit,
        records,
        positions,
        silent,
        silent_positions,
        mopup,
        stats,
        consumed,
        yielded,
        interrupted,
        mopup_span,
    })
}

/// A loaded campaign checkpoint.
struct CampaignCkpt {
    next_block: usize,
    tick: u64,
    metrics: Snapshot,
    blocks: Vec<BlockResult>,
}

fn write_campaign_ckpt(
    path: &Path,
    fp: u64,
    next_block: usize,
    tick: u64,
    metrics: &Snapshot,
    blocks: &[BlockResult],
) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign\",\
         \"next_block\":{next_block},\"tick\":{tick},\
         \"campaign_fp\":\"{fp:#018x}\",\"sections\":[\"metrics\",\"blocks\"]}}"
    );
    let mut e = Encoder::new();
    e.seq(blocks.len());
    for b in blocks {
        encode_block(&mut e, b);
    }
    write_sectioned(
        path,
        &header,
        &[
            ("metrics", encode_snapshot(metrics)),
            ("blocks", e.finish()),
        ],
    )
}

/// Loads and validates a campaign checkpoint; `Ok(None)` when no
/// checkpoint exists yet (killed before the first block completed).
fn load_campaign_ckpt(path: &Path, expected_fp: u64) -> Result<Option<CampaignCkpt>, StateError> {
    if !path.exists() {
        return Ok(None);
    }
    let what = "campaign checkpoint";
    let (header, mut sections) = read_sectioned(path, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign" {
        return Err(StateError::Corrupt(format!(
            "{what}: expected kind `campaign`, found `{kind}`"
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "campaign checkpoint was taken under configuration {fp:#018x}, \
             this campaign fingerprints as {expected_fp:#018x}"
        )));
    }
    let metrics_raw = sections
        .remove("metrics")
        .ok_or_else(|| StateError::Corrupt(format!("{what}: missing `metrics` section")))?;
    let blocks_raw = sections
        .remove("blocks")
        .ok_or_else(|| StateError::Corrupt(format!("{what}: missing `blocks` section")))?;
    let mut d = Decoder::new(&blocks_raw, "campaign blocks");
    let n = d.seq()?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(decode_block(&mut d)?);
    }
    d.expect_end()?;
    Ok(Some(CampaignCkpt {
        next_block: header.req_u64("next_block", what)? as usize,
        tick: header.req_u64("tick", what)?,
        metrics: decode_snapshot(&metrics_raw)?,
        blocks,
    }))
}

fn encode_prefix(e: &mut Encoder, p: &Prefix) {
    e.u128(p.addr().bits());
    e.u8(p.len());
}

fn decode_prefix(d: &mut Decoder) -> Result<Prefix, StateError> {
    let addr = d.u128()?;
    let len = d.u8()?;
    if len > 128 {
        return Err(StateError::Corrupt(format!(
            "campaign blocks: invalid prefix length {len}"
        )));
    }
    Ok(Prefix::new(addr.into(), len))
}

/// Serialises one [`BlockResult`] into `e` in the `xmap-checkpoint/v1`
/// campaign-block wire form. Exposed so external executors (the
/// `xmap-serve` daemon) can persist per-block campaign units in the
/// exact format the campaign checkpoints use.
pub fn encode_block(e: &mut Encoder, b: &BlockResult) {
    e.u8(b.profile_id);
    e.seq(b.peripheries.len());
    for p in &b.peripheries {
        e.u128(p.address.bits());
        encode_prefix(e, &p.target);
        e.u128(p.probe_dst.bits());
        e.bool(p.same64);
        // IID class as its index in the canonical ALL ordering.
        e.u8(IidClass::ALL
            .iter()
            .position(|c| *c == p.iid_class)
            .expect("every class is in ALL") as u8);
        match p.mac {
            Some(mac) => {
                e.bool(true);
                e.bytes(&mac.octets());
            }
            None => e.bool(false),
        }
        e.bool(p.via_time_exceeded);
    }
    for v in [
        b.stats.sent,
        b.stats.blocked,
        b.stats.received,
        b.stats.invalid,
        b.stats.valid,
        b.stats.retransmits,
        b.stats.rate_limited_suspected,
        b.stats.gave_up,
    ] {
        e.u64(v);
    }
    e.f64_bits(b.stats.paced_secs);
    e.u64(b.probed);
    e.u128(b.space_size);
    e.seq(b.alias_candidates.len());
    for p in &b.alias_candidates {
        encode_prefix(e, p);
    }
    e.u64(b.mop_up_recovered as u64);
}

/// Inverse of [`encode_block`]: decodes one [`BlockResult`], failing
/// with [`StateError::Corrupt`] on any malformed field.
pub fn decode_block(d: &mut Decoder) -> Result<BlockResult, StateError> {
    let profile_id = d.u8()?;
    let n = d.seq()?;
    let mut peripheries = Vec::with_capacity(n);
    for _ in 0..n {
        let address: Ip6 = d.u128()?.into();
        let target = decode_prefix(d)?;
        let probe_dst = d.u128()?.into();
        let same64 = d.bool()?;
        let class_idx = d.u8()? as usize;
        let iid_class = *IidClass::ALL.get(class_idx).ok_or_else(|| {
            StateError::Corrupt(format!("campaign blocks: unknown IID class {class_idx}"))
        })?;
        let mac = if d.bool()? {
            let octets = d.bytes()?;
            let octets: [u8; 6] = octets.as_slice().try_into().map_err(|_| {
                StateError::Corrupt(format!(
                    "campaign blocks: MAC must be 6 octets, found {}",
                    octets.len()
                ))
            })?;
            Some(Mac::new(octets))
        } else {
            None
        };
        let via_time_exceeded = d.bool()?;
        peripheries.push(DiscoveredPeriphery {
            address,
            target,
            probe_dst,
            same64,
            iid_class,
            mac,
            via_time_exceeded,
        });
    }
    let stats = ScanStats {
        sent: d.u64()?,
        blocked: d.u64()?,
        received: d.u64()?,
        invalid: d.u64()?,
        valid: d.u64()?,
        retransmits: d.u64()?,
        rate_limited_suspected: d.u64()?,
        gave_up: d.u64()?,
        paced_secs: d.f64_bits()?,
    };
    let probed = d.u64()?;
    let space_size = d.u128()?;
    let n_alias = d.seq()?;
    let mut alias_candidates = Vec::with_capacity(n_alias);
    for _ in 0..n_alias {
        alias_candidates.push(decode_prefix(d)?);
    }
    let mop_up_recovered = d.u64()? as usize;
    Ok(BlockResult {
        profile_id,
        peripheries,
        stats,
        probed,
        space_size,
        alias_candidates,
        mop_up_recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::ScanConfig;
    use xmap_netsim::world::{World, WorldConfig};

    fn scanner(max: u64) -> Scanner<World> {
        let world = World::with_config(WorldConfig::lossless(99, 50));
        Scanner::new(
            world,
            ScanConfig {
                max_targets: Some(max),
                seed: 5,
                ..Default::default()
            },
        )
    }

    #[test]
    fn block_scan_discovers_and_dedups() {
        let mut s = scanner(1 << 15);
        let campaign = Campaign::new(1 << 15);
        // Bharti Airtel (id 3) is the densest block.
        let profile = &SAMPLE_BLOCKS[2];
        let block = campaign.run_block(&mut s, profile);
        assert!(block.unique() > 50, "found {}", block.unique());
        // Dedup: all addresses unique.
        let set: FxHashSet<_> = block.peripheries.iter().map(|p| p.address).collect();
        assert_eq!(set.len(), block.unique());
        // Airtel is ~99% same-/64.
        assert!(block.same_frac() > 0.9, "same {}", block.same_frac());
    }

    #[test]
    fn diff_block_classified_correctly() {
        let mut s = scanner(1 << 16);
        let campaign = Campaign::new(1 << 16);
        // AT&T broadband (id 6, index 5): 100% diff.
        let block = campaign.run_block(&mut s, &SAMPLE_BLOCKS[5]);
        assert!(block.unique() > 3, "found {}", block.unique());
        assert!(block.same_frac() < 0.1, "same {}", block.same_frac());
    }

    #[test]
    fn eui64_macs_extracted() {
        let mut s = scanner(1 << 16);
        let campaign = Campaign::new(1 << 16);
        // China Mobile broadband (id 13, index 12): 33.1% EUI-64, dense.
        let block = campaign.run_block(&mut s, &SAMPLE_BLOCKS[12]);
        assert!(block.unique() > 60, "found {}", block.unique());
        let eui_frac = block.eui64_count() as f64 / block.unique() as f64;
        assert!((0.2..0.5).contains(&eui_frac), "eui frac {eui_frac}");
        // Nearly all MACs unique.
        assert!(block.unique_mac() as f64 >= block.eui64_count() as f64 * 0.85);
    }

    #[test]
    fn scale_factor_math() {
        let block = BlockResult {
            profile_id: 1,
            peripheries: Vec::new(),
            stats: ScanStats::default(),
            probed: 1 << 20,
            space_size: 1 << 32,
            alias_candidates: Vec::new(),
            mop_up_recovered: 0,
        };
        assert_eq!(block.scale_factor(), 4096.0);
        assert_eq!(block.estimated_total(), 0.0);
    }

    #[test]
    fn full_campaign_covers_all_blocks() {
        let mut s = scanner(1 << 14);
        let result = Campaign::new(1 << 14).run(&mut s);
        assert_eq!(result.blocks.len(), 15);
        assert!(result.total_unique() > 100, "{}", result.total_unique());
        // Mobile-heavy blocks dominate, so pooled same > 50%.
        assert!(result.same_frac() > 0.5, "{}", result.same_frac());
        // Scale-corrected estimate lands in the right decade around the
        // paper's 52.5M even at this small slice.
        let est = result.estimated_total();
        assert!((1.5e7..1.8e8).contains(&est), "estimate {est}");
    }

    #[test]
    fn alias_candidates_detected_and_verified() {
        // BSNL (index 1) has the highest aliased fraction; scan a slice
        // big enough to hit at least one aliased sub-prefix (1e-5 of 2^17).
        let mut s = scanner(1 << 17);
        let campaign = Campaign::new(1 << 17);
        let mut block = campaign.run_block(&mut s, &SAMPLE_BLOCKS[1]);
        if block.alias_candidates.is_empty() {
            // Statistically possible at this slice; nothing to verify.
            return;
        }
        let n_before = block.alias_candidates.len();
        let confirmed = campaign.verify_aliases(&mut s, &mut block);
        assert_eq!(confirmed.len(), block.alias_candidates.len());
        assert!(confirmed.len() <= n_before);
        // Aliased prefixes never appear among discovered peripheries.
        for p in &confirmed {
            assert!(
                block.peripheries.iter().all(|d| !p.contains(d.address)),
                "aliased {p} leaked into the periphery set"
            );
        }
    }

    #[test]
    fn block_codec_roundtrips() {
        let mut s = scanner(1 << 14);
        let campaign = Campaign::new(1 << 14);
        let block = campaign.run_block(&mut s, &SAMPLE_BLOCKS[2]);
        assert!(block.unique() > 0, "need a nonempty block to exercise");
        let mut e = Encoder::new();
        encode_block(&mut e, &block);
        let raw = e.finish();
        let mut d = Decoder::new(&raw, "test");
        let back = decode_block(&mut d).unwrap();
        d.expect_end().unwrap();
        assert_eq!(back, block);
    }

    #[test]
    fn unit_codec_roundtrips() {
        let mut s = scanner(1 << 13);
        let campaign = Campaign::new(1 << 13);
        let profile = &SAMPLE_BLOCKS[2];
        let unit = SplitUnit {
            offset: 3,
            stride: 2,
            cap: 1 << 11,
        };
        let mut raw = campaign.unit_main(&mut s, profile, unit);
        campaign.unit_mop_up(&mut s, profile, &mut raw);
        assert!(!raw.records.is_empty(), "need records to exercise codec");
        let mut e = Encoder::new();
        encode_unit_raw(&mut e, &raw);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes, "test");
        let back = decode_unit_raw(&mut d).unwrap();
        d.expect_end().unwrap();
        assert_eq!(back, raw);
    }

    /// The tentpole merge invariant at the campaign layer: a block split
    /// into sub-shard units at an arbitrary cursor, assembled from the
    /// units' raw outputs, is byte-identical (CSV and stats) to the
    /// unsplit sequential run.
    #[test]
    fn split_units_assemble_to_sequential_block() {
        let cap = 1 << 13;
        let campaign = Campaign::new(cap);
        let profile = &SAMPLE_BLOCKS[2];
        let baseline = campaign.run_block(&mut scanner(cap), profile);

        for (consumed, parts) in [(0u64, 2u64), (1000, 3), (cap - 1, 2)] {
            let whole = SplitUnit::whole(cap);
            let (settled, tail) = whole.split_tail(consumed, parts);
            let mut units = Vec::new();
            let mut s = scanner(cap);
            if settled.cap > 0 {
                let mut raw = campaign.unit_main(&mut s, profile, settled);
                campaign.unit_mop_up(&mut s, profile, &mut raw);
                units.push(raw);
            }
            for part in tail {
                let mut raw = campaign.unit_main(&mut s, profile, part);
                campaign.unit_mop_up(&mut s, profile, &mut raw);
                units.push(raw);
            }
            let merged = campaign.assemble(profile, units, s.tracer());
            assert_eq!(
                merged, baseline,
                "split at {consumed} into {parts} diverged from sequential"
            );
        }
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted() {
        use xmap_netsim::KillPoint;
        use xmap_state::AbortSignal;
        let path = std::env::temp_dir().join(format!("xmap-campaign-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let campaign = Campaign::new(1 << 12);
        let baseline = campaign.run(&mut scanner(1 << 12));

        let signal = AbortSignal::new();
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.arm_kill(
            KillPoint {
                after_probes: Some(10_000),
                ..Default::default()
            },
            signal.clone(),
        );
        let mut killed = Scanner::new(
            world,
            ScanConfig {
                max_targets: Some(1 << 12),
                seed: 5,
                ..Default::default()
            },
        );
        killed.set_abort(signal);
        let (partial, interrupted) = campaign
            .run_checkpointed(&mut killed, &path, false)
            .unwrap();
        assert!(interrupted, "kill point must interrupt the campaign");
        assert!(partial.blocks.len() < baseline.blocks.len());

        let mut resumed = scanner(1 << 12);
        let (full, interrupted) = campaign
            .run_checkpointed(&mut resumed, &path, true)
            .unwrap();
        assert!(!interrupted);
        assert_eq!(full, baseline, "resumed campaign must match uninterrupted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_different_campaign_is_refused() {
        let path = std::env::temp_dir().join(format!(
            "xmap-campaign-mismatch-{}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let campaign = Campaign::new(1 << 10);
        let mut s = scanner(1 << 10);
        campaign.run_checkpointed(&mut s, &path, false).unwrap();
        let other = Campaign::new(1 << 11);
        let mut s2 = scanner(1 << 11);
        let err = other.run_checkpointed(&mut s2, &path, true).unwrap_err();
        assert!(
            matches!(err, StateError::Mismatch(_)),
            "expected Mismatch, got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn histogram_randomized_dominates() {
        let mut s = scanner(1 << 14);
        let result = Campaign::new(1 << 14).run(&mut s);
        let h = result.iid_histogram();
        assert!(h.total() > 100);
        // Table III: randomized is the most common class (75.5%).
        assert!(h.percent(IidClass::Randomized) > 50.0);
    }
}
