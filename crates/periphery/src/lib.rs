//! IPv6 network-periphery discovery (Sections III–IV of the paper).
//!
//! Built on the [`xmap`] scanner and any [`xmap_netsim::Network`], this
//! crate implements the measurement methodology:
//!
//! * [`boundary`] — the subnet-boundary (sub-prefix length) inference
//!   algorithm of Section IV-A,
//! * [`campaign`] — the periphery-discovery campaign over the fifteen
//!   sample blocks: probe once per sub-prefix, harvest ICMPv6 errors,
//!   deduplicate, classify same/diff, extract EUI-64 MACs (Table II),
//! * [`vendor`] — device-vendor identification from embedded MAC addresses
//!   and application-level information (Table IV),
//! * IID statistics via [`xmap_addr::IidHistogram`] (Tables III/V/X).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod alias;
pub mod baseline;
pub mod boundary;
pub mod campaign;
pub mod parallel;
pub mod split;
pub mod topomap;
pub mod vendor;

pub use adaptive::{AdaptiveCampaign, AdaptiveConfig, AdaptiveOutcome};
pub use alias::{check_aliased, is_aliased, AliasVerdict};
pub use baseline::{hitlist_scan, traceroute_discovery, BaselineComparison};
pub use boundary::{infer_boundary, BoundaryInference};
pub use campaign::{
    decode_block, encode_block, BlockResult, Campaign, CampaignResult, DiscoveredPeriphery,
};
pub use parallel::{BlockMode, CampaignOutcome, ParallelCampaign, UnitMode, UnitPlan};
pub use split::{simulate_schedule, ScheduleStats, SplitUnit};
pub use topomap::{Role, TopologyMap};
pub use vendor::{identify, VendorCounts};
