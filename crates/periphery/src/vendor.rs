//! Device-vendor identification (Section IV-E / Table IV).
//!
//! Two identification channels, exactly as in the paper:
//!
//! * the MAC address embedded in an EUI-64 IID, resolved against the OUI
//!   registry (hardware channel),
//! * vendor strings disclosed at the application layer (HTTP pages, TLS
//!   certificates, TELNET banners) collected by the service scan.
//!
//! [`identify`] merges the two (hardware wins on conflict, as OUI data is
//! authoritative); [`VendorCounts`] aggregates into the Table IV layout
//! split by device class.

use std::collections::HashMap;

use xmap_addr::oui::{self, DeviceClass};
use xmap_addr::Mac;

/// Resolves a device's vendor from its identification channels.
///
/// # Examples
///
/// ```
/// use xmap_periphery::identify;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let mac: xmap_addr::Mac = "38:e1:aa:01:02:03".parse()?; // ZTE OUI
/// assert_eq!(identify(Some(mac), None), Some("ZTE"));
/// assert_eq!(identify(None, Some("TP-Link")), Some("TP-Link"));
/// assert_eq!(identify(None, None), None);
/// # Ok(())
/// # }
/// ```
pub fn identify(mac: Option<Mac>, app_vendor: Option<&str>) -> Option<&'static str> {
    if let Some(entry) = mac.and_then(oui::lookup_mac) {
        return Some(entry.vendor);
    }
    // Application-level strings must still resolve against the registry to
    // be counted as explicit vendor affiliations.
    app_vendor
        .and_then(|v| oui::OUI_TABLE.iter().find(|e| e.vendor == v))
        .map(|e| e.vendor)
}

/// Vendor → device-count aggregation, split by device class (Table IV).
#[derive(Debug, Clone, Default)]
pub struct VendorCounts {
    counts: HashMap<&'static str, u64>,
}

impl VendorCounts {
    /// Creates an empty aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one identified device.
    pub fn record(&mut self, vendor: &'static str) {
        *self.counts.entry(vendor).or_insert(0) += 1;
    }

    /// Total identified devices.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total identified devices of one class.
    pub fn total_of(&self, class: DeviceClass) -> u64 {
        self.counts
            .iter()
            .filter(|(v, _)| oui::class_of(v) == Some(class))
            .map(|(_, c)| *c)
            .sum()
    }

    /// Count for one vendor.
    pub fn count(&self, vendor: &str) -> u64 {
        self.counts.get(vendor).copied().unwrap_or(0)
    }

    /// Vendors of a class sorted by descending count (the Table IV rows).
    pub fn top(&self, class: DeviceClass) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = self
            .counts
            .iter()
            .filter(|(v, _)| oui::class_of(v) == Some(class))
            .map(|(v, c)| (*v, *c))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// Merges another aggregation into this one.
    pub fn merge(&mut self, other: &VendorCounts) {
        for (v, c) in &other.counts {
            *self.counts.entry(v).or_insert(0) += c;
        }
    }
}

impl Extend<&'static str> for VendorCounts {
    fn extend<T: IntoIterator<Item = &'static str>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_wins_over_app_string() {
        let zte_mac: Mac = "38:e1:aa:00:00:01".parse().unwrap();
        assert_eq!(identify(Some(zte_mac), Some("TP-Link")), Some("ZTE"));
    }

    #[test]
    fn unknown_oui_falls_back_to_app() {
        let unknown: Mac = "00:00:00:00:00:01".parse().unwrap();
        assert_eq!(identify(Some(unknown), Some("Netgear")), Some("Netgear"));
        assert_eq!(identify(Some(unknown), Some("Not A Vendor")), None);
    }

    #[test]
    fn counts_and_ranking() {
        let mut counts = VendorCounts::new();
        for _ in 0..5 {
            counts.record("ZTE");
        }
        for _ in 0..3 {
            counts.record("TP-Link");
        }
        counts.record("Apple");
        assert_eq!(counts.total(), 9);
        assert_eq!(counts.count("ZTE"), 5);
        assert_eq!(counts.total_of(DeviceClass::Cpe), 8);
        assert_eq!(counts.total_of(DeviceClass::Ue), 1);
        let top = counts.top(DeviceClass::Cpe);
        assert_eq!(top[0], ("ZTE", 5));
        assert_eq!(top[1], ("TP-Link", 3));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = VendorCounts::new();
        a.record("ZTE");
        let mut b = VendorCounts::new();
        b.record("ZTE");
        b.record("Huawei");
        a.merge(&b);
        assert_eq!(a.count("ZTE"), 2);
        assert_eq!(a.count("Huawei"), 1);
    }

    #[test]
    fn extend_records() {
        let mut counts = VendorCounts::new();
        counts.extend(["ZTE", "ZTE", "Apple"]);
        assert_eq!(counts.count("ZTE"), 2);
    }
}
