//! Intra-block shard splitting: the nested-shard math and the
//! deterministic straggler model behind the campaign executor's
//! split-when-idle protocol (DESIGN.md §5j).
//!
//! A [`SplitUnit`] names an arithmetic sub-progression of one block's
//! walk positions: `{offset + j·stride : j < cap}` over the block's
//! permuted index walk. The whole block is the root unit `(0, 1, cap)`;
//! when a worker running unit `(o, M, C)` yields after consuming `d`
//! positions, [`SplitUnit::split_tail`] settles the consumed prefix as
//! `(o, M, d)` and deals the remaining `C − d` positions round-robin
//! into `k` parts `(o + (d+i)·M, M·k, ⌈(C−d−i)/k⌉)` — exactly
//! `ParallelScanner`'s `shard s + w·S of S·N` nesting, applied to the
//! *remaining* cursor range. Parts compose: any part can split again,
//! and every reachable partition covers each position exactly once
//! (pinned by the proptests below).
//!
//! Execution: a unit runs as scanner shard `offset % stride` of
//! `stride` with the first `offset / stride` walk positions skipped
//! ([`Scanner::set_sub_shard`](xmap::Scanner::set_sub_shard)), so
//! `offset ≥ stride` — the normal case for late parts — never violates
//! the `shard < shards` invariant. Exactly one unit in any partition of
//! a block has `stride == 1` (the settled root prefix); that
//! [`is_root`](SplitUnit::is_root) unit is the one that carries
//! root-only per-block work.
//!
//! [`simulate_schedule`] is the virtual-clock straggler model: a pure
//! function of (block weights, worker count, split on/off) replaying
//! the steal-queue discipline one slot at a time. The campaign bench
//! summary (`scripts/bench_campaign_summary.py`) ports the same model
//! line for line, so the ≥2× idle-reduction gate holds on a 1-CPU CI
//! host where wall-clock speedups cannot.

use xmap::worker_cap;

/// One sub-shard of a block's walk: positions `{offset + j·stride : j <
/// cap}` of the block's permuted index walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SplitUnit {
    /// First walk position this unit owns.
    pub offset: u64,
    /// Distance between consecutive owned positions.
    pub stride: u64,
    /// Number of positions owned.
    pub cap: u64,
}

impl SplitUnit {
    /// The root unit covering a whole block of `cap` walk positions.
    pub fn whole(cap: u64) -> Self {
        SplitUnit {
            offset: 0,
            stride: 1,
            cap,
        }
    }

    /// Whether this unit is the (settled) root: the unique unit of any
    /// partition with stride 1. Root-only per-block work (the mop-up
    /// refill delay) keys off this.
    pub fn is_root(&self) -> bool {
        self.stride == 1
    }

    /// The scanner shard index this unit runs as.
    pub fn shard(&self) -> u64 {
        self.offset % self.stride
    }

    /// Leading shard-walk positions the scanner discards before this
    /// unit's first owned position.
    pub fn walk_skip(&self) -> u64 {
        self.offset / self.stride
    }

    /// The base walk position of this unit's `j`-th owned position.
    pub fn position(&self, j: u64) -> u64 {
        self.offset + j * self.stride
    }

    /// All owned base walk positions, in unit-local order.
    pub fn positions(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.cap).map(move |j| self.position(j))
    }

    /// Splits the tail of this unit after `consumed` owned positions
    /// into `parts` sub-units, returning `(settled, parts)`: the
    /// settled prefix `(offset, stride, consumed)` plus up to `parts`
    /// non-empty sub-units that exactly partition the remaining
    /// positions. Part `i` takes remaining ordinals `≡ i (mod parts)`,
    /// i.e. `(offset + (consumed+i)·stride, stride·parts,
    /// worker_cap(cap−consumed, i, parts))`; zero-cap parts are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `consumed > cap` or `parts == 0`.
    pub fn split_tail(&self, consumed: u64, parts: u64) -> (SplitUnit, Vec<SplitUnit>) {
        assert!(consumed <= self.cap, "cannot settle beyond the unit cap");
        assert!(parts > 0, "need at least one part");
        let settled = SplitUnit {
            offset: self.offset,
            stride: self.stride,
            cap: consumed,
        };
        let rest = self.cap - consumed;
        let out = (0..parts)
            .filter_map(|i| {
                let cap = worker_cap(rest, i, parts);
                (cap > 0).then(|| SplitUnit {
                    offset: self.offset + (consumed + i) * self.stride,
                    stride: self.stride * parts,
                    cap,
                })
            })
            .collect();
        (settled, out)
    }
}

/// Straggler statistics of one simulated schedule (virtual slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Slots until the last unit finished.
    pub makespan: u64,
    /// Worker-slots spent idle before the makespan.
    pub idle_slots: u64,
    /// p95 of per-block completion slots (the straggler tail).
    pub p95_completion: u64,
}

impl ScheduleStats {
    /// Idle worker-slots as a fraction of all worker-slots.
    pub fn idle_fraction(&self, workers: usize) -> f64 {
        let total = self.makespan * workers as u64;
        if total == 0 {
            0.0
        } else {
            self.idle_slots as f64 / total as f64
        }
    }
}

/// Replays the executor's schedule on a virtual slot clock: blocks of
/// `weights[i]` slots are seeded round-robin onto worker deques, a
/// worker pops its own front and steals from the next worker's back
/// (scanning `w+1, w+2, …` cyclically), one weight-unit completes per
/// busy worker per slot, and — with `split` on — workers left idle at a
/// slot boundary split the largest in-flight remainder `k = idle + 1`
/// ways using [`SplitUnit::split_tail`]'s cap math. Deterministic by
/// construction; `scripts/bench_campaign_summary.py` carries the same
/// model in Python.
pub fn simulate_schedule(weights: &[u64], workers: usize, split: bool) -> ScheduleStats {
    let workers = workers.max(1);
    let mut deques: Vec<std::collections::VecDeque<usize>> = (0..workers)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    for (i, _) in weights.iter().enumerate() {
        deques[i % workers].push_back(i);
    }
    // (block index, remaining slots) per busy worker.
    let mut running: Vec<Option<(usize, u64)>> = vec![None; workers];
    // Unfinished units per block; a block completes when it hits zero.
    let mut open_units: Vec<u64> = weights.iter().map(|&w| u64::from(w > 0)).collect();
    let mut completion: Vec<u64> = vec![0; weights.len()];
    let mut idle_slots = 0u64;
    let mut slot = 0u64;

    loop {
        // Acquire: pop own front, then steal from the next victims' backs.
        for w in 0..workers {
            if running[w].is_some() {
                continue;
            }
            let next = deques[w]
                .pop_front()
                .or_else(|| (1..workers).find_map(|d| deques[(w + d) % workers].pop_back()));
            if let Some(b) = next {
                if weights[b] > 0 {
                    running[w] = Some((b, weights[b]));
                }
            }
        }
        // Split: idle workers fan out the largest in-flight remainder.
        if split {
            loop {
                let idle: Vec<usize> = (0..workers).filter(|&w| running[w].is_none()).collect();
                if idle.is_empty() || !deques.iter().all(|d| d.is_empty()) {
                    break;
                }
                let victim = (0..workers)
                    .filter(|&w| running[w].is_some_and(|(_, rest)| rest >= 2))
                    .max_by_key(|&w| (running[w].expect("filtered").1, usize::MAX - w));
                let Some(v) = victim else { break };
                let (block, rest) = running[v].expect("victim is busy");
                let k = (idle.len() + 1) as u64;
                running[v] = Some((block, worker_cap(rest, 0, k)));
                let mut assigned = false;
                for (i, &w) in idle.iter().enumerate() {
                    let cap = worker_cap(rest, (i + 1) as u64, k);
                    if cap > 0 {
                        running[w] = Some((block, cap));
                        open_units[block] += 1;
                        assigned = true;
                    }
                }
                if !assigned {
                    break;
                }
            }
        }
        // Work: one weight-unit per busy worker per slot.
        let busy = running.iter().filter(|r| r.is_some()).count();
        if busy == 0 {
            break;
        }
        idle_slots += (workers - busy) as u64;
        slot += 1;
        for r in running.iter_mut() {
            if let Some((block, rest)) = r.as_mut() {
                *rest -= 1;
                if *rest == 0 {
                    open_units[*block] -= 1;
                    if open_units[*block] == 0 {
                        completion[*block] = slot;
                    }
                    *r = None;
                }
            }
        }
    }

    let mut done: Vec<u64> = completion
        .iter()
        .zip(weights)
        .filter(|(_, &w)| w > 0)
        .map(|(&c, _)| c)
        .collect();
    done.sort_unstable();
    let p95 = if done.is_empty() {
        0
    } else {
        done[((done.len() * 95).div_ceil(100))
            .saturating_sub(1)
            .min(done.len() - 1)]
    };
    ScheduleStats {
        makespan: slot,
        idle_slots,
        p95_completion: p95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn positions_of(units: &[SplitUnit]) -> Vec<u64> {
        let mut all: Vec<u64> = units.iter().flat_map(|u| u.positions()).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn whole_unit_covers_every_position_once() {
        let u = SplitUnit::whole(10);
        assert!(u.is_root());
        assert_eq!(
            u.positions().collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn split_tail_settles_prefix_and_partitions_rest() {
        let (settled, parts) = SplitUnit::whole(10).split_tail(4, 3);
        assert_eq!(
            settled,
            SplitUnit {
                offset: 0,
                stride: 1,
                cap: 4
            }
        );
        assert!(settled.is_root());
        let mut rest = positions_of(&parts);
        rest.sort_unstable();
        assert_eq!(rest, (4..10).collect::<Vec<_>>());
        // No part is a root: the settled prefix keeps stride 1 for itself.
        assert!(parts.iter().all(|p| !p.is_root()));
    }

    #[test]
    fn sub_shard_form_respects_shard_invariant() {
        let (_, parts) = SplitUnit::whole(1000).split_tail(700, 4);
        for p in &parts {
            assert!(p.shard() < p.stride, "{p:?}");
            // shard + (skip + j) * stride reproduces every position.
            let rebuilt: Vec<u64> = (0..p.cap)
                .map(|j| p.shard() + (p.walk_skip() + j) * p.stride)
                .collect();
            assert_eq!(rebuilt, p.positions().collect::<Vec<_>>());
        }
    }

    proptest! {
        /// Splitting at any cursor into any (workers, shard) layout
        /// exactly partitions the remaining indices — no duplicate, no
        /// loss — and composes with a second nested split of any part.
        #[test]
        fn nested_splits_partition_exactly(
            cap in 1u64..5000,
            consumed_frac in 0u64..=100,
            parts in 1u64..9,
            pick in 0usize..8,
            consumed2_frac in 0u64..=100,
            parts2 in 1u64..9,
        ) {
            let root = SplitUnit::whole(cap);
            let consumed = cap * consumed_frac / 100;
            let (settled, subs) = root.split_tail(consumed, parts);
            let mut units = vec![settled];
            units.extend(subs.iter().copied());
            prop_assert_eq!(positions_of(&units), (0..cap).collect::<Vec<_>>());

            // Second-level split of an arbitrary part.
            if !subs.is_empty() {
                let victim = subs[pick % subs.len()];
                let consumed2 = victim.cap * consumed2_frac / 100;
                let (settled2, subs2) = victim.split_tail(consumed2, parts2);
                let mut nested: Vec<SplitUnit> = units
                    .iter()
                    .copied()
                    .filter(|u| *u != victim)
                    .collect();
                nested.push(settled2);
                nested.extend(subs2);
                prop_assert_eq!(positions_of(&nested), (0..cap).collect::<Vec<_>>());
                // Exactly one root survives any real split schedule
                // (the executor always splits k ≥ 2; a k = 1 "split"
                // degenerately hands the whole tail to one part, which
                // then inherits the parent's stride).
                if parts >= 2 && parts2 >= 2 {
                    prop_assert_eq!(nested.iter().filter(|u| u.is_root()).count(), 1);
                }
            }
        }

        /// Every unit runs under the scanner's `shard < shards` invariant.
        #[test]
        fn parts_always_satisfy_shard_invariant(
            cap in 1u64..5000,
            consumed_frac in 0u64..=100,
            parts in 2u64..9,
        ) {
            let consumed = cap * consumed_frac / 100;
            let (_, subs) = SplitUnit::whole(cap).split_tail(consumed, parts);
            for p in subs {
                prop_assert!(p.shard() < p.stride);
                prop_assert_eq!(p.shard() + p.walk_skip() * p.stride, p.offset);
            }
        }
    }

    /// The skewed one-giant-block mix: splitting must cut the idle-slot
    /// fraction at 4 workers by ≥2× — the bench gate, measured in
    /// deterministic virtual slots so it holds on a 1-CPU host.
    #[test]
    fn splitting_halves_idle_fraction_on_skewed_mix() {
        let mut weights = vec![1u64 << 12; 15];
        weights[2] = 1 << 16; // one giant block dominates the tail
        let nosplit = simulate_schedule(&weights, 4, false);
        let split = simulate_schedule(&weights, 4, true);
        let before = nosplit.idle_fraction(4);
        let after = split.idle_fraction(4);
        assert!(before > 0.2, "skew must manufacture idleness: {before}");
        assert!(
            after * 2.0 <= before,
            "split idle fraction {after} not ≥2× below {before}"
        );
        assert!(split.makespan < nosplit.makespan);
        assert!(split.p95_completion <= nosplit.p95_completion);
        // Work is conserved: total busy slots equal total weight.
        let total: u64 = weights.iter().sum();
        assert_eq!(nosplit.makespan * 4 - nosplit.idle_slots, total);
        assert_eq!(split.makespan * 4 - split.idle_slots, total);
        // Exact values, pinned so the Python port of this model in
        // scripts/bench_campaign_summary.py cannot drift silently: the
        // script hard-codes the same mix and must report these numbers.
        assert_eq!(
            nosplit,
            ScheduleStats {
                makespan: 65536,
                idle_slots: 139264,
                p95_completion: 65536,
            }
        );
        assert_eq!(
            split,
            ScheduleStats {
                makespan: 30720,
                idle_slots: 0,
                p95_completion: 30720,
            }
        );
    }

    #[test]
    fn uniform_mix_needs_no_splits() {
        let weights = vec![1u64 << 10; 16];
        let nosplit = simulate_schedule(&weights, 4, false);
        let split = simulate_schedule(&weights, 4, true);
        assert_eq!(nosplit, split);
        assert_eq!(nosplit.idle_slots, 0);
    }

    #[test]
    fn single_worker_schedule_is_sequential() {
        let weights = [100u64, 50, 7];
        let s = simulate_schedule(&weights, 1, true);
        assert_eq!(s.makespan, 157);
        assert_eq!(s.idle_slots, 0);
    }
}
