//! The parallel campaign executor: block-level work stealing with a
//! deterministic merge.
//!
//! [`Campaign::run`] walks the fifteen sample blocks sequentially on one
//! [`Scanner`]; this module runs each block on one of N workers — each
//! with a private network replica, validator, retry queue, AIMD
//! controller and telemetry [`Registry`] — and merges the
//! [`BlockResult`]s back in Table II (profile) order, so a seeded
//! N-worker campaign is **byte-identical** to the sequential one:
//! records, [`ScanStats`] sums and the merged telemetry [`Snapshot`]
//! included.
//!
//! # Scheduling
//!
//! Blocks differ wildly in cost — scan-space sizes span 2²⁸..2³², and
//! ICMPv6 token-bucket tightness decides how much mop-up work a block
//! carries — so static assignment would leave fast workers idle behind
//! the slowest block. The executor instead drains a deque-based
//! [`StealQueue`]: each worker owns a round-robin-seeded deque, pops its
//! own front, and steals from a victim's back once empty. The schedule
//! is nondeterministic under contention, but every result is tagged with
//! its block index and merged in index order, which makes the schedule
//! unobservable in the output.
//!
//! # Determinism envelope
//!
//! Byte-identity across worker counts (and against [`Campaign::run`])
//! holds because per-block results do not depend on the virtual clock at
//! which the block starts:
//!
//! * netsim responses are pure functions of `(probe, world seed)`; the
//!   baseline loss draw keys on addresses, not ticks,
//! * ICMPv6 token-bucket limiters initialize lazily on each device's
//!   first probe, so refill timing is *relative* to the block's own
//!   probes, and blocks probe disjoint devices,
//! * the mop-up pass (retransmission ordering included) runs entirely
//!   inside the block's owning worker.
//!
//! Time-keyed fault plans (jitter, flaky windows) fall outside the
//! envelope, exactly as for [`ParallelScanner`]. Private replicas also
//! assume campaign probes are the only traffic to the sample blocks
//! during the campaign (true for the default fault-free worlds; a
//! limiter depleted by *earlier* probes on a shared scanner is state a
//! replica cannot see).
//!
//! # Checkpoint layout
//!
//! [`ParallelCampaign::run_checkpointed`] keeps one directory of
//! `xmap-checkpoint/v1` sectioned files:
//!
//! ```text
//! dir/
//!   campaign.ckpt        kind `campaign-dir`: campaign fingerprint
//!   block-NN.ckpt        kind `campaign-block`: one completed block +
//!                        its telemetry delta (written by the owning
//!                        worker after the block, mop-up included)
//!   block-NN.inprogress  marker while a worker is inside block NN;
//!                        removed on completion, left behind by a kill
//! ```
//!
//! On resume every block is classified [`Skip`](BlockMode::Skip)
//! (checkpoint file present: load, don't re-scan),
//! [`Resume`](BlockMode::Resume) (marker present: the kill hit
//! mid-block; the partial work is discarded and the block re-runs from
//! its start inside whichever worker pops it) or
//! [`Fresh`](BlockMode::Fresh) (never started). Because completed blocks
//! are self-contained deltas and the campaign fingerprint excludes the
//! worker count, a campaign killed under one N resumes byte-identically
//! under any other.
//!
//! [`Registry`]: xmap_telemetry::Registry
//! [`ScanStats`]: xmap::ScanStats
//! [`ParallelScanner`]: xmap::ParallelScanner

use std::path::{Path, PathBuf};

use xmap::{merge_worker_snapshots, ScanConfig, Scanner, StealQueue};
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::packet::Network;
use xmap_state::checkpoint::{
    decode_snapshot, encode_snapshot, parse_fp, read_sectioned, write_sectioned,
};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{AbortSignal, StateError, CHECKPOINT_SCHEMA};
use xmap_telemetry::{Snapshot, Telemetry};

use crate::campaign::{decode_block, encode_block, BlockResult, Campaign, CampaignResult};

/// What the resume planner decided for one sample block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMode {
    /// A completed checkpoint exists: load it, don't re-scan.
    Skip,
    /// A kill hit mid-block (in-progress marker without a checkpoint):
    /// the partial work was discarded; re-run the block from its start.
    Resume,
    /// The block was never started.
    Fresh,
}

/// Outcome of one parallel campaign invocation.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Completed blocks in Table II order (gaps possible when
    /// interrupted).
    pub result: CampaignResult,
    /// Merged telemetry across skipped-block deltas and live workers,
    /// with `scan.hit_rate_ppm` recomputed from the merged totals.
    pub snapshot: Snapshot,
    /// Whether an armed abort signal stopped the campaign early (the
    /// checkpoint directory then holds everything completed so far).
    pub interrupted: bool,
}

/// Work-stealing multi-worker driver around a [`Campaign`].
///
/// # Examples
///
/// ```
/// use xmap::ScanConfig;
/// use xmap_netsim::World;
/// use xmap_periphery::{Campaign, ParallelCampaign};
///
/// let executor = ParallelCampaign::new(Campaign::new(1 << 12), 2);
/// let outcome = executor.run(&ScanConfig::default(), |_, telemetry| {
///     let mut world = World::new(7);
///     world.set_telemetry(telemetry);
///     world
/// });
/// assert_eq!(outcome.result.blocks.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelCampaign {
    campaign: Campaign,
    workers: usize,
}

impl ParallelCampaign {
    /// An executor running `campaign` on `workers` threads. One worker
    /// reproduces [`Campaign::run`] exactly (the queue degenerates to
    /// FIFO block order).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(campaign: Campaign, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ParallelCampaign { campaign, workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wrapped campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Runs the campaign across all workers and merges deterministically.
    ///
    /// `make_network(w, telemetry)` builds worker `w`'s network replica;
    /// every worker must be built over the same world seed (disjoint
    /// blocks make replicas interchangeable with one shared world —
    /// see the module docs for the envelope). Each worker scans whole
    /// blocks under `base` unchanged; `base.max_targets` is ignored
    /// (the campaign caps per block).
    pub fn run<N: Network + Send>(
        &self,
        base: &ScanConfig,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> CampaignOutcome {
        self.execute(base, None, None, make_network)
            .expect("no checkpoint dir, no I/O to fail")
    }

    /// Runs the campaign with block-granular checkpointing in `dir`
    /// (created if missing; see the module docs for the layout). An
    /// armed `abort` signal stops every worker at its next block
    /// boundary; the partial block is discarded (its in-progress marker
    /// stays behind) and the outcome reports `interrupted`. A later
    /// `resume: true` invocation — under **any** worker count — loads
    /// completed blocks, re-runs the rest, and produces a result and
    /// merged snapshot byte-identical to an uninterrupted campaign.
    ///
    /// Resuming under a different campaign or scanner configuration is
    /// a hard [`StateError::Mismatch`]; `resume: false` wipes any
    /// previous campaign state in `dir`.
    pub fn run_checkpointed<N: Network + Send>(
        &self,
        base: &ScanConfig,
        dir: &Path,
        resume: bool,
        abort: Option<&AbortSignal>,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Result<CampaignOutcome, StateError> {
        let fp = self.campaign.fingerprint_cfg(base);
        std::fs::create_dir_all(dir)
            .map_err(|e| StateError::io(format!("create campaign dir {}", dir.display()), e))?;
        let loaded = if resume {
            let plan = load_dir(dir, fp)?;
            let mut loaded: Vec<Option<LoadedBlock>> =
                (0..SAMPLE_BLOCKS.len()).map(|_| None).collect();
            for (idx, mode) in plan.iter().enumerate() {
                if *mode == BlockMode::Skip {
                    loaded[idx] = Some(load_block_ckpt(dir, idx, fp)?);
                }
            }
            loaded
        } else {
            // Fresh start: wipe stale blocks so a same-fingerprint rerun
            // can never silently skip them.
            for idx in 0..SAMPLE_BLOCKS.len() {
                let _ = std::fs::remove_file(block_path(dir, idx));
                let _ = std::fs::remove_file(marker_path(dir, idx));
            }
            write_dir_manifest(dir, fp)?;
            (0..SAMPLE_BLOCKS.len()).map(|_| None).collect()
        };
        self.execute(base, Some((dir, fp, loaded)), abort, make_network)
    }

    /// Classifies every block for a resume of the campaign checkpointed
    /// in `dir` without running anything — the `Skip`/`Resume`/`Fresh`
    /// plan [`run_checkpointed`](Self::run_checkpointed) would execute.
    pub fn resume_plan(&self, base: &ScanConfig, dir: &Path) -> Result<Vec<BlockMode>, StateError> {
        load_dir(dir, self.campaign.fingerprint_cfg(base))
    }

    /// Shared driver behind [`run`](Self::run) and
    /// [`run_checkpointed`](Self::run_checkpointed). `ckpt` carries
    /// `(dir, fingerprint, per-block loaded checkpoints)` when
    /// checkpointing is on.
    fn execute<N: Network + Send>(
        &self,
        base: &ScanConfig,
        ckpt: Option<(&Path, u64, Vec<Option<LoadedBlock>>)>,
        abort: Option<&AbortSignal>,
        mut make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Result<CampaignOutcome, StateError> {
        let (dir, fp, loaded) = match ckpt {
            Some((dir, fp, loaded)) => (Some(dir), fp, loaded),
            None => (None, 0, (0..SAMPLE_BLOCKS.len()).map(|_| None).collect()),
        };
        // Only non-loaded blocks enter the queue, seeded round-robin in
        // block order so one worker reproduces the sequential walk.
        let pending: Vec<usize> = (0..SAMPLE_BLOCKS.len())
            .filter(|i| loaded[*i].is_none())
            .collect();
        let queue = StealQueue::new(pending.len(), self.workers);
        let mut scanners: Vec<Scanner<N>> = (0..self.workers)
            .map(|w| {
                let telemetry = Telemetry::new();
                let network = make_network(w, &telemetry);
                let mut scanner = Scanner::with_telemetry(network, base.clone(), telemetry);
                if let Some(signal) = abort {
                    scanner.set_abort(signal.clone());
                }
                scanner
            })
            .collect();

        let outs: Vec<Result<Vec<(usize, BlockResult)>, StateError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = scanners
                    .iter_mut()
                    .enumerate()
                    .map(|(w, scanner)| {
                        let queue = &queue;
                        let pending = &pending;
                        let campaign = &self.campaign;
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            while !scanner.is_aborted() {
                                let Some(slot) = queue.pop(w) else { break };
                                let idx = pending[slot];
                                if let Some(dir) = dir {
                                    write_marker(dir, idx)?;
                                }
                                let baseline = scanner.telemetry().registry.snapshot();
                                let block = campaign.run_block(scanner, &SAMPLE_BLOCKS[idx]);
                                if scanner.is_aborted() {
                                    // Partial block: discard it; the
                                    // marker stays for the resume plan.
                                    break;
                                }
                                if let Some(dir) = dir {
                                    let delta =
                                        scanner.telemetry().registry.snapshot().diff(&baseline);
                                    write_block_ckpt(dir, fp, idx, &block, &delta)?;
                                    let _ = std::fs::remove_file(marker_path(dir, idx));
                                }
                                done.push((idx, block));
                            }
                            Ok(done)
                        })
                    })
                    .collect();
                // Joining in worker order keeps error reporting (and the
                // merge below) deterministic.
                handles
                    .into_iter()
                    .map(|h| h.join().expect("campaign worker panicked"))
                    .collect()
            });

        let interrupted = abort.is_some_and(AbortSignal::is_set);
        // Merge: loaded blocks and live blocks, in block-index order —
        // which is Table II (profile) order, the sequential walk's order.
        let mut tagged: Vec<(usize, BlockResult)> = Vec::with_capacity(SAMPLE_BLOCKS.len());
        let mut skipped_deltas = Vec::new();
        for (idx, loaded_block) in loaded.into_iter().enumerate() {
            if let Some(l) = loaded_block {
                tagged.push((idx, l.block));
                skipped_deltas.push(l.metrics);
            }
        }
        for out in outs {
            tagged.extend(out?);
        }
        tagged.sort_by_key(|(idx, _)| *idx);
        let result = CampaignResult {
            blocks: tagged.into_iter().map(|(_, b)| b).collect(),
        };
        let snapshot = merge_worker_snapshots(
            skipped_deltas
                .into_iter()
                .chain(scanners.iter().map(|s| s.telemetry().registry.snapshot())),
        );
        Ok(CampaignOutcome {
            result,
            snapshot,
            interrupted,
        })
    }
}

/// One block loaded back from its checkpoint file.
struct LoadedBlock {
    block: BlockResult,
    /// The block's exact telemetry delta (counters and histograms the
    /// block contributed), captured by the worker that ran it.
    metrics: Snapshot,
}

fn block_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("block-{idx:02}.ckpt"))
}

fn marker_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("block-{idx:02}.inprogress"))
}

fn dir_manifest_path(dir: &Path) -> PathBuf {
    dir.join("campaign.ckpt")
}

fn write_marker(dir: &Path, idx: usize) -> Result<(), StateError> {
    let path = marker_path(dir, idx);
    std::fs::write(&path, b"")
        .map_err(|e| StateError::io(format!("write marker {}", path.display()), e))
}

fn write_dir_manifest(dir: &Path, fp: u64) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-dir\",\
         \"blocks\":{},\"campaign_fp\":\"{fp:#018x}\",\"sections\":[]}}",
        SAMPLE_BLOCKS.len()
    );
    write_sectioned(&dir_manifest_path(dir), &header, &[])
}

/// Validates the directory manifest and classifies every block. An
/// absent manifest (killed before anything was written, or a fresh dir)
/// yields an all-[`Fresh`](BlockMode::Fresh) plan, mirroring the
/// sequential campaign's "kill before the first checkpoint resumes as a
/// fresh start".
fn load_dir(dir: &Path, expected_fp: u64) -> Result<Vec<BlockMode>, StateError> {
    let manifest = dir_manifest_path(dir);
    if !manifest.exists() {
        return Ok(vec![BlockMode::Fresh; SAMPLE_BLOCKS.len()]);
    }
    let what = "campaign directory manifest";
    let (header, _) = read_sectioned(&manifest, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-dir" {
        return Err(StateError::Corrupt(format!(
            "{what}: expected kind `campaign-dir`, found `{kind}`"
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "campaign checkpoint directory was written under configuration \
             {fp:#018x}, this campaign fingerprints as {expected_fp:#018x}"
        )));
    }
    Ok((0..SAMPLE_BLOCKS.len())
        .map(|idx| {
            if block_path(dir, idx).exists() {
                BlockMode::Skip
            } else if marker_path(dir, idx).exists() {
                BlockMode::Resume
            } else {
                BlockMode::Fresh
            }
        })
        .collect())
}

fn write_block_ckpt(
    dir: &Path,
    fp: u64,
    idx: usize,
    block: &BlockResult,
    metrics: &Snapshot,
) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-block\",\
         \"block\":{idx},\"profile\":{},\"campaign_fp\":\"{fp:#018x}\",\
         \"sections\":[\"metrics\",\"block\"]}}",
        block.profile_id
    );
    let mut e = Encoder::new();
    encode_block(&mut e, block);
    write_sectioned(
        &block_path(dir, idx),
        &header,
        &[("metrics", encode_snapshot(metrics)), ("block", e.finish())],
    )
}

fn load_block_ckpt(dir: &Path, idx: usize, expected_fp: u64) -> Result<LoadedBlock, StateError> {
    let what = "campaign block checkpoint";
    let path = block_path(dir, idx);
    let (header, mut sections) = read_sectioned(&path, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-block" {
        return Err(StateError::Corrupt(format!(
            "{what} {}: expected kind `campaign-block`, found `{kind}`",
            path.display()
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "block checkpoint {} was taken under configuration {fp:#018x}, \
             this campaign fingerprints as {expected_fp:#018x}",
            path.display()
        )));
    }
    let declared = header.req_u64("block", what)? as usize;
    if declared != idx {
        return Err(StateError::Corrupt(format!(
            "{what} {}: declares block {declared}, expected {idx}",
            path.display()
        )));
    }
    let metrics_raw = sections.remove("metrics").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `metrics` section",
            path.display()
        ))
    })?;
    let block_raw = sections.remove("block").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `block` section",
            path.display()
        ))
    })?;
    let mut d = Decoder::new(&block_raw, "campaign block");
    let block = decode_block(&mut d)?;
    d.expect_end()?;
    if block.profile_id as u64 != header.req_u64("profile", what)? {
        return Err(StateError::Corrupt(format!(
            "{what} {}: profile id does not match its header",
            path.display()
        )));
    }
    Ok(LoadedBlock {
        block,
        metrics: decode_snapshot(&metrics_raw)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::world::{World, WorldConfig};
    use xmap_netsim::KillPoint;

    fn base(max: u64) -> ScanConfig {
        ScanConfig {
            max_targets: Some(max),
            seed: 5,
            ..Default::default()
        }
    }

    fn make_world(_w: usize, telemetry: &Telemetry) -> World {
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.set_telemetry(telemetry);
        world
    }

    fn sequential(tpb: u64) -> (CampaignResult, Snapshot) {
        let telemetry = Telemetry::new();
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.set_telemetry(&telemetry);
        let mut scanner = Scanner::with_telemetry(world, base(tpb), telemetry.clone());
        let result = Campaign::new(tpb).run(&mut scanner);
        (result, telemetry.registry.snapshot())
    }

    #[test]
    fn worker_counts_are_byte_identical() {
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);
        for workers in [1usize, 2, 4] {
            let outcome =
                ParallelCampaign::new(Campaign::new(tpb), workers).run(&base(tpb), make_world);
            assert!(!outcome.interrupted);
            assert_eq!(outcome.result, seq, "{workers} workers diverged");
            assert_eq!(
                outcome.result.to_csv(),
                seq.to_csv(),
                "{workers}-worker CSV diverged"
            );
            assert_eq!(
                outcome.snapshot, seq_snap,
                "{workers}-worker snapshot diverged"
            );
        }
    }

    #[test]
    fn checkpointed_run_writes_all_blocks() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-full-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 10;
        let exec = ParallelCampaign::new(Campaign::new(tpb), 2);
        let outcome = exec
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        assert!(!outcome.interrupted);
        assert_eq!(outcome.result.blocks.len(), SAMPLE_BLOCKS.len());
        let plan = exec.resume_plan(&base(tpb), &dir).unwrap();
        assert!(plan.iter().all(|m| *m == BlockMode::Skip), "{plan:?}");
        // A resume with everything checkpointed scans nothing and still
        // reproduces the result and snapshot exactly.
        let resumed = exec
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert_eq!(resumed.result, outcome.result);
        assert_eq!(resumed.snapshot, outcome.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_and_resume_with_different_worker_count() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);

        let signal = AbortSignal::new();
        let exec2 = ParallelCampaign::new(Campaign::new(tpb), 2);
        let partial = exec2
            .run_checkpointed(&base(tpb), &dir, false, Some(&signal), |w, telemetry| {
                let mut world = World::with_config(WorldConfig::lossless(99, 50));
                world.set_telemetry(telemetry);
                if w == 0 {
                    // Deterministic interrupt: worker 0's world kills the
                    // whole campaign after 6k of its own probes.
                    world.arm_kill(
                        KillPoint {
                            after_probes: Some(6_000),
                            ..Default::default()
                        },
                        signal.clone(),
                    );
                }
                world
            })
            .unwrap();
        assert!(partial.interrupted, "kill point must interrupt");
        assert!(partial.result.blocks.len() < SAMPLE_BLOCKS.len());

        let plan = exec2.resume_plan(&base(tpb), &dir).unwrap();
        assert!(plan.contains(&BlockMode::Skip), "{plan:?}");
        assert!(
            plan.iter().any(|m| *m != BlockMode::Skip),
            "something must be left to do: {plan:?}"
        );

        // Resume under a different worker count.
        let exec3 = ParallelCampaign::new(Campaign::new(tpb), 3);
        let full = exec3
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert!(!full.interrupted);
        assert_eq!(full.result, seq, "resumed campaign must match sequential");
        assert_eq!(full.snapshot, seq_snap, "resumed snapshot must match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_campaign_is_refused() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 9;
        ParallelCampaign::new(Campaign::new(tpb), 2)
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        let other = ParallelCampaign::new(Campaign::new(tpb * 2), 2);
        let err = other
            .run_checkpointed(&base(tpb * 2), &dir, true, None, make_world)
            .unwrap_err();
        assert!(matches!(err, StateError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParallelCampaign::new(Campaign::new(1), 0);
    }
}
