//! The parallel campaign executor: block-level work stealing with a
//! deterministic merge.
//!
//! [`Campaign::run`] walks the fifteen sample blocks sequentially on one
//! [`Scanner`]; this module runs each block on one of N workers — each
//! with a private network replica, validator, retry queue, AIMD
//! controller and telemetry [`Registry`] — and merges the
//! [`BlockResult`]s back in Table II (profile) order, so a seeded
//! N-worker campaign is **byte-identical** to the sequential one:
//! records, [`ScanStats`] sums and the merged telemetry [`Snapshot`]
//! included.
//!
//! # Scheduling
//!
//! Blocks differ wildly in cost — scan-space sizes span 2²⁸..2³², and
//! ICMPv6 token-bucket tightness decides how much mop-up work a block
//! carries — so static assignment would leave fast workers idle behind
//! the slowest block. The executor instead drains a deque-based
//! [`StealQueue`]: each worker owns a round-robin-seeded deque, pops its
//! own front, and steals from a victim's back once empty. The schedule
//! is nondeterministic under contention, but every result is tagged with
//! its block index and merged in index order, which makes the schedule
//! unobservable in the output.
//!
//! # Determinism envelope
//!
//! Byte-identity across worker counts (and against [`Campaign::run`])
//! holds because per-block results do not depend on the virtual clock at
//! which the block starts:
//!
//! * netsim responses are pure functions of `(probe, world seed)`; the
//!   baseline loss draw keys on addresses, not ticks,
//! * ICMPv6 token-bucket limiters initialize lazily on each device's
//!   first probe, so refill timing is *relative* to the block's own
//!   probes, and blocks probe disjoint devices,
//! * the mop-up pass (retransmission ordering included) runs entirely
//!   inside the block's owning worker.
//!
//! Time-keyed fault plans (jitter, flaky windows) fall outside the
//! envelope, exactly as for [`ParallelScanner`]. Private replicas also
//! assume campaign probes are the only traffic to the sample blocks
//! during the campaign (true for the default fault-free worlds; a
//! limiter depleted by *earlier* probes on a shared scanner is state a
//! replica cannot see).
//!
//! # Checkpoint layout
//!
//! [`ParallelCampaign::run_checkpointed`] keeps one directory of
//! `xmap-checkpoint/v1` sectioned files:
//!
//! ```text
//! dir/
//!   campaign.ckpt        kind `campaign-dir`: campaign fingerprint
//!   block-NN.ckpt        kind `campaign-block`: one completed block +
//!                        its telemetry delta (written by the owning
//!                        worker after the block, mop-up included)
//!   block-NN.inprogress  marker while a worker is inside block NN;
//!                        removed on completion, left behind by a kill
//! ```
//!
//! On resume every block is classified [`Skip`](BlockMode::Skip)
//! (checkpoint file present: load, don't re-scan),
//! [`Resume`](BlockMode::Resume) (marker present: the kill hit
//! mid-block; the partial work is discarded and the block re-runs from
//! its start inside whichever worker pops it) or
//! [`Fresh`](BlockMode::Fresh) (never started). Because completed blocks
//! are self-contained deltas and the campaign fingerprint excludes the
//! worker count, a campaign killed under one N resumes byte-identically
//! under any other.
//!
//! # Intra-block splitting
//!
//! Block granularity leaves a straggler tail: once the queue drains,
//! every worker but the one holding the last (often largest) block sits
//! idle. With [`with_split_threshold`](ParallelCampaign::with_split_threshold)
//! set, an idle worker instead raises a yield flag; the busy worker's
//! scanner yields cooperatively at the next slot boundary (in-flight
//! probes already settled), and the remaining index range of its block
//! is split with [`SplitUnit::split_tail`] — nested-shard math over the
//! *remaining* cursor range, so sub-shard `i` of `k` owns exactly the
//! base walk positions `≡ offset + (consumed + i)·stride (mod stride·k)`.
//! Each sub-shard runs the full main-scan → mop-up pipeline on whichever
//! worker claims it, its raw delta is parked, and the last worker to
//! deliver assembles every unit's records in walk-position order (the
//! profile-order merge key extended by the sub-shard tag) — so the
//! committed block, its CSV, its `ScanStats` sums and its telemetry
//! delta are byte-identical to the never-split run for any worker count
//! and any split schedule. The split decision itself is deterministic on
//! the virtual clock only under
//! [`with_force_split_at`](ParallelCampaign::with_force_split_at) (used
//! by tests and the CI kill-point smoke); threshold-gated splits depend
//! on which worker goes idle first, which the position-keyed assembly
//! makes unobservable. Splitting stays inside the lossless determinism
//! envelope above for the same reason blocks do: sub-shards probe
//! disjoint targets of the same block, and each unit's mop-up runs
//! inside the unit.
//!
//! A splitting campaign adds two files per in-flight block to the
//! checkpoint directory:
//!
//! ```text
//! dir/
//!   block-NN.units.ckpt          kind `campaign-units`: the current
//!                                sub-shard layout (offset/stride/cap +
//!                                started flag per unit), rewritten
//!                                durably before new sub-shards become
//!                                claimable
//!   block-NN.unit-O-S.ckpt       kind `campaign-unit`: one completed
//!                                sub-shard's raw delta + metrics
//! ```
//!
//! Both are swept when the assembled block commits, so a completed
//! block looks exactly as it does without splitting. A kill mid-split
//! classifies the block [`Split`](BlockMode::Split): completed units
//! load as [`UnitMode::Skip`], the interrupted one re-runs
//! ([`UnitMode::Resume`]), unstarted ones run [`UnitMode::Fresh`] — under
//! any worker count, and a resume with splitting disabled simply re-runs
//! such blocks whole. Either way the finished campaign is byte-identical
//! to an uninterrupted sequential run. Split activity is counted in
//! `exec.splits` / `exec.split_shards`, which appear in the merged
//! snapshot only when nonzero — `--split-threshold 0` (the default)
//! takes the pre-split executor path untouched.
//!
//! [`Registry`]: xmap_telemetry::Registry
//! [`ScanStats`]: xmap::ScanStats
//! [`ParallelScanner`]: xmap::ParallelScanner
//! [`SplitUnit::split_tail`]: crate::split::SplitUnit::split_tail

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xmap::telemetry::names;
use xmap::{
    insert_exec_counters, merge_worker_snapshots, ScanConfig, Scanner, StealQueue, Supervision,
};
use xmap_failpoint::exec::{ExecAction, ExecFaults, ExecPlan};
use xmap_failpoint::fs as fp;
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::packet::Network;
use xmap_state::checkpoint::{
    decode_snapshot, decode_sub_shards, encode_snapshot, encode_sub_shards, parse_fp,
    read_sectioned, write_sectioned, write_sectioned_opts, SubShardEntry,
};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{AbortSignal, StateError, CHECKPOINT_SCHEMA};
use xmap_telemetry::{Counter, Snapshot, Telemetry};

use crate::campaign::{
    decode_block, decode_unit_raw, encode_block, encode_unit_raw, BlockResult, Campaign,
    CampaignResult, UnitRaw,
};
use crate::split::SplitUnit;

/// Default group-commit quantum: how many block checkpoints a worker
/// publishes before it batches their fsyncs (one `fsync` per file plus
/// one directory sync, instead of a per-block file-plus-rename sync).
pub const DEFAULT_GROUP_COMMIT: usize = 4;

/// What the resume planner decided for one sample block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockMode {
    /// A completed checkpoint exists: load it, don't re-scan.
    Skip,
    /// A kill hit mid-block (in-progress marker without a checkpoint):
    /// the partial work was discarded; re-run the block from its start.
    Resume,
    /// The block was never started.
    Fresh,
    /// A kill hit mid-block *after* a split: the units manifest names
    /// the sub-shard partition, with a per-unit
    /// [`Skip`](UnitMode::Skip)/[`Resume`](UnitMode::Resume)/
    /// [`Fresh`](UnitMode::Fresh) plan. Completed units load from their
    /// unit checkpoints; the rest re-run — under **any** worker count —
    /// and the reassembled block is byte-identical.
    Split(Vec<UnitPlan>),
}

/// What the resume planner decided for one sub-shard unit of a split
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitPlan {
    /// The unit's walk sub-progression.
    pub unit: SplitUnit,
    /// How the resume will treat it.
    pub mode: UnitMode,
}

/// Per-unit resume classification inside a [`BlockMode::Split`] plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitMode {
    /// A completed unit checkpoint exists: load it, don't re-scan.
    Skip,
    /// The unit was claimed but never checkpointed: the partial work is
    /// discarded and the unit re-runs from its start.
    Resume,
    /// The unit was split off but never claimed.
    Fresh,
}

/// Outcome of one parallel campaign invocation.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Completed blocks in Table II order (gaps possible when
    /// interrupted or when blocks were poisoned).
    pub result: CampaignResult,
    /// Merged telemetry across skipped-block deltas and every *committed*
    /// live block, with `scan.hit_rate_ppm` recomputed from the merged
    /// totals. Work lost to a panic, stall or abort mid-block never
    /// contributes (the checkpoint directory agrees with the snapshot by
    /// construction). Supervision counters (`exec.*`) appear only when
    /// nonzero.
    pub snapshot: Snapshot,
    /// Whether an armed abort signal stopped the campaign early (the
    /// checkpoint directory then holds everything completed so far).
    pub interrupted: bool,
    /// Block indices whose attempt budget ran out (worker panics or
    /// stalls on every try). Empty on a healthy run; the campaign
    /// completes *around* a poisoned block rather than aborting.
    pub poisoned: Vec<usize>,
}

/// Work-stealing multi-worker driver around a [`Campaign`].
///
/// # Examples
///
/// ```
/// use xmap::ScanConfig;
/// use xmap_netsim::World;
/// use xmap_periphery::{Campaign, ParallelCampaign};
///
/// let executor = ParallelCampaign::new(Campaign::new(1 << 12), 2);
/// let outcome = executor.run(&ScanConfig::default(), |_, telemetry| {
///     let mut world = World::new(7);
///     world.set_telemetry(telemetry);
///     world
/// });
/// assert_eq!(outcome.result.blocks.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelCampaign {
    campaign: Campaign,
    workers: usize,
    supervision: Supervision,
    watchdog: Option<Duration>,
    group_commit: usize,
    exec_plan: Option<ExecPlan>,
    split_threshold: u64,
    force_split_at: Option<u64>,
}

/// Checkpoint context threaded into `execute`: `(dir, fingerprint,
/// per-block loaded checkpoints, per-block split-manifest seeds)`.
type CkptCtx<'a> = (
    &'a Path,
    u64,
    Vec<Option<LoadedBlock>>,
    Vec<Option<BinSeed>>,
);

impl ParallelCampaign {
    /// An executor running `campaign` on `workers` threads. One worker
    /// reproduces [`Campaign::run`] exactly (the queue degenerates to
    /// FIFO block order).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(campaign: Campaign, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ParallelCampaign {
            campaign,
            workers,
            supervision: Supervision::default(),
            watchdog: None,
            group_commit: DEFAULT_GROUP_COMMIT,
            exec_plan: None,
            split_threshold: 0,
            force_split_at: None,
        }
    }

    /// Enables intra-block shard splitting: once the block queue drains,
    /// an idle worker raises every running scanner's cooperative yield
    /// flag; a scanner whose current unit still has more than
    /// `threshold` walk positions left stops at its next slot boundary
    /// (in-flight == 0) and the executor splits the unconsumed remainder
    /// into nested sub-shards — one per idle worker — that run
    /// concurrently and merge back byte-identically. `0` (the default)
    /// disables splitting entirely: the executor takes the legacy
    /// block-granular path, byte-for-byte.
    pub fn with_split_threshold(mut self, threshold: u64) -> Self {
        self.split_threshold = threshold;
        self
    }

    /// Forces the yield gate open once a unit has consumed `at` walk
    /// positions, regardless of idle workers — the deterministic split
    /// point tests and CI smokes use to exercise the split machinery
    /// under a schedule they control. Implies the split-capable
    /// executor path even when the threshold is `0`.
    ///
    /// # Panics
    ///
    /// Panics if `at == 0` (a run never yields before consuming at
    /// least one index).
    pub fn with_force_split_at(mut self, at: u64) -> Self {
        assert!(at >= 1, "force-split point must be at least 1");
        self.force_split_at = Some(at);
        self
    }

    /// The configured split threshold (`0` = splitting disabled).
    pub fn split_threshold(&self) -> u64 {
        self.split_threshold
    }

    /// Whether this executor takes the split-capable path.
    fn split_enabled(&self) -> bool {
        self.split_threshold > 0 || self.force_split_at.is_some()
    }

    /// Overrides the supervision policy (attempt budget per block).
    pub fn with_supervision(mut self, policy: Supervision) -> Self {
        self.supervision = policy;
        self
    }

    /// Arms the stalled-worker watchdog: a worker whose probes-sent
    /// heartbeat stays flat for `quantum` is presumed hung; its claim is
    /// invalidated (a late commit is discarded) and the block requeued
    /// for a surviving worker. The quantum bounds time *without probe
    /// progress*, not block runtime — a slow block whose worker keeps
    /// sending probes is never reclaimed, so the quantum can be set
    /// aggressively without fear of spurious requeues. Off by default.
    pub fn with_watchdog(mut self, quantum: Duration) -> Self {
        self.watchdog = Some(quantum);
        self
    }

    /// Sets the group-commit quantum: each worker publishes block
    /// checkpoints with their fsync deferred, then syncs the batch (files
    /// plus directory) every `every` blocks and on retirement. `1`
    /// restores the legacy fsync-per-block behaviour; the default is
    /// [`DEFAULT_GROUP_COMMIT`]. A crash inside the deferred window can
    /// leave a published checkpoint torn — the resume planner treats a
    /// torn block checkpoint as "never completed" and re-runs the block.
    pub fn with_group_commit(mut self, every: usize) -> Self {
        self.group_commit = every.max(1);
        self
    }

    /// Arms scripted executor faults (worker panics and stalls) for the
    /// next run. Test-harness plumbing; production runs never set this.
    pub fn with_exec_faults(mut self, plan: ExecPlan) -> Self {
        self.exec_plan = Some(plan);
        self
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wrapped campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Runs the campaign across all workers and merges deterministically.
    ///
    /// `make_network(w, telemetry)` builds worker `w`'s network replica;
    /// every worker must be built over the same world seed (disjoint
    /// blocks make replicas interchangeable with one shared world —
    /// see the module docs for the envelope). Each worker scans whole
    /// blocks under `base` unchanged; `base.max_targets` is ignored
    /// (the campaign caps per block).
    pub fn run<N: Network + Send>(
        &self,
        base: &ScanConfig,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> CampaignOutcome {
        self.execute(base, None, None, make_network)
            .expect("no checkpoint dir, no I/O to fail")
    }

    /// Runs the campaign with block-granular checkpointing in `dir`
    /// (created if missing; see the module docs for the layout). An
    /// armed `abort` signal stops every worker at its next block
    /// boundary; the partial block is discarded (its in-progress marker
    /// stays behind) and the outcome reports `interrupted`. A later
    /// `resume: true` invocation — under **any** worker count — loads
    /// completed blocks, re-runs the rest, and produces a result and
    /// merged snapshot byte-identical to an uninterrupted campaign.
    ///
    /// Resuming under a different campaign or scanner configuration is
    /// a hard [`StateError::Mismatch`]; `resume: false` wipes any
    /// previous campaign state in `dir`.
    pub fn run_checkpointed<N: Network + Send>(
        &self,
        base: &ScanConfig,
        dir: &Path,
        resume: bool,
        abort: Option<&AbortSignal>,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Result<CampaignOutcome, StateError> {
        let fp = self.campaign.fingerprint_cfg(base);
        std::fs::create_dir_all(dir)
            .map_err(|e| StateError::io(format!("create campaign dir {}", dir.display()), e))?;
        let (loaded, seeds) = if resume {
            let plan = load_dir(dir, fp)?;
            let mut loaded: Vec<Option<LoadedBlock>> =
                (0..SAMPLE_BLOCKS.len()).map(|_| None).collect();
            let mut seeds: Vec<Option<BinSeed>> = (0..SAMPLE_BLOCKS.len()).map(|_| None).collect();
            for (idx, mode) in plan.iter().enumerate() {
                match mode {
                    BlockMode::Skip => loaded[idx] = Some(load_block_ckpt(dir, idx, fp)?),
                    BlockMode::Split(plans) if self.split_enabled() => {
                        seeds[idx] = Some(load_bin_seed(dir, idx, fp, plans)?);
                    }
                    // A Split plan resumed with splitting disabled (or
                    // Resume/Fresh): the block re-runs whole, which is
                    // byte-identical by construction; its stale unit
                    // files are swept at commit.
                    _ => {}
                }
            }
            (loaded, seeds)
        } else {
            // Fresh start: wipe stale blocks so a same-fingerprint rerun
            // can never silently skip them.
            for idx in 0..SAMPLE_BLOCKS.len() {
                let _ = std::fs::remove_file(block_path(dir, idx));
                let _ = std::fs::remove_file(marker_path(dir, idx));
                remove_split_files(dir, idx);
            }
            write_dir_manifest(dir, fp)?;
            (
                (0..SAMPLE_BLOCKS.len()).map(|_| None).collect(),
                (0..SAMPLE_BLOCKS.len()).map(|_| None).collect(),
            )
        };
        self.execute(base, Some((dir, fp, loaded, seeds)), abort, make_network)
    }

    /// Classifies every block for a resume of the campaign checkpointed
    /// in `dir` without running anything — the `Skip`/`Resume`/`Fresh`
    /// plan [`run_checkpointed`](Self::run_checkpointed) would execute.
    pub fn resume_plan(&self, base: &ScanConfig, dir: &Path) -> Result<Vec<BlockMode>, StateError> {
        load_dir(dir, self.campaign.fingerprint_cfg(base))
    }

    /// Shared driver behind [`run`](Self::run) and
    /// [`run_checkpointed`](Self::run_checkpointed). `ckpt` carries
    /// `(dir, fingerprint, per-block loaded checkpoints)` when
    /// checkpointing is on.
    fn execute<N: Network + Send>(
        &self,
        base: &ScanConfig,
        ckpt: Option<CkptCtx<'_>>,
        abort: Option<&AbortSignal>,
        mut make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Result<CampaignOutcome, StateError> {
        let (dir, fp_id, loaded, mut seeds_by_idx) = match ckpt {
            Some((dir, fp, loaded, seeds)) => (Some(dir), fp, loaded, seeds),
            None => (
                None,
                0,
                (0..SAMPLE_BLOCKS.len()).map(|_| None).collect(),
                (0..SAMPLE_BLOCKS.len()).map(|_| None).collect::<Vec<_>>(),
            ),
        };
        // Only non-loaded blocks enter the queue, seeded round-robin in
        // block order so one worker reproduces the sequential walk.
        let pending: Vec<usize> = (0..SAMPLE_BLOCKS.len())
            .filter(|i| loaded[*i].is_none())
            .collect();
        let queue = StealQueue::new(pending.len(), self.workers);
        let slots: Vec<SlotState> = (0..pending.len()).map(|_| SlotState::default()).collect();
        let split = self.split_enabled().then(|| SplitShared {
            bins: (0..pending.len()).map(|_| BlockBin::default()).collect(),
            seeds: pending.iter().map(|i| seeds_by_idx[*i].take()).collect(),
            yield_flags: (0..self.workers)
                .map(|_| Arc::new(AtomicBool::new(false)))
                .collect(),
            waiters: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(pending.len()),
            threshold: self.split_threshold,
            force_at: self.force_split_at,
        });
        let board: Vec<Mutex<Option<Claim>>> =
            (0..self.workers).map(|_| Mutex::new(None)).collect();
        let faults = self.exec_plan.as_ref().map(ExecPlan::armed);
        let counters = ExecCounters::default();
        let active = AtomicUsize::new(self.workers);
        let max_attempts = self.supervision.max_attempts.max(1);
        let group = self.group_commit.max(1);
        let mut scanners: Vec<Scanner<N>> = (0..self.workers)
            .map(|w| {
                let telemetry = Telemetry::new();
                let network = make_network(w, &telemetry);
                let mut scanner = Scanner::with_telemetry(network, base.clone(), telemetry);
                if let Some(signal) = abort {
                    scanner.set_abort(signal.clone());
                }
                scanner
            })
            .collect();

        let outs: Vec<Result<WorkerOut, StateError>> = std::thread::scope(|scope| {
            let watchdog = self.watchdog.map(|quantum| {
                let (board, slots, queue) = (&board, &slots, &queue);
                let (active, counters) = (&active, &counters);
                scope.spawn(move || {
                    run_watchdog(quantum, board, slots, queue, active, counters, max_attempts)
                })
            });
            let handles: Vec<_> = scanners
                .iter_mut()
                .enumerate()
                .map(|(w, scanner)| {
                    let (queue, pending, slots, board) = (&queue, &pending, &slots, &board);
                    let campaign = &self.campaign;
                    let faults = faults.as_ref();
                    let (counters, active) = (&counters, &active);
                    let split = split.as_ref();
                    scope.spawn(move || {
                        let ctx = WorkerCtx {
                            w,
                            scanner,
                            campaign,
                            queue,
                            pending,
                            slots,
                            board,
                            faults,
                            counters,
                            max_attempts,
                            group,
                            dir,
                            fp_id,
                        };
                        let result = match split {
                            Some(shared) => SplitWorker::new(ctx, shared).run(),
                            None => run_worker(ctx),
                        };
                        active.fetch_sub(1, Ordering::AcqRel);
                        result
                    })
                })
                .collect();
            // Joining in worker order keeps error reporting (and the
            // merge below) deterministic. A panic that escaped the
            // supervisor would be an executor bug; surface it as an
            // empty worker rather than tearing down the scope.
            let outs: Vec<Result<WorkerOut, StateError>> = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Ok(WorkerOut::default()),
                })
                .collect();
            if let Some(h) = watchdog {
                let _ = h.join();
            }
            outs
        });

        let interrupted = abort.is_some_and(AbortSignal::is_set);
        let mut worker_outs: Vec<WorkerOut> = Vec::with_capacity(outs.len());
        for out in outs {
            worker_outs.push(out?);
        }

        // Supervisor fallback: a block can be left neither done nor
        // poisoned when its panicked owner requeued it and every other
        // worker had already retired. Run those inline on fresh
        // single-use scanners until they commit or exhaust the budget.
        let mut supervisor = WorkerOut::default();
        if !interrupted {
            let mut sup_units = 0u64;
            for slot in 0..pending.len() {
                let state = &slots[slot];
                while !state.done.load(Ordering::Acquire) && !state.poisoned.load(Ordering::Acquire)
                {
                    if state.attempts.load(Ordering::Acquire) >= max_attempts {
                        state.poisoned.store(true, Ordering::Release);
                        break;
                    }
                    state.attempts.fetch_add(1, Ordering::AcqRel);
                    let idx = pending[slot];
                    let unit = sup_units;
                    sup_units += 1;
                    // The supervisor consults the fault script under its
                    // own worker index (`self.workers`) so torture tests
                    // can poison a block even under one worker. A Stall
                    // is ignored here — there is nobody left to rescue a
                    // hung supervisor.
                    let action = faults
                        .as_ref()
                        .and_then(|f| f.on_unit(self.workers, unit))
                        .filter(|a| *a == ExecAction::Panic);
                    let telemetry = Telemetry::new();
                    let network = make_network(self.workers, &telemetry);
                    let mut scanner = Scanner::with_telemetry(network, base.clone(), telemetry);
                    if let Some(signal) = abort {
                        scanner.set_abort(signal.clone());
                    }
                    let campaign = &self.campaign;
                    let attempt = catch_unwind(AssertUnwindSafe(
                        || -> Result<Option<(BlockResult, Snapshot)>, StateError> {
                            if action.is_some() {
                                panic!("injected executor fault: supervisor panics on unit {unit}");
                            }
                            if let Some(dir) = dir {
                                write_marker(dir, idx)?;
                            }
                            let block = campaign.run_block(&mut scanner, &SAMPLE_BLOCKS[idx]);
                            if scanner.is_aborted() {
                                return Ok(None);
                            }
                            // Fresh scanner: the baseline is empty, the
                            // delta is its whole registry.
                            let delta = scanner.telemetry().registry.snapshot();
                            Ok(Some((block, delta)))
                        },
                    ));
                    match attempt {
                        Ok(Ok(Some((block, delta)))) => {
                            state.done.store(true, Ordering::Release);
                            if let Some(dir) = dir {
                                write_block_ckpt(dir, fp_id, idx, &block, &delta, true)?;
                                remove_split_files(dir, idx);
                                let _ = std::fs::remove_file(marker_path(dir, idx));
                            }
                            supervisor.committed.merge(&delta);
                            supervisor.done.push((idx, block));
                        }
                        Ok(Ok(None)) => break, // aborted mid-block
                        Ok(Err(e)) => return Err(e),
                        Err(_) => {
                            counters.panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }

        let poisoned: Vec<usize> = (0..pending.len())
            .filter(|&slot| slots[slot].poisoned.load(Ordering::Acquire))
            .map(|slot| pending[slot])
            .collect();

        // Merge: loaded blocks and committed live blocks, in block-index
        // order — which is Table II (profile) order, the sequential
        // walk's order.
        let mut tagged: Vec<(usize, BlockResult)> = Vec::with_capacity(SAMPLE_BLOCKS.len());
        let mut skipped_deltas = Vec::new();
        for (idx, loaded_block) in loaded.into_iter().enumerate() {
            if let Some(l) = loaded_block {
                tagged.push((idx, l.block));
                skipped_deltas.push(l.metrics);
            }
        }
        let mut committed_deltas = Vec::with_capacity(worker_outs.len() + 1);
        for out in worker_outs {
            tagged.extend(out.done);
            committed_deltas.push(out.committed);
        }
        tagged.extend(supervisor.done);
        committed_deltas.push(supervisor.committed);
        tagged.sort_by_key(|(idx, _)| *idx);
        let result = CampaignResult {
            blocks: tagged.into_iter().map(|(_, b)| b).collect(),
        };
        // Committed deltas only: sums telescope to exactly the raw
        // registries on a fault-free run (byte-identical merge), and
        // exclude in-flight garbage from panicked/stalled/aborted blocks
        // otherwise — the snapshot always agrees with the checkpoint
        // directory.
        let mut snapshot =
            merge_worker_snapshots(skipped_deltas.into_iter().chain(committed_deltas));
        insert_exec_counters(
            &mut snapshot,
            counters.panics.load(Ordering::Acquire),
            counters.requeued.load(Ordering::Acquire),
            poisoned.len(),
        );
        let stalls = counters.stalls.load(Ordering::Acquire);
        if stalls > 0 {
            snapshot
                .counters
                .insert(names::EXEC_STALLS.to_owned(), stalls);
        }
        let splits = counters.splits.load(Ordering::Acquire);
        if splits > 0 {
            snapshot
                .counters
                .insert(names::EXEC_SPLITS.to_owned(), splits);
        }
        let split_shards = counters.split_shards.load(Ordering::Acquire);
        if split_shards > 0 {
            snapshot
                .counters
                .insert(names::EXEC_SPLIT_SHARDS.to_owned(), split_shards);
        }
        Ok(CampaignOutcome {
            result,
            snapshot,
            interrupted,
            poisoned,
        })
    }
}

/// Per-block supervision state shared by workers, the watchdog and the
/// supervisor fallback.
#[derive(Debug, Default)]
struct SlotState {
    /// Times the block has been claimed (spawned attempts).
    attempts: AtomicU32,
    /// Claim epoch: bumped to invalidate an in-flight claim (watchdog
    /// requeue, panicked owner). A commit whose claim epoch is stale is
    /// discarded — determinism makes the requeued re-run identical.
    epoch: AtomicU64,
    /// Set exactly once, by the attempt that commits the block.
    done: AtomicBool,
    /// Attempt budget exhausted; the campaign completes around it.
    poisoned: AtomicBool,
    /// Whether the split executor's `outstanding` count has been
    /// decremented for this slot (done or poisoned) — swap-once guard.
    retired: AtomicBool,
}

/// What a worker currently holds, for the watchdog's staleness check.
///
/// `sent`/`last_sent` are the heartbeat: a live handle on the owning
/// worker's `scan.sent` counter plus the value last observed by the
/// watchdog. Any probe sent since the previous tick proves the owner
/// alive and resets its quantum clock, so a slow-but-progressing block
/// is never spuriously reclaimed — only a worker that stops sending
/// probes altogether for a full quantum counts as hung.
#[derive(Debug, Clone)]
struct Claim {
    slot: usize,
    epoch: u64,
    since: Instant,
    sent: Counter,
    last_sent: u64,
}

/// Supervision tallies shared across threads, exported as `exec.*`
/// counters (only when nonzero).
#[derive(Debug, Default)]
struct ExecCounters {
    panics: AtomicU64,
    requeued: AtomicU64,
    stalls: AtomicU64,
    /// Yield-and-split events (one per unit that yielded).
    splits: AtomicU64,
    /// Sub-shard units created by those splits.
    split_shards: AtomicU64,
}

/// One worker's contribution: committed blocks and the merged telemetry
/// deltas of exactly those blocks.
#[derive(Debug, Default)]
struct WorkerOut {
    done: Vec<(usize, BlockResult)>,
    committed: Snapshot,
}

/// Everything a campaign worker needs, bundled to keep the spawn site
/// readable.
struct WorkerCtx<'a, N> {
    w: usize,
    scanner: &'a mut Scanner<N>,
    campaign: &'a Campaign,
    queue: &'a StealQueue,
    pending: &'a [usize],
    slots: &'a [SlotState],
    board: &'a [Mutex<Option<Claim>>],
    faults: Option<&'a ExecFaults>,
    counters: &'a ExecCounters,
    max_attempts: u32,
    group: usize,
    dir: Option<&'a Path>,
    fp_id: u64,
}

/// The worker loop: claim a block, run it under `catch_unwind`, commit
/// the result if the claim is still valid. A panicked worker requeues
/// its block (within budget) and retires — its scanner may hold
/// half-mutated per-block state, so it must not claim further work; the
/// requeued block re-runs deterministically on a surviving worker (or
/// the supervisor fallback).
fn run_worker<N: Network>(ctx: WorkerCtx<'_, N>) -> Result<WorkerOut, StateError> {
    let WorkerCtx {
        w,
        scanner,
        campaign,
        queue,
        pending,
        slots,
        board,
        faults,
        counters,
        max_attempts,
        group,
        dir,
        fp_id,
    } = ctx;
    let mut out = WorkerOut::default();
    let mut to_sync: Vec<PathBuf> = Vec::new();
    let mut units = 0u64;
    // The heartbeat the watchdog reads: this worker's own probes-sent
    // counter. The handle is shared with the scanner's registry, so the
    // watchdog sees increments the moment they happen.
    let sent = scanner.telemetry().registry.counter(names::SENT);
    let clear_board = |b: &Mutex<Option<Claim>>| {
        *b.lock().expect("progress board poisoned") = None;
    };
    let verdict = loop {
        if scanner.is_aborted() {
            break Ok(());
        }
        let Some(slot) = queue.pop(w) else {
            break Ok(());
        };
        let state = &slots[slot];
        // A stale requeue: the block committed (or was poisoned) between
        // the push and this pop.
        if state.done.load(Ordering::Acquire) || state.poisoned.load(Ordering::Acquire) {
            continue;
        }
        let idx = pending[slot];
        let unit = units;
        units += 1;
        state.attempts.fetch_add(1, Ordering::AcqRel);
        let claim_epoch = state.epoch.load(Ordering::Acquire);
        *board[w].lock().expect("progress board poisoned") = Some(Claim {
            slot,
            epoch: claim_epoch,
            since: Instant::now(),
            sent: sent.clone(),
            last_sent: sent.get(),
        });
        let action = faults.and_then(|f| f.on_unit(w, unit));
        if action == Some(ExecAction::Stall) {
            // Scripted stall: retire while still holding the claim (the
            // board entry stays set). With a watchdog armed the claim is
            // invalidated and requeued after one quantum; without one
            // the supervisor fallback picks the block up after join.
            break Ok(());
        }
        let attempt = catch_unwind(AssertUnwindSafe(
            || -> Result<Option<(BlockResult, Snapshot)>, StateError> {
                if action == Some(ExecAction::Panic) {
                    panic!("injected executor fault: worker {w} panics on unit {unit}");
                }
                if let Some(dir) = dir {
                    write_marker(dir, idx)?;
                }
                let baseline = scanner.telemetry().registry.snapshot();
                let block = campaign.run_block(scanner, &SAMPLE_BLOCKS[idx]);
                if scanner.is_aborted() {
                    return Ok(None);
                }
                let delta = scanner.telemetry().registry.snapshot().diff(&baseline);
                Ok(Some((block, delta)))
            },
        ));
        match attempt {
            Ok(Ok(Some((block, delta)))) => {
                // Commit protocol: the claim must still carry our epoch
                // (no watchdog requeue happened) and the done CAS must
                // win (no requeued copy got there first). A discarded
                // commit is pure wasted work — the surviving copy
                // produces the identical result.
                let committed = state.epoch.load(Ordering::Acquire) == claim_epoch
                    && state
                        .done
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                clear_board(&board[w]);
                if committed {
                    if let Some(dir) = dir {
                        write_block_ckpt(dir, fp_id, idx, &block, &delta, group <= 1)?;
                        if group > 1 {
                            to_sync.push(block_path(dir, idx));
                            if to_sync.len() >= group {
                                flush_group(dir, &mut to_sync)?;
                            }
                        }
                        remove_split_files(dir, idx);
                        let _ = std::fs::remove_file(marker_path(dir, idx));
                    }
                    out.committed.merge(&delta);
                    out.done.push((idx, block));
                }
            }
            Ok(Ok(None)) => {
                // Abort hit mid-block: discard the partial work; the
                // marker stays behind for the resume plan.
                clear_board(&board[w]);
                break Ok(());
            }
            Ok(Err(e)) => {
                clear_board(&board[w]);
                break Err(e);
            }
            Err(_) => {
                clear_board(&board[w]);
                counters.panics.fetch_add(1, Ordering::Relaxed);
                // Invalidate our claim so nothing this attempt half-did
                // can ever commit, then requeue within budget.
                state.epoch.fetch_add(1, Ordering::AcqRel);
                if state.attempts.load(Ordering::Acquire) < max_attempts {
                    counters.requeued.fetch_add(1, Ordering::Relaxed);
                    queue.push(w, slot);
                } else {
                    state.poisoned.store(true, Ordering::Release);
                }
                break Ok(());
            }
        }
    };
    // Group-commit tail: make every published-but-unsynced checkpoint
    // durable before retiring, whatever the exit path.
    let flushed = match dir {
        Some(d) => flush_group(d, &mut to_sync),
        None => Ok(()),
    };
    verdict?;
    flushed?;
    Ok(out)
}

/// The watchdog loop: every tick, scan the progress board for claims
/// whose probes-sent heartbeat has been flat for `quantum`. A claim
/// showing any probe progress since the previous tick has its clock
/// reset — only a worker that sends nothing for a full quantum is
/// presumed hung. A stale claim is invalidated (epoch bump — the hung
/// owner's late commit will be discarded) and its block requeued within
/// the attempt budget, else poisoned. Exits once every worker has
/// retired.
fn run_watchdog(
    quantum: Duration,
    board: &[Mutex<Option<Claim>>],
    slots: &[SlotState],
    queue: &StealQueue,
    active: &AtomicUsize,
    counters: &ExecCounters,
    max_attempts: u32,
) {
    let tick = (quantum / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    while active.load(Ordering::Acquire) > 0 {
        std::thread::sleep(tick);
        for (w, entry) in board.iter().enumerate() {
            let mut cur = entry.lock().expect("progress board poisoned");
            let Some(claim) = cur.as_mut() else { continue };
            // Heartbeat first: any probe sent since the last observation
            // proves the owner alive, however slowly the block is going,
            // and restarts its quantum clock.
            let sent_now = claim.sent.get();
            if sent_now != claim.last_sent {
                claim.last_sent = sent_now;
                claim.since = Instant::now();
                continue;
            }
            if claim.since.elapsed() < quantum {
                continue;
            }
            let (slot, epoch) = (claim.slot, claim.epoch);
            let state = &slots[slot];
            if state.done.load(Ordering::Acquire) {
                *cur = None;
                continue;
            }
            // Invalidate the stale claim; only one invalidator can win
            // the epoch CAS, so the requeue happens exactly once.
            if state
                .epoch
                .compare_exchange(epoch, epoch + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                counters.stalls.fetch_add(1, Ordering::Relaxed);
                if state.attempts.load(Ordering::Acquire) < max_attempts {
                    counters.requeued.fetch_add(1, Ordering::Relaxed);
                    queue.push(w, slot);
                } else {
                    state.poisoned.store(true, Ordering::Release);
                }
            }
            *cur = None;
        }
    }
}

/// Shared state of the split-capable executor path (armed via
/// [`ParallelCampaign::with_split_threshold`] or
/// [`ParallelCampaign::with_force_split_at`]).
struct SplitShared {
    /// One bin per queue slot, holding that block's unit partition.
    bins: Vec<BlockBin>,
    /// Resume seeds per slot (loaded unit checkpoints + re-run units).
    seeds: Vec<Option<BinSeed>>,
    /// Per-worker cooperative yield flags; idle workers broadcast-set
    /// them, a worker acting on its own flag clears it.
    yield_flags: Vec<Arc<AtomicBool>>,
    /// Workers currently spinning idle — the split fan-out factor.
    waiters: AtomicUsize,
    /// Units currently claimed and running anywhere. Idle workers only
    /// retire once this reaches zero with nothing left to claim.
    busy: AtomicUsize,
    /// Slots not yet committed or poisoned.
    outstanding: AtomicUsize,
    /// Minimum unconsumed walk positions for a yield to fire.
    threshold: u64,
    /// Deterministic forced yield point (tests/CI).
    force_at: Option<u64>,
}

/// One block's split state: the evolving unit partition of its
/// permutation walk plus the raw outputs delivered so far.
#[derive(Default)]
struct BlockBin {
    inner: Mutex<BinInner>,
}

#[derive(Default)]
struct BinInner {
    /// Claim epoch these contents belong to (mirrors the slot's epoch at
    /// block-claim time); deliveries under any other epoch are dropped.
    epoch: u64,
    /// Bin initialized by a block claim and not yet assembled.
    open: bool,
    /// Whether the block has ever split (unit checkpoints only then).
    split: bool,
    /// Units waiting to be claimed.
    pending: Vec<SplitUnit>,
    /// Units currently running on some worker.
    active: usize,
    /// Delivered unit outputs with their telemetry deltas.
    done: Vec<(UnitRaw, Snapshot)>,
    /// The manifest view: the complete current partition, offset-sorted.
    layout: Vec<SubShardEntry>,
}

/// What a [`BlockMode::Split`] resume plan loads into a bin before the
/// block is re-claimed.
#[derive(Clone, Default)]
struct BinSeed {
    done: Vec<(UnitRaw, Snapshot)>,
    rerun: Vec<SplitUnit>,
    layout: Vec<SubShardEntry>,
}

/// Outcome of a block-claim attempt in the split path.
enum BlockClaim {
    /// Bin initialized under this epoch; drain it.
    Claimed(u64),
    /// Block already done/poisoned; claim the next one.
    Skip,
    /// Scripted fault: the worker retires now.
    Retire,
}

/// What one unit run produced (the `catch_unwind` payload).
enum UnitRun {
    /// Clean finish: the raw output and its telemetry delta.
    Done(Box<(UnitRaw, Snapshot)>),
    /// Abort signal hit mid-unit; the partial work is discarded.
    Aborted,
    /// The bin was re-claimed under a new epoch mid-run (watchdog
    /// requeue); the work is discarded, the worker stays healthy.
    Stale,
}

fn entry_of(unit: SplitUnit, started: bool) -> SubShardEntry {
    SubShardEntry {
        offset: unit.offset,
        stride: unit.stride,
        cap: unit.cap,
        started,
    }
}

fn unit_of(entry: &SubShardEntry) -> SplitUnit {
    SplitUnit {
        offset: entry.offset,
        stride: entry.stride,
        cap: entry.cap,
    }
}

/// Decrements `outstanding` exactly once per slot, however many times
/// the done/poisoned transition is observed.
fn retire_slot(state: &SlotState, shared: &SplitShared) {
    if !state.retired.swap(true, Ordering::AcqRel) {
        shared.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The split-capable worker: the legacy loop plus intra-block shard
/// splitting. Blocks are claimed off the queue as before, but each runs
/// as a series of [`SplitUnit`]s through a per-slot [`BlockBin`]. When
/// the queue drains, an idle worker broadcasts yield requests; a
/// running unit that yields is settled to its consumed prefix and its
/// unconsumed remainder split into nested sub-shards pushed onto the
/// bin, where idle workers claim them. Whoever delivers a bin's last
/// unit reassembles the block ([`Campaign::assemble`]) and commits it
/// through the unchanged epoch-CAS protocol — so the merged result is
/// byte-identical to the sequential walk for any worker count and any
/// split schedule.
struct SplitWorker<'a, N: Network> {
    ctx: WorkerCtx<'a, N>,
    shared: &'a SplitShared,
    sent: Counter,
    to_sync: Vec<PathBuf>,
    out: WorkerOut,
}

impl<'a, N: Network> SplitWorker<'a, N> {
    fn new(ctx: WorkerCtx<'a, N>, shared: &'a SplitShared) -> Self {
        let sent = ctx.scanner.telemetry().registry.counter(names::SENT);
        SplitWorker {
            ctx,
            shared,
            sent,
            to_sync: Vec::new(),
            out: WorkerOut::default(),
        }
    }

    fn run(mut self) -> Result<WorkerOut, StateError> {
        if self.shared.threshold > 0 {
            let flag = self.shared.yield_flags[self.ctx.w].clone();
            self.ctx
                .scanner
                .set_yield_request(Some(flag), self.shared.threshold);
        }
        let verdict = self.main_loop();
        self.ctx.scanner.set_yield_request(None, 1);
        self.ctx.scanner.set_force_yield_at(None);
        let flushed = match self.ctx.dir {
            Some(d) => flush_group(d, &mut self.to_sync),
            None => Ok(()),
        };
        verdict?;
        flushed?;
        Ok(self.out)
    }

    fn main_loop(&mut self) -> Result<(), StateError> {
        let mut block_claims = 0u64;
        loop {
            if self.ctx.scanner.is_aborted() {
                return Ok(());
            }
            if let Some(slot) = self.ctx.queue.pop(self.ctx.w) {
                let claim_no = block_claims;
                block_claims += 1;
                match self.claim_block(slot, claim_no)? {
                    BlockClaim::Claimed(epoch) => {
                        if !self.drain_bin(slot, epoch)? {
                            return Ok(());
                        }
                    }
                    BlockClaim::Skip => {}
                    BlockClaim::Retire => return Ok(()),
                }
                continue;
            }
            if let Some((slot, unit, epoch)) = self.claim_helper_unit()? {
                if !self.run_unit(slot, unit, epoch)? {
                    return Ok(());
                }
                continue;
            }
            // Nothing claimable. Sweep poisoned slots (a watchdog can
            // poison without retiring), then decide whether to wait.
            for state in self.ctx.slots {
                if state.poisoned.load(Ordering::Acquire) {
                    retire_slot(state, self.shared);
                }
            }
            if self.shared.outstanding.load(Ordering::Acquire) == 0 {
                return Ok(());
            }
            if self.shared.busy.load(Ordering::Acquire) == 0 {
                // Outstanding blocks with nothing in flight are
                // unreachable from here (a stalled or panicked owner);
                // the supervisor fallback finishes them after join.
                return Ok(());
            }
            self.shared.waiters.fetch_add(1, Ordering::AcqRel);
            for flag in &self.shared.yield_flags {
                flag.store(true, Ordering::Relaxed);
            }
            std::thread::sleep(Duration::from_micros(200));
            self.shared.waiters.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Claims `slot` off the queue: consults the fault script, writes
    /// the in-progress marker and initializes the bin (from its resume
    /// seed on first claim, else the whole-block unit).
    fn claim_block(&mut self, slot: usize, claim_no: u64) -> Result<BlockClaim, StateError> {
        let state = &self.ctx.slots[slot];
        if state.done.load(Ordering::Acquire) || state.poisoned.load(Ordering::Acquire) {
            return Ok(BlockClaim::Skip);
        }
        let idx = self.ctx.pending[slot];
        state.attempts.fetch_add(1, Ordering::AcqRel);
        let epoch = state.epoch.load(Ordering::Acquire);
        let action = self
            .ctx
            .faults
            .and_then(|f| f.on_unit(self.ctx.w, claim_no));
        if action == Some(ExecAction::Stall) {
            // Retire holding the claim, exactly like the legacy path:
            // the watchdog (if armed) or the supervisor fallback takes
            // the block over.
            *self.ctx.board[self.ctx.w]
                .lock()
                .expect("progress board poisoned") = Some(Claim {
                slot,
                epoch,
                since: Instant::now(),
                sent: self.sent.clone(),
                last_sent: self.sent.get(),
            });
            return Ok(BlockClaim::Retire);
        }
        if action == Some(ExecAction::Panic) {
            self.ctx.counters.panics.fetch_add(1, Ordering::Relaxed);
            state.epoch.fetch_add(1, Ordering::AcqRel);
            if state.attempts.load(Ordering::Acquire) < self.ctx.max_attempts {
                self.ctx.counters.requeued.fetch_add(1, Ordering::Relaxed);
                self.ctx.queue.push(self.ctx.w, slot);
            } else {
                state.poisoned.store(true, Ordering::Release);
                retire_slot(state, self.shared);
            }
            return Ok(BlockClaim::Retire);
        }
        if let Some(dir) = self.ctx.dir {
            write_marker(dir, idx)?;
        }
        let mut bin = self.shared.bins[slot]
            .inner
            .lock()
            .expect("split bin poisoned");
        bin.epoch = epoch;
        bin.open = true;
        bin.active = 0;
        match self.shared.seeds[slot].clone() {
            Some(seed) => {
                bin.done = seed.done;
                bin.pending = seed.rerun;
                bin.layout = seed.layout;
            }
            None => {
                let whole = SplitUnit::whole(self.ctx.campaign.block_cap(&SAMPLE_BLOCKS[idx]));
                bin.done = Vec::new();
                bin.pending = vec![whole];
                bin.layout = vec![entry_of(whole, false)];
            }
        }
        bin.split = bin.layout.len() > 1;
        Ok(BlockClaim::Claimed(epoch))
    }

    /// Runs units of `slot`'s bin until none are claimable, then tries
    /// to assemble (covers the all-units-preloaded resume case). Returns
    /// `false` when the worker must retire (abort or panicked scanner).
    fn drain_bin(&mut self, slot: usize, epoch: u64) -> Result<bool, StateError> {
        loop {
            match self.claim_from_bin(slot)? {
                Some((unit, unit_epoch)) => {
                    if !self.run_unit(slot, unit, unit_epoch)? {
                        return Ok(false);
                    }
                }
                None => {
                    // Helpers hold the tail (they will assemble), or the
                    // bin is already complete.
                    self.try_assemble(slot, epoch)?;
                    return Ok(true);
                }
            }
        }
    }

    /// Claims one pending unit from `slot`'s bin, if its epoch is still
    /// current. Marks the unit started in the manifest and bumps `busy`
    /// under the bin lock, so an idle worker observing `busy == 0` can
    /// never race past a unit about to run.
    fn claim_from_bin(&mut self, slot: usize) -> Result<Option<(SplitUnit, u64)>, StateError> {
        let state = &self.ctx.slots[slot];
        if state.done.load(Ordering::Acquire) || state.poisoned.load(Ordering::Acquire) {
            return Ok(None);
        }
        let epoch = state.epoch.load(Ordering::Acquire);
        let idx = self.ctx.pending[slot];
        let mut bin = self.shared.bins[slot]
            .inner
            .lock()
            .expect("split bin poisoned");
        if !bin.open || bin.epoch != epoch || bin.pending.is_empty() {
            return Ok(None);
        }
        let unit = bin.pending.remove(0);
        bin.active += 1;
        self.shared.busy.fetch_add(1, Ordering::AcqRel);
        let mark = bin
            .layout
            .iter_mut()
            .find(|e| unit_of(e) == unit && !e.started);
        if let Some(entry) = mark {
            entry.started = true;
            if bin.split {
                if let Some(dir) = self.ctx.dir {
                    if let Err(e) = write_units_manifest(dir, self.ctx.fp_id, idx, &bin.layout) {
                        // Undo the claim so other workers can't hang on
                        // a busy count that will never drain.
                        bin.pending.insert(0, unit);
                        bin.active -= 1;
                        self.shared.busy.fetch_sub(1, Ordering::AcqRel);
                        return Err(e);
                    }
                }
            }
        }
        Ok(Some((unit, epoch)))
    }

    /// Scans bins lowest-slot-first for a claimable sub-unit.
    fn claim_helper_unit(&mut self) -> Result<Option<(usize, SplitUnit, u64)>, StateError> {
        for slot in 0..self.ctx.slots.len() {
            if let Some((unit, epoch)) = self.claim_from_bin(slot)? {
                return Ok(Some((slot, unit, epoch)));
            }
        }
        Ok(None)
    }

    /// Runs one claimed unit: main pass (yield-capable), split on yield,
    /// per-unit mop-up, delivery, and assembly when it was the last
    /// unit. Returns `false` when the worker must retire.
    fn run_unit(&mut self, slot: usize, unit: SplitUnit, epoch: u64) -> Result<bool, StateError> {
        let w = self.ctx.w;
        let idx = self.ctx.pending[slot];
        let profile = &SAMPLE_BLOCKS[idx];
        let (shared, counters, dir, fp_id, campaign) = (
            self.shared,
            self.ctx.counters,
            self.ctx.dir,
            self.ctx.fp_id,
            self.ctx.campaign,
        );
        *self.ctx.board[w].lock().expect("progress board poisoned") = Some(Claim {
            slot,
            epoch,
            since: Instant::now(),
            sent: self.sent.clone(),
            last_sent: self.sent.get(),
        });
        let scanner = &mut *self.ctx.scanner;
        let attempt = catch_unwind(AssertUnwindSafe(move || -> Result<UnitRun, StateError> {
            let baseline = scanner.telemetry().registry.snapshot();
            scanner.set_force_yield_at(shared.force_at);
            let mut raw = campaign.unit_main(scanner, profile, unit);
            scanner.set_force_yield_at(None);
            if raw.interrupted {
                return Ok(UnitRun::Aborted);
            }
            if raw.yielded {
                // Split point: settle this unit to its consumed
                // prefix and partition the unconsumed remainder into
                // one nested sub-shard per idle worker (at least 2).
                let k = (shared.waiters.load(Ordering::Acquire) as u64 + 1).max(2);
                let (settled, parts) = raw.unit.split_tail(raw.consumed, k);
                let stale = {
                    let mut bin = shared.bins[slot].inner.lock().expect("split bin poisoned");
                    if !bin.open || bin.epoch != epoch {
                        true
                    } else {
                        bin.layout.retain(|e| unit_of(e) != unit);
                        bin.layout.push(entry_of(settled, true));
                        bin.layout.extend(parts.iter().map(|p| entry_of(*p, false)));
                        bin.layout.sort_by_key(|e| e.offset);
                        bin.split = true;
                        // The manifest must be durable before any
                        // part becomes claimable, so a kill can
                        // never orphan a unit checkpoint.
                        if let Some(dir) = dir {
                            write_units_manifest(dir, fp_id, idx, &bin.layout)?;
                        }
                        bin.pending.extend(parts.iter().copied());
                        counters.splits.fetch_add(1, Ordering::Relaxed);
                        counters
                            .split_shards
                            .fetch_add(parts.len() as u64, Ordering::Relaxed);
                        false
                    }
                };
                shared.yield_flags[w].store(false, Ordering::Relaxed);
                if stale {
                    return Ok(UnitRun::Stale);
                }
                raw.unit = settled;
            }
            campaign.unit_mop_up(scanner, profile, &mut raw);
            if scanner.is_aborted() {
                return Ok(UnitRun::Aborted);
            }
            let delta = scanner.telemetry().registry.snapshot().diff(&baseline);
            Ok(UnitRun::Done(Box::new((raw, delta))))
        }));
        *self.ctx.board[w].lock().expect("progress board poisoned") = None;
        let release_unit = |requeue: Option<SplitUnit>| {
            let mut bin = self.shared.bins[slot]
                .inner
                .lock()
                .expect("split bin poisoned");
            if bin.open && bin.epoch == epoch {
                bin.active = bin.active.saturating_sub(1);
                if let Some(u) = requeue {
                    bin.pending.push(u);
                }
            }
            self.shared.busy.fetch_sub(1, Ordering::AcqRel);
        };
        match attempt {
            Ok(Ok(UnitRun::Done(payload))) => {
                let (raw, delta) = *payload;
                let split_now = {
                    let bin = self.shared.bins[slot]
                        .inner
                        .lock()
                        .expect("split bin poisoned");
                    bin.open && bin.epoch == epoch && bin.split
                };
                if split_now {
                    if let Some(dir) = self.ctx.dir {
                        if let Err(e) = write_unit_ckpt(dir, self.ctx.fp_id, idx, &raw, &delta) {
                            release_unit(Some(raw.unit));
                            return Err(e);
                        }
                    }
                }
                let complete = {
                    let mut bin = self.shared.bins[slot]
                        .inner
                        .lock()
                        .expect("split bin poisoned");
                    if bin.open && bin.epoch == epoch {
                        bin.done.push((raw, delta));
                        bin.active -= 1;
                        bin.pending.is_empty() && bin.active == 0
                    } else {
                        false
                    }
                };
                self.shared.busy.fetch_sub(1, Ordering::AcqRel);
                if complete {
                    self.try_assemble(slot, epoch)?;
                }
                Ok(true)
            }
            Ok(Ok(UnitRun::Stale)) => {
                // The bin moved on without us; nothing to repair beyond
                // the busy count (the re-claim reset `active`).
                self.shared.busy.fetch_sub(1, Ordering::AcqRel);
                Ok(true)
            }
            Ok(Ok(UnitRun::Aborted)) => {
                release_unit(None);
                Ok(false)
            }
            Ok(Err(e)) => {
                release_unit(Some(unit));
                Err(e)
            }
            Err(_) => {
                // Panic mid-unit: requeue the unit (it re-runs
                // identically elsewhere) and retire — this scanner may
                // hold half-mutated per-unit state.
                release_unit(Some(unit));
                self.ctx.counters.panics.fetch_add(1, Ordering::Relaxed);
                Ok(false)
            }
        }
    }

    /// If `slot`'s bin is complete under `epoch`, reassembles the block
    /// from its unit outputs and commits it through the legacy epoch-CAS
    /// protocol (checkpoint write, split-file sweep, marker removal).
    fn try_assemble(&mut self, slot: usize, epoch: u64) -> Result<(), StateError> {
        let idx = self.ctx.pending[slot];
        let state = &self.ctx.slots[slot];
        let taken = {
            let mut bin = self.shared.bins[slot]
                .inner
                .lock()
                .expect("split bin poisoned");
            if !bin.open || bin.epoch != epoch || !bin.pending.is_empty() || bin.active != 0 {
                None
            } else {
                bin.open = false;
                Some(std::mem::take(&mut bin.done))
            }
        };
        let Some(mut done) = taken else {
            return Ok(());
        };
        done.sort_by_key(|(raw, _)| raw.unit.offset);
        let mut delta = Snapshot::default();
        let mut raws = Vec::with_capacity(done.len());
        for (raw, d) in done {
            delta.merge(&d);
            raws.push(raw);
        }
        let block =
            self.ctx
                .campaign
                .assemble(&SAMPLE_BLOCKS[idx], raws, self.ctx.scanner.tracer());
        let committed = state.epoch.load(Ordering::Acquire) == epoch
            && state
                .done
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
        if !committed {
            return Ok(());
        }
        retire_slot(state, self.shared);
        if let Some(dir) = self.ctx.dir {
            write_block_ckpt(
                dir,
                self.ctx.fp_id,
                idx,
                &block,
                &delta,
                self.ctx.group <= 1,
            )?;
            if self.ctx.group > 1 {
                self.to_sync.push(block_path(dir, idx));
                if self.to_sync.len() >= self.ctx.group {
                    flush_group(dir, &mut self.to_sync)?;
                }
            }
            remove_split_files(dir, idx);
            let _ = std::fs::remove_file(marker_path(dir, idx));
        }
        self.out.committed.merge(&delta);
        self.out.done.push((idx, block));
        Ok(())
    }
}

/// Fsyncs a batch of published block checkpoints plus the directory —
/// the group-commit step. No-op on an empty batch.
fn flush_group(dir: &Path, paths: &mut Vec<PathBuf>) -> Result<(), StateError> {
    if paths.is_empty() {
        return Ok(());
    }
    for p in paths.drain(..) {
        fp::sync_file(&p)
            .map_err(|e| StateError::io(format!("sync checkpoint {}", p.display()), e))?;
    }
    fp::sync_dir(dir)
        .map_err(|e| StateError::io(format!("sync campaign dir {}", dir.display()), e))?;
    Ok(())
}

/// One block loaded back from its checkpoint file.
struct LoadedBlock {
    block: BlockResult,
    /// The block's exact telemetry delta (counters and histograms the
    /// block contributed), captured by the worker that ran it.
    metrics: Snapshot,
}

fn block_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("block-{idx:02}.ckpt"))
}

fn marker_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("block-{idx:02}.inprogress"))
}

fn dir_manifest_path(dir: &Path) -> PathBuf {
    dir.join("campaign.ckpt")
}

/// Path of block `idx`'s sub-shard units manifest (present only while
/// the block is split and uncommitted).
fn units_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("block-{idx:02}.units.ckpt"))
}

/// Path of one completed sub-shard unit's checkpoint. `(offset,
/// stride)` identifies a unit uniquely within a block — the layout is a
/// partition, so no two units share both.
fn unit_path(dir: &Path, idx: usize, unit: SplitUnit) -> PathBuf {
    dir.join(format!(
        "block-{idx:02}.unit-{}-{}.ckpt",
        unit.offset, unit.stride
    ))
}

/// Removes block `idx`'s units manifest and every unit checkpoint —
/// run after the block commits (the block checkpoint subsumes them) and
/// on a fresh-start wipe. Best-effort: stale split files behind a valid
/// block checkpoint are dead weight, never consulted.
fn remove_split_files(dir: &Path, idx: usize) {
    let _ = std::fs::remove_file(units_path(dir, idx));
    let prefix = format!("block-{idx:02}.unit-");
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(&prefix) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Atomically (re)writes block `idx`'s units manifest: the complete
/// current sub-shard partition of the block's walk. Rewritten on every
/// split and unit claim, always before the new layout becomes runnable.
fn write_units_manifest(
    dir: &Path,
    fp: u64,
    idx: usize,
    layout: &[SubShardEntry],
) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-units\",\
         \"block\":{idx},\"campaign_fp\":\"{fp:#018x}\",\"sections\":[\"units\"]}}"
    );
    write_sectioned(
        &units_path(dir, idx),
        &header,
        &[("units", encode_sub_shards(layout))],
    )
}

fn load_units_manifest(
    dir: &Path,
    idx: usize,
    expected_fp: u64,
) -> Result<Vec<SubShardEntry>, StateError> {
    let what = "campaign units manifest";
    let path = units_path(dir, idx);
    let (header, mut sections) = read_sectioned(&path, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-units" {
        return Err(StateError::Corrupt(format!(
            "{what} {}: expected kind `campaign-units`, found `{kind}`",
            path.display()
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "units manifest {} was written under configuration {fp:#018x}, \
             this campaign fingerprints as {expected_fp:#018x}",
            path.display()
        )));
    }
    let declared = header.req_u64("block", what)? as usize;
    if declared != idx {
        return Err(StateError::Corrupt(format!(
            "{what} {}: declares block {declared}, expected {idx}",
            path.display()
        )));
    }
    let raw = sections.remove("units").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `units` section",
            path.display()
        ))
    })?;
    let entries = decode_sub_shards(&raw)?;
    if entries.is_empty() {
        return Err(StateError::Corrupt(format!(
            "{what} {}: empty unit layout",
            path.display()
        )));
    }
    Ok(entries)
}

/// Publishes one completed unit's checkpoint: its telemetry delta plus
/// the raw, classification-free output [`Campaign::assemble`] merges.
fn write_unit_ckpt(
    dir: &Path,
    fp: u64,
    idx: usize,
    raw: &UnitRaw,
    metrics: &Snapshot,
) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-unit\",\
         \"block\":{idx},\"offset\":{},\"stride\":{},\"cap\":{},\
         \"campaign_fp\":\"{fp:#018x}\",\"sections\":[\"metrics\",\"unit\"]}}",
        raw.unit.offset, raw.unit.stride, raw.unit.cap
    );
    let mut e = Encoder::new();
    encode_unit_raw(&mut e, raw);
    write_sectioned(
        &unit_path(dir, idx, raw.unit),
        &header,
        &[("metrics", encode_snapshot(metrics)), ("unit", e.finish())],
    )
}

fn load_unit_ckpt(
    dir: &Path,
    idx: usize,
    expected_fp: u64,
    unit: SplitUnit,
) -> Result<(UnitRaw, Snapshot), StateError> {
    let what = "campaign unit checkpoint";
    let path = unit_path(dir, idx, unit);
    let (header, mut sections) = read_sectioned(&path, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-unit" {
        return Err(StateError::Corrupt(format!(
            "{what} {}: expected kind `campaign-unit`, found `{kind}`",
            path.display()
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "unit checkpoint {} was taken under configuration {fp:#018x}, \
             this campaign fingerprints as {expected_fp:#018x}",
            path.display()
        )));
    }
    let metrics_raw = sections.remove("metrics").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `metrics` section",
            path.display()
        ))
    })?;
    let unit_raw = sections.remove("unit").ok_or_else(|| {
        StateError::Corrupt(format!("{what} {}: missing `unit` section", path.display()))
    })?;
    let mut d = Decoder::new(&unit_raw, "campaign unit");
    let raw = decode_unit_raw(&mut d)?;
    d.expect_end()?;
    if raw.unit != unit || header.req_u64("block", what)? as usize != idx {
        return Err(StateError::Corrupt(format!(
            "{what} {}: payload does not match its manifest entry",
            path.display()
        )));
    }
    Ok((raw, decode_snapshot(&metrics_raw)?))
}

/// Materializes a [`BlockMode::Split`] plan into a bin seed: completed
/// units load from their checkpoints, the rest queue for re-running.
fn load_bin_seed(
    dir: &Path,
    idx: usize,
    fp: u64,
    plans: &[UnitPlan],
) -> Result<BinSeed, StateError> {
    let mut seed = BinSeed::default();
    for plan in plans {
        match plan.mode {
            UnitMode::Skip => seed.done.push(load_unit_ckpt(dir, idx, fp, plan.unit)?),
            UnitMode::Resume | UnitMode::Fresh => seed.rerun.push(plan.unit),
        }
        seed.layout
            .push(entry_of(plan.unit, !matches!(plan.mode, UnitMode::Fresh)));
    }
    seed.layout.sort_by_key(|e| e.offset);
    Ok(seed)
}

fn write_marker(dir: &Path, idx: usize) -> Result<(), StateError> {
    let path = marker_path(dir, idx);
    std::fs::write(&path, b"")
        .map_err(|e| StateError::io(format!("write marker {}", path.display()), e))
}

fn write_dir_manifest(dir: &Path, fp: u64) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-dir\",\
         \"blocks\":{},\"campaign_fp\":\"{fp:#018x}\",\"sections\":[]}}",
        SAMPLE_BLOCKS.len()
    );
    write_sectioned(&dir_manifest_path(dir), &header, &[])
}

/// Validates the directory manifest and classifies every block. An
/// absent manifest (killed before anything was written, or a fresh dir)
/// yields an all-[`Fresh`](BlockMode::Fresh) plan, mirroring the
/// sequential campaign's "kill before the first checkpoint resumes as a
/// fresh start".
fn load_dir(dir: &Path, expected_fp: u64) -> Result<Vec<BlockMode>, StateError> {
    let manifest = dir_manifest_path(dir);
    if !manifest.exists() {
        return Ok(vec![BlockMode::Fresh; SAMPLE_BLOCKS.len()]);
    }
    let what = "campaign directory manifest";
    let (header, _) = read_sectioned(&manifest, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-dir" {
        return Err(StateError::Corrupt(format!(
            "{what}: expected kind `campaign-dir`, found `{kind}`"
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "campaign checkpoint directory was written under configuration \
             {fp:#018x}, this campaign fingerprints as {expected_fp:#018x}"
        )));
    }
    (0..SAMPLE_BLOCKS.len())
        .map(|idx| {
            if block_path(dir, idx).exists() {
                // A present checkpoint only counts if it reads back
                // cleanly: a crash inside the group-commit window can
                // leave a published-but-torn file. Corrupt reclassifies
                // as a partial block (the re-run's rewrite clobbers the
                // torn file); fingerprint/config mismatches stay hard
                // errors — re-running would scan the wrong thing.
                match load_block_ckpt(dir, idx, expected_fp) {
                    Ok(_) => Ok(BlockMode::Skip),
                    // A torn checkpoint proves the block ran even when
                    // its marker is already gone — floor Fresh to
                    // Resume.
                    Err(StateError::Corrupt(_)) => match classify_partial(dir, idx, expected_fp)? {
                        BlockMode::Fresh => Ok(BlockMode::Resume),
                        partial => Ok(partial),
                    },
                    Err(e) => Err(e),
                }
            } else {
                classify_partial(dir, idx, expected_fp)
            }
        })
        .collect()
}

/// Classifies a block with no (valid) completed checkpoint: a units
/// manifest means a kill hit mid-split — build the per-unit plan;
/// otherwise the in-progress marker decides Resume versus Fresh. A
/// corrupt manifest falls back to re-running the whole block, which is
/// byte-identical by construction.
fn classify_partial(dir: &Path, idx: usize, expected_fp: u64) -> Result<BlockMode, StateError> {
    if units_path(dir, idx).exists() {
        match load_units_manifest(dir, idx, expected_fp) {
            Ok(entries) => {
                let mut plans = Vec::with_capacity(entries.len());
                for entry in entries {
                    let unit = unit_of(&entry);
                    let mode = if unit_path(dir, idx, unit).exists() {
                        // Same torn-file rule as block checkpoints: a
                        // unit checkpoint counts only if it reads back
                        // cleanly; corrupt means the unit re-runs.
                        match load_unit_ckpt(dir, idx, expected_fp, unit) {
                            Ok(_) => UnitMode::Skip,
                            Err(StateError::Corrupt(_)) => UnitMode::Resume,
                            Err(e) => return Err(e),
                        }
                    } else if entry.started {
                        UnitMode::Resume
                    } else {
                        UnitMode::Fresh
                    };
                    plans.push(UnitPlan { unit, mode });
                }
                Ok(BlockMode::Split(plans))
            }
            Err(StateError::Corrupt(_)) => Ok(BlockMode::Resume),
            Err(e) => Err(e),
        }
    } else if marker_path(dir, idx).exists() {
        Ok(BlockMode::Resume)
    } else {
        Ok(BlockMode::Fresh)
    }
}

/// Publishes one block checkpoint. With `sync: false` the data fsync is
/// deferred to the caller's group commit ([`flush_group`]); the file is
/// still published atomically via rename, so readers either see a whole
/// file or (after an OS crash inside the deferred window) a torn one —
/// which the resume planner classifies as "never completed".
fn write_block_ckpt(
    dir: &Path,
    fp: u64,
    idx: usize,
    block: &BlockResult,
    metrics: &Snapshot,
    sync: bool,
) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-block\",\
         \"block\":{idx},\"profile\":{},\"campaign_fp\":\"{fp:#018x}\",\
         \"sections\":[\"metrics\",\"block\"]}}",
        block.profile_id
    );
    let mut e = Encoder::new();
    encode_block(&mut e, block);
    write_sectioned_opts(
        &block_path(dir, idx),
        &header,
        &[("metrics", encode_snapshot(metrics)), ("block", e.finish())],
        sync,
    )
}

fn load_block_ckpt(dir: &Path, idx: usize, expected_fp: u64) -> Result<LoadedBlock, StateError> {
    let what = "campaign block checkpoint";
    let path = block_path(dir, idx);
    let (header, mut sections) = read_sectioned(&path, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-block" {
        return Err(StateError::Corrupt(format!(
            "{what} {}: expected kind `campaign-block`, found `{kind}`",
            path.display()
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "block checkpoint {} was taken under configuration {fp:#018x}, \
             this campaign fingerprints as {expected_fp:#018x}",
            path.display()
        )));
    }
    let declared = header.req_u64("block", what)? as usize;
    if declared != idx {
        return Err(StateError::Corrupt(format!(
            "{what} {}: declares block {declared}, expected {idx}",
            path.display()
        )));
    }
    let metrics_raw = sections.remove("metrics").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `metrics` section",
            path.display()
        ))
    })?;
    let block_raw = sections.remove("block").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `block` section",
            path.display()
        ))
    })?;
    let mut d = Decoder::new(&block_raw, "campaign block");
    let block = decode_block(&mut d)?;
    d.expect_end()?;
    if block.profile_id as u64 != header.req_u64("profile", what)? {
        return Err(StateError::Corrupt(format!(
            "{what} {}: profile id does not match its header",
            path.display()
        )));
    }
    Ok(LoadedBlock {
        block,
        metrics: decode_snapshot(&metrics_raw)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::world::{World, WorldConfig};
    use xmap_netsim::KillPoint;

    fn base(max: u64) -> ScanConfig {
        ScanConfig {
            max_targets: Some(max),
            seed: 5,
            ..Default::default()
        }
    }

    fn make_world(_w: usize, telemetry: &Telemetry) -> World {
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.set_telemetry(telemetry);
        world
    }

    fn sequential(tpb: u64) -> (CampaignResult, Snapshot) {
        let telemetry = Telemetry::new();
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.set_telemetry(&telemetry);
        let mut scanner = Scanner::with_telemetry(world, base(tpb), telemetry.clone());
        let result = Campaign::new(tpb).run(&mut scanner);
        (result, telemetry.registry.snapshot())
    }

    #[test]
    fn worker_counts_are_byte_identical() {
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);
        for workers in [1usize, 2, 4] {
            let outcome =
                ParallelCampaign::new(Campaign::new(tpb), workers).run(&base(tpb), make_world);
            assert!(!outcome.interrupted);
            assert_eq!(outcome.result, seq, "{workers} workers diverged");
            assert_eq!(
                outcome.result.to_csv(),
                seq.to_csv(),
                "{workers}-worker CSV diverged"
            );
            assert_eq!(
                outcome.snapshot, seq_snap,
                "{workers}-worker snapshot diverged"
            );
        }
    }

    #[test]
    fn checkpointed_run_writes_all_blocks() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-full-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 10;
        let exec = ParallelCampaign::new(Campaign::new(tpb), 2);
        let outcome = exec
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        assert!(!outcome.interrupted);
        assert_eq!(outcome.result.blocks.len(), SAMPLE_BLOCKS.len());
        let plan = exec.resume_plan(&base(tpb), &dir).unwrap();
        assert!(plan.iter().all(|m| *m == BlockMode::Skip), "{plan:?}");
        // A resume with everything checkpointed scans nothing and still
        // reproduces the result and snapshot exactly.
        let resumed = exec
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert_eq!(resumed.result, outcome.result);
        assert_eq!(resumed.snapshot, outcome.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_and_resume_with_different_worker_count() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);

        let signal = AbortSignal::new();
        let exec2 = ParallelCampaign::new(Campaign::new(tpb), 2);
        let partial = exec2
            .run_checkpointed(&base(tpb), &dir, false, Some(&signal), |w, telemetry| {
                let mut world = World::with_config(WorldConfig::lossless(99, 50));
                world.set_telemetry(telemetry);
                if w == 0 {
                    // Deterministic interrupt: worker 0's world kills the
                    // whole campaign after 6k of its own probes.
                    world.arm_kill(
                        KillPoint {
                            after_probes: Some(6_000),
                            ..Default::default()
                        },
                        signal.clone(),
                    );
                }
                world
            })
            .unwrap();
        assert!(partial.interrupted, "kill point must interrupt");
        assert!(partial.result.blocks.len() < SAMPLE_BLOCKS.len());

        let plan = exec2.resume_plan(&base(tpb), &dir).unwrap();
        assert!(plan.contains(&BlockMode::Skip), "{plan:?}");
        assert!(
            plan.iter().any(|m| *m != BlockMode::Skip),
            "something must be left to do: {plan:?}"
        );

        // Resume under a different worker count.
        let exec3 = ParallelCampaign::new(Campaign::new(tpb), 3);
        let full = exec3
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert!(!full.interrupted);
        assert_eq!(full.result, seq, "resumed campaign must match sequential");
        assert_eq!(full.snapshot, seq_snap, "resumed snapshot must match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_campaign_is_refused() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 9;
        ParallelCampaign::new(Campaign::new(tpb), 2)
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        let other = ParallelCampaign::new(Campaign::new(tpb * 2), 2);
        let err = other
            .run_checkpointed(&base(tpb * 2), &dir, true, None, make_world)
            .unwrap_err();
        assert!(matches!(err, StateError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParallelCampaign::new(Campaign::new(1), 0);
    }

    /// Strips the supervision counters a faulty run adds, so the rest of
    /// the snapshot can be compared byte-for-byte against a clean run.
    fn strip_exec(mut snap: Snapshot) -> Snapshot {
        for name in [
            names::EXEC_WORKER_PANICS,
            names::EXEC_REQUEUED,
            names::EXEC_POISONED,
            names::EXEC_STALLS,
            names::EXEC_SPLITS,
            names::EXEC_SPLIT_SHARDS,
        ] {
            snap.counters.remove(name);
        }
        snap
    }

    #[test]
    fn worker_panic_retries_on_surviving_worker_byte_identically() {
        let tpb = 1 << 10;
        let (seq, seq_snap) = sequential(tpb);
        // Worker 0 panics on its second claimed block; the requeued block
        // re-runs on a surviving worker (or the supervisor fallback).
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 2)
            .with_exec_faults(ExecPlan::panic_on(0, 1))
            .run(&base(tpb), make_world);
        assert!(!outcome.interrupted);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "recovered campaign diverged");
        assert_eq!(outcome.snapshot.counter(names::EXEC_WORKER_PANICS), 1);
        assert_eq!(outcome.snapshot.counter(names::EXEC_REQUEUED), 1);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn single_worker_panic_falls_back_to_supervisor() {
        let tpb = 1 << 9;
        let (seq, seq_snap) = sequential(tpb);
        // The only worker panics on its fourth block and retires; the
        // supervisor fallback must finish the requeued block and every
        // block after it, still byte-identically.
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 1)
            .with_exec_faults(ExecPlan::panic_on(0, 3))
            .run(&base(tpb), make_world);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "supervisor fallback diverged");
        assert_eq!(outcome.snapshot.counter(names::EXEC_WORKER_PANICS), 1);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn stalled_worker_is_rescued_by_watchdog() {
        let tpb = 1 << 13;
        let (seq, seq_snap) = sequential(tpb);
        // Worker 0 goes silent holding its first block. The quantum is
        // calibrated between one block's runtime (a live worker must not
        // look hung) and the surviving worker's total remaining work (the
        // watchdog must fire while the run is still live); the wide
        // attempt budget keeps a spuriously reclaimed slow block — whose
        // re-run is byte-identical anyway — from ever being poisoned.
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 2)
            .with_exec_faults(ExecPlan::stall_on(0, 0))
            .with_watchdog(Duration::from_millis(200))
            .with_supervision(Supervision { max_attempts: 10 })
            .run(&base(tpb), make_world);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "rescued campaign diverged");
        assert!(outcome.snapshot.counter(names::EXEC_STALLS) >= 1);
        assert!(outcome.snapshot.counter(names::EXEC_REQUEUED) >= 1);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn slow_but_alive_worker_is_never_reclaimed() {
        // The watchdog bounds time *without probe progress*, not block
        // runtime. Arm it with a quantum well below one block's runtime
        // — under a wall-clock rule every block would be spuriously
        // requeued — and assert a healthy run sees zero stalls and stays
        // byte-identical to sequential. The quantum self-calibrates from
        // the measured sequential pace, floored high enough that OS
        // scheduling jitter can't fake a flat heartbeat.
        let tpb = 1 << 14;
        let t0 = Instant::now();
        let (seq, seq_snap) = sequential(tpb);
        let per_block = t0.elapsed() / SAMPLE_BLOCKS.len() as u32;
        let quantum = (per_block / 4).max(Duration::from_millis(75));
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 2)
            .with_watchdog(quantum)
            .run(&base(tpb), make_world);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "slow-but-alive campaign diverged");
        assert_eq!(
            outcome.snapshot.counter(names::EXEC_STALLS),
            0,
            "live worker was spuriously reclaimed"
        );
        assert_eq!(outcome.snapshot.counter(names::EXEC_REQUEUED), 0);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn poisoned_block_leaves_deterministic_gap() {
        let tpb = 1 << 9;
        let (seq, _) = sequential(tpb);
        // One worker, attempt budget 1: the scripted panic on the sixth
        // claimed block (= block index 5, claims are in block order)
        // poisons it immediately. The campaign must complete around the
        // gap with every other block in Table II order.
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 1)
            .with_supervision(Supervision { max_attempts: 1 })
            .with_exec_faults(ExecPlan::panic_on(0, 5))
            .run(&base(tpb), make_world);
        assert_eq!(outcome.poisoned, vec![5]);
        assert_eq!(outcome.result.blocks.len(), SAMPLE_BLOCKS.len() - 1);
        let mut expect = seq.blocks.clone();
        expect.remove(5);
        assert_eq!(outcome.result.blocks, expect, "merge order must hold");
        assert_eq!(outcome.snapshot.counter(names::EXEC_POISONED), 1);
    }

    #[test]
    fn torn_block_checkpoint_reclassifies_as_resume() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 9;
        let exec = ParallelCampaign::new(Campaign::new(tpb), 2);
        let full = exec
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        // Tear block 7's checkpoint in half — what an OS crash inside the
        // group-commit window can leave behind a rename.
        let victim = block_path(&dir, 7);
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let plan = exec.resume_plan(&base(tpb), &dir).unwrap();
        for (idx, mode) in plan.iter().enumerate() {
            let expect = if idx == 7 {
                BlockMode::Resume
            } else {
                BlockMode::Skip
            };
            assert_eq!(*mode, expect, "block {idx}");
        }
        // The resume re-runs exactly the torn block and reproduces the
        // uninterrupted campaign byte-for-byte.
        let resumed = exec
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert_eq!(resumed.result, full.result);
        assert_eq!(resumed.snapshot, full.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_quantums_agree_with_legacy_per_block_sync() {
        let tpb = 1 << 9;
        let run_with = |group: usize, tag: &str| {
            let dir =
                std::env::temp_dir().join(format!("xmap-pcamp-gc{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let out = ParallelCampaign::new(Campaign::new(tpb), 2)
                .with_group_commit(group)
                .run_checkpointed(&base(tpb), &dir, false, None, make_world)
                .unwrap();
            let plan = ParallelCampaign::new(Campaign::new(tpb), 2)
                .resume_plan(&base(tpb), &dir)
                .unwrap();
            assert!(plan.iter().all(|m| *m == BlockMode::Skip), "{plan:?}");
            let _ = std::fs::remove_dir_all(&dir);
            (out.result, out.snapshot)
        };
        let legacy = run_with(1, "legacy");
        let batched = run_with(DEFAULT_GROUP_COMMIT, "batched");
        let whole = run_with(SAMPLE_BLOCKS.len() + 1, "whole");
        assert_eq!(legacy, batched);
        assert_eq!(legacy, whole);
    }

    #[test]
    fn forced_splits_stay_byte_identical_across_worker_counts() {
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);
        for workers in [1usize, 2, 4] {
            let outcome = ParallelCampaign::new(Campaign::new(tpb), workers)
                .with_split_threshold(256)
                .with_force_split_at(1_000)
                .run(&base(tpb), make_world);
            assert!(!outcome.interrupted);
            assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
            let splits = outcome.snapshot.counter(names::EXEC_SPLITS);
            assert!(splits >= 1, "{workers} workers: forced split never fired");
            assert!(
                outcome.snapshot.counter(names::EXEC_SPLIT_SHARDS) >= 2 * splits,
                "each split must mint at least two sub-shards"
            );
            assert_eq!(outcome.result, seq, "{workers}-worker split run diverged");
            assert_eq!(
                outcome.result.to_csv(),
                seq.to_csv(),
                "{workers}-worker split CSV diverged"
            );
            assert_eq!(
                strip_exec(outcome.snapshot),
                seq_snap,
                "{workers}-worker split snapshot diverged"
            );
        }
    }

    #[test]
    fn threshold_split_on_skewed_blocks_stays_byte_identical() {
        // One giant block dominates the campaign — the straggler shape
        // the splitter exists for. Threshold-gated splits fire only when
        // a worker actually goes idle, so the assertion here is pure
        // byte-identity under every worker count, splits or not.
        let tpb = 1 << 9;
        let giant = 1 << 13;
        let campaign = || Campaign::new(tpb).with_block_targets(vec![(2, giant)]);
        let telemetry = Telemetry::new();
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.set_telemetry(&telemetry);
        let mut scanner = Scanner::with_telemetry(world, base(giant), telemetry.clone());
        let seq = campaign().run(&mut scanner);
        let seq_snap = telemetry.registry.snapshot();
        for workers in [2usize, 4] {
            let outcome = ParallelCampaign::new(campaign(), workers)
                .with_split_threshold(512)
                .run(&base(giant), make_world);
            assert!(!outcome.interrupted);
            assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
            assert_eq!(outcome.result, seq, "{workers}-worker skewed run diverged");
            assert_eq!(
                strip_exec(outcome.snapshot),
                seq_snap,
                "{workers}-worker skewed snapshot diverged"
            );
        }
    }

    #[test]
    fn split_disabled_leaves_legacy_path_untouched() {
        // --split-threshold 0 (the default) must be indistinguishable
        // from the pre-split executor: identical bytes, and no split
        // counters ever minted.
        let tpb = 1 << 10;
        let (seq, seq_snap) = sequential(tpb);
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 4).run(&base(tpb), make_world);
        assert_eq!(outcome.result, seq);
        assert_eq!(outcome.snapshot, seq_snap);
        assert!(!outcome.snapshot.counters.contains_key(names::EXEC_SPLITS));
        assert!(!outcome
            .snapshot
            .counters
            .contains_key(names::EXEC_SPLIT_SHARDS));
    }

    #[test]
    fn kill_mid_split_resumes_under_different_worker_count() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-ksplit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);

        // One worker makes the kill land deterministically inside a
        // split: every block force-splits after 1k consumed positions,
        // so by probe 6k the in-flight block has a durable sub-shard
        // manifest plus at least one committed unit checkpoint.
        let signal = AbortSignal::new();
        let exec1 = ParallelCampaign::new(Campaign::new(tpb), 1)
            .with_split_threshold(256)
            .with_force_split_at(1_000);
        let partial = exec1
            .run_checkpointed(&base(tpb), &dir, false, Some(&signal), |_w, telemetry| {
                let mut world = World::with_config(WorldConfig::lossless(99, 50));
                world.set_telemetry(telemetry);
                world.arm_kill(
                    KillPoint {
                        after_probes: Some(6_000),
                        ..Default::default()
                    },
                    signal.clone(),
                );
                world
            })
            .unwrap();
        assert!(partial.interrupted, "kill point must interrupt");

        let plan = exec1.resume_plan(&base(tpb), &dir).unwrap();
        let split_plan = plan
            .iter()
            .find_map(|m| match m {
                BlockMode::Split(units) => Some(units.clone()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no split plan in {plan:?}"));
        assert!(
            split_plan.iter().any(|u| matches!(u.mode, UnitMode::Skip)),
            "a committed sub-shard must be skippable: {split_plan:?}"
        );
        assert!(
            split_plan.iter().any(|u| !matches!(u.mode, UnitMode::Skip)),
            "something inside the split must be left to do: {split_plan:?}"
        );

        // Resume under a different worker count with splitting still on:
        // loaded sub-shard deltas and re-run units must assemble to the
        // sequential bytes.
        let exec3 = ParallelCampaign::new(Campaign::new(tpb), 3)
            .with_split_threshold(256)
            .with_force_split_at(1_000);
        let full = exec3
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert!(!full.interrupted);
        assert_eq!(full.result, seq, "resumed split campaign diverged");
        assert_eq!(
            strip_exec(full.snapshot),
            seq_snap,
            "resumed split snapshot diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_plan_resumed_with_splitting_disabled_reruns_whole_block() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-nsplit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);

        let signal = AbortSignal::new();
        let exec1 = ParallelCampaign::new(Campaign::new(tpb), 1)
            .with_split_threshold(256)
            .with_force_split_at(1_000);
        exec1
            .run_checkpointed(&base(tpb), &dir, false, Some(&signal), |_w, telemetry| {
                let mut world = World::with_config(WorldConfig::lossless(99, 50));
                world.set_telemetry(telemetry);
                world.arm_kill(
                    KillPoint {
                        after_probes: Some(6_000),
                        ..Default::default()
                    },
                    signal.clone(),
                );
                world
            })
            .unwrap();

        // A legacy (split-disabled) resume sees the same directory and
        // simply re-runs partially split blocks whole — byte-identical.
        let legacy = ParallelCampaign::new(Campaign::new(tpb), 2);
        let full = legacy
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert!(!full.interrupted);
        assert_eq!(full.result, seq, "legacy resume of split dir diverged");
        assert_eq!(strip_exec(full.snapshot), seq_snap);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
