//! The parallel campaign executor: block-level work stealing with a
//! deterministic merge.
//!
//! [`Campaign::run`] walks the fifteen sample blocks sequentially on one
//! [`Scanner`]; this module runs each block on one of N workers — each
//! with a private network replica, validator, retry queue, AIMD
//! controller and telemetry [`Registry`] — and merges the
//! [`BlockResult`]s back in Table II (profile) order, so a seeded
//! N-worker campaign is **byte-identical** to the sequential one:
//! records, [`ScanStats`] sums and the merged telemetry [`Snapshot`]
//! included.
//!
//! # Scheduling
//!
//! Blocks differ wildly in cost — scan-space sizes span 2²⁸..2³², and
//! ICMPv6 token-bucket tightness decides how much mop-up work a block
//! carries — so static assignment would leave fast workers idle behind
//! the slowest block. The executor instead drains a deque-based
//! [`StealQueue`]: each worker owns a round-robin-seeded deque, pops its
//! own front, and steals from a victim's back once empty. The schedule
//! is nondeterministic under contention, but every result is tagged with
//! its block index and merged in index order, which makes the schedule
//! unobservable in the output.
//!
//! # Determinism envelope
//!
//! Byte-identity across worker counts (and against [`Campaign::run`])
//! holds because per-block results do not depend on the virtual clock at
//! which the block starts:
//!
//! * netsim responses are pure functions of `(probe, world seed)`; the
//!   baseline loss draw keys on addresses, not ticks,
//! * ICMPv6 token-bucket limiters initialize lazily on each device's
//!   first probe, so refill timing is *relative* to the block's own
//!   probes, and blocks probe disjoint devices,
//! * the mop-up pass (retransmission ordering included) runs entirely
//!   inside the block's owning worker.
//!
//! Time-keyed fault plans (jitter, flaky windows) fall outside the
//! envelope, exactly as for [`ParallelScanner`]. Private replicas also
//! assume campaign probes are the only traffic to the sample blocks
//! during the campaign (true for the default fault-free worlds; a
//! limiter depleted by *earlier* probes on a shared scanner is state a
//! replica cannot see).
//!
//! # Checkpoint layout
//!
//! [`ParallelCampaign::run_checkpointed`] keeps one directory of
//! `xmap-checkpoint/v1` sectioned files:
//!
//! ```text
//! dir/
//!   campaign.ckpt        kind `campaign-dir`: campaign fingerprint
//!   block-NN.ckpt        kind `campaign-block`: one completed block +
//!                        its telemetry delta (written by the owning
//!                        worker after the block, mop-up included)
//!   block-NN.inprogress  marker while a worker is inside block NN;
//!                        removed on completion, left behind by a kill
//! ```
//!
//! On resume every block is classified [`Skip`](BlockMode::Skip)
//! (checkpoint file present: load, don't re-scan),
//! [`Resume`](BlockMode::Resume) (marker present: the kill hit
//! mid-block; the partial work is discarded and the block re-runs from
//! its start inside whichever worker pops it) or
//! [`Fresh`](BlockMode::Fresh) (never started). Because completed blocks
//! are self-contained deltas and the campaign fingerprint excludes the
//! worker count, a campaign killed under one N resumes byte-identically
//! under any other.
//!
//! [`Registry`]: xmap_telemetry::Registry
//! [`ScanStats`]: xmap::ScanStats
//! [`ParallelScanner`]: xmap::ParallelScanner

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use xmap::telemetry::names;
use xmap::{
    insert_exec_counters, merge_worker_snapshots, ScanConfig, Scanner, StealQueue, Supervision,
};
use xmap_failpoint::exec::{ExecAction, ExecFaults, ExecPlan};
use xmap_failpoint::fs as fp;
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::packet::Network;
use xmap_state::checkpoint::{
    decode_snapshot, encode_snapshot, parse_fp, read_sectioned, write_sectioned,
    write_sectioned_opts,
};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{AbortSignal, StateError, CHECKPOINT_SCHEMA};
use xmap_telemetry::{Counter, Snapshot, Telemetry};

use crate::campaign::{decode_block, encode_block, BlockResult, Campaign, CampaignResult};

/// Default group-commit quantum: how many block checkpoints a worker
/// publishes before it batches their fsyncs (one `fsync` per file plus
/// one directory sync, instead of a per-block file-plus-rename sync).
pub const DEFAULT_GROUP_COMMIT: usize = 4;

/// What the resume planner decided for one sample block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMode {
    /// A completed checkpoint exists: load it, don't re-scan.
    Skip,
    /// A kill hit mid-block (in-progress marker without a checkpoint):
    /// the partial work was discarded; re-run the block from its start.
    Resume,
    /// The block was never started.
    Fresh,
}

/// Outcome of one parallel campaign invocation.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Completed blocks in Table II order (gaps possible when
    /// interrupted or when blocks were poisoned).
    pub result: CampaignResult,
    /// Merged telemetry across skipped-block deltas and every *committed*
    /// live block, with `scan.hit_rate_ppm` recomputed from the merged
    /// totals. Work lost to a panic, stall or abort mid-block never
    /// contributes (the checkpoint directory agrees with the snapshot by
    /// construction). Supervision counters (`exec.*`) appear only when
    /// nonzero.
    pub snapshot: Snapshot,
    /// Whether an armed abort signal stopped the campaign early (the
    /// checkpoint directory then holds everything completed so far).
    pub interrupted: bool,
    /// Block indices whose attempt budget ran out (worker panics or
    /// stalls on every try). Empty on a healthy run; the campaign
    /// completes *around* a poisoned block rather than aborting.
    pub poisoned: Vec<usize>,
}

/// Work-stealing multi-worker driver around a [`Campaign`].
///
/// # Examples
///
/// ```
/// use xmap::ScanConfig;
/// use xmap_netsim::World;
/// use xmap_periphery::{Campaign, ParallelCampaign};
///
/// let executor = ParallelCampaign::new(Campaign::new(1 << 12), 2);
/// let outcome = executor.run(&ScanConfig::default(), |_, telemetry| {
///     let mut world = World::new(7);
///     world.set_telemetry(telemetry);
///     world
/// });
/// assert_eq!(outcome.result.blocks.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelCampaign {
    campaign: Campaign,
    workers: usize,
    supervision: Supervision,
    watchdog: Option<Duration>,
    group_commit: usize,
    exec_plan: Option<ExecPlan>,
}

impl ParallelCampaign {
    /// An executor running `campaign` on `workers` threads. One worker
    /// reproduces [`Campaign::run`] exactly (the queue degenerates to
    /// FIFO block order).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(campaign: Campaign, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ParallelCampaign {
            campaign,
            workers,
            supervision: Supervision::default(),
            watchdog: None,
            group_commit: DEFAULT_GROUP_COMMIT,
            exec_plan: None,
        }
    }

    /// Overrides the supervision policy (attempt budget per block).
    pub fn with_supervision(mut self, policy: Supervision) -> Self {
        self.supervision = policy;
        self
    }

    /// Arms the stalled-worker watchdog: a worker whose probes-sent
    /// heartbeat stays flat for `quantum` is presumed hung; its claim is
    /// invalidated (a late commit is discarded) and the block requeued
    /// for a surviving worker. The quantum bounds time *without probe
    /// progress*, not block runtime — a slow block whose worker keeps
    /// sending probes is never reclaimed, so the quantum can be set
    /// aggressively without fear of spurious requeues. Off by default.
    pub fn with_watchdog(mut self, quantum: Duration) -> Self {
        self.watchdog = Some(quantum);
        self
    }

    /// Sets the group-commit quantum: each worker publishes block
    /// checkpoints with their fsync deferred, then syncs the batch (files
    /// plus directory) every `every` blocks and on retirement. `1`
    /// restores the legacy fsync-per-block behaviour; the default is
    /// [`DEFAULT_GROUP_COMMIT`]. A crash inside the deferred window can
    /// leave a published checkpoint torn — the resume planner treats a
    /// torn block checkpoint as "never completed" and re-runs the block.
    pub fn with_group_commit(mut self, every: usize) -> Self {
        self.group_commit = every.max(1);
        self
    }

    /// Arms scripted executor faults (worker panics and stalls) for the
    /// next run. Test-harness plumbing; production runs never set this.
    pub fn with_exec_faults(mut self, plan: ExecPlan) -> Self {
        self.exec_plan = Some(plan);
        self
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wrapped campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Runs the campaign across all workers and merges deterministically.
    ///
    /// `make_network(w, telemetry)` builds worker `w`'s network replica;
    /// every worker must be built over the same world seed (disjoint
    /// blocks make replicas interchangeable with one shared world —
    /// see the module docs for the envelope). Each worker scans whole
    /// blocks under `base` unchanged; `base.max_targets` is ignored
    /// (the campaign caps per block).
    pub fn run<N: Network + Send>(
        &self,
        base: &ScanConfig,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> CampaignOutcome {
        self.execute(base, None, None, make_network)
            .expect("no checkpoint dir, no I/O to fail")
    }

    /// Runs the campaign with block-granular checkpointing in `dir`
    /// (created if missing; see the module docs for the layout). An
    /// armed `abort` signal stops every worker at its next block
    /// boundary; the partial block is discarded (its in-progress marker
    /// stays behind) and the outcome reports `interrupted`. A later
    /// `resume: true` invocation — under **any** worker count — loads
    /// completed blocks, re-runs the rest, and produces a result and
    /// merged snapshot byte-identical to an uninterrupted campaign.
    ///
    /// Resuming under a different campaign or scanner configuration is
    /// a hard [`StateError::Mismatch`]; `resume: false` wipes any
    /// previous campaign state in `dir`.
    pub fn run_checkpointed<N: Network + Send>(
        &self,
        base: &ScanConfig,
        dir: &Path,
        resume: bool,
        abort: Option<&AbortSignal>,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Result<CampaignOutcome, StateError> {
        let fp = self.campaign.fingerprint_cfg(base);
        std::fs::create_dir_all(dir)
            .map_err(|e| StateError::io(format!("create campaign dir {}", dir.display()), e))?;
        let loaded = if resume {
            let plan = load_dir(dir, fp)?;
            let mut loaded: Vec<Option<LoadedBlock>> =
                (0..SAMPLE_BLOCKS.len()).map(|_| None).collect();
            for (idx, mode) in plan.iter().enumerate() {
                if *mode == BlockMode::Skip {
                    loaded[idx] = Some(load_block_ckpt(dir, idx, fp)?);
                }
            }
            loaded
        } else {
            // Fresh start: wipe stale blocks so a same-fingerprint rerun
            // can never silently skip them.
            for idx in 0..SAMPLE_BLOCKS.len() {
                let _ = std::fs::remove_file(block_path(dir, idx));
                let _ = std::fs::remove_file(marker_path(dir, idx));
            }
            write_dir_manifest(dir, fp)?;
            (0..SAMPLE_BLOCKS.len()).map(|_| None).collect()
        };
        self.execute(base, Some((dir, fp, loaded)), abort, make_network)
    }

    /// Classifies every block for a resume of the campaign checkpointed
    /// in `dir` without running anything — the `Skip`/`Resume`/`Fresh`
    /// plan [`run_checkpointed`](Self::run_checkpointed) would execute.
    pub fn resume_plan(&self, base: &ScanConfig, dir: &Path) -> Result<Vec<BlockMode>, StateError> {
        load_dir(dir, self.campaign.fingerprint_cfg(base))
    }

    /// Shared driver behind [`run`](Self::run) and
    /// [`run_checkpointed`](Self::run_checkpointed). `ckpt` carries
    /// `(dir, fingerprint, per-block loaded checkpoints)` when
    /// checkpointing is on.
    fn execute<N: Network + Send>(
        &self,
        base: &ScanConfig,
        ckpt: Option<(&Path, u64, Vec<Option<LoadedBlock>>)>,
        abort: Option<&AbortSignal>,
        mut make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Result<CampaignOutcome, StateError> {
        let (dir, fp_id, loaded) = match ckpt {
            Some((dir, fp, loaded)) => (Some(dir), fp, loaded),
            None => (None, 0, (0..SAMPLE_BLOCKS.len()).map(|_| None).collect()),
        };
        // Only non-loaded blocks enter the queue, seeded round-robin in
        // block order so one worker reproduces the sequential walk.
        let pending: Vec<usize> = (0..SAMPLE_BLOCKS.len())
            .filter(|i| loaded[*i].is_none())
            .collect();
        let queue = StealQueue::new(pending.len(), self.workers);
        let slots: Vec<SlotState> = (0..pending.len()).map(|_| SlotState::default()).collect();
        let board: Vec<Mutex<Option<Claim>>> =
            (0..self.workers).map(|_| Mutex::new(None)).collect();
        let faults = self.exec_plan.as_ref().map(ExecPlan::armed);
        let counters = ExecCounters::default();
        let active = AtomicUsize::new(self.workers);
        let max_attempts = self.supervision.max_attempts.max(1);
        let group = self.group_commit.max(1);
        let mut scanners: Vec<Scanner<N>> = (0..self.workers)
            .map(|w| {
                let telemetry = Telemetry::new();
                let network = make_network(w, &telemetry);
                let mut scanner = Scanner::with_telemetry(network, base.clone(), telemetry);
                if let Some(signal) = abort {
                    scanner.set_abort(signal.clone());
                }
                scanner
            })
            .collect();

        let outs: Vec<Result<WorkerOut, StateError>> = std::thread::scope(|scope| {
            let watchdog = self.watchdog.map(|quantum| {
                let (board, slots, queue) = (&board, &slots, &queue);
                let (active, counters) = (&active, &counters);
                scope.spawn(move || {
                    run_watchdog(quantum, board, slots, queue, active, counters, max_attempts)
                })
            });
            let handles: Vec<_> = scanners
                .iter_mut()
                .enumerate()
                .map(|(w, scanner)| {
                    let (queue, pending, slots, board) = (&queue, &pending, &slots, &board);
                    let campaign = &self.campaign;
                    let faults = faults.as_ref();
                    let (counters, active) = (&counters, &active);
                    scope.spawn(move || {
                        let result = run_worker(WorkerCtx {
                            w,
                            scanner,
                            campaign,
                            queue,
                            pending,
                            slots,
                            board,
                            faults,
                            counters,
                            max_attempts,
                            group,
                            dir,
                            fp_id,
                        });
                        active.fetch_sub(1, Ordering::AcqRel);
                        result
                    })
                })
                .collect();
            // Joining in worker order keeps error reporting (and the
            // merge below) deterministic. A panic that escaped the
            // supervisor would be an executor bug; surface it as an
            // empty worker rather than tearing down the scope.
            let outs: Vec<Result<WorkerOut, StateError>> = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Ok(WorkerOut::default()),
                })
                .collect();
            if let Some(h) = watchdog {
                let _ = h.join();
            }
            outs
        });

        let interrupted = abort.is_some_and(AbortSignal::is_set);
        let mut worker_outs: Vec<WorkerOut> = Vec::with_capacity(outs.len());
        for out in outs {
            worker_outs.push(out?);
        }

        // Supervisor fallback: a block can be left neither done nor
        // poisoned when its panicked owner requeued it and every other
        // worker had already retired. Run those inline on fresh
        // single-use scanners until they commit or exhaust the budget.
        let mut supervisor = WorkerOut::default();
        if !interrupted {
            let mut sup_units = 0u64;
            for slot in 0..pending.len() {
                let state = &slots[slot];
                while !state.done.load(Ordering::Acquire) && !state.poisoned.load(Ordering::Acquire)
                {
                    if state.attempts.load(Ordering::Acquire) >= max_attempts {
                        state.poisoned.store(true, Ordering::Release);
                        break;
                    }
                    state.attempts.fetch_add(1, Ordering::AcqRel);
                    let idx = pending[slot];
                    let unit = sup_units;
                    sup_units += 1;
                    // The supervisor consults the fault script under its
                    // own worker index (`self.workers`) so torture tests
                    // can poison a block even under one worker. A Stall
                    // is ignored here — there is nobody left to rescue a
                    // hung supervisor.
                    let action = faults
                        .as_ref()
                        .and_then(|f| f.on_unit(self.workers, unit))
                        .filter(|a| *a == ExecAction::Panic);
                    let telemetry = Telemetry::new();
                    let network = make_network(self.workers, &telemetry);
                    let mut scanner = Scanner::with_telemetry(network, base.clone(), telemetry);
                    if let Some(signal) = abort {
                        scanner.set_abort(signal.clone());
                    }
                    let campaign = &self.campaign;
                    let attempt = catch_unwind(AssertUnwindSafe(
                        || -> Result<Option<(BlockResult, Snapshot)>, StateError> {
                            if action.is_some() {
                                panic!("injected executor fault: supervisor panics on unit {unit}");
                            }
                            if let Some(dir) = dir {
                                write_marker(dir, idx)?;
                            }
                            let block = campaign.run_block(&mut scanner, &SAMPLE_BLOCKS[idx]);
                            if scanner.is_aborted() {
                                return Ok(None);
                            }
                            // Fresh scanner: the baseline is empty, the
                            // delta is its whole registry.
                            let delta = scanner.telemetry().registry.snapshot();
                            Ok(Some((block, delta)))
                        },
                    ));
                    match attempt {
                        Ok(Ok(Some((block, delta)))) => {
                            state.done.store(true, Ordering::Release);
                            if let Some(dir) = dir {
                                write_block_ckpt(dir, fp_id, idx, &block, &delta, true)?;
                                let _ = std::fs::remove_file(marker_path(dir, idx));
                            }
                            supervisor.committed.merge(&delta);
                            supervisor.done.push((idx, block));
                        }
                        Ok(Ok(None)) => break, // aborted mid-block
                        Ok(Err(e)) => return Err(e),
                        Err(_) => {
                            counters.panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }

        let poisoned: Vec<usize> = (0..pending.len())
            .filter(|&slot| slots[slot].poisoned.load(Ordering::Acquire))
            .map(|slot| pending[slot])
            .collect();

        // Merge: loaded blocks and committed live blocks, in block-index
        // order — which is Table II (profile) order, the sequential
        // walk's order.
        let mut tagged: Vec<(usize, BlockResult)> = Vec::with_capacity(SAMPLE_BLOCKS.len());
        let mut skipped_deltas = Vec::new();
        for (idx, loaded_block) in loaded.into_iter().enumerate() {
            if let Some(l) = loaded_block {
                tagged.push((idx, l.block));
                skipped_deltas.push(l.metrics);
            }
        }
        let mut committed_deltas = Vec::with_capacity(worker_outs.len() + 1);
        for out in worker_outs {
            tagged.extend(out.done);
            committed_deltas.push(out.committed);
        }
        tagged.extend(supervisor.done);
        committed_deltas.push(supervisor.committed);
        tagged.sort_by_key(|(idx, _)| *idx);
        let result = CampaignResult {
            blocks: tagged.into_iter().map(|(_, b)| b).collect(),
        };
        // Committed deltas only: sums telescope to exactly the raw
        // registries on a fault-free run (byte-identical merge), and
        // exclude in-flight garbage from panicked/stalled/aborted blocks
        // otherwise — the snapshot always agrees with the checkpoint
        // directory.
        let mut snapshot =
            merge_worker_snapshots(skipped_deltas.into_iter().chain(committed_deltas));
        insert_exec_counters(
            &mut snapshot,
            counters.panics.load(Ordering::Acquire),
            counters.requeued.load(Ordering::Acquire),
            poisoned.len(),
        );
        let stalls = counters.stalls.load(Ordering::Acquire);
        if stalls > 0 {
            snapshot
                .counters
                .insert(names::EXEC_STALLS.to_owned(), stalls);
        }
        Ok(CampaignOutcome {
            result,
            snapshot,
            interrupted,
            poisoned,
        })
    }
}

/// Per-block supervision state shared by workers, the watchdog and the
/// supervisor fallback.
#[derive(Debug, Default)]
struct SlotState {
    /// Times the block has been claimed (spawned attempts).
    attempts: AtomicU32,
    /// Claim epoch: bumped to invalidate an in-flight claim (watchdog
    /// requeue, panicked owner). A commit whose claim epoch is stale is
    /// discarded — determinism makes the requeued re-run identical.
    epoch: AtomicU64,
    /// Set exactly once, by the attempt that commits the block.
    done: AtomicBool,
    /// Attempt budget exhausted; the campaign completes around it.
    poisoned: AtomicBool,
}

/// What a worker currently holds, for the watchdog's staleness check.
///
/// `sent`/`last_sent` are the heartbeat: a live handle on the owning
/// worker's `scan.sent` counter plus the value last observed by the
/// watchdog. Any probe sent since the previous tick proves the owner
/// alive and resets its quantum clock, so a slow-but-progressing block
/// is never spuriously reclaimed — only a worker that stops sending
/// probes altogether for a full quantum counts as hung.
#[derive(Debug, Clone)]
struct Claim {
    slot: usize,
    epoch: u64,
    since: Instant,
    sent: Counter,
    last_sent: u64,
}

/// Supervision tallies shared across threads, exported as `exec.*`
/// counters (only when nonzero).
#[derive(Debug, Default)]
struct ExecCounters {
    panics: AtomicU64,
    requeued: AtomicU64,
    stalls: AtomicU64,
}

/// One worker's contribution: committed blocks and the merged telemetry
/// deltas of exactly those blocks.
#[derive(Debug, Default)]
struct WorkerOut {
    done: Vec<(usize, BlockResult)>,
    committed: Snapshot,
}

/// Everything a campaign worker needs, bundled to keep the spawn site
/// readable.
struct WorkerCtx<'a, N> {
    w: usize,
    scanner: &'a mut Scanner<N>,
    campaign: &'a Campaign,
    queue: &'a StealQueue,
    pending: &'a [usize],
    slots: &'a [SlotState],
    board: &'a [Mutex<Option<Claim>>],
    faults: Option<&'a ExecFaults>,
    counters: &'a ExecCounters,
    max_attempts: u32,
    group: usize,
    dir: Option<&'a Path>,
    fp_id: u64,
}

/// The worker loop: claim a block, run it under `catch_unwind`, commit
/// the result if the claim is still valid. A panicked worker requeues
/// its block (within budget) and retires — its scanner may hold
/// half-mutated per-block state, so it must not claim further work; the
/// requeued block re-runs deterministically on a surviving worker (or
/// the supervisor fallback).
fn run_worker<N: Network>(ctx: WorkerCtx<'_, N>) -> Result<WorkerOut, StateError> {
    let WorkerCtx {
        w,
        scanner,
        campaign,
        queue,
        pending,
        slots,
        board,
        faults,
        counters,
        max_attempts,
        group,
        dir,
        fp_id,
    } = ctx;
    let mut out = WorkerOut::default();
    let mut to_sync: Vec<PathBuf> = Vec::new();
    let mut units = 0u64;
    // The heartbeat the watchdog reads: this worker's own probes-sent
    // counter. The handle is shared with the scanner's registry, so the
    // watchdog sees increments the moment they happen.
    let sent = scanner.telemetry().registry.counter(names::SENT);
    let clear_board = |b: &Mutex<Option<Claim>>| {
        *b.lock().expect("progress board poisoned") = None;
    };
    let verdict = loop {
        if scanner.is_aborted() {
            break Ok(());
        }
        let Some(slot) = queue.pop(w) else {
            break Ok(());
        };
        let state = &slots[slot];
        // A stale requeue: the block committed (or was poisoned) between
        // the push and this pop.
        if state.done.load(Ordering::Acquire) || state.poisoned.load(Ordering::Acquire) {
            continue;
        }
        let idx = pending[slot];
        let unit = units;
        units += 1;
        state.attempts.fetch_add(1, Ordering::AcqRel);
        let claim_epoch = state.epoch.load(Ordering::Acquire);
        *board[w].lock().expect("progress board poisoned") = Some(Claim {
            slot,
            epoch: claim_epoch,
            since: Instant::now(),
            sent: sent.clone(),
            last_sent: sent.get(),
        });
        let action = faults.and_then(|f| f.on_unit(w, unit));
        if action == Some(ExecAction::Stall) {
            // Scripted stall: retire while still holding the claim (the
            // board entry stays set). With a watchdog armed the claim is
            // invalidated and requeued after one quantum; without one
            // the supervisor fallback picks the block up after join.
            break Ok(());
        }
        let attempt = catch_unwind(AssertUnwindSafe(
            || -> Result<Option<(BlockResult, Snapshot)>, StateError> {
                if action == Some(ExecAction::Panic) {
                    panic!("injected executor fault: worker {w} panics on unit {unit}");
                }
                if let Some(dir) = dir {
                    write_marker(dir, idx)?;
                }
                let baseline = scanner.telemetry().registry.snapshot();
                let block = campaign.run_block(scanner, &SAMPLE_BLOCKS[idx]);
                if scanner.is_aborted() {
                    return Ok(None);
                }
                let delta = scanner.telemetry().registry.snapshot().diff(&baseline);
                Ok(Some((block, delta)))
            },
        ));
        match attempt {
            Ok(Ok(Some((block, delta)))) => {
                // Commit protocol: the claim must still carry our epoch
                // (no watchdog requeue happened) and the done CAS must
                // win (no requeued copy got there first). A discarded
                // commit is pure wasted work — the surviving copy
                // produces the identical result.
                let committed = state.epoch.load(Ordering::Acquire) == claim_epoch
                    && state
                        .done
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                clear_board(&board[w]);
                if committed {
                    if let Some(dir) = dir {
                        write_block_ckpt(dir, fp_id, idx, &block, &delta, group <= 1)?;
                        if group > 1 {
                            to_sync.push(block_path(dir, idx));
                            if to_sync.len() >= group {
                                flush_group(dir, &mut to_sync)?;
                            }
                        }
                        let _ = std::fs::remove_file(marker_path(dir, idx));
                    }
                    out.committed.merge(&delta);
                    out.done.push((idx, block));
                }
            }
            Ok(Ok(None)) => {
                // Abort hit mid-block: discard the partial work; the
                // marker stays behind for the resume plan.
                clear_board(&board[w]);
                break Ok(());
            }
            Ok(Err(e)) => {
                clear_board(&board[w]);
                break Err(e);
            }
            Err(_) => {
                clear_board(&board[w]);
                counters.panics.fetch_add(1, Ordering::Relaxed);
                // Invalidate our claim so nothing this attempt half-did
                // can ever commit, then requeue within budget.
                state.epoch.fetch_add(1, Ordering::AcqRel);
                if state.attempts.load(Ordering::Acquire) < max_attempts {
                    counters.requeued.fetch_add(1, Ordering::Relaxed);
                    queue.push(w, slot);
                } else {
                    state.poisoned.store(true, Ordering::Release);
                }
                break Ok(());
            }
        }
    };
    // Group-commit tail: make every published-but-unsynced checkpoint
    // durable before retiring, whatever the exit path.
    let flushed = match dir {
        Some(d) => flush_group(d, &mut to_sync),
        None => Ok(()),
    };
    verdict?;
    flushed?;
    Ok(out)
}

/// The watchdog loop: every tick, scan the progress board for claims
/// whose probes-sent heartbeat has been flat for `quantum`. A claim
/// showing any probe progress since the previous tick has its clock
/// reset — only a worker that sends nothing for a full quantum is
/// presumed hung. A stale claim is invalidated (epoch bump — the hung
/// owner's late commit will be discarded) and its block requeued within
/// the attempt budget, else poisoned. Exits once every worker has
/// retired.
fn run_watchdog(
    quantum: Duration,
    board: &[Mutex<Option<Claim>>],
    slots: &[SlotState],
    queue: &StealQueue,
    active: &AtomicUsize,
    counters: &ExecCounters,
    max_attempts: u32,
) {
    let tick = (quantum / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    while active.load(Ordering::Acquire) > 0 {
        std::thread::sleep(tick);
        for (w, entry) in board.iter().enumerate() {
            let mut cur = entry.lock().expect("progress board poisoned");
            let Some(claim) = cur.as_mut() else { continue };
            // Heartbeat first: any probe sent since the last observation
            // proves the owner alive, however slowly the block is going,
            // and restarts its quantum clock.
            let sent_now = claim.sent.get();
            if sent_now != claim.last_sent {
                claim.last_sent = sent_now;
                claim.since = Instant::now();
                continue;
            }
            if claim.since.elapsed() < quantum {
                continue;
            }
            let (slot, epoch) = (claim.slot, claim.epoch);
            let state = &slots[slot];
            if state.done.load(Ordering::Acquire) {
                *cur = None;
                continue;
            }
            // Invalidate the stale claim; only one invalidator can win
            // the epoch CAS, so the requeue happens exactly once.
            if state
                .epoch
                .compare_exchange(epoch, epoch + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                counters.stalls.fetch_add(1, Ordering::Relaxed);
                if state.attempts.load(Ordering::Acquire) < max_attempts {
                    counters.requeued.fetch_add(1, Ordering::Relaxed);
                    queue.push(w, slot);
                } else {
                    state.poisoned.store(true, Ordering::Release);
                }
            }
            *cur = None;
        }
    }
}

/// Fsyncs a batch of published block checkpoints plus the directory —
/// the group-commit step. No-op on an empty batch.
fn flush_group(dir: &Path, paths: &mut Vec<PathBuf>) -> Result<(), StateError> {
    if paths.is_empty() {
        return Ok(());
    }
    for p in paths.drain(..) {
        fp::sync_file(&p)
            .map_err(|e| StateError::io(format!("sync checkpoint {}", p.display()), e))?;
    }
    fp::sync_dir(dir)
        .map_err(|e| StateError::io(format!("sync campaign dir {}", dir.display()), e))?;
    Ok(())
}

/// One block loaded back from its checkpoint file.
struct LoadedBlock {
    block: BlockResult,
    /// The block's exact telemetry delta (counters and histograms the
    /// block contributed), captured by the worker that ran it.
    metrics: Snapshot,
}

fn block_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("block-{idx:02}.ckpt"))
}

fn marker_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("block-{idx:02}.inprogress"))
}

fn dir_manifest_path(dir: &Path) -> PathBuf {
    dir.join("campaign.ckpt")
}

fn write_marker(dir: &Path, idx: usize) -> Result<(), StateError> {
    let path = marker_path(dir, idx);
    std::fs::write(&path, b"")
        .map_err(|e| StateError::io(format!("write marker {}", path.display()), e))
}

fn write_dir_manifest(dir: &Path, fp: u64) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-dir\",\
         \"blocks\":{},\"campaign_fp\":\"{fp:#018x}\",\"sections\":[]}}",
        SAMPLE_BLOCKS.len()
    );
    write_sectioned(&dir_manifest_path(dir), &header, &[])
}

/// Validates the directory manifest and classifies every block. An
/// absent manifest (killed before anything was written, or a fresh dir)
/// yields an all-[`Fresh`](BlockMode::Fresh) plan, mirroring the
/// sequential campaign's "kill before the first checkpoint resumes as a
/// fresh start".
fn load_dir(dir: &Path, expected_fp: u64) -> Result<Vec<BlockMode>, StateError> {
    let manifest = dir_manifest_path(dir);
    if !manifest.exists() {
        return Ok(vec![BlockMode::Fresh; SAMPLE_BLOCKS.len()]);
    }
    let what = "campaign directory manifest";
    let (header, _) = read_sectioned(&manifest, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-dir" {
        return Err(StateError::Corrupt(format!(
            "{what}: expected kind `campaign-dir`, found `{kind}`"
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "campaign checkpoint directory was written under configuration \
             {fp:#018x}, this campaign fingerprints as {expected_fp:#018x}"
        )));
    }
    (0..SAMPLE_BLOCKS.len())
        .map(|idx| {
            if block_path(dir, idx).exists() {
                // A present checkpoint only counts if it reads back
                // cleanly: a crash inside the group-commit window can
                // leave a published-but-torn file. Corrupt reclassifies
                // as Resume (the block re-runs and the rewrite clobbers
                // the torn file); fingerprint/config mismatches stay
                // hard errors — re-running would scan the wrong thing.
                match load_block_ckpt(dir, idx, expected_fp) {
                    Ok(_) => Ok(BlockMode::Skip),
                    Err(StateError::Corrupt(_)) => Ok(BlockMode::Resume),
                    Err(e) => Err(e),
                }
            } else if marker_path(dir, idx).exists() {
                Ok(BlockMode::Resume)
            } else {
                Ok(BlockMode::Fresh)
            }
        })
        .collect()
}

/// Publishes one block checkpoint. With `sync: false` the data fsync is
/// deferred to the caller's group commit ([`flush_group`]); the file is
/// still published atomically via rename, so readers either see a whole
/// file or (after an OS crash inside the deferred window) a torn one —
/// which the resume planner classifies as "never completed".
fn write_block_ckpt(
    dir: &Path,
    fp: u64,
    idx: usize,
    block: &BlockResult,
    metrics: &Snapshot,
    sync: bool,
) -> Result<(), StateError> {
    let header = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"campaign-block\",\
         \"block\":{idx},\"profile\":{},\"campaign_fp\":\"{fp:#018x}\",\
         \"sections\":[\"metrics\",\"block\"]}}",
        block.profile_id
    );
    let mut e = Encoder::new();
    encode_block(&mut e, block);
    write_sectioned_opts(
        &block_path(dir, idx),
        &header,
        &[("metrics", encode_snapshot(metrics)), ("block", e.finish())],
        sync,
    )
}

fn load_block_ckpt(dir: &Path, idx: usize, expected_fp: u64) -> Result<LoadedBlock, StateError> {
    let what = "campaign block checkpoint";
    let path = block_path(dir, idx);
    let (header, mut sections) = read_sectioned(&path, what)?;
    let kind = header.req_str("kind", what)?;
    if kind != "campaign-block" {
        return Err(StateError::Corrupt(format!(
            "{what} {}: expected kind `campaign-block`, found `{kind}`",
            path.display()
        )));
    }
    let fp = parse_fp(&header.req_str("campaign_fp", what)?, what)?;
    if fp != expected_fp {
        return Err(StateError::Mismatch(format!(
            "block checkpoint {} was taken under configuration {fp:#018x}, \
             this campaign fingerprints as {expected_fp:#018x}",
            path.display()
        )));
    }
    let declared = header.req_u64("block", what)? as usize;
    if declared != idx {
        return Err(StateError::Corrupt(format!(
            "{what} {}: declares block {declared}, expected {idx}",
            path.display()
        )));
    }
    let metrics_raw = sections.remove("metrics").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `metrics` section",
            path.display()
        ))
    })?;
    let block_raw = sections.remove("block").ok_or_else(|| {
        StateError::Corrupt(format!(
            "{what} {}: missing `block` section",
            path.display()
        ))
    })?;
    let mut d = Decoder::new(&block_raw, "campaign block");
    let block = decode_block(&mut d)?;
    d.expect_end()?;
    if block.profile_id as u64 != header.req_u64("profile", what)? {
        return Err(StateError::Corrupt(format!(
            "{what} {}: profile id does not match its header",
            path.display()
        )));
    }
    Ok(LoadedBlock {
        block,
        metrics: decode_snapshot(&metrics_raw)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::world::{World, WorldConfig};
    use xmap_netsim::KillPoint;

    fn base(max: u64) -> ScanConfig {
        ScanConfig {
            max_targets: Some(max),
            seed: 5,
            ..Default::default()
        }
    }

    fn make_world(_w: usize, telemetry: &Telemetry) -> World {
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.set_telemetry(telemetry);
        world
    }

    fn sequential(tpb: u64) -> (CampaignResult, Snapshot) {
        let telemetry = Telemetry::new();
        let mut world = World::with_config(WorldConfig::lossless(99, 50));
        world.set_telemetry(&telemetry);
        let mut scanner = Scanner::with_telemetry(world, base(tpb), telemetry.clone());
        let result = Campaign::new(tpb).run(&mut scanner);
        (result, telemetry.registry.snapshot())
    }

    #[test]
    fn worker_counts_are_byte_identical() {
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);
        for workers in [1usize, 2, 4] {
            let outcome =
                ParallelCampaign::new(Campaign::new(tpb), workers).run(&base(tpb), make_world);
            assert!(!outcome.interrupted);
            assert_eq!(outcome.result, seq, "{workers} workers diverged");
            assert_eq!(
                outcome.result.to_csv(),
                seq.to_csv(),
                "{workers}-worker CSV diverged"
            );
            assert_eq!(
                outcome.snapshot, seq_snap,
                "{workers}-worker snapshot diverged"
            );
        }
    }

    #[test]
    fn checkpointed_run_writes_all_blocks() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-full-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 10;
        let exec = ParallelCampaign::new(Campaign::new(tpb), 2);
        let outcome = exec
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        assert!(!outcome.interrupted);
        assert_eq!(outcome.result.blocks.len(), SAMPLE_BLOCKS.len());
        let plan = exec.resume_plan(&base(tpb), &dir).unwrap();
        assert!(plan.iter().all(|m| *m == BlockMode::Skip), "{plan:?}");
        // A resume with everything checkpointed scans nothing and still
        // reproduces the result and snapshot exactly.
        let resumed = exec
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert_eq!(resumed.result, outcome.result);
        assert_eq!(resumed.snapshot, outcome.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_and_resume_with_different_worker_count() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 12;
        let (seq, seq_snap) = sequential(tpb);

        let signal = AbortSignal::new();
        let exec2 = ParallelCampaign::new(Campaign::new(tpb), 2);
        let partial = exec2
            .run_checkpointed(&base(tpb), &dir, false, Some(&signal), |w, telemetry| {
                let mut world = World::with_config(WorldConfig::lossless(99, 50));
                world.set_telemetry(telemetry);
                if w == 0 {
                    // Deterministic interrupt: worker 0's world kills the
                    // whole campaign after 6k of its own probes.
                    world.arm_kill(
                        KillPoint {
                            after_probes: Some(6_000),
                            ..Default::default()
                        },
                        signal.clone(),
                    );
                }
                world
            })
            .unwrap();
        assert!(partial.interrupted, "kill point must interrupt");
        assert!(partial.result.blocks.len() < SAMPLE_BLOCKS.len());

        let plan = exec2.resume_plan(&base(tpb), &dir).unwrap();
        assert!(plan.contains(&BlockMode::Skip), "{plan:?}");
        assert!(
            plan.iter().any(|m| *m != BlockMode::Skip),
            "something must be left to do: {plan:?}"
        );

        // Resume under a different worker count.
        let exec3 = ParallelCampaign::new(Campaign::new(tpb), 3);
        let full = exec3
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert!(!full.interrupted);
        assert_eq!(full.result, seq, "resumed campaign must match sequential");
        assert_eq!(full.snapshot, seq_snap, "resumed snapshot must match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_campaign_is_refused() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 9;
        ParallelCampaign::new(Campaign::new(tpb), 2)
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        let other = ParallelCampaign::new(Campaign::new(tpb * 2), 2);
        let err = other
            .run_checkpointed(&base(tpb * 2), &dir, true, None, make_world)
            .unwrap_err();
        assert!(matches!(err, StateError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParallelCampaign::new(Campaign::new(1), 0);
    }

    /// Strips the supervision counters a faulty run adds, so the rest of
    /// the snapshot can be compared byte-for-byte against a clean run.
    fn strip_exec(mut snap: Snapshot) -> Snapshot {
        for name in [
            names::EXEC_WORKER_PANICS,
            names::EXEC_REQUEUED,
            names::EXEC_POISONED,
            names::EXEC_STALLS,
        ] {
            snap.counters.remove(name);
        }
        snap
    }

    #[test]
    fn worker_panic_retries_on_surviving_worker_byte_identically() {
        let tpb = 1 << 10;
        let (seq, seq_snap) = sequential(tpb);
        // Worker 0 panics on its second claimed block; the requeued block
        // re-runs on a surviving worker (or the supervisor fallback).
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 2)
            .with_exec_faults(ExecPlan::panic_on(0, 1))
            .run(&base(tpb), make_world);
        assert!(!outcome.interrupted);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "recovered campaign diverged");
        assert_eq!(outcome.snapshot.counter(names::EXEC_WORKER_PANICS), 1);
        assert_eq!(outcome.snapshot.counter(names::EXEC_REQUEUED), 1);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn single_worker_panic_falls_back_to_supervisor() {
        let tpb = 1 << 9;
        let (seq, seq_snap) = sequential(tpb);
        // The only worker panics on its fourth block and retires; the
        // supervisor fallback must finish the requeued block and every
        // block after it, still byte-identically.
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 1)
            .with_exec_faults(ExecPlan::panic_on(0, 3))
            .run(&base(tpb), make_world);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "supervisor fallback diverged");
        assert_eq!(outcome.snapshot.counter(names::EXEC_WORKER_PANICS), 1);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn stalled_worker_is_rescued_by_watchdog() {
        let tpb = 1 << 13;
        let (seq, seq_snap) = sequential(tpb);
        // Worker 0 goes silent holding its first block. The quantum is
        // calibrated between one block's runtime (a live worker must not
        // look hung) and the surviving worker's total remaining work (the
        // watchdog must fire while the run is still live); the wide
        // attempt budget keeps a spuriously reclaimed slow block — whose
        // re-run is byte-identical anyway — from ever being poisoned.
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 2)
            .with_exec_faults(ExecPlan::stall_on(0, 0))
            .with_watchdog(Duration::from_millis(200))
            .with_supervision(Supervision { max_attempts: 10 })
            .run(&base(tpb), make_world);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "rescued campaign diverged");
        assert!(outcome.snapshot.counter(names::EXEC_STALLS) >= 1);
        assert!(outcome.snapshot.counter(names::EXEC_REQUEUED) >= 1);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn slow_but_alive_worker_is_never_reclaimed() {
        // The watchdog bounds time *without probe progress*, not block
        // runtime. Arm it with a quantum well below one block's runtime
        // — under a wall-clock rule every block would be spuriously
        // requeued — and assert a healthy run sees zero stalls and stays
        // byte-identical to sequential. The quantum self-calibrates from
        // the measured sequential pace, floored high enough that OS
        // scheduling jitter can't fake a flat heartbeat.
        let tpb = 1 << 14;
        let t0 = Instant::now();
        let (seq, seq_snap) = sequential(tpb);
        let per_block = t0.elapsed() / SAMPLE_BLOCKS.len() as u32;
        let quantum = (per_block / 4).max(Duration::from_millis(75));
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 2)
            .with_watchdog(quantum)
            .run(&base(tpb), make_world);
        assert!(outcome.poisoned.is_empty(), "{:?}", outcome.poisoned);
        assert_eq!(outcome.result, seq, "slow-but-alive campaign diverged");
        assert_eq!(
            outcome.snapshot.counter(names::EXEC_STALLS),
            0,
            "live worker was spuriously reclaimed"
        );
        assert_eq!(outcome.snapshot.counter(names::EXEC_REQUEUED), 0);
        assert_eq!(strip_exec(outcome.snapshot), seq_snap);
    }

    #[test]
    fn poisoned_block_leaves_deterministic_gap() {
        let tpb = 1 << 9;
        let (seq, _) = sequential(tpb);
        // One worker, attempt budget 1: the scripted panic on the sixth
        // claimed block (= block index 5, claims are in block order)
        // poisons it immediately. The campaign must complete around the
        // gap with every other block in Table II order.
        let outcome = ParallelCampaign::new(Campaign::new(tpb), 1)
            .with_supervision(Supervision { max_attempts: 1 })
            .with_exec_faults(ExecPlan::panic_on(0, 5))
            .run(&base(tpb), make_world);
        assert_eq!(outcome.poisoned, vec![5]);
        assert_eq!(outcome.result.blocks.len(), SAMPLE_BLOCKS.len() - 1);
        let mut expect = seq.blocks.clone();
        expect.remove(5);
        assert_eq!(outcome.result.blocks, expect, "merge order must hold");
        assert_eq!(outcome.snapshot.counter(names::EXEC_POISONED), 1);
    }

    #[test]
    fn torn_block_checkpoint_reclassifies_as_resume() {
        let dir = std::env::temp_dir().join(format!("xmap-pcamp-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tpb = 1 << 9;
        let exec = ParallelCampaign::new(Campaign::new(tpb), 2);
        let full = exec
            .run_checkpointed(&base(tpb), &dir, false, None, make_world)
            .unwrap();
        // Tear block 7's checkpoint in half — what an OS crash inside the
        // group-commit window can leave behind a rename.
        let victim = block_path(&dir, 7);
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let plan = exec.resume_plan(&base(tpb), &dir).unwrap();
        for (idx, mode) in plan.iter().enumerate() {
            let expect = if idx == 7 {
                BlockMode::Resume
            } else {
                BlockMode::Skip
            };
            assert_eq!(*mode, expect, "block {idx}");
        }
        // The resume re-runs exactly the torn block and reproduces the
        // uninterrupted campaign byte-for-byte.
        let resumed = exec
            .run_checkpointed(&base(tpb), &dir, true, None, make_world)
            .unwrap();
        assert_eq!(resumed.result, full.result);
        assert_eq!(resumed.snapshot, full.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_quantums_agree_with_legacy_per_block_sync() {
        let tpb = 1 << 9;
        let run_with = |group: usize, tag: &str| {
            let dir =
                std::env::temp_dir().join(format!("xmap-pcamp-gc{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let out = ParallelCampaign::new(Campaign::new(tpb), 2)
                .with_group_commit(group)
                .run_checkpointed(&base(tpb), &dir, false, None, make_world)
                .unwrap();
            let plan = ParallelCampaign::new(Campaign::new(tpb), 2)
                .resume_plan(&base(tpb), &dir)
                .unwrap();
            assert!(plan.iter().all(|m| *m == BlockMode::Skip), "{plan:?}");
            let _ = std::fs::remove_dir_all(&dir);
            (out.result, out.snapshot)
        };
        let legacy = run_with(1, "legacy");
        let batched = run_with(DEFAULT_GROUP_COMMIT, "batched");
        let whole = run_with(SAMPLE_BLOCKS.len() + 1, "whole");
        assert_eq!(legacy, batched);
        assert_eq!(legacy, whole);
    }
}
