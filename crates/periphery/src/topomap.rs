//! Topology mapping from discovery results (the §I motivation:
//! "the IPv6 network periphery discovery is essential to the completeness
//! of network topology mapping").
//!
//! Combines sub-prefix discovery (which exposes the *edge*) with
//! traceroutes (which expose the *transit path*) into a simple annotated
//! graph: vantage → transit routers → peripheries, with degree statistics
//! showing how much of the edge traceroute-only mapping misses.

use std::collections::{HashMap, HashSet};

use xmap_addr::Ip6;

use crate::baseline::TracerouteResult;
use crate::campaign::BlockResult;

/// Role of a node in the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// In-path transit router (from Time Exceeded sources).
    Transit,
    /// Last-hop periphery (CPE/UE).
    Periphery,
}

/// An annotated topology graph.
#[derive(Debug, Clone, Default)]
pub struct TopologyMap {
    roles: HashMap<Ip6, Role>,
    edges: HashSet<(Ip6, Ip6)>,
}

impl TopologyMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests the peripheries of a discovery block.
    pub fn add_block(&mut self, block: &BlockResult) {
        for p in &block.peripheries {
            self.roles.insert(p.address, Role::Periphery);
        }
    }

    /// Ingests one traceroute path: consecutive responding hops become
    /// edges; the last hop keeps (or gains) its periphery role if the
    /// traceroute ended in an unreachable.
    pub fn add_traceroute(&mut self, tr: &TracerouteResult) {
        let path: Vec<Ip6> = tr.hops.iter().flatten().copied().collect();
        for hop in &path {
            self.roles.entry(*hop).or_insert(Role::Transit);
        }
        if let Some(last) = tr.last_hop {
            // A last hop that is not a transit marker is a periphery.
            if last.iid() >> 48 != 0xffff {
                self.roles.insert(last, Role::Periphery);
            }
        }
        for w in path.windows(2) {
            if w[0] != w[1] {
                self.edges.insert((w[0], w[1]));
            }
        }
    }

    /// Number of nodes with `role`.
    pub fn count(&self, role: Role) -> usize {
        self.roles.values().filter(|r| **r == role).count()
    }

    /// Total nodes.
    pub fn nodes(&self) -> usize {
        self.roles.len()
    }

    /// Total directed edges.
    pub fn edges(&self) -> usize {
        self.edges.len()
    }

    /// The role of an address, if mapped.
    pub fn role_of(&self, addr: Ip6) -> Option<Role> {
        self.roles.get(&addr).copied()
    }

    /// Fraction of nodes that are peripheries — the "completeness" metric:
    /// a traceroute-only map of the same network has a much lower edge
    /// share because it only sees peripheries it happened to trace through.
    pub fn edge_share(&self) -> f64 {
        if self.roles.is_empty() {
            0.0
        } else {
            self.count(Role::Periphery) as f64 / self.roles.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::traceroute_discovery;
    use crate::campaign::Campaign;
    use xmap::{ScanConfig, Scanner};
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::{World, WorldConfig};

    #[test]
    fn discovery_plus_traceroute_builds_a_map() {
        let world = World::with_config(WorldConfig::lossless(21, 10));
        let mut scanner = Scanner::new(
            world,
            ScanConfig {
                seed: 21,
                ..Default::default()
            },
        );

        // Edge from discovery.
        let block = Campaign::new(1 << 14).run_block(&mut scanner, &SAMPLE_BLOCKS[12]);
        assert!(block.unique() > 5);
        let mut map = TopologyMap::new();
        map.add_block(&block);
        let periph_only = map.nodes();
        assert_eq!(map.count(Role::Periphery), periph_only);
        assert!(map.edge_share() > 0.99);

        // Paths from traceroutes toward a few discovered targets.
        for p in block.peripheries.iter().take(5) {
            let tr = traceroute_discovery(&mut scanner, p.probe_dst, 40);
            map.add_traceroute(&tr);
        }
        assert!(
            map.count(Role::Transit) > 0,
            "traceroutes add transit routers"
        );
        assert!(map.edges() > 0);
        // Peripheries now share the map with transit infrastructure.
        assert!(map.edge_share() < 1.0);
        assert!(
            map.edge_share() >= 0.4,
            "edge share too small: {}",
            map.edge_share()
        );
    }

    #[test]
    fn roles_do_not_regress() {
        // Once known as a periphery, a node stays a periphery even if a
        // later traceroute sees it mid-path (same /64 CPE forwarding).
        let mut map = TopologyMap::new();
        let addr: Ip6 = "2001:db8::1".parse().unwrap();
        map.roles.insert(addr, Role::Periphery);
        let tr = TracerouteResult {
            hops: vec![Some(addr)],
            last_hop: None,
            probes: 1,
        };
        map.add_traceroute(&tr);
        assert_eq!(map.role_of(addr), Some(Role::Periphery));
    }

    #[test]
    fn empty_map_metrics() {
        let map = TopologyMap::new();
        assert_eq!(map.nodes(), 0);
        assert_eq!(map.edges(), 0);
        assert_eq!(map.edge_share(), 0.0);
        assert_eq!(map.role_of("::1".parse().unwrap()), None);
    }
}
